#!/usr/bin/env bash
# Clang thread-safety gate, as run by the CI thread-safety job: every
# first-party translation unit is re-checked with
#   clang++ ... -fsyntax-only -Werror=thread-safety
# using the exact flags from a clang-configured compile_commands.json,
# so the lock annotations in src/common/sync.h are verified even though
# the day-to-day build compiler (GCC) ignores them.
#
# -fsyntax-only keeps this a pure analysis pass: no objects are
# produced, so the gate is fast and needs no prior build of the tree.
#
# On machines without clang installed the script says so and exits 0 —
# the enforcement point is CI, where the compiler is always present; a
# missing local binary must not block building or testing.
#
# Usage: scripts/thread_safety_check.sh [BUILD_DIR]   (default: build-tsa)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-${BUILD_DIR:-build-tsa}}

CLANGXX=${CLANGXX:-}
if [[ -z "$CLANGXX" ]]; then
  for cand in clang++ clang++-18 clang++-17 clang++-16 clang++-15 \
              clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANGXX=$cand
      break
    fi
  done
fi
if [[ -z "$CLANGXX" ]]; then
  echo "thread_safety_check.sh: clang++ not found on PATH; skipping" \
       "(CI enforces this)."
  exit 0
fi

# The compile database must come from a clang configure: header search
# paths and dialect flags differ between compilers, and CompilerChecks
# only enables -Wthread-safety when the probe succeeds.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== configuring $BUILD_DIR with $CLANGXX =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

export ZS_TSA_CLANGXX="$CLANGXX"
python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import os
import shlex
import subprocess
import sys

clangxx = os.environ["ZS_TSA_CLANGXX"]
db = json.load(open(sys.argv[1]))
seen = set()
failures = 0
checked = 0
for entry in db:
    src = entry["file"]
    if "/_deps/" in src or src in seen:
        continue
    seen.add(src)
    argv = entry.get("arguments") or shlex.split(entry["command"])
    # Keep the configured flags (includes, -std, defines), swap the
    # compile step for a syntax-only analysis run under clang.
    out = []
    skip_next = False
    for a in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if a == "-o":
            skip_next = True
            continue
        if a == "-c":
            continue
        out.append(a)
    cmd = [clangxx, "-fsyntax-only", "-Wthread-safety",
           "-Werror=thread-safety"] + out
    checked += 1
    proc = subprocess.run(cmd, cwd=entry["directory"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures += 1
        sys.stderr.write(f"== thread-safety FAIL: {src} ==\n")
        sys.stderr.write(proc.stderr)

if failures:
    sys.stderr.write(
        f"thread_safety_check.sh: {failures}/{checked} translation units "
        "have thread-safety findings.\n")
    sys.exit(1)
print(f"== thread-safety OK: {checked} translation units clean ==")
EOF
