#!/usr/bin/env python3
"""Hot-path allocation lint: budget heap allocations in ZS_HOT functions.

Scans every first-party source file for functions marked ZS_HOT (see
src/common/macros.h) and counts the heap-allocation sites inside each
body: `new`, make_unique/make_shared, and allocating string/container
operations (push_back, emplace*, insert, resize, reserve, append,
assign, substr, to_string). The per-function counts are compared to the
committed baseline BENCH_hotpath_allocs.json:

  - a count above the baseline (or a new ZS_HOT function with
    allocations) FAILS — new allocation debt on a per-event path must be
    an explicit decision, recorded by re-running with --update;
  - a count below the baseline is reported as progress (run --update to
    ratchet the budget down);
  - `// zs-hotpath-allow(reason)` on an allocation's line excludes it
    from the count (use for one-time/amortized allocations, never for
    true per-event ones).

Engines:
  - lexical (default): a deterministic comment/string-stripping token
    scanner — no dependencies, used by CI and the committed baseline.
  - libclang (--engine=libclang): resolves the same ZS_HOT regions via
    the clang AST over compile_commands.json; needs the `clang` python
    package + libclang. A cross-check, not the source of truth.

Usage:
  scripts/hotpath_lint.py --check            # CI gate (default mode)
  scripts/hotpath_lint.py --list             # show every counted site
  scripts/hotpath_lint.py --update           # rewrite the baseline
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_hotpath_allocs.json")
SCAN_DIRS = ("src",)
SOURCE_EXTENSIONS = (".h", ".cc")
ALLOW_MARKER = "zs-hotpath-allow"

# One alternation, compiled once. `new` must be an expression keyword
# (not `new_...` identifiers); member ops must look like calls.
ALLOC_RE = re.compile(
    r"""
    \bnew\b(?!\s*\()?                                  # new T / new (nothrow)
    | \bmake_unique\s*<
    | \bmake_shared\s*<
    | \bto_string\s*\(
    | (?:\.|->)\s*(?:push_back|emplace_back|emplace|insert|resize
                     |reserve|append|assign|substr)\s*\(
    """,
    re.VERBOSE,
)


def strip_code(text):
    """Blanks comments, string/char literals, and preprocessor lines.

    Offsets and line structure are preserved (every stripped char becomes
    a space), so token positions map back to real lines. Lines carrying a
    `zs-hotpath-allow` marker are recorded BEFORE comments are removed.
    """
    allow_lines = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if ALLOW_MARKER in line:
            allow_lines.add(i)

    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            # Preprocessor line (incl. the ZS_HOT macro definition);
            # honor line continuations.
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        out[i - 1] = " "
                        i += 1
                        continue
                    break
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out), allow_lines


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def find_hot_functions(path, text):
    """Yields (qualified_name, body_start, body_end) for ZS_HOT functions."""
    code, _ = strip_code(text)
    for marker in re.finditer(r"\bZS_HOT\b", code):
        sig_start = marker.end()
        # The body opens at the first '{' outside parens after the
        # marker (the signature may contain parenthesized attribute
        # arguments, e.g. ZS_REQUIRES(mu_)).
        depth = 0
        body_open = -1
        for i in range(sig_start, len(code)):
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "{" and depth == 0:
                body_open = i
                break
            elif c == ";" and depth == 0:
                break  # declaration only — body lives elsewhere
        if body_open < 0:
            continue
        sig = code[sig_start:body_open]
        params_at = sig.find("(")
        name_m = re.search(r"[~A-Za-z_][\w:~]*\s*$", sig[:params_at]) if params_at > 0 else None
        if name_m is None:
            print(f"warning: {path}:{line_of(text, marker.start())}: "
                  f"could not parse ZS_HOT signature", file=sys.stderr)
            continue
        name = name_m.group().strip()
        # Brace-match the body.
        depth = 0
        body_end = len(code)
        for i in range(body_open, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    body_end = i + 1
                    break
        yield name, body_open, body_end


def scan_file(path, relpath):
    """Returns ({key: count}, [(key, line, token, allowed)]) for one file."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if "ZS_HOT" not in text:
        return {}, []
    code, allow_lines = strip_code(text)
    counts = {}
    sites = []
    for name, start, end in find_hot_functions(path, text):
        key = f"{relpath}:{name}"
        counts.setdefault(key, 0)
        for m in ALLOC_RE.finditer(code, start, end):
            line = line_of(code, m.start())
            token = m.group().strip().lstrip(".->").rstrip("(<").strip()
            allowed = line in allow_lines
            sites.append((key, line, token, allowed))
            if not allowed:
                counts[key] += 1
    return counts, sites


def scan_tree_lexical():
    counts, sites = {}, []
    for scan_dir in SCAN_DIRS:
        for dirpath, _, files in os.walk(os.path.join(REPO_ROOT, scan_dir)):
            for fname in sorted(files):
                if not fname.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, REPO_ROOT)
                c, s = scan_file(path, rel)
                for k in c:
                    counts[k] = counts.get(k, 0) + c[k]
                sites.extend(s)
    return counts, sites


def scan_tree_libclang(compile_commands):
    """AST-based cross-check: same keys, counts from clang cursors."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        sys.exit("error: --engine=libclang needs the clang python package "
                 "(and libclang); use the default lexical engine instead")
    with open(compile_commands, encoding="utf-8") as f:
        commands = json.load(f)
    index = cindex.Index.create()
    alloc_calls = {"make_unique", "make_shared", "to_string", "push_back",
                   "emplace_back", "emplace", "insert", "resize", "reserve",
                   "append", "assign", "substr"}
    counts = {}
    seen_files = set()
    for entry in commands:
        path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        if not path.startswith(REPO_ROOT + os.sep) or path in seen_files:
            continue
        seen_files.add(path)
        args = [a for a in entry["command"].split()[1:]
                if not a.endswith((".cc", ".o")) and a not in ("-c", "-o")]
        tu = index.parse(path, args=args)
        # Hot regions come from the lexical marker scan; the AST supplies
        # accurate function extents and allocation nodes within them.
        with open(path, encoding="utf-8") as f:
            text = f.read()
        regions = list(find_hot_functions(path, text))
        if not regions:
            continue
        rel = os.path.relpath(path, REPO_ROOT)

        def visit(node):
            for child in node.get_children():
                if child.location.file and os.path.normpath(
                        str(child.location.file)) == path:
                    k = None
                    if child.kind == cindex.CursorKind.CXX_NEW_EXPR:
                        k = "new"
                    elif child.kind == cindex.CursorKind.CALL_EXPR and \
                            child.spelling in alloc_calls:
                        k = child.spelling
                    if k is not None:
                        off = child.location.offset
                        for name, start, end in regions:
                            if start <= off < end:
                                counts[f"{rel}:{name}"] = counts.get(
                                    f"{rel}:{name}", 0) + 1
                                break
                visit(child)

        visit(tu.cursor)
        for name, _, _ in regions:
            counts.setdefault(f"{rel}:{name}", 0)
    return counts, []


def load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def write_baseline(counts):
    doc = {
        "_comment": (
            "Per-function heap-allocation counts inside ZS_HOT bodies "
            "(scripts/hotpath_lint.py, lexical engine). CI fails when a "
            "count rises; re-run with --update to accept a change. "
            "ROADMAP item 1's batched rewrite should drive these to ~0."
        ),
        "functions": dict(sorted(counts.items())),
        "total": sum(counts.values()),
    }
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="compare against the baseline (default)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite BENCH_hotpath_allocs.json")
    mode.add_argument("--list", action="store_true",
                      help="print every counted allocation site")
    parser.add_argument("--engine", choices=("lexical", "libclang"),
                        default="lexical")
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"),
                        help="compile_commands.json (libclang engine only)")
    args = parser.parse_args()

    if args.engine == "libclang":
        counts, sites = scan_tree_libclang(args.compile_commands)
    else:
        counts, sites = scan_tree_lexical()

    if not counts:
        sys.exit("error: no ZS_HOT functions found — marker scan broken?")

    if args.list:
        for key, line, token, allowed in sorted(sites):
            flag = " (allowed)" if allowed else ""
            print(f"{key.split(':')[0]}:{line}: {token} in "
                  f"{key.split(':', 1)[1]}{flag}")
        total = sum(counts.values())
        print(f"\n{len(counts)} ZS_HOT functions, {total} counted "
              f"allocation sites")
        return

    if args.update:
        write_baseline(counts)
        print(f"baseline written: {len(counts)} functions, "
              f"{sum(counts.values())} allocation sites "
              f"-> {os.path.relpath(BASELINE_PATH, REPO_ROOT)}")
        return

    baseline = load_baseline()
    if baseline is None:
        sys.exit("error: BENCH_hotpath_allocs.json missing; run "
                 "scripts/hotpath_lint.py --update and commit it")
    base = baseline.get("functions", {})
    failures = []
    improved = []
    for key, count in sorted(counts.items()):
        if key not in base:
            if count > 0:
                failures.append(
                    f"{key}: NEW ZS_HOT function with {count} allocation "
                    f"site(s) and no baseline entry")
        elif count > base[key]:
            failures.append(
                f"{key}: {count} allocation site(s), baseline {base[key]} "
                f"(+{count - base[key]})")
        elif count < base[key]:
            improved.append(f"{key}: {base[key]} -> {count}")
    removed = sorted(set(base) - set(counts))

    if improved:
        print("improved (run --update to ratchet the budget down):")
        for line in improved:
            print(f"  {line}")
    if removed:
        print("baseline entries with no matching ZS_HOT function "
              "(renamed/deleted; run --update):")
        for key in removed:
            print(f"  {key}")
    if failures:
        print("hotpath_lint: allocation budget exceeded:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print("\nEither remove the allocation (preferred), annotate the "
              "line with // zs-hotpath-allow(reason) if it is amortized, "
              "or accept the debt with scripts/hotpath_lint.py --update.",
              file=sys.stderr)
        sys.exit(1)
    print(f"hotpath_lint: OK ({len(counts)} ZS_HOT functions, "
          f"{sum(counts.values())} allocation sites within budget)")


if __name__ == "__main__":
    main()
