#!/usr/bin/env bash
# Runs the figure benchmarks and merges their JSON-lines output into a
# single well-formed JSON document (default: BENCH_baseline.json at the
# repo root) — the perf trajectory that optimisation PRs are measured
# against.
#
# Usage:
#   scripts/run_benches.sh                 # Figure 8/10/12 -> BENCH_baseline.json
#   scripts/run_benches.sh --all           # every built bench_* binary
#   BENCHES="bench_fig08_selectivity" scripts/run_benches.sh
#
# Knobs (environment):
#   BUILD_DIR      CMake build tree holding bin/bench_* (default: build)
#   OUT            output JSON path (default: BENCH_baseline.json)
#   ZS_BENCH_REPS  repetitions per measurement, forwarded to the binaries
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_baseline.json}
BIN_DIR="$BUILD_DIR/bin"

if [[ "${1:-}" == "--all" ]]; then
  BENCHES=$(cd "$BIN_DIR" && ls bench_* 2>/dev/null | sort)
else
  # The figure benches that anchor the perf trajectory (paper Figures
  # 8, 10 and 12): plan-shape throughput under selectivity sweeps, rate
  # skew, and the complex Query 6 regimes — plus the StreamRuntime
  # shard-count sweep so the trajectory captures multi-core scaling, the
  # loopback-vs-in-process network ingest sweep so it captures the
  # serving layer's wire overhead, and the observability-instrumentation
  # overhead bound.
  BENCHES=${BENCHES:-"bench_fig08_selectivity bench_fig10_rates bench_fig12_complex bench_runtime_scaling bench_net_ingest bench_obs_overhead"}
fi

for b in $BENCHES; do
  if [[ ! -x "$BIN_DIR/$b" ]]; then
    echo "error: $BIN_DIR/$b not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

for b in $BENCHES; do
  echo "== running $b =="
  ZS_BENCH_JSON="$scratch/$b.jsonl" "$BIN_DIR/$b"
done

# Observability overhead A/B: bench_obs_overhead labels its series by
# build flavor ("instrumented" vs "stripped"), so when a
# -DZSTREAM_OBS_STRIP=ON tree is present (default: build-obs-strip,
# override with STRIP_BUILD_DIR) run its copy too — the merged baseline
# then carries both sides of the comparison.
STRIP_BUILD_DIR=${STRIP_BUILD_DIR:-build-obs-strip}
if [[ " $BENCHES " == *" bench_obs_overhead "* &&
      -x "$STRIP_BUILD_DIR/bin/bench_obs_overhead" ]]; then
  echo "== running bench_obs_overhead (stripped build) =="
  ZS_BENCH_JSON="$scratch/zz_bench_obs_overhead_stripped.jsonl" \
    "$STRIP_BUILD_DIR/bin/bench_obs_overhead"
fi

shopt -s nullglob
jsonl_files=("$scratch"/*.jsonl)
if [[ ${#jsonl_files[@]} -eq 0 ]]; then
  echo "error: no JSON records emitted (benches missing RecordResult calls?)" >&2
  exit 1
fi

{
  printf '{\n'
  printf '  "schema": "zstream-bench/v1",\n'
  printf '  "generated_by": "scripts/run_benches.sh",\n'
  printf '  "generated_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "host": "%s",\n' "$(uname -srm)"
  # Core count makes the 1-core scaling caveat machine-readable: shard
  # sweeps recorded with host_cores=1 only measure queue overhead.
  printf '  "host_cores": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '  "benches": "%s",\n' "$(echo $BENCHES | tr ' ' ',')"
  printf '  "results": [\n'
  cat "${jsonl_files[@]}" |
    awk 'NR > 1 { printf(",\n") } { printf("    %s", $0) } END { printf("\n") }'
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

count=$(cat "${jsonl_files[@]}" | wc -l)
echo "wrote $OUT ($count measurements from: $BENCHES)"
