#!/usr/bin/env python3
"""Bench regression guard: the tree engine must keep beating the NFA.

Runs bench_fig08_selectivity at the guarded selectivity points
(default 1/1, 1/5, 1/50 — peak load, the paper's mid sweep, and a
highly selective predicate) and fails if, at any point,

  1. the best tree plan's events/s falls below the NFA measured in the
     SAME run (machine-speed independent — this is the paper's central
     claim and the one check that never needs a slack factor), or
  2. a series' events/s falls below `slack` x the committed
     BENCH_baseline.json value for the same experiment/series/x
     (catches absolute regressions in the tree engine, and in the NFA
     baseline itself so check 1 can't pass by the comparison rotting;
     the slack absorbs host variance between the baseline machine and
     CI).

Only points present in the committed baseline get check 2; check 1
applies to every point run. The right-deep plan is exempt from check 1:
it is the deliberately bad plan the figure contrasts against, and the
paper itself expects the NFA to track it.

Usage:
  scripts/bench_guard.py                     # CI gate
  scripts/bench_guard.py --denoms 1,2,4      # custom selectivity points
  ZS_BENCH_GUARD_SLACK=0.3 scripts/bench_guard.py   # looser baseline gate

Knobs (environment):
  ZS_BENCH_GUARD_SLACK  baseline multiplier, default 0.5
  ZS_BENCH_REPS         forwarded to the bench binary, default 2
                        (first rep is warmup, excluded from the mean)
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

TREE_SERIES = ("left_deep", "right_deep")
# The figure's intentionally mis-ordered plan; NFA parity is expected,
# not a regression (the fig08 header comment spells this out).
BAD_PLAN_SERIES = ("right_deep",)


def load_baseline(path):
    """Returns {(experiment, series, x): throughput_eps} or {}."""
    if not os.path.exists(path):
        return {}
    with open(path) as f:
        doc = json.load(f)
    return {
        (r["experiment"], r["series"], r["x"]): r["throughput_eps"]
        for r in doc.get("results", [])
    }


def run_bench(binary, denoms, reps):
    """Runs the fig08 bench, returns the parsed JSON-lines records."""
    with tempfile.TemporaryDirectory() as scratch:
        out = os.path.join(scratch, "fig08.jsonl")
        env = dict(os.environ)
        env["ZS_BENCH_JSON"] = out
        env["ZS_FIG08_DENOMS"] = ",".join(str(d) for d in denoms)
        env.setdefault("ZS_BENCH_REPS", str(reps))
        subprocess.run([binary], env=env, check=True)
        with open(out) as f:
            return [json.loads(line) for line in f if line.strip()]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="CMake build tree holding bin/ (default: build)")
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--denoms", default="1,5,50",
                        help="selectivity denominators (default: %(default)s)")
    parser.add_argument("--reps", type=int, default=2,
                        help="bench repetitions incl. warmup (default: 2)")
    args = parser.parse_args()

    binary = os.path.join(args.build, "bin", "bench_fig08_selectivity")
    if not os.path.exists(binary):
        print(f"error: {binary} not built", file=sys.stderr)
        return 2

    slack = float(os.environ.get("ZS_BENCH_GUARD_SLACK", "0.5"))
    denoms = [int(d) for d in args.denoms.split(",") if d]
    baseline = load_baseline(args.baseline)
    records = run_bench(binary, denoms, args.reps)

    by_x = {}
    for r in records:
        by_x.setdefault(r["x"], {})[r["series"]] = r["throughput_eps"]

    failures = []
    for x, series in sorted(by_x.items()):
        nfa = series.get("nfa")
        best_tree = max((series[s] for s in TREE_SERIES if s in series),
                        default=None)
        if nfa is None or best_tree is None:
            failures.append(f"{x}: missing series in bench output "
                            f"(got {sorted(series)})")
            continue
        # Check 1: the tree engine beats the NFA on the same run.
        if best_tree < nfa:
            failures.append(
                f"{x}: best tree plan {best_tree:.0f} ev/s < NFA "
                f"{nfa:.0f} ev/s on the same run")
        else:
            print(f"ok  {x}: tree {best_tree:.0f} ev/s >= "
                  f"NFA {nfa:.0f} ev/s")
        # Check 2: no absolute collapse vs the committed baseline.
        for s, eps in sorted(series.items()):
            if s in BAD_PLAN_SERIES:
                continue
            committed = baseline.get(("fig08_selectivity", s, x))
            if committed is None:
                continue
            floor = slack * committed
            if eps < floor:
                failures.append(
                    f"{x}/{s}: {eps:.0f} ev/s < {slack} x committed "
                    f"baseline {committed:.0f} ev/s")
            else:
                print(f"ok  {x}/{s}: {eps:.0f} ev/s >= {slack} x "
                      f"baseline {committed:.0f} ev/s")

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    print(f"\nbench guard: all {len(by_x)} selectivity points pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
