#!/usr/bin/env bash
# End-to-end smoke test of the network serving layer, as run by CI:
# launches zstream_server on an ephemeral port, creates a stream and the
# tier-1 rising-triple query through zstream_cli, replays the
# deterministic stock workload over the wire, and asserts the exact
# match count (seed 42, 20000 events, 16 symbols -> 64105 matches, the
# same set the in-process runtime produces — see tests/net_test.cc for
# the full match-set equality assertion).
#
# Usage: scripts/net_smoke.sh [BUILD_DIR]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-${BUILD_DIR:-build}}
BIN="$BUILD_DIR/bin"
EXPECT_MATCHES=64105

for tool in zstream_server zstream_cli; do
  if [[ ! -x "$BIN/$tool" ]]; then
    echo "error: $BIN/$tool not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

log=$(mktemp)
"$BIN/zstream_server" --port 0 --shards 2 >"$log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -f "$log"' EXIT

# Wait for the listening line and parse the ephemeral port from it.
port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log")
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "error: server did not start:" >&2
  cat "$log" >&2
  exit 1
fi
echo "== zstream_server up on port $port =="

"$BIN/zstream_cli" --port "$port" exec \
  "CREATE STREAM stock (id INT, name STRING, price DOUBLE, volume INT, ts INT)" \
  "CREATE QUERY rally ON stock AS PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name AND A.price < B.price AND B.price < C.price WITHIN 100" \
  "SHOW PLAN rally"

echo "== replaying stock workload over the wire =="
"$BIN/zstream_cli" --port "$port" replay stock --stream stock \
  --events 20000 --symbols 16 --expect "rally=$EXPECT_MATCHES"

echo "== stats =="
stats=$("$BIN/zstream_cli" --port "$port" stats)
echo "$stats"
case "$stats" in
  *'"events_ingested": 20000'*) ;;
  *) echo "error: stats did not report 20000 ingested events" >&2; exit 1 ;;
esac

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "== net smoke OK (rally=$EXPECT_MATCHES matches over TCP) =="
