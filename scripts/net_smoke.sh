#!/usr/bin/env bash
# End-to-end smoke test of the network serving layer, as run by CI:
# launches zstream_server on an ephemeral port (with the HTTP metrics
# side port), creates a stream and the tier-1 rising-triple query
# through zstream_cli, replays the deterministic stock workload over
# the wire, and asserts the exact match count (seed 42, 20000 events,
# 16 symbols -> 64105 matches, the same set the in-process runtime
# produces — see tests/net_test.cc for the full match-set equality
# assertion). Along the way it scrapes /metrics and /healthz before and
# after the replay, asserting the Prometheus document is present and
# the ingest counter is monotone, and renders EXPLAIN ANALYZE over the
# wire. The server runs with --trace-sample 1 so the smoke also asserts
# GET /trace serves a non-empty chrome://tracing document after the
# replay.
#
# Usage: scripts/net_smoke.sh [BUILD_DIR]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-${BUILD_DIR:-build}}
BIN="$BUILD_DIR/bin"
EXPECT_MATCHES=64105

for tool in zstream_server zstream_cli; do
  if [[ ! -x "$BIN/$tool" ]]; then
    echo "error: $BIN/$tool not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

log=$(mktemp)
"$BIN/zstream_server" --port 0 --shards 2 --metrics-port 0 \
  --trace-sample 1 >"$log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -f "$log"' EXIT

# Wait for the listening lines and parse the ephemeral ports from them.
port=""
metrics_port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log")
  metrics_port=$(sed -n 's/.*metrics on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$log")
  [[ -n "$port" && -n "$metrics_port" ]] && break
  sleep 0.1
done
if [[ -z "$port" || -z "$metrics_port" ]]; then
  echo "error: server did not start:" >&2
  cat "$log" >&2
  exit 1
fi
echo "== zstream_server up on port $port (metrics on $metrics_port) =="

# Extracts one unlabeled counter value from a Prometheus document.
prom_value() {  # prom_value DOC NAME
  printf '%s\n' "$1" | awk -v name="$2" '$1 == name { print $2 }'
}

"$BIN/zstream_cli" --port "$port" exec \
  "CREATE STREAM stock (id INT, name STRING, price DOUBLE, volume INT, ts INT)" \
  "CREATE QUERY rally ON stock AS PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name AND A.price < B.price AND B.price < C.price WITHIN 100" \
  "SHOW PLAN rally"

echo "== metrics before replay =="
if command -v curl >/dev/null; then
  http_get() { curl -sf "http://127.0.0.1:$metrics_port$1"; }
  [[ "$(http_get /healthz)" == "ok" ]] || {
    echo "error: /healthz did not answer ok" >&2; exit 1; }
else
  # No curl on this host: scrape the same registry over the wire.
  http_get() { "$BIN/zstream_cli" --port "$port" metrics; }
  echo "(curl not found; skipping /healthz, scraping over the wire)"
fi
before=$(http_get /metrics)
case "$before" in
  *'# TYPE zstream_events_ingested_total counter'*) ;;
  *) echo "error: /metrics is not Prometheus text:" >&2
     printf '%s\n' "$before" | head -5 >&2; exit 1 ;;
esac
ingested_before=$(prom_value "$before" zstream_events_ingested_total)

echo "== replaying stock workload over the wire =="
"$BIN/zstream_cli" --port "$port" replay stock --stream stock \
  --events 20000 --symbols 16 --expect "rally=$EXPECT_MATCHES"

echo "== stats =="
stats=$("$BIN/zstream_cli" --port "$port" stats)
echo "$stats"
case "$stats" in
  *'"events_ingested": 20000'*) ;;
  *) echo "error: stats did not report 20000 ingested events" >&2; exit 1 ;;
esac

echo "== metrics after replay (monotonicity) =="
after=$(http_get /metrics)
ingested_after=$(prom_value "$after" zstream_events_ingested_total)
matches_after=$(prom_value "$after" zstream_matches_total)
if [[ -z "$ingested_after" || "$ingested_after" -lt "$((ingested_before + 20000))" ]]; then
  echo "error: ingest counter not monotone over replay" \
       "(before=$ingested_before after=$ingested_after)" >&2
  exit 1
fi
if [[ -z "$matches_after" || "$matches_after" -ne "$EXPECT_MATCHES" ]]; then
  echo "error: zstream_matches_total=$matches_after, wanted $EXPECT_MATCHES" >&2
  exit 1
fi
echo "ingested $ingested_before -> $ingested_after, matches $matches_after"

# The JSON rendering and the wire path serve the same registry.
case "$("$BIN/zstream_cli" --port "$port" metrics --json)" in
  '{'*'"runtime"'*) ;;
  *) echo "error: metrics --json did not return the JSON document" >&2
     exit 1 ;;
esac

echo "== GET /trace (chrome://tracing export) =="
if command -v curl >/dev/null; then
  trace_doc=$(http_get /trace)
else
  # Same document over the framed protocol (kTraceRequest).
  trace_doc=$("$BIN/zstream_cli" --port "$port" trace)
fi
case "$trace_doc" in
  *'"traceEvents"'*'"ph"'*) ;;
  *) echo "error: /trace did not serve a non-empty trace document:" >&2
     printf '%s\n' "$trace_doc" | head -3 >&2; exit 1 ;;
esac
echo "trace document: ${#trace_doc} bytes"

echo "== EXPLAIN ANALYZE over the wire =="
analyze=$("$BIN/zstream_cli" --port "$port" exec "EXPLAIN ANALYZE rally")
printf '%s\n' "$analyze"
case "$analyze" in
  *"matches=$EXPECT_MATCHES"*) ;;
  *) echo "error: EXPLAIN ANALYZE did not report matches=$EXPECT_MATCHES" >&2
     exit 1 ;;
esac

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "== net smoke OK (rally=$EXPECT_MATCHES matches over TCP) =="
