#!/usr/bin/env bash
# Static-analysis gate, as run by the CI lint job:
#   1. hotpath_lint.py — heap allocations inside ZS_HOT functions must
#      stay within the committed budget (BENCH_hotpath_allocs.json).
#      Pure Python, so it always runs, even where clang is absent.
#   2. clang-tidy over every first-party translation unit with the
#      curated profile in .clang-tidy (WarningsAsErrors: '*', so any
#      finding fails the job).
#
# clang-tidy needs a configured build tree for compile_commands.json;
# configures a fresh one if the directory does not exist yet. On
# machines without clang-tidy installed the script says so and exits
# after the hotpath lint — the enforcement point is CI, where the tool
# is always present; a missing local binary must not block building or
# testing.
#
# Usage: scripts/lint.sh [BUILD_DIR]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-${BUILD_DIR:-build}}

echo "== hotpath allocation lint =="
python3 scripts/hotpath_lint.py --check

TIDY=${CLANG_TIDY:-}
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY=$cand
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (CI enforces this)."
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== configuring $BUILD_DIR for compile_commands.json =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every first-party .cc that appears in the compilation database. Test
# binaries and benches are included deliberately: they are long-lived
# code too, and the profile was curated so they pass.
mapfile -t sources < <(
  "$TIDY" --version >/dev/null # fail early on a broken install
  python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
db = json.load(open(sys.argv[1]))
seen = set()
for entry in db:
    f = entry["file"]
    if "/_deps/" in f or f in seen:
        continue
    seen.add(f)
    print(f)
EOF
)

echo "== $TIDY over ${#sources[@]} translation units =="
fail=0
for src in "${sources[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$src"; then
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings (treated as errors)." >&2
  exit 1
fi
echo "== lint OK: ${#sources[@]} files clean =="
