// Figure 11: 1/estimated-cost of the left-deep and right-deep plans for
// Query 5 with varying relative event rates — the cost-model
// counterpart of Figure 10. The crossover must sit at the uniform rate.
#include "bench_util.h"

#include "opt/cost_model.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "WITHIN 200";

int Run() {
  Banner("Figure 11",
         "1/estimated-cost vs relative event rate for Query 5 (x1e-6)");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);
  const PhysicalPlan right = RightDeepPlan(*p);

  const std::vector<std::string> ratios = {
      "25:1:1", "10:1:1", "5:1:1", "1:1:1", "1:5:5", "1:10:10", "1:25:25"};

  Table table({"rate IBM:Sun:Oracle", "left-deep 1/cost(1e-6)",
               "right-deep 1/cost(1e-6)", "winner"});
  for (const std::string& ratio : ratios) {
    const std::vector<double> w = ParseRateRatio(ratio);
    const double total = w[0] + w[1] + w[2];
    StatsCatalog stats(3, 200.0);
    for (int c = 0; c < 3; ++c) stats.set_rate(c, w[static_cast<size_t>(c)] / total);
    const CostModel model(p.get(), &stats);
    const double cl = model.PlanCost(left);
    const double cr = model.PlanCost(right);
    table.AddRow({ratio, FormatDouble(1e6 / cl, 3),
                  FormatDouble(1e6 / cr, 3),
                  cl < cr ? "left-deep" : (cr < cl ? "right-deep" : "tie")});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
