// Figure 12: throughput of four fixed plans (left-deep, right-deep,
// bushy, inner) and the NFA for Query 6 under three regimes:
//   1) IBM rare (rate 1:100:100:100)        -> left-deep / bushy win
//   2) first predicate selective (1/50)      -> inner wins
//   3) second predicate selective (1/50)     -> right-deep / NFA win
#include "query6_common.h"

namespace zstream::bench {
namespace {

int Run() {
  Banner("Figure 12",
         "Query 6 throughput for left-deep / right-deep / bushy / inner "
         "/ NFA under three statistics regimes");

  auto pattern = AnalyzeQuery(kQuery6, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  const auto plans = Query6Plans(*p);

  Table table({"case", "left-deep", "right-deep", "bushy", "inner", "NFA",
               "matches"});
  for (const Query6Case& c : Query6Cases()) {
    const auto events = Query6Workload(c, 40000, 12);
    std::vector<std::string> row{c.label};
    uint64_t matches = 0;
    std::vector<RunResult> tree_results;
    for (const NamedPlan& np : plans) {
      const RunResult r = RunTreePlan(p, np.plan, events);
      tree_results.push_back(r);
      row.push_back(FormatThroughput(r.throughput));
      matches = r.matches;
    }
    const RunResult n = RunNfaBaseline(p, events);
    row.push_back(FormatThroughput(n.throughput));
    row.push_back(std::to_string(matches));
    if (n.matches != matches) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH tree=%llu nfa=%llu\n",
                   (unsigned long long)matches,
                   (unsigned long long)n.matches);
      return 1;
    }
    for (size_t i = 0; i < plans.size(); ++i) {
      RecordResult("fig12_complex", plans[i].name, c.label, tree_results[i]);
    }
    RecordResult("fig12_complex", "nfa", c.label, n);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\n(throughput in events/s; paper expectation: case 1 -> left-deep &"
      " bushy lead, case 2 -> inner leads ~2x, case 3 -> right-deep & NFA"
      " lead)\n");
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
