// Figure 13: 1/estimated-cost of the four fixed plans for Query 6 under
// the same three regimes as Figure 12 — the cost model must predict the
// same per-regime winners the throughput experiment shows.
#include "query6_common.h"

#include "opt/cost_model.h"

namespace zstream::bench {
namespace {

int Run() {
  Banner("Figure 13",
         "1/estimated-cost (x1e-5) of the four Query 6 plans per regime");

  auto pattern = AnalyzeQuery(kQuery6, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const auto plans = Query6Plans(*p);

  Table table(
      {"case", "left-deep", "right-deep", "bushy", "inner", "model winner"});
  for (const Query6Case& c : Query6Cases()) {
    const StatsCatalog stats = Query6Stats(c);
    const CostModel model(p.get(), &stats);
    std::vector<std::string> row{c.label};
    std::string winner;
    double best = 0.0;
    for (const NamedPlan& np : plans) {
      const double cost = model.PlanCost(np.plan);
      row.push_back(FormatDouble(1e5 / cost, 3));
      if (winner.empty() || 1.0 / cost > best) {
        best = 1.0 / cost;
        winner = np.name;
      }
    }
    row.push_back(winner);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
