// Shared setup for the negation experiments (Figures 15 and 16).
#ifndef ZSTREAM_BENCH_NEGATION_COMMON_H_
#define ZSTREAM_BENCH_NEGATION_COMMON_H_

#include "bench_util.h"

namespace zstream::bench {

inline constexpr char kQuery7[] =
    "PATTERN IBM;!Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "WITHIN 200";

/// Runs Query 7 with the given IBM:Sun:Oracle ratio through both
/// negation strategies and prints one table row per ratio.
inline int RunNegationSweep(const std::string& figure,
                            const std::string& description,
                            const std::vector<std::string>& ratios) {
  Banner(figure, description);
  auto pattern = AnalyzeQuery(kQuery7, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  // Plan 1: NSEQ pushed down (right-deep builds SEQ(IBM, NSEQ(Sun,
  // Oracle))). Plan 2: SEQ(IBM, Oracle) with a NEG filter on top.
  const PhysicalPlan pushed = RightDeepPlan(*p);
  const PhysicalPlan top = NegationTopPlan(*p);

  Table table({"rate IBM:Sun:Oracle", "NSEQ (ev/s)", "Neg-on-top (ev/s)",
               "matches", "NSEQ/top speedup"});
  for (const std::string& ratio : ratios) {
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = ParseRateRatio(ratio);
    gen.num_events = 60000;
    gen.seed = 15;
    const auto events = GenerateStockTrades(gen);
    const RunResult a = RunTreePlan(p, pushed, events);
    const RunResult b = RunTreePlan(p, top, events);
    if (a.matches != b.matches) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH %llu vs %llu\n",
                   (unsigned long long)a.matches,
                   (unsigned long long)b.matches);
      return 1;
    }
    table.AddRow({ratio, FormatThroughput(a.throughput),
                  FormatThroughput(b.throughput), std::to_string(a.matches),
                  FormatDouble(a.throughput / b.throughput, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\n  (paper expectation: NSEQ wins; the gap is widest at uniform "
      "rates — close to an order of magnitude overall — and narrows "
      "with skew because the top filter then builds far fewer "
      "intermediate results)\n");
  return 0;
}

}  // namespace zstream::bench

#endif  // ZSTREAM_BENCH_NEGATION_COMMON_H_
