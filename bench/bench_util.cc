#include "bench_util.h"

#include <algorithm>
#include <cstdlib>

namespace zstream::bench {

int Repetitions() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before any bench
  // threads start; nothing in the harness calls setenv.
  const char* env = std::getenv("ZS_BENCH_REPS");
  if (env != nullptr) return std::max(1, std::atoi(env));
  return 2;
}

namespace {
template <typename MakeEngine, typename PushAll>
RunResult Measure(const std::vector<EventPtr>& events, MakeEngine make,
                  PushAll push_all) {
  const int reps = Repetitions();
  std::vector<double> rates;
  RunResult result;
  for (int r = 0; r < reps; ++r) {
    // Engine construction (incl. plan verification) happens here, before
    // t0: the reported rate is |events| / time-to-push only.
    auto engine = make();
    const auto t0 = std::chrono::steady_clock::now();
    push_all(engine);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    // The first rep pays one-time costs (page faults, allocator pools,
    // cold i-cache); with more than one rep, exclude it from the mean.
    if (r > 0 || reps == 1) {
      rates.push_back(static_cast<double>(events.size()) / secs);
    }
    result.elapsed_s = secs;
    result.matches = engine->num_matches();
    result.peak_mb = engine->memory().peak_mb();
  }
  result.throughput =
      std::accumulate(rates.begin(), rates.end(), 0.0) / rates.size();
  return result;
}
}  // namespace

RunResult RunTreePlan(const PatternPtr& pattern, const PhysicalPlan& plan,
                      const std::vector<EventPtr>& events,
                      EngineOptions options) {
  return Measure(
      events,
      [&]() {
        auto engine = Engine::Create(pattern, plan, options);
        if (!engine.ok()) {
          std::fprintf(stderr, "engine create failed: %s\n",
                       engine.status().ToString().c_str());
          std::abort();
        }
        return std::move(*engine);
      },
      [&](std::unique_ptr<Engine>& engine) {
        // Columnar ingest: the pre-recorded workload is already a
        // contiguous span, which is exactly what PushBatch wants.
        engine->PushBatch(EventBatch{events.data(), events.size()});
        engine->Finish();
      });
}

RunResult RunNfaBaseline(const PatternPtr& pattern,
                         const std::vector<EventPtr>& events) {
  return Measure(
      events,
      [&]() {
        auto nfa = NfaEngine::Create(pattern);
        if (!nfa.ok()) {
          std::fprintf(stderr, "nfa create failed: %s\n",
                       nfa.status().ToString().c_str());
          std::abort();
        }
        return std::move(*nfa);
      },
      [&](std::unique_ptr<NfaEngine>& nfa) {
        for (const EventPtr& e : events) nfa->Push(e);
        nfa->Finish();
      });
}

RunResult RunPartitioned(const PatternPtr& pattern, const PhysicalPlan& plan,
                         const std::vector<EventPtr>& events,
                         EngineOptions options) {
  return Measure(
      events,
      [&]() {
        auto engine = PartitionedEngine::Create(pattern, plan, options);
        if (!engine.ok()) {
          std::fprintf(stderr, "partitioned create failed: %s\n",
                       engine.status().ToString().c_str());
          std::abort();
        }
        return std::move(*engine);
      },
      [&](std::unique_ptr<PartitionedEngine>& engine) {
        for (const EventPtr& e : events) engine->Push(e);
        engine->Finish();
      });
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void RecordResult(const std::string& experiment, const std::string& series,
                  const std::string& x, const RunResult& result) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): bench workers have joined by
  // the time results are recorded; getenv races with nothing here.
  const char* path = std::getenv("ZS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_util: cannot open ZS_BENCH_JSON file %s\n",
                 path);
    return;
  }
  std::fprintf(f,
               "{\"experiment\": \"%s\", \"series\": \"%s\", \"x\": \"%s\", "
               "\"throughput_eps\": %.3f, \"matches\": %llu, "
               "\"peak_mb\": %.3f, \"elapsed_s\": %.6f, \"reps\": %d}\n",
               JsonEscape(experiment).c_str(), JsonEscape(series).c_str(),
               JsonEscape(x).c_str(), result.throughput,
               static_cast<unsigned long long>(result.matches),
               result.peak_mb, result.elapsed_s, Repetitions());
  std::fclose(f);
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (size_t i = 0; i < headers_.size(); ++i) {
    sep += std::string(widths[i], '-') + "  ";
  }
  std::printf("  %s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FormatThroughput(double eps) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", eps);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Banner(const std::string& experiment, const std::string& description) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(),
              description.c_str());
}

}  // namespace zstream::bench
