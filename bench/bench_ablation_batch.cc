// Ablation: batch size in the batch-iterator model (Section 4.3).
// Small batches trigger many near-empty assembly rounds; large batches
// amortize them. Results are invariant in match count by construction.
#include "bench_util.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

int Run() {
  Banner("Ablation: batch size",
         "Query 4 (sel 1/8) left-deep throughput vs batch-iterator "
         "batch size");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const PhysicalPlan plan = LeftDeepPlan(*p);

  StockGenOptions gen;
  gen.names = {"IBM", "Sun", "Oracle"};
  gen.weights = {1, 1, 1};
  gen.num_events = 100000;
  gen.seed = 8;
  gen.fixed_price = {{"Sun", FixedPriceForSelectivity(1.0 / 8, 0, 100)}};
  const auto events = GenerateStockTrades(gen);

  Table table({"batch size", "throughput (ev/s)", "matches"});
  uint64_t expected = 0;
  for (int batch : {1, 4, 16, 64, 256, 1024}) {
    EngineOptions options;
    options.batch_size = batch;
    const RunResult r = RunTreePlan(p, plan, events, options);
    if (expected == 0) expected = r.matches;
    if (r.matches != expected) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH at batch %d\n", batch);
      return 1;
    }
    table.AddRow({std::to_string(batch), FormatThroughput(r.throughput),
                  std::to_string(r.matches)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
