// Figure 10: throughput of left-deep / right-deep / NFA for Query 5
// (no predicates) with varying relative event rates IBM:Sun:Oracle.
//
// Expected shape (paper): right-deep wins while IBM is frequent; the
// left-deep plan takes over once IBM's rate drops below the others, and
// the gap is larger on the IBM-rare side (skew grows as k^(N-1)).
#include "bench_util.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "WITHIN 200";

int Run() {
  Banner("Figure 10",
         "Query 5 throughput vs relative event rate IBM:Sun:Oracle "
         "(no predicates), window 200");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);
  const PhysicalPlan right = RightDeepPlan(*p);

  const std::vector<std::string> ratios = {
      "25:1:1", "10:1:1", "5:1:1", "1:1:1", "1:5:5", "1:10:10", "1:25:25"};

  Table table({"rate IBM:Sun:Oracle", "left-deep (ev/s)",
               "right-deep (ev/s)", "NFA (ev/s)", "matches"});
  for (const std::string& ratio : ratios) {
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = ParseRateRatio(ratio);
    gen.num_events = 30000;
    gen.seed = 10;
    const auto events = GenerateStockTrades(gen);

    const RunResult l = RunTreePlan(p, left, events);
    const RunResult r = RunTreePlan(p, right, events);
    const RunResult n = RunNfaBaseline(p, events);
    if (l.matches != r.matches || l.matches != n.matches) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH\n");
      return 1;
    }
    RecordResult("fig10_rates", "left_deep", ratio, l);
    RecordResult("fig10_rates", "right_deep", ratio, r);
    RecordResult("fig10_rates", "nfa", ratio, n);
    table.AddRow({ratio, FormatThroughput(l.throughput),
                  FormatThroughput(r.throughput),
                  FormatThroughput(n.throughput),
                  std::to_string(l.matches)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
