// Ablation: hash indexes for equality predicates (Section 5.2.2).
// A Query 1-style name-equality join with many distinct names shows the
// probe path beating the scan path; match counts must be identical.
#include "bench_util.h"

namespace zstream::bench {
namespace {

int Run() {
  Banner("Ablation: equality hashing",
         "T1;T2;T3 with T1.name = T3.name over 64 names: hash-probe vs "
         "scan inner path");

  AnalyzerOptions no_part;  // keep the equality as a join predicate
  no_part.detect_partition = false;
  auto pattern = AnalyzeQuery(
      "PATTERN T1;T2;T3 WHERE T1.name = T3.name AND T2.name = 'Google' "
      "WITHIN 200",
      StockSchema(), no_part);
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;

  // 64 regular names plus Google.
  StockGenOptions gen;
  for (int i = 0; i < 64; ++i) {
    gen.names.push_back(IndexedName("S", i));
    gen.weights.push_back(1.0);
  }
  gen.names.push_back("Google");
  gen.weights.push_back(8.0);
  gen.num_events = 60000;
  gen.seed = 21;
  const auto events = GenerateStockTrades(gen);

  Table table({"plan", "inner path", "throughput (ev/s)", "matches"});
  for (const bool left_deep : {true, false}) {
    const PhysicalPlan plan =
        left_deep ? LeftDeepPlan(*p) : RightDeepPlan(*p);
    const char* name = left_deep ? "left-deep" : "right-deep";
    EngineOptions hash_on;
    hash_on.use_hash_indexes = true;
    EngineOptions hash_off;
    hash_off.use_hash_indexes = false;
    const RunResult a = RunTreePlan(p, plan, events, hash_on);
    const RunResult b = RunTreePlan(p, plan, events, hash_off);
    if (a.matches != b.matches) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH\n");
      return 1;
    }
    table.AddRow({name, "hash probe", FormatThroughput(a.throughput),
                  std::to_string(a.matches)});
    table.AddRow({name, "scan", FormatThroughput(b.throughput),
                  std::to_string(b.matches)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
