// Shared setup for the Query 6 experiments (Figures 12-14, Table 3).
#ifndef ZSTREAM_BENCH_QUERY6_COMMON_H_
#define ZSTREAM_BENCH_QUERY6_COMMON_H_

#include "bench_util.h"

namespace zstream::bench {

inline constexpr char kQuery6[] =
    "PATTERN IBM;Sun;Oracle;Google "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND Google.name='Google' "
    "AND Oracle.price > Sun.price AND Oracle.price > Google.price "
    "WITHIN 100";

/// One experimental regime of Section 6.2.
struct Query6Case {
  std::string label;
  std::string rates;  // IBM:Sun:Oracle:Google
  double sel1 = 1.0;  // P(Oracle.price > Sun.price)
  double sel2 = 1.0;  // P(Oracle.price > Google.price)
};

inline std::vector<Query6Case> Query6Cases() {
  return {
      {"rate 1:100:100:100", "1:100:100:100", 1.0, 1.0},
      {"sel1 = 1/50", "1:1:1:1", 1.0 / 50, 1.0},
      {"sel2 = 1/50", "1:1:1:1", 1.0, 1.0 / 50},
  };
}

/// Generates one regime's stream. Oracle's price is uniform; Sun's and
/// Google's are pinned at the quantiles matching sel1/sel2.
inline std::vector<EventPtr> Query6Workload(const Query6Case& c,
                                            int64_t num_events,
                                            uint64_t seed) {
  StockGenOptions gen;
  gen.names = {"IBM", "Sun", "Oracle", "Google"};
  gen.weights = ParseRateRatio(c.rates);
  gen.num_events = num_events;
  gen.seed = seed;
  gen.fixed_price = {
      {"Sun", FixedPriceForSelectivity(c.sel1, 0, 100)},
      {"Google", FixedPriceForSelectivity(c.sel2, 0, 100)},
  };
  return GenerateStockTrades(gen);
}

/// Statistics catalog mirroring a regime (for the cost-model figures).
inline StatsCatalog Query6Stats(const Query6Case& c) {
  const std::vector<double> w = ParseRateRatio(c.rates);
  const double total = w[0] + w[1] + w[2] + w[3];
  StatsCatalog stats(4, 100.0);
  for (int i = 0; i < 4; ++i) {
    stats.set_rate(i, w[static_cast<size_t>(i)] / total);
  }
  stats.SetPairSel(1, 2, c.sel1);  // Sun-Oracle
  stats.SetPairSel(2, 3, c.sel2);  // Oracle-Google
  return stats;
}

/// The four fixed plans of Section 6.2, in paper order.
struct NamedPlan {
  std::string name;
  PhysicalPlan plan;
};

inline std::vector<NamedPlan> Query6Plans(const Pattern& p) {
  std::vector<NamedPlan> plans;
  plans.push_back({"left-deep", LeftDeepPlan(p)});
  plans.push_back({"right-deep", RightDeepPlan(p)});
  plans.push_back({"bushy", *PlanFromShape(p, "((0 1) (2 3))")});
  plans.push_back({"inner", *PlanFromShape(p, "(0 ((1 2) 3))")});
  return plans;
}

}  // namespace zstream::bench

#endif  // ZSTREAM_BENCH_QUERY6_COMMON_H_
