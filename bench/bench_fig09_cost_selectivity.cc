// Figure 9: 1/estimated-cost of the left-deep and right-deep plans for
// Query 4 with varying selectivity — the cost-model counterpart of
// Figure 8. The curves must track Figure 8's throughput ordering:
// left-deep's advantage grows as the predicate gets selective.
#include "bench_util.h"

#include "opt/cost_model.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

int Run() {
  Banner("Figure 9",
         "1/estimated-cost vs predicate selectivity for Query 4 "
         "(x1e-6, matching the paper's axis scale)");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);
  const PhysicalPlan right = RightDeepPlan(*p);

  Table table({"selectivity", "left-deep 1/cost(1e-6)",
               "right-deep 1/cost(1e-6)", "ratio"});
  for (int denom : {1, 2, 4, 8, 16, 32}) {
    StatsCatalog stats(3, 200.0);
    for (int c = 0; c < 3; ++c) stats.set_rate(c, 1.0 / 3.0);
    stats.SetPairSel(0, 1, 1.0 / denom);
    const CostModel model(p.get(), &stats);
    const double cl = model.PlanCost(left);
    const double cr = model.PlanCost(right);
    table.AddRow({IndexedName("1/", denom),
                  FormatDouble(1e6 / cl, 3), FormatDouble(1e6 / cr, 3),
                  FormatDouble(cr / cl, 2) + "x"});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
