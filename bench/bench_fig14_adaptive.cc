// Figure 14: plan adaptation. The three Query 6 regimes are
// concatenated into one stream (IBM-rare, then sel1=1/50, then
// sel2=1/50). Static plans are good in one segment and poor in others;
// the adaptive planner re-plans at the seams and must track the best
// static plan in every segment.
#include "query6_common.h"

namespace zstream::bench {
namespace {

struct SegmentRates {
  double s1 = 0.0, s2 = 0.0, s3 = 0.0;
};

// Pushes the concatenated stream through `engine`, timing each segment.
template <typename EngineT>
SegmentRates RunSegments(EngineT& engine,
                         const std::vector<std::vector<EventPtr>>& segments) {
  SegmentRates out;
  double* slots[3] = {&out.s1, &out.s2, &out.s3};
  for (int s = 0; s < 3; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const EventPtr& e : segments[static_cast<size_t>(s)]) {
      engine->Push(e);
    }
    const auto t1 = std::chrono::steady_clock::now();
    *slots[s] = static_cast<double>(segments[static_cast<size_t>(s)].size()) /
                std::chrono::duration<double>(t1 - t0).count();
  }
  engine->Finish();
  return out;
}

int Run() {
  Banner("Figure 14",
         "Adaptive planner vs static plans on the concatenated Query 6 "
         "stream (per-segment throughput, events/s)");

  auto pattern = AnalyzeQuery(kQuery6, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;

  // Build the three segments with continuous timestamps.
  const int64_t kPerSegment = 40000;
  std::vector<std::vector<EventPtr>> segments;
  Timestamp base = 0;
  uint64_t seed = 14;
  for (const Query6Case& c : Query6Cases()) {
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle", "Google"};
    gen.weights = ParseRateRatio(c.rates);
    gen.num_events = kPerSegment;
    gen.seed = seed++;
    gen.start_ts = base;
    gen.fixed_price = {
        {"Sun", FixedPriceForSelectivity(c.sel1, 0, 100)},
        {"Google", FixedPriceForSelectivity(c.sel2, 0, 100)},
    };
    segments.push_back(GenerateStockTrades(gen));
    base += kPerSegment;
  }

  Table table({"plan", "segment 1 (rate skew)", "segment 2 (sel1=1/50)",
               "segment 3 (sel2=1/50)"});

  const auto plans = Query6Plans(*p);
  uint64_t static_matches = 0;
  for (const NamedPlan& np : plans) {
    if (np.name == "bushy") continue;  // paper omits bushy for clarity
    auto engine = Engine::Create(p, np.plan);
    const SegmentRates r = RunSegments(*engine, segments);
    static_matches = (*engine)->num_matches();
    table.AddRow({np.name, FormatThroughput(r.s1), FormatThroughput(r.s2),
                  FormatThroughput(r.s3)});
  }

  {
    auto nfa = NfaEngine::Create(p);
    SegmentRates r;
    double* slots[3] = {&r.s1, &r.s2, &r.s3};
    for (int s = 0; s < 3; ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const EventPtr& e : segments[static_cast<size_t>(s)]) {
        (*nfa)->Push(e);
      }
      const auto t1 = std::chrono::steady_clock::now();
      *slots[s] =
          static_cast<double>(segments[static_cast<size_t>(s)].size()) /
          std::chrono::duration<double>(t1 - t0).count();
    }
    table.AddRow({"NFA", FormatThroughput(r.s1), FormatThroughput(r.s2),
                  FormatThroughput(r.s3)});
  }

  uint64_t switches = 0;
  uint64_t adaptive_matches = 0;
  {
    EngineOptions options;
    options.adaptive = true;
    options.adaptive_options.drift_threshold = 0.4;
    options.adaptive_options.improvement_threshold = 0.05;
    options.adaptive_options.check_every_rounds = 8;
    auto engine = Engine::Create(p, Query6Plans(*p)[0].plan, options);
    const SegmentRates r = RunSegments(*engine, segments);
    switches = (*engine)->plan_switches();
    adaptive_matches = (*engine)->num_matches();
    table.AddRow({"adaptive", FormatThroughput(r.s1),
                  FormatThroughput(r.s2), FormatThroughput(r.s3)});
  }

  table.Print();
  std::printf("\n  adaptive plan switches: %llu (matches: adaptive=%llu, "
              "static=%llu)\n",
              (unsigned long long)switches,
              (unsigned long long)adaptive_matches,
              (unsigned long long)static_matches);
  std::printf(
      "  (paper expectation: the adaptive planner is close to the best "
      "static plan in every segment)\n");
  return adaptive_matches == static_matches ? 0 : 1;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
