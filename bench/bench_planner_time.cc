// Section 5.2.3 claim: the dynamic program (Algorithm 5) finds an
// optimal plan for a pattern of length 20 in under 10 ms. This bench
// times OptimalPlan() for lengths 2..20 under randomized statistics.
#include "bench_util.h"

#include "opt/planner.h"

namespace zstream::bench {
namespace {

int Run() {
  Banner("Planner timing (Section 5.2.3)",
         "Algorithm 5 planning time vs pattern length; paper claims "
         "< 10 ms at length 20");

  Table table({"pattern length", "plan time (ms)", "plan cost",
               "shape (first 40 chars)"});
  Random rng(52);
  bool ok = true;
  for (int n = 2; n <= 20; n += 2) {
    std::string q = "PATTERN C0";
    for (int i = 1; i < n; ++i) q += ";C" + std::to_string(i);
    q += " WITHIN 100";
    auto pattern = AnalyzeQuery(q, StockSchema());
    if (!pattern.ok()) return 1;
    StatsCatalog stats(n, 100.0);
    for (int c = 0; c < n; ++c) {
      stats.set_rate(c, 0.01 + rng.NextDouble());
    }
    Planner planner(*pattern, &stats);
    // Warm up once, then average a few runs.
    auto plan = planner.OptimalPlan();
    if (!plan.ok()) return 1;
    double total_us = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      plan = planner.OptimalPlan();
      total_us += planner.last_plan_micros();
    }
    const double ms = total_us / reps / 1000.0;
    if (n == 20 && ms >= 10.0) ok = false;
    std::string shape = plan->Explain(**pattern).substr(0, 40);
    table.AddRow({std::to_string(n), FormatDouble(ms, 3),
                  FormatDouble(plan->estimated_cost, 1), shape});
  }
  table.Print();
  std::printf("\n  length-20 under 10 ms: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
