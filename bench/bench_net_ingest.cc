// Network serving overhead: loopback TCP ingest through zstream_server's
// serving layer (net::Server + net::Client, framed protocol, batched
// kEventBatch frames) vs. in-process StreamRuntime::IngestBatch on the
// same trace, same query, same shard layout — the cost of the wire.
//
// The query is the paper Query 2 shape (hash-partitioned rising triple
// over 16 symbols), so both paths do identical engine work and must
// produce identical match counts; the throughput gap is serialization +
// framing + TCP. Swept over the client batch size: small batches pay one
// ack round-trip per few events, large batches amortize it away.
#include "bench_util.h"

#include <algorithm>
#include <chrono>

#include "net/client.h"
#include "net/server.h"
#include "runtime/stream_runtime.h"

namespace zstream::bench {
namespace {

constexpr char kStockDdl[] =
    "CREATE STREAM stock "
    "(id INT, name STRING, price DOUBLE, volume INT, ts INT)";
constexpr char kQueryDdl[] =
    "CREATE QUERY rally ON stock AS "
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 100";
constexpr char kQueryText[] =
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 100";
constexpr int kShards = 2;
constexpr size_t kQueueCapacity = 8192;

std::vector<EventPtr> Workload() {
  StockGenOptions gen;
  gen.names.clear();
  gen.weights.clear();
  for (int i = 0; i < 16; ++i) {
    gen.names.push_back(IndexedName("SYM", i));
    gen.weights.push_back(1.0);
  }
  gen.num_events = 100000;
  gen.seed = 21;
  return GenerateStockTrades(gen);
}

runtime::RuntimeOptions RuntimeOpts() {
  runtime::RuntimeOptions options;
  options.num_shards = kShards;
  options.queue_capacity = kQueueCapacity;
  return options;
}

RunResult RunInProcess(const std::vector<EventPtr>& events,
                       size_t batch_size) {
  const int reps = Repetitions();
  std::vector<double> rates;
  RunResult result;
  for (int r = 0; r < reps; ++r) {
    auto rt = runtime::StreamRuntime::Create(RuntimeOpts());
    if (!rt.ok()) return result;
    auto stream = (*rt)->AddStream("stock", StockSchema());
    auto id = (*rt)->RegisterQuery(*stream, kQueryText);
    if (!id.ok()) return result;

    const auto start = std::chrono::steady_clock::now();
    std::vector<EventPtr> chunk;
    for (size_t i = 0; i < events.size(); i += batch_size) {
      chunk.assign(
          events.begin() + static_cast<long>(i),
          events.begin() +
              static_cast<long>(std::min(i + batch_size, events.size())));
      (*rt)->IngestBatch(*stream, chunk);
    }
    (void)(*rt)->Flush();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    rates.push_back(static_cast<double>(events.size()) / secs);
    result.elapsed_s = secs;
    result.matches = (*rt)->query_matches(*id).ValueOr(0);
    (*rt)->Stop();
  }
  result.throughput =
      std::accumulate(rates.begin(), rates.end(), 0.0) /
      static_cast<double>(rates.size());
  return result;
}

RunResult RunLoopback(const std::vector<EventPtr>& events,
                      size_t batch_size) {
  const int reps = Repetitions();
  std::vector<double> rates;
  RunResult result;
  for (int r = 0; r < reps; ++r) {
    ZStream session;
    if (!session.Execute(kStockDdl).ok() ||
        !session.Execute(kQueryDdl).ok()) {
      return result;
    }
    auto server = net::Server::Create(&session, RuntimeOpts());
    if (!server.ok() || !(*server)->Start().ok()) return result;
    auto client = net::Client::Connect("127.0.0.1", (*server)->port());
    if (!client.ok()) return result;

    const auto start = std::chrono::steady_clock::now();
    auto ack = (*client)->Ingest("stock", events, batch_size);
    auto flush = (*client)->Flush();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!ack.ok() || !flush.ok()) return result;
    rates.push_back(static_cast<double>(events.size()) / secs);
    result.elapsed_s = secs;
    result.matches =
        flush->queries.empty() ? 0 : flush->queries.front().second;
    (*server)->Stop();
  }
  result.throughput =
      std::accumulate(rates.begin(), rates.end(), 0.0) /
      static_cast<double>(rates.size());
  return result;
}

}  // namespace
}  // namespace zstream::bench

int main() {
  using namespace zstream;
  using namespace zstream::bench;

  Banner("net_ingest",
         "Loopback TCP ingest (net::Server/Client framed protocol) vs. "
         "in-process StreamRuntime::IngestBatch; identical query and "
         "shard layout, swept over client batch size");

  const auto events = Workload();
  Table table({"batch", "in-process ev/s", "loopback ev/s", "wire cost",
               "matches"});
  for (const size_t batch : {size_t{64}, size_t{512}, size_t{2048}}) {
    const RunResult in_process = RunInProcess(events, batch);
    const RunResult loopback = RunLoopback(events, batch);
    if (in_process.matches != loopback.matches) {
      std::fprintf(stderr,
                   "match count mismatch: in-process %llu vs loopback "
                   "%llu at batch %zu\n",
                   static_cast<unsigned long long>(in_process.matches),
                   static_cast<unsigned long long>(loopback.matches),
                   batch);
      return 1;
    }
    const std::string x = std::to_string(batch);
    RecordResult("net_ingest", "in_process", x, in_process);
    RecordResult("net_ingest", "loopback", x, loopback);
    table.AddRow({x, FormatThroughput(in_process.throughput),
                  FormatThroughput(loopback.throughput),
                  FormatDouble(in_process.throughput /
                                   std::max(loopback.throughput, 1.0),
                               2) +
                      "x",
                  std::to_string(loopback.matches)});
  }
  table.Print();
  return 0;
}
