// Shared harness for the paper-reproduction benchmarks.
//
// Every figure/table binary pre-records a workload (as the paper does),
// pushes it through an engine at maximum rate, and reports
//     rate = |Input| / t_elapsed            (Section 6)
// excluding output delivery. Results print as aligned tables with the
// same rows/series the paper plots.
#ifndef ZSTREAM_BENCH_BENCH_UTIL_H_
#define ZSTREAM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "api/zstream.h"
#include "exec/engine.h"
#include "exec/partitioned_engine.h"
#include "nfa/nfa_engine.h"
#include "workload/stock_gen.h"

namespace zstream::bench {

struct RunResult {
  double throughput = 0.0;  // events per second
  uint64_t matches = 0;
  double peak_mb = 0.0;
  double elapsed_s = 0.0;
};

/// Repetitions per measurement (the paper averages 30 runs; we default
/// lower to keep the full suite fast — override with ZS_BENCH_REPS).
/// When more than one rep runs, the first is treated as warmup and
/// excluded from the reported mean.
int Repetitions();

/// Pushes `events` through a fresh tree engine `reps` times; returns the
/// mean throughput and the peak memory of the last run.
RunResult RunTreePlan(const PatternPtr& pattern, const PhysicalPlan& plan,
                      const std::vector<EventPtr>& events,
                      EngineOptions options = {});

/// Same, for the NFA baseline.
RunResult RunNfaBaseline(const PatternPtr& pattern,
                         const std::vector<EventPtr>& events);

/// Same, for a hash-partitioned pattern.
RunResult RunPartitioned(const PatternPtr& pattern, const PhysicalPlan& plan,
                         const std::vector<EventPtr>& events,
                         EngineOptions options = {});

/// Machine-readable results. When the environment variable ZS_BENCH_JSON
/// names a file, each call appends one JSON object (JSON Lines) with the
/// experiment/series/x labels and the RunResult's numbers;
/// scripts/run_benches.sh merges the per-binary files into
/// BENCH_baseline.json. A no-op when ZS_BENCH_JSON is unset, so plain
/// benchmark runs keep printing tables only.
void RecordResult(const std::string& experiment, const std::string& series,
                  const std::string& x, const RunResult& result);

/// Aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatThroughput(double eps);
std::string FormatDouble(double v, int precision = 2);

/// prefix + std::to_string(i), built via += because the
/// operator+(const char*, std::string&&) spelling trips a GCC 12
/// -Wrestrict false positive at -O3 (GCC PR 105329).
inline std::string IndexedName(const std::string& prefix, int64_t i) {
  std::string name = prefix;
  name += std::to_string(i);
  return name;
}

/// Prints the standard benchmark banner.
void Banner(const std::string& experiment, const std::string& description);

}  // namespace zstream::bench

#endif  // ZSTREAM_BENCH_BENCH_UTIL_H_
