// Figure 8: throughput of the left-deep plan, the right-deep plan and
// the NFA for Query 4 with varying multi-class predicate selectivity.
//
//   Query 4:  PATTERN IBM;Sun;Oracle
//             WHERE IBM.price > Sun.price
//             WITHIN 200
//
// Rates are uniform (1:1:1); the predicate selectivity sweeps
// 1, 1/2, ..., 1/32 by pinning Sun's price to the matching quantile of
// IBM's uniform price distribution.
//
// Expected shape (paper): left-deep wins and the gap grows as the
// predicate gets more selective (up to ~5x at 1/32); the NFA tracks the
// right-deep plan.
#include <cstdlib>

#include "bench_util.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

// Selectivity sweep 1/d for each denominator; defaults to the paper's
// 1..1/32. ZS_FIG08_DENOMS overrides with a comma-separated list —
// scripts/bench_guard.py pins {1,5,50} for the CI regression gate.
std::vector<int> Denominators() {
  std::vector<int> denoms;
  if (const char* env = std::getenv("ZS_FIG08_DENOMS")) {
    const char* s = env;
    while (*s != '\0') {
      char* end = nullptr;
      const long d = std::strtol(s, &end, 10);
      if (end == s) break;
      if (d > 0) denoms.push_back(static_cast<int>(d));
      s = (*end == ',') ? end + 1 : end;
    }
  }
  if (denoms.empty()) denoms = {1, 2, 4, 8, 16, 32};
  return denoms;
}

int Run() {
  Banner("Figure 8",
         "Query 4 throughput vs predicate selectivity "
         "(left-deep / right-deep / NFA), rates 1:1:1, window 200");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);
  const PhysicalPlan right = RightDeepPlan(*p);

  Table table({"selectivity", "left-deep (ev/s)", "right-deep (ev/s)",
               "NFA (ev/s)", "matches", "left/right speedup"});
  for (int denom : Denominators()) {
    const double sel = 1.0 / denom;
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = {1, 1, 1};
    gen.num_events = 60000;
    gen.seed = 8;
    gen.fixed_price = {{"Sun", FixedPriceForSelectivity(sel, 0, 100)}};
    const auto events = GenerateStockTrades(gen);

    const RunResult l = RunTreePlan(p, left, events);
    const RunResult r = RunTreePlan(p, right, events);
    const RunResult n = RunNfaBaseline(p, events);
    if (l.matches != r.matches || l.matches != n.matches) {
      std::fprintf(stderr, "MATCH-COUNT MISMATCH: %llu %llu %llu\n",
                   (unsigned long long)l.matches, (unsigned long long)r.matches,
                   (unsigned long long)n.matches);
      return 1;
    }
    const std::string sel_label = IndexedName("1/", denom);
    RecordResult("fig08_selectivity", "left_deep", sel_label, l);
    RecordResult("fig08_selectivity", "right_deep", sel_label, r);
    RecordResult("fig08_selectivity", "nfa", sel_label, n);
    table.AddRow({sel_label, FormatThroughput(l.throughput),
                  FormatThroughput(r.throughput),
                  FormatThroughput(n.throughput),
                  std::to_string(l.matches),
                  FormatDouble(l.throughput / r.throughput, 2) + "x"});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
