// Table 3: peak memory usage of the five plans for Query 6 under two
// regimes (IBM rare; sel1 = 1/50). The paper's observation to
// reproduce: peak memory is far more stable across plans than
// throughput is, and is bounded by the window rather than input size.
#include "query6_common.h"

namespace zstream::bench {
namespace {

int Run() {
  Banner("Table 3",
         "Peak memory (MB) for Query 6 plans; memory should vary far "
         "less across plans than throughput does");

  auto pattern = AnalyzeQuery(kQuery6, StockSchema());
  if (!pattern.ok()) return 1;
  const PatternPtr p = *pattern;
  const auto plans = Query6Plans(*p);

  const std::vector<Query6Case> cases = {
      Query6Cases()[0],  // rate 1:100:100:100
      Query6Cases()[1],  // sel1 = 1/50
  };

  Table table({"plan", "rate=1:100:100:100 (MB)", "sel1=1/50 (MB)"});
  std::vector<std::vector<std::string>> rows;
  for (const NamedPlan& np : plans) {
    rows.push_back({np.name});
  }
  rows.push_back({"NFA"});

  for (const Query6Case& c : cases) {
    const auto events = Query6Workload(c, 40000, 12);
    for (size_t i = 0; i < plans.size(); ++i) {
      const RunResult r = RunTreePlan(p, plans[i].plan, events);
      rows[i].push_back(FormatDouble(r.peak_mb, 2));
    }
    const RunResult n = RunNfaBaseline(p, events);
    rows.back().push_back(FormatDouble(n.peak_mb, 2));
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();

  // Doubling the input must not double peak memory (window-bounded).
  const auto events1 = Query6Workload(Query6Cases()[1], 40000, 12);
  const auto events2 = Query6Workload(Query6Cases()[1], 80000, 12);
  const RunResult m1 = RunTreePlan(p, plans[0].plan, events1);
  const RunResult m2 = RunTreePlan(p, plans[0].plan, events2);
  std::printf(
      "\n  input-size independence: peak at 40k events = %.2f MB, "
      "at 80k events = %.2f MB\n",
      m1.peak_mb, m2.peak_mb);
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
