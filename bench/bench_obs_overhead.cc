// Observability overhead: bounds the cost of the compiled-in engine
// instrumentation (per-node event/match counters, pair counts, buffer
// gauges, slow-event clocking) against a build with it compiled out.
//
// The engine workload is Figure 8's Query 4 (PATTERN IBM;Sun;Oracle,
// left-deep plan) at three predicate selectivities. The series label is
// baked in at compile time — "instrumented" normally, "stripped" under
// -DZSTREAM_OBS_STRIP=ON — so running this binary once from each build
// tree yields the A/B in one merged BENCH_baseline.json
// (scripts/run_benches.sh picks up a build-obs-strip/ tree
// automatically). Target: instrumented throughput within 3% of
// stripped.
//
// A second table bounds the cost of the end-to-end tracer (obs/trace.h)
// on the same workload: tracing off, 1-in-100 batch sampling (the
// production default suggested in docs/tracing.md; target within 3% of
// off), and every-batch sampling (the worst case). The driver simulates
// the runtime's ingest batching — one sampling decision per 256-event
// chunk, thread-local trace id set around the chunk — so the engine's
// trace-gated instrumentation runs exactly as it does under a shard
// worker.
//
// A third table microbenchmarks the obs primitives themselves
// (relaxed-atomic counter increments, histogram observes, labeled
// registry lookups, trace span records) so a regression in the registry
// or tracer shows up here before it shows up as engine noise.
#include <algorithm>
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zstream::bench {
namespace {

#ifdef ZSTREAM_OBS_STRIPPED
constexpr char kSeries[] = "stripped";
#else
constexpr char kSeries[] = "instrumented";
#endif

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One primitive op measured in a tight loop; records ops/s in the
// RunResult throughput slot so it merges into the baseline like any
// other series.
template <typename Fn>
RunResult TimeOp(uint64_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) fn(i);
  RunResult result;
  result.elapsed_s = SecondsSince(start);
  result.throughput =
      result.elapsed_s > 0 ? static_cast<double>(iters) / result.elapsed_s
                           : 0.0;
  return result;
}

// Pushes `events` through a fresh tree engine in 256-event ingest
// chunks, taking one trace sampling decision per chunk (the runtime's
// batching pattern). `sample_every` = 0 leaves tracing off.
RunResult RunTracedTreePlan(const PatternPtr& pattern,
                            const PhysicalPlan& plan,
                            const std::vector<EventPtr>& events,
                            uint32_t sample_every) {
  obs::TraceOptions topts;
  topts.sample_every = sample_every;
  topts.ring_slots = 8192;
  topts.num_lanes = 2;
  obs::Tracer::Global().Configure(topts);

  constexpr size_t kChunk = 256;
  const int reps = Repetitions();
  RunResult result;
  double rate_sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto engine = Engine::Create(pattern, plan, {});
    if (!engine.ok()) {
      std::fprintf(stderr, "engine create failed: %s\n",
                   engine.status().ToString().c_str());
      std::abort();
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t base = 0; base < events.size(); base += kChunk) {
      obs::SetCurrentTrace(obs::TraceSampleBatch());
      const size_t end = std::min(base + kChunk, events.size());
      for (size_t i = base; i < end; ++i) (*engine)->Push(events[i]);
    }
    obs::SetCurrentTrace(0);
    (*engine)->Finish();
    const double secs = SecondsSince(t0);
    rate_sum += secs > 0 ? static_cast<double>(events.size()) / secs : 0.0;
    result.elapsed_s = secs;
    result.matches = (*engine)->num_matches();
    result.peak_mb = (*engine)->memory().peak_mb();
  }
  result.throughput = rate_sum / reps;

  // Disarm so the series don't bleed into each other (or the primitive
  // loops below).
  topts.sample_every = 0;
  obs::Tracer::Global().Configure(topts);
  return result;
}

int Run() {
  Banner("Observability overhead",
         std::string("Query 4 left-deep throughput with engine "
                     "instrumentation ") +
             kSeries + ", plus obs primitive costs");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);

  Table engine_table(
      {"selectivity", std::string(kSeries) + " (ev/s)", "matches"});
  for (int denom : {1, 4, 16}) {
    const double sel = 1.0 / denom;
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = {1, 1, 1};
    gen.num_events = 60000;
    gen.seed = 8;  // Figure 8's seed: identical workload across builds
    gen.fixed_price = {{"Sun", FixedPriceForSelectivity(sel, 0, 100)}};
    const auto events = GenerateStockTrades(gen);

    const RunResult r = RunTreePlan(p, left, events);
    const std::string sel_label = IndexedName("1/", denom);
    RecordResult("obs_overhead", kSeries, sel_label, r);
    engine_table.AddRow({sel_label, FormatThroughput(r.throughput),
                         std::to_string(r.matches)});
  }
  engine_table.Print();

  // -------------------------------------------------------------------
  // Tracing overhead on the same workload (selectivity 1/4): off vs
  // 1-in-100 batch sampling vs every batch. The 1-in-100 row is the
  // one the ≤3% budget applies to.
  // -------------------------------------------------------------------
  {
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = {1, 1, 1};
    gen.num_events = 60000;
    gen.seed = 8;
    gen.fixed_price = {{"Sun", FixedPriceForSelectivity(0.25, 0, 100)}};
    const auto events = GenerateStockTrades(gen);

    Table trace_table({"tracing", "ev/s", "vs off"});
    double off_rate = 0.0;
    for (const auto& [label, every] :
         {std::pair<const char*, uint32_t>{"off", 0},
          {"1-in-100", 100},
          {"every batch", 1}}) {
      const RunResult r = RunTracedTreePlan(p, left, events, every);
      RecordResult("obs_trace_overhead", kSeries, label, r);
      if (every == 0) off_rate = r.throughput;
      const double rel =
          off_rate > 0 ? 100.0 * r.throughput / off_rate : 100.0;
      trace_table.AddRow({label, FormatThroughput(r.throughput),
                          FormatDouble(rel, 1) + "%"});
    }
    trace_table.Print();
  }

  // -------------------------------------------------------------------
  // Registry primitives. The counter/histogram loops exercise the exact
  // instruments the engine hot path touches; the lookup loop is the
  // slow path (name + label match under the registry mutex) that only
  // registration and scrapes pay.
  // -------------------------------------------------------------------
  obs::Registry registry;
  obs::Counter* counter =
      registry.GetCounter("bench_ops_total", {}, "bench counter");
  obs::Histogram* histogram = registry.GetHistogram(
      "bench_latency_seconds", {}, "bench histogram", 1e-9);

  constexpr uint64_t kHotIters = 20'000'000;
  constexpr uint64_t kLookupIters = 1'000'000;
  const RunResult inc =
      TimeOp(kHotIters, [&](uint64_t) { counter->Inc(); });
  const RunResult observe = TimeOp(
      kHotIters, [&](uint64_t i) { histogram->Observe(i & 0xffff); });
  const RunResult lookup = TimeOp(kLookupIters, [&](uint64_t) {
    registry.GetCounter("bench_ops_total", {}, "bench counter")->Inc();
  });
  obs::TraceOptions topts;
  topts.sample_every = 1;
  topts.ring_slots = 8192;
  topts.num_lanes = 2;
  obs::Tracer::Global().Configure(topts);
  const RunResult span_rec = TimeOp(kHotIters, [&](uint64_t i) {
    obs::TraceRecord(1, obs::SpanKind::kOperator, 0x1234, i, i + 5, "op", i);
  });
  topts.sample_every = 0;
  obs::Tracer::Global().Configure(topts);

  RecordResult("obs_primitives", kSeries, "counter_inc", inc);
  RecordResult("obs_primitives", kSeries, "histogram_observe", observe);
  RecordResult("obs_primitives", kSeries, "registry_lookup", lookup);
  RecordResult("obs_primitives", kSeries, "trace_record", span_rec);

  Table prim_table({"primitive", "ops/s", "ns/op"});
  const auto ns_per_op = [](const RunResult& r) {
    return FormatDouble(r.throughput > 0 ? 1e9 / r.throughput : 0.0, 2);
  };
  prim_table.AddRow({"counter_inc", FormatThroughput(inc.throughput),
                     ns_per_op(inc)});
  prim_table.AddRow({"histogram_observe",
                     FormatThroughput(observe.throughput),
                     ns_per_op(observe)});
  prim_table.AddRow({"registry_lookup", FormatThroughput(lookup.throughput),
                     ns_per_op(lookup)});
  prim_table.AddRow({"trace_record", FormatThroughput(span_rec.throughput),
                     ns_per_op(span_rec)});
  prim_table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
