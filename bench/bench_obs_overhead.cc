// Observability overhead: bounds the cost of the compiled-in engine
// instrumentation (per-node event/match counters, pair counts, buffer
// gauges, slow-event clocking) against a build with it compiled out.
//
// The engine workload is Figure 8's Query 4 (PATTERN IBM;Sun;Oracle,
// left-deep plan) at three predicate selectivities. The series label is
// baked in at compile time — "instrumented" normally, "stripped" under
// -DZSTREAM_OBS_STRIP=ON — so running this binary once from each build
// tree yields the A/B in one merged BENCH_baseline.json
// (scripts/run_benches.sh picks up a build-obs-strip/ tree
// automatically). Target: instrumented throughput within 3% of
// stripped.
//
// A second table microbenchmarks the obs primitives themselves
// (relaxed-atomic counter increments, histogram observes, labeled
// registry lookups) so a regression in the registry shows up here
// before it shows up as engine noise.
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "obs/metrics.h"

namespace zstream::bench {
namespace {

#ifdef ZSTREAM_OBS_STRIPPED
constexpr char kSeries[] = "stripped";
#else
constexpr char kSeries[] = "instrumented";
#endif

constexpr char kQuery[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One primitive op measured in a tight loop; records ops/s in the
// RunResult throughput slot so it merges into the baseline like any
// other series.
template <typename Fn>
RunResult TimeOp(uint64_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) fn(i);
  RunResult result;
  result.elapsed_s = SecondsSince(start);
  result.throughput =
      result.elapsed_s > 0 ? static_cast<double>(iters) / result.elapsed_s
                           : 0.0;
  return result;
}

int Run() {
  Banner("Observability overhead",
         std::string("Query 4 left-deep throughput with engine "
                     "instrumentation ") +
             kSeries + ", plus obs primitive costs");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  const PhysicalPlan left = LeftDeepPlan(*p);

  Table engine_table(
      {"selectivity", std::string(kSeries) + " (ev/s)", "matches"});
  for (int denom : {1, 4, 16}) {
    const double sel = 1.0 / denom;
    StockGenOptions gen;
    gen.names = {"IBM", "Sun", "Oracle"};
    gen.weights = {1, 1, 1};
    gen.num_events = 60000;
    gen.seed = 8;  // Figure 8's seed: identical workload across builds
    gen.fixed_price = {{"Sun", FixedPriceForSelectivity(sel, 0, 100)}};
    const auto events = GenerateStockTrades(gen);

    const RunResult r = RunTreePlan(p, left, events);
    const std::string sel_label = IndexedName("1/", denom);
    RecordResult("obs_overhead", kSeries, sel_label, r);
    engine_table.AddRow({sel_label, FormatThroughput(r.throughput),
                         std::to_string(r.matches)});
  }
  engine_table.Print();

  // -------------------------------------------------------------------
  // Registry primitives. The counter/histogram loops exercise the exact
  // instruments the engine hot path touches; the lookup loop is the
  // slow path (name + label match under the registry mutex) that only
  // registration and scrapes pay.
  // -------------------------------------------------------------------
  obs::Registry registry;
  obs::Counter* counter =
      registry.GetCounter("bench_ops_total", {}, "bench counter");
  obs::Histogram* histogram = registry.GetHistogram(
      "bench_latency_seconds", {}, "bench histogram", 1e-9);

  constexpr uint64_t kHotIters = 20'000'000;
  constexpr uint64_t kLookupIters = 1'000'000;
  const RunResult inc =
      TimeOp(kHotIters, [&](uint64_t) { counter->Inc(); });
  const RunResult observe = TimeOp(
      kHotIters, [&](uint64_t i) { histogram->Observe(i & 0xffff); });
  const RunResult lookup = TimeOp(kLookupIters, [&](uint64_t) {
    registry.GetCounter("bench_ops_total", {}, "bench counter")->Inc();
  });

  RecordResult("obs_primitives", kSeries, "counter_inc", inc);
  RecordResult("obs_primitives", kSeries, "histogram_observe", observe);
  RecordResult("obs_primitives", kSeries, "registry_lookup", lookup);

  Table prim_table({"primitive", "ops/s", "ns/op"});
  const auto ns_per_op = [](const RunResult& r) {
    return FormatDouble(r.throughput > 0 ? 1e9 / r.throughput : 0.0, 2);
  };
  prim_table.AddRow({"counter_inc", FormatThroughput(inc.throughput),
                     ns_per_op(inc)});
  prim_table.AddRow({"histogram_observe",
                     FormatThroughput(observe.throughput),
                     ns_per_op(observe)});
  prim_table.AddRow({"registry_lookup", FormatThroughput(lookup.throughput),
                     ns_per_op(lookup)});
  prim_table.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
