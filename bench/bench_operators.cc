// Micro benchmarks (google-benchmark): per-operator assembly cost,
// buffer maintenance, hash-index probes, leaf admission, and planner
// invocation. Complements the figure-level harnesses with
// per-component numbers.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "opt/planner.h"

namespace zstream::bench {
namespace {

std::vector<EventPtr> MakeStream(int n, const std::string& ratio,
                                 std::vector<std::string> names,
                                 uint64_t seed = 3) {
  StockGenOptions gen;
  gen.names = std::move(names);
  gen.weights = ParseRateRatio(ratio);
  gen.num_events = n;
  gen.seed = seed;
  return GenerateStockTrades(gen);
}

PatternPtr Analyze(const std::string& q) {
  auto r = AnalyzeQuery(q, StockSchema());
  if (!r.ok()) std::abort();
  return *r;
}

void BM_LeafAdmission(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 100");
  const auto events = MakeStream(10000, "1:1", {"A", "B"});
  for (auto _ : state) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p));
    for (const auto& e : events) (*engine)->Offer(e);
    benchmark::DoNotOptimize((*engine)->events_pushed());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_LeafAdmission);

void BM_SeqAssembly(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 100");
  const auto events =
      MakeStream(static_cast<int>(state.range(0)), "1:1", {"A", "B"});
  for (auto _ : state) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p));
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    benchmark::DoNotOptimize((*engine)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_SeqAssembly)->Arg(2000)->Arg(8000);

void BM_ConjAssembly(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A & B WHERE A.name='A' AND B.name='B' WITHIN 100");
  const auto events = MakeStream(4000, "1:1", {"A", "B"});
  for (auto _ : state) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p));
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    benchmark::DoNotOptimize((*engine)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_ConjAssembly);

void BM_NseqAssembly(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto events = MakeStream(6000, "1:1:1", {"A", "B", "C"});
  for (auto _ : state) {
    auto engine = Engine::Create(p, RightDeepPlan(*p));
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    benchmark::DoNotOptimize((*engine)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_NseqAssembly);

void BM_KseqAssembly(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A;B^3;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto events = MakeStream(6000, "1:3:1", {"A", "B", "C"});
  for (auto _ : state) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p));
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    benchmark::DoNotOptimize((*engine)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_KseqAssembly);

void BM_HashProbeVsScan(benchmark::State& state) {
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  auto r = AnalyzeQuery("PATTERN A;B WHERE A.name = B.name WITHIN 100",
                        StockSchema(), no_part);
  if (!r.ok()) std::abort();
  const PatternPtr p = *r;
  std::vector<std::string> names;
  std::vector<double> weights;
  for (int i = 0; i < 32; ++i) {
    names.push_back(IndexedName("N", i));
    weights.push_back(1.0);
  }
  StockGenOptions gen;
  gen.names = names;
  gen.weights = weights;
  gen.num_events = 8000;
  const auto events = GenerateStockTrades(gen);
  EngineOptions options;
  options.use_hash_indexes = state.range(0) != 0;
  for (auto _ : state) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p), options);
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    benchmark::DoNotOptimize((*engine)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() * 8000);
  state.SetLabel(options.use_hash_indexes ? "hash" : "scan");
}
BENCHMARK(BM_HashProbeVsScan)->Arg(1)->Arg(0);

void BM_PlannerDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string q = "PATTERN C0";
  for (int i = 1; i < n; ++i) q += ";C" + std::to_string(i);
  q += " WITHIN 100";
  const PatternPtr p = Analyze(q);
  StatsCatalog stats(n, 100.0);
  Random rng(7);
  for (int c = 0; c < n; ++c) stats.set_rate(c, 0.01 + rng.NextDouble());
  for (auto _ : state) {
    Planner planner(p, &stats);
    auto plan = planner.OptimalPlan();
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlannerDp)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_NfaBackwardSearch(benchmark::State& state) {
  const PatternPtr p = Analyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto events = MakeStream(6000, "1:1:1", {"A", "B", "C"});
  for (auto _ : state) {
    auto nfa = NfaEngine::Create(p);
    for (const auto& e : events) (*nfa)->Push(e);
    benchmark::DoNotOptimize((*nfa)->num_matches());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_NfaBackwardSearch);

}  // namespace
}  // namespace zstream::bench

BENCHMARK_MAIN();
