// Runtime scaling: shard-count sweep for the concurrent StreamRuntime
// over a Figure-10-style stock workload, against the single-threaded
// PartitionedEngine baseline.
//
// The query is paper Query 2's shape (three same-name trades with rising
// prices) over 64 symbols, so the analyzer's partition key gives the
// runtime its sharding axis and every shard count yields exactly the
// same match count. Expected shape: throughput grows with shards until
// the machine runs out of cores (ingest is a single producer; the
// engines dominate).
#include "bench_util.h"

#include <algorithm>
#include <thread>

#include "runtime/stream_runtime.h"

namespace zstream::bench {
namespace {

constexpr char kQuery[] =
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 200";

std::vector<EventPtr> Workload() {
  StockGenOptions gen;
  gen.names.clear();
  gen.weights.clear();
  for (int i = 0; i < 64; ++i) {
    gen.names.push_back(IndexedName("SYM", i));
    gen.weights.push_back(1.0);
  }
  gen.num_events = 120000;
  gen.seed = 10;
  return GenerateStockTrades(gen);
}

RunResult RunRuntime(const PatternPtr& pattern, const PhysicalPlan& plan,
                     const std::vector<EventPtr>& events, int num_shards) {
  const int reps = Repetitions();
  std::vector<double> rates;
  RunResult result;
  // Pre-slice outside the timed region so chunk construction (heap
  // allocation + shared_ptr refcounting) is not measured as ingest.
  constexpr size_t kChunk = 1024;
  std::vector<std::vector<EventPtr>> chunks;
  for (size_t i = 0; i < events.size(); i += kChunk) {
    chunks.emplace_back(
        events.begin() + static_cast<long>(i),
        events.begin() +
            static_cast<long>(std::min(i + kChunk, events.size())));
  }
  for (int r = 0; r < reps; ++r) {
    runtime::RuntimeOptions options;
    options.num_shards = num_shards;
    options.queue_capacity = 8192;
    auto rt = runtime::StreamRuntime::Create(options);
    if (!rt.ok()) return result;
    auto stream = (*rt)->AddStream("stock", StockSchema());
    auto id = (*rt)->RegisterQuery(*stream, pattern, plan);
    if (!id.ok()) return result;

    const auto start = std::chrono::steady_clock::now();
    // Single producer, bulk routing: one queue lock per shard per chunk.
    for (const std::vector<EventPtr>& chunk : chunks) {
      (*rt)->IngestBatch(*stream, chunk);
    }
    (void)(*rt)->Flush();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    rates.push_back(static_cast<double>(events.size()) / secs);
    result.elapsed_s = secs;
    const auto matches = (*rt)->query_matches(*id);
    result.matches = matches.ok() ? *matches : 0;
    const auto peak = (*rt)->query_peak_bytes(*id);
    result.peak_mb =
        peak.ok() ? static_cast<double>(*peak) / (1024.0 * 1024.0) : 0.0;
    (*rt)->Stop();
  }
  result.throughput =
      std::accumulate(rates.begin(), rates.end(), 0.0) /
      static_cast<double>(rates.size());
  return result;
}

int Run() {
  Banner("Runtime scaling",
         "StreamRuntime shard sweep (1/2/4/8) vs single-threaded "
         "PartitionedEngine, Query-2 shape over 64 symbols, window 200");

  auto pattern = AnalyzeQuery(kQuery, StockSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  if (!p->partition.has_value()) {
    std::fprintf(stderr, "expected a same-name partition key\n");
    return 1;
  }
  const PhysicalPlan plan = LeftDeepPlan(*p);
  const auto events = Workload();

  const RunResult base = RunPartitioned(p, plan, events);
  RecordResult("runtime_scaling", "single_thread", "1", base);

  Table table({"configuration", "throughput (ev/s)", "speedup", "matches"});
  table.AddRow({"single-thread", FormatThroughput(base.throughput), "1.00x",
                std::to_string(base.matches)});

  int failures = 0;
  for (int shards : {1, 2, 4, 8}) {
    const RunResult r = RunRuntime(p, plan, events, shards);
    if (r.matches != base.matches) {
      std::fprintf(stderr,
                   "MATCH-COUNT MISMATCH at %d shards: %llu vs %llu\n",
                   shards, static_cast<unsigned long long>(r.matches),
                   static_cast<unsigned long long>(base.matches));
      ++failures;
    }
    RecordResult("runtime_scaling", "runtime",
                 std::to_string(shards), r);
    table.AddRow({IndexedName("runtime x", shards),
                  FormatThroughput(r.throughput),
                  FormatDouble(r.throughput / base.throughput, 2) + "x",
                  std::to_string(r.matches)});
  }
  table.Print();
  std::printf(
      "\n  note: this host has %u hardware threads; speedup saturates at\n"
      "  the core count (on 1 core the runtime only adds queue overhead),\n"
      "  and the single producer serializes routing for high shard "
      "counts.\n",
      std::thread::hardware_concurrency());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
