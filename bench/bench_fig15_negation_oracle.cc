// Figure 15: Query 7 (IBM;!Sun;Oracle) throughput for negation pushed
// down (NSEQ) vs negation-on-top, increasing the Oracle rate.
#include "negation_common.h"

int main() {
  return zstream::bench::RunNegationSweep(
      "Figure 15",
      "Query 7 negation strategies, varying Oracle rate "
      "(NSEQ vs NEG filter on top), window 200",
      {"1:1:1", "1:1:10", "1:1:20", "1:1:30", "1:1:40", "1:1:50"});
}
