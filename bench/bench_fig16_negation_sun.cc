// Figure 16: Query 7 (IBM;!Sun;Oracle) throughput for negation pushed
// down (NSEQ) vs negation-on-top, increasing the Sun (negated) rate.
#include "negation_common.h"

int main() {
  return zstream::bench::RunNegationSweep(
      "Figure 16",
      "Query 7 negation strategies, varying Sun (negated class) rate "
      "(NSEQ vs NEG filter on top), window 200",
      {"1:1:1", "1:10:1", "1:20:1", "1:30:1", "1:40:1", "1:50:1"});
}
