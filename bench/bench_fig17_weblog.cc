// Figure 17 + Tables 4 and 5: Query 8 on the (synthetic) month-long web
// access log.
//
//   Query 8: PATTERN Publication;Project;Course
//            WHERE same IP address
//            WITHIN 10 hours
//
// The log reproduces the paper's Table 4 class cardinalities
// (6775 / 11610 / 16083 special accesses in ~1.5M records). Expected
// shape: the left-deep plan wins by a wide margin (publications are the
// rarest class), the NFA trails the right-deep plan, and peak memory is
// similar across plans (Table 5).
#include "bench_util.h"

#include "workload/weblog_gen.h"

namespace zstream::bench {
namespace {

constexpr char kQuery8[] =
    "PATTERN Pub;Proj;Course "
    "WHERE Pub.category='publication' AND Proj.category='project' "
    "AND Course.category='course' "
    "AND Pub.ip = Proj.ip = Course.ip "
    "WITHIN 10 hours";

int Run() {
  Banner("Figure 17 / Tables 4-5",
         "Query 8 on one month of synthetic web-access logs "
         "(left-deep / right-deep / NFA), 10-hour window, same-IP key");

  WebLogGenOptions gen;
  WebLogStats stats;
  const auto events = GenerateWebLog(gen, &stats);

  Table t4({"category", "# of accesses"});
  t4.AddRow({"publication", std::to_string(stats.publications)});
  t4.AddRow({"project", std::to_string(stats.projects)});
  t4.AddRow({"courses", std::to_string(stats.courses)});
  std::printf("Table 4 — access counts (paper: 6775 / 11610 / 16083):\n");
  t4.Print();
  std::printf("\n  total records: %zu, distinct IPs: %d\n\n", events.size(),
              gen.num_ips);

  // Partitioned tree plans (the analyzer detects the same-IP key).
  auto pattern = AnalyzeQuery(kQuery8, WebLogSchema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const PatternPtr p = *pattern;
  if (!p->partition.has_value()) {
    std::fprintf(stderr, "expected same-IP partitioning\n");
    return 1;
  }

  // The paper's plans join global buffers with IP-equality hash
  // lookups (Figure 3's style); the NFA keeps the equality predicates
  // explicit in its backward search.
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  auto flat = AnalyzeQuery(kQuery8, WebLogSchema(), no_part);
  if (!flat.ok()) return 1;

  const RunResult left = RunTreePlan(*flat, LeftDeepPlan(**flat), events);
  const RunResult right = RunTreePlan(*flat, RightDeepPlan(**flat), events);
  const RunResult nfa = RunNfaBaseline(*flat, events);
  // Our additional optimization: full hash partitioning on the IP key.
  const RunResult parted = RunPartitioned(p, LeftDeepPlan(*p), events);

  std::printf("Figure 17 — throughput:\n");
  Table fig({"plan", "throughput (ev/s)", "matches"});
  fig.AddRow({"left-deep", FormatThroughput(left.throughput),
              std::to_string(left.matches)});
  fig.AddRow({"right-deep", FormatThroughput(right.throughput),
              std::to_string(right.matches)});
  fig.AddRow({"NFA", FormatThroughput(nfa.throughput),
              std::to_string(nfa.matches)});
  fig.AddRow({"left-deep + partitioning (ours)",
              FormatThroughput(parted.throughput),
              std::to_string(parted.matches)});
  fig.Print();
  if (left.matches != right.matches || left.matches != nfa.matches ||
      left.matches != parted.matches) {
    std::fprintf(stderr, "MATCH-COUNT MISMATCH\n");
    return 1;
  }

  std::printf("\nTable 5 — peak memory (MB):\n");
  Table t5({"plan", "peak MB"});
  t5.AddRow({"left-deep", FormatDouble(left.peak_mb, 2)});
  t5.AddRow({"right-deep", FormatDouble(right.peak_mb, 2)});
  t5.AddRow({"NFA", FormatDouble(nfa.peak_mb, 2)});
  t5.AddRow({"left-deep + partitioning", FormatDouble(parted.peak_mb, 2)});
  t5.Print();
  return 0;
}

}  // namespace
}  // namespace zstream::bench

int main() { return zstream::bench::Run(); }
