// Expression evaluation (three-valued logic, aggregates) and analysis.
#include <gtest/gtest.h>

#include "exec/record.h"
#include "expr/analysis.h"
#include "expr/expr.h"

namespace zstream {
namespace {

using namespace exprs;  // NOLINT

EventPtr Ev(const std::string& name, double price, Timestamp ts) {
  return EventBuilder(StockSchema())
      .Set("name", Value(name))
      .Set("price", price)
      .At(ts)
      .Build();
}

ExprPtr Price(int cls) { return Expr::AttrRef(cls, 2, "T", "price"); }
ExprPtr Name(int cls) { return Expr::AttrRef(cls, 1, "T", "name"); }

TEST(ExprEval, AttrAndComparison) {
  Record rec = Record::FromEvent(0, 2, Ev("IBM", 90, 1));
  rec.slots[1] = Ev("Sun", 50, 2);
  const EvalInput in = rec.ToEvalInput();
  EXPECT_TRUE(Gt(Price(0), Price(1))->EvalPredicate(in));
  EXPECT_FALSE(Lt(Price(0), Price(1))->EvalPredicate(in));
  EXPECT_TRUE(Eq(Name(0), Lit("IBM"))->EvalPredicate(in));
}

TEST(ExprEval, ArithmeticWithPercents) {
  // T1.price > (1 + 20%) * T2.price, the Query 1 shape.
  Record rec = Record::FromEvent(0, 2, Ev("X", 130, 1));
  rec.slots[1] = Ev("G", 100, 2);
  const ExprPtr pred =
      Gt(Price(0), Mul(Add(Lit(1.0), Lit(0.2)), Price(1)));
  EXPECT_TRUE(pred->EvalPredicate(rec.ToEvalInput()));
  rec.slots[0] = Ev("X", 110, 1);
  EXPECT_FALSE(pred->EvalPredicate(rec.ToEvalInput()));
}

TEST(ExprEval, UnboundSlotYieldsNullAndFails) {
  Record rec = Record::FromEvent(0, 2, Ev("IBM", 90, 1));
  const EvalInput in = rec.ToEvalInput();
  EXPECT_TRUE(Price(1)->Eval(in).is_null());
  EXPECT_FALSE(Gt(Price(0), Price(1))->EvalPredicate(in));
}

TEST(ExprEval, ThreeValuedLogic) {
  Record rec = Record::FromEvent(0, 2, Ev("IBM", 90, 1));
  const EvalInput in = rec.ToEvalInput();
  const ExprPtr null_cmp = Gt(Price(1), Lit(0.0));     // null
  const ExprPtr true_cmp = Gt(Price(0), Lit(0.0));     // true
  const ExprPtr false_cmp = Lt(Price(0), Lit(0.0));    // false
  // null AND false = false; null AND true = null; null OR true = true.
  EXPECT_FALSE(And(null_cmp, false_cmp)->Eval(in).is_null());
  EXPECT_FALSE(And(null_cmp, false_cmp)->Eval(in).IsTruthy());
  EXPECT_TRUE(And(null_cmp, true_cmp)->Eval(in).is_null());
  EXPECT_TRUE(Or(null_cmp, true_cmp)->Eval(in).IsTruthy());
  EXPECT_TRUE(Or(null_cmp, false_cmp)->Eval(in).is_null());
  EXPECT_TRUE(Not(null_cmp)->Eval(in).is_null());
}

TEST(ExprEval, TimeRef) {
  Record rec = Record::FromEvent(0, 2, Ev("IBM", 90, 77));
  const ExprPtr ts = Expr::TimeRef(0, "T");
  EXPECT_EQ(ts->Eval(rec.ToEvalInput()), Value(int64_t{77}));
}

TEST(ExprEval, IsNull) {
  Record rec = Record::FromEvent(0, 2, Ev("IBM", 90, 1));
  const EvalInput in = rec.ToEvalInput();
  EXPECT_FALSE(Expr::IsNull(0, "T")->Eval(in).bool_value());
  EXPECT_TRUE(Expr::IsNull(1, "T")->Eval(in).bool_value());
}

TEST(ExprEval, Aggregates) {
  Record rec = Record::FromEvent(0, 2, Ev("A", 1, 1));
  auto group = std::make_shared<EventGroup>();
  for (double v : {10.0, 20.0, 30.0}) group->push_back(Ev("B", v, 2));
  rec.group = group;
  const EvalInput in = rec.ToEvalInput(/*group_class=*/1);
  EXPECT_DOUBLE_EQ(
      Expr::Aggregate(AggFn::kSum, 1, 2, "B", "price")->Eval(in).AsDouble(),
      60.0);
  EXPECT_DOUBLE_EQ(
      Expr::Aggregate(AggFn::kAvg, 1, 2, "B", "price")->Eval(in).AsDouble(),
      20.0);
  EXPECT_EQ(
      Expr::Aggregate(AggFn::kCount, 1, -1, "B", "")->Eval(in),
      Value(int64_t{3}));
  EXPECT_DOUBLE_EQ(
      Expr::Aggregate(AggFn::kMin, 1, 2, "B", "price")->Eval(in).AsDouble(),
      10.0);
  EXPECT_DOUBLE_EQ(
      Expr::Aggregate(AggFn::kMax, 1, 2, "B", "price")->Eval(in).AsDouble(),
      30.0);
}

TEST(ExprAnalysis, ReferencedClasses) {
  const ExprPtr e = And(Gt(Price(0), Price(2)), Eq(Name(1), Lit("x")));
  EXPECT_EQ(ReferencedClasses(e), (std::set<int>{0, 1, 2}));
}

TEST(ExprAnalysis, SplitAndCombineConjuncts) {
  const ExprPtr a = Gt(Price(0), Lit(1.0));
  const ExprPtr b = Lt(Price(1), Lit(2.0));
  const ExprPtr c = Eq(Name(0), Lit("x"));
  const ExprPtr all = And(And(a, b), c);
  const auto parts = SplitConjuncts(all);
  ASSERT_EQ(parts.size(), 3u);
  const ExprPtr back = CombineConjuncts(parts);
  EXPECT_EQ(SplitConjuncts(back).size(), 3u);
}

TEST(ExprAnalysis, EqualityJoinDetection) {
  EXPECT_TRUE(AsEqualityJoin(Eq(Name(0), Name(1))).has_value());
  EXPECT_FALSE(AsEqualityJoin(Eq(Name(0), Name(0))).has_value());
  EXPECT_FALSE(AsEqualityJoin(Eq(Name(0), Lit("x"))).has_value());
  EXPECT_FALSE(AsEqualityJoin(Gt(Name(0), Name(1))).has_value());
  const auto eq = AsEqualityJoin(Eq(Name(1), Name(0)));
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->left_class, 1);
  EXPECT_EQ(eq->right_class, 0);
}

TEST(ExprAnalysis, RemapClasses) {
  const ExprPtr e = Gt(Price(0), Price(1));
  const ExprPtr remapped = RemapClasses(e, {3, 5});
  EXPECT_EQ(ReferencedClasses(remapped), (std::set<int>{3, 5}));
}

TEST(ExprAnalysis, ContainsAggregate) {
  EXPECT_TRUE(ContainsAggregate(
      Gt(Expr::Aggregate(AggFn::kSum, 1, 2, "B", "price"), Lit(1.0))));
  EXPECT_FALSE(ContainsAggregate(Gt(Price(0), Lit(1.0))));
}

TEST(ExprPrint, ToStringRoundtrips) {
  const ExprPtr e = And(Gt(Price(0), Lit(5.0)), Eq(Name(1), Lit("IBM")));
  EXPECT_EQ(e->ToString(), "((T.price > 5) AND (T.name = 'IBM'))");
}

}  // namespace
}  // namespace zstream
