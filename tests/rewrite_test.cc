// Rule-based transformations (Section 5.2.1).
#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/rewrite.h"

namespace zstream {
namespace {

ParseNodePtr MustParse(const std::string& s) {
  auto p = ParsePattern(s);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(Rewrite, DeMorganGroupsNegatedConjuncts) {
  // The paper's Expression1 -> Expression2: A;(!B&!C);D -> A;!(B|C);D.
  const RewriteResult r = RewritePattern(MustParse("A;(!B&!C);D"));
  EXPECT_EQ(r.node->ToString(), "(A;!(B|C);D)");
  EXPECT_FALSE(r.applied.empty());
  // Operator count drops: 5 -> 4.
  EXPECT_EQ(r.node->OperatorCount(), 4);
}

TEST(Rewrite, DeMorganKeepsPositiveConjuncts) {
  const RewriteResult r = RewritePattern(MustParse("A;(X&!B&!C);D"));
  EXPECT_EQ(r.node->ToString(), "(A;(X&!(B|C));D)");
}

TEST(Rewrite, SingleNegationUntouched) {
  const RewriteResult r = RewritePattern(MustParse("A;(!B&X);D"));
  EXPECT_EQ(r.node->ToString(), "(A;(!B&X);D)");
  EXPECT_TRUE(r.applied.empty());
}

TEST(Rewrite, DoubleNegation) {
  const RewriteResult r = RewritePattern(MustParse("A;!(!(B));C"));
  EXPECT_EQ(r.node->ToString(), "(A;B;C)");
}

TEST(Rewrite, FlattensNestedSequences) {
  const RewriteResult r = RewritePattern(MustParse("(A;B);(C;D)"));
  EXPECT_EQ(r.node->ToString(), "(A;B;C;D)");
}

TEST(Rewrite, FlattensNestedDisjunctions) {
  const RewriteResult r = RewritePattern(MustParse("(A|B)|C"));
  EXPECT_EQ(r.node->ToString(), "(A|B|C)");
}

TEST(Rewrite, FixpointStable) {
  const RewriteResult once = RewritePattern(MustParse("A;(!B&!C);D"));
  const RewriteResult twice = RewritePattern(once.node);
  EXPECT_EQ(once.node->ToString(), twice.node->ToString());
  EXPECT_TRUE(twice.applied.empty());
}

TEST(Rewrite, OperatorWeightOrdersDisjBelowConj) {
  const ParseNodePtr disj = MustParse("A|B");
  const ParseNodePtr seq = MustParse("A;B");
  const ParseNodePtr conj = MustParse("A&B");
  EXPECT_LT(OperatorWeight(disj), OperatorWeight(seq));
  EXPECT_LT(OperatorWeight(seq), OperatorWeight(conj));
}

}  // namespace
}  // namespace zstream
