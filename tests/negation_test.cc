// Negation semantics: NSEQ (Algorithm 2), the NEG-on-top filter, their
// equivalence, and the paper's Figure 5 worked example.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

constexpr char kNegQuery[] =
    "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
    "WITHIN 100";

TEST(Negation, Figure5Example) {
  // Paper Figure 5: a1, b2, b3, a4, c5 with window tw. b3 negates c5,
  // so only a4 (after b3) combines with c5 -> single match (a4, c5).
  const PatternPtr p = MustAnalyze(kNegQuery);
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
      Stock("A", 1, 4), Stock("C", 1, 5),
  };
  const auto pushed = RunPlan(p, RightDeepPlan(*p), events);
  ASSERT_EQ(pushed.size(), 1u);
  // The NSEQ plan records the negating event b3 in the match's B slot.
  EXPECT_EQ(pushed[0], "0@4|1@3|2@5|");
}

TEST(Negation, NoNegatorYieldsAllPairs) {
  const PatternPtr p = MustAnalyze(kNegQuery);
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("A", 1, 2), Stock("C", 1, 3),
  };
  const auto matches = RunPlan(p, RightDeepPlan(*p), events);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(Negation, PushedDownEqualsTopFilter) {
  const PatternPtr p = MustAnalyze(kNegQuery);
  Random rng(3);
  std::vector<EventPtr> events;
  for (int i = 0; i < 300; ++i) {
    const char* names[] = {"A", "B", "C"};
    events.push_back(Stock(names[rng.Uniform(3)], i % 7, i));
  }
  const auto pushed = RunPlan(p, RightDeepPlan(*p), events);
  const auto top = RunPlan(p, NegationTopPlan(*p), events);
  // The pushed plan binds the negator event in a slot, the top filter
  // does not; compare on positive slots only.
  auto strip = [](std::vector<std::string> keys) {
    for (std::string& k : keys) {
      // Keys look like "0@ts|1@ts|2@ts|"; drop class-1 (B) bindings.
      std::string out;
      size_t pos = 0;
      while (pos < k.size()) {
        const size_t bar = k.find('|', pos);
        const std::string part = k.substr(pos, bar - pos);
        if (part.rfind("1@", 0) != 0) out += part + "|";
        pos = bar + 1;
      }
      k = out;
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(strip(pushed), strip(top));
  EXPECT_FALSE(pushed.empty());
}

TEST(Negation, PredicateOnNegatorRestrictsNegation) {
  // Only expensive B events negate.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND B.price > 50 WITHIN 100");
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("B", 10, 2), Stock("C", 1, 3),   // cheap B
      Stock("A", 1, 11), Stock("B", 90, 12), Stock("C", 1, 13),  // negates
  };
  const auto matches = RunPlan(p, RightDeepPlan(*p), events);
  // (a1,c3) survives (B@2 cheap). (a11,c13) negated. (a1,c13) negated by
  // B@12. (a11,c3)? c3 < a11, not a pair.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].substr(0, 4), "0@1|");
}

TEST(Negation, MultiClassNegPredicateBetweenBAndC) {
  // B negates only when its price exceeds the C event's price
  // (the introduction's "no interleaving B with B.price > C.price").
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND B.price > C.price WITHIN 100");
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("B", 10, 2), Stock("C", 50, 3),
      Stock("C", 5, 4),
  };
  const auto matches = RunPlan(p, RightDeepPlan(*p), events);
  // (a1, c3): B@2 price 10 < 50 -> survives. (a1, c4): 10 > 5 -> dies.
  ASSERT_EQ(matches.size(), 1u);
  const auto top = RunPlan(p, NegationTopPlan(*p), events);
  ASSERT_EQ(top.size(), 1u);
}

TEST(Negation, NegatorAtBoundaryTimestampsDoesNotNegate) {
  const PatternPtr p = MustAnalyze(kNegQuery);
  // B exactly at A's or C's timestamp is not strictly between them.
  const std::vector<EventPtr> events = {
      Stock("A", 1, 5), Stock("B", 1, 5), Stock("C", 1, 9),
      Stock("B", 1, 9),
  };
  const auto matches = RunPlan(p, RightDeepPlan(*p), events);
  EXPECT_EQ(matches.size(), 1u);
}

TEST(Negation, ValidationRejectsBadPlacements) {
  EXPECT_FALSE(AnalyzeQuery("PATTERN !A WITHIN 10", StockSchema()).ok());
  EXPECT_FALSE(AnalyzeQuery("PATTERN A;!B WITHIN 10", StockSchema()).ok());
  EXPECT_FALSE(AnalyzeQuery("PATTERN !A;B WITHIN 10", StockSchema()).ok());
  EXPECT_FALSE(AnalyzeQuery("PATTERN A|!B WITHIN 10", StockSchema()).ok());
}

TEST(Negation, LongWindowManyNegators) {
  const PatternPtr p = MustAnalyze(kNegQuery);
  std::vector<EventPtr> events;
  events.push_back(Stock("A", 1, 0));
  for (int i = 1; i <= 50; ++i) events.push_back(Stock("B", 1, i));
  events.push_back(Stock("C", 1, 60));
  const auto matches = RunPlan(p, RightDeepPlan(*p), events);
  EXPECT_TRUE(matches.empty());
}

// Regression (zstream_fuzz case: (E0;!E1;E2)&E3): NegationTopPlan used
// to flatten the positive classes into one SEQ chain, imposing a
// temporal order the conjunction does not have and losing every match
// whose conjunct interleaves.
TEST(Negation, NegationTopPreservesConjStructure) {
  const PatternPtr p = MustAnalyze(
      "PATTERN (A;!B;C)&D WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND D.name='D' WITHIN 20");
  // D arrives BETWEEN A and C: fine for a conjunction, fatal for the
  // old flattened [A ; C ; D] chain.
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("D", 1, 3), Stock("C", 1, 5),
  };
  const auto top = RunPlan(p, NegationTopPlan(*p), events);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], "0@1|2@5|3@3|");
  EXPECT_EQ(RunPlan(p, LeftDeepPlan(*p), events), top);
}

// Regression (zstream_fuzz): a NEG filter's scope is its enclosing
// classes; a record from the OTHER disjunction branch (enclosing slots
// unbound) used to fall back to the record's own span as the negation
// window and get killed by unrelated negators.
TEST(Negation, NegFilterPassesOtherDisjunctionBranch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN (A;B)|(C;!D;E) WHERE A.name='A' AND B.name='B' "
      "AND C.name='C' AND D.name='D' AND E.name='E' WITHIN 20");
  // A negator between A and B must not kill the (A, B) branch match.
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("D", 1, 2), Stock("B", 1, 3),
  };
  const auto keys = RunPlan(p, NegationTopPlan(*p), events);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "0@1|1@3|");
}

// Regression (zstream_fuzz): a negation predicate spanning classes an
// NSEQ cannot cover must compile on CONJ/DISJ-shaped patterns too (the
// optimal planner's structural fallback now chooses a NEG filter for
// that class instead of an unbuildable pushed-down plan).
TEST(Negation, NonLocalNegationPredicateOnDisjPatternCompiles) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN (A;!B;C)|D WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND D.name='D' AND B.price < A.price WITHIN 20");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Negator at t=2 fails B.price < A.price (7 > 5): match survives.
  (*query)->Push(Stock("A", 5, 1));
  (*query)->Push(Stock("B", 7, 2));
  (*query)->Push(Stock("C", 1, 3));
  // Negator at t=12 passes the predicate (3 < 5): match killed.
  (*query)->Push(Stock("A", 5, 11));
  (*query)->Push(Stock("B", 3, 12));
  (*query)->Push(Stock("C", 1, 13));
  // D-branch match, untouched by the negation.
  (*query)->Push(Stock("D", 1, 30));
  (*query)->Finish();
  EXPECT_EQ((*query)->num_matches(), 2u);
}

}  // namespace
}  // namespace zstream
