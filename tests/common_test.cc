// Substrate tests: Status/Result, Value, Schema, MemoryTracker, Random,
// string utilities.
#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace zstream {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInternal());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ZS_ASSIGN_OR_RETURN(const int half, Halve(x));
  return Halve(half);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
}

TEST(Value, NumericComparisonCoerces) {
  EXPECT_EQ(*Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_EQ(*Value(int64_t{2}).Compare(Value(3.0)), -1);
  EXPECT_EQ(*Value(4.0).Compare(Value(int64_t{3})), 1);
}

TEST(Value, StringComparison) {
  EXPECT_EQ(*Value("abc").Compare(Value("abd")), -1);
  EXPECT_EQ(*Value("abc").Compare(Value("abc")), 0);
}

TEST(Value, IncomparableCategoriesError) {
  EXPECT_FALSE(Value("x").Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(Value().Compare(Value(int64_t{1})).ok());
}

TEST(Value, EqualityAndHashConsistent) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value("a").Hash(), Value("a").Hash());
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(Add(Value(int64_t{2}), Value(int64_t{3})), Value(int64_t{5}));
  EXPECT_EQ(Multiply(Value(2.0), Value(int64_t{3})), Value(6.0));
  EXPECT_TRUE(Divide(Value(int64_t{1}), Value(int64_t{0})).is_null());
  EXPECT_EQ(Modulo(Value(int64_t{7}), Value(int64_t{3})), Value(int64_t{1}));
  EXPECT_TRUE(Add(Value("x"), Value(int64_t{1})).is_null());
}

TEST(Value, TruthinessIsStrict) {
  EXPECT_TRUE(Value(true).IsTruthy());
  EXPECT_FALSE(Value(false).IsTruthy());
  EXPECT_FALSE(Value(int64_t{1}).IsTruthy());
  EXPECT_FALSE(Value().IsTruthy());
}

TEST(Schema, FieldLookup) {
  const SchemaPtr s = Schema::Make({{"a", ValueType::kInt64},
                                    {"b", ValueType::kString}});
  EXPECT_EQ(s->num_fields(), 2);
  EXPECT_EQ(s->FieldIndex("b"), 1);
  EXPECT_EQ(s->FieldIndex("missing"), -1);
  EXPECT_TRUE(s->RequireField("a").ok());
  EXPECT_FALSE(s->RequireField("zz").ok());
}

TEST(MemoryTracker, TracksPeak) {
  MemoryTracker t;
  t.Allocate(100);
  t.Allocate(50);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), 30);
}

TEST(Random, DeterministicAndUniformish) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Random r(9);
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++buckets[r.Uniform(4)];
  for (int c : buckets) EXPECT_NEAR(c, 1000, 150);
}

TEST(Random, UniformRangeInclusive) {
  Random r(1);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = r.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(StringUtil, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Split("a:b:c", ':'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_TRUE(EqualsIgnoreCase("WiThIn", "within"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

}  // namespace
}  // namespace zstream
