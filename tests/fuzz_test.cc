// Seeded differential fuzz suites (CTest label: fuzz): fixed-seed runs
// of the src/testing/ differential driver — brute-force oracle vs tree
// engine (every applicable strategy), NFA, sharded runtime and the
// loopback net server — plus hand-computed anchors pinning the oracle's
// own semantics (WITHIN boundary, negation strictness, empty closure
// groups) and a cross-check against the older ReferenceMatcher.
//
// A failure prints the query and the zstream_fuzz-style divergence
// details; reproduce interactively with
//   zstream_fuzz --seed <seed> --case-start <case> --cases 1
// after matching the knobs shown in the failure message.
#include <gtest/gtest.h>

#include "test_util.h"
#include "testing/differential.h"

namespace zstream::testing {
namespace {

// ---------------------------------------------------------------------
// Oracle anchors: semantics pinned on hand-computed scenarios.
// ---------------------------------------------------------------------

std::vector<std::string> OracleKeys(const PatternPtr& pattern,
                                    const std::vector<EventPtr>& events) {
  auto oracle = Oracle::Create(pattern);
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  return (*oracle)->Run(events);
}

TEST(Oracle, WithinBoundaryIsInclusive) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  EXPECT_EQ(OracleKeys(p, {Stock("A", 1, 0), Stock("B", 1, 10)}).size(),
            1u);  // span == window: inside
  EXPECT_EQ(OracleKeys(p, {Stock("A", 1, 0), Stock("B", 1, 11)}).size(),
            0u);  // one past: outside
}

TEST(Oracle, SequenceOrderingIsStrict) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  EXPECT_EQ(OracleKeys(p, {Stock("A", 1, 5), Stock("B", 1, 5)}).size(),
            0u);  // equal timestamps never satisfy SEQ
}

TEST(Oracle, NegationIsStrictlyBetween) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  // Negators exactly ON the enclosing timestamps do not kill.
  EXPECT_EQ(OracleKeys(p, {Stock("A", 1, 1), Stock("B", 1, 1),
                           Stock("B", 1, 9), Stock("C", 1, 9)})
                .size(),
            1u);
  EXPECT_EQ(OracleKeys(p, {Stock("A", 1, 1), Stock("B", 1, 5),
                           Stock("C", 1, 9)})
                .size(),
            0u);
}

TEST(Oracle, KleeneStarEmitsEmptyGroup) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto keys = OracleKeys(p, {Stock("A", 1, 1), Stock("C", 1, 5)});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "0@1|2@5|g{}");
}

TEST(Oracle, KleeneCountSlidesOverQualifyingRun) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto keys = OracleKeys(
      p, {Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
          Stock("B", 1, 4), Stock("C", 1, 5)});
  ASSERT_EQ(keys.size(), 2u);  // {2,3} and {3,4}
  EXPECT_EQ(keys[0], "0@1|2@5|g{2,3,}");
  EXPECT_EQ(keys[1], "0@1|2@5|g{3,4,}");
}

// Two independently written brute-force references (the Oracle and the
// older test_util ReferenceMatcher) must agree on plain sequences.
TEST(Oracle, AgreesWithReferenceMatcherOnRandomSequences) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND A.price > B.price WITHIN 25");
  Random rng(77);
  std::vector<EventPtr> events;
  Timestamp ts = 0;
  const std::string names = "ABC";
  for (int i = 0; i < 200; ++i) {
    ts += static_cast<Timestamp>(rng.Uniform(3));
    events.push_back(Stock(std::string(1, names[rng.Uniform(3)]),
                           static_cast<double>(rng.Uniform(100)), ts));
  }
  ReferenceMatcher reference(p);
  EXPECT_EQ(OracleKeys(p, events), reference.Run(events));
}

// ---------------------------------------------------------------------
// Seeded differential suites over all execution paths.
// ---------------------------------------------------------------------

std::string Describe(const CaseReport& report) {
  std::string out = report.error;
  for (const Divergence& d : report.divergences) {
    out += "\n  path=" + d.path + " expected=" +
           std::to_string(d.expected) + " got=" + std::to_string(d.got) +
           " " + d.detail;
  }
  return out;
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, AllPathsMatchOracle) {
  const uint64_t seed = GetParam();
  const DifferentialDriver driver;
  int paths_total = 0;
  for (int c = 0; c < 30; ++c) {
    // Same case derivation as tools/zstream_fuzz with --events 48.
    const uint64_t case_seed =
        seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(c);
    PatternGen pattern_gen(case_seed);
    const GeneratedPattern pattern = pattern_gen.Next();

    TraceGenOptions trace_options;
    trace_options.num_events = 48;
    trace_options.window = pattern.window;
    switch (c % 4) {
      case 1:
        trace_options.shuffle_span = 2;
        break;
      case 2:
        trace_options.p_tie = 0.25;
        break;
      case 3:
        trace_options.shuffle_span = 5;
        break;
      default:
        break;
    }
    TraceGen trace_gen(case_seed ^ 0xda3e39cb94b95bdbULL, pattern.schema,
                       trace_options);
    const GeneratedTrace trace = trace_gen.Next();

    const CaseReport report = driver.RunCase(pattern, trace);
    EXPECT_TRUE(report.ok)
        << "repro: zstream_fuzz --seed " << seed << " --case-start " << c
        << " --cases 1 --events 48\n  query: " << pattern.text
        << Describe(report);
    paths_total += report.paths_run;
  }
  // Sanity: the suite exercised a healthy number of execution paths.
  EXPECT_GT(paths_total, 30 * 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace zstream::testing
