// Tests for end-to-end event tracing (src/obs/trace.h), match
// provenance, the flight recorder, and the protocol-v3 trace plumbing:
//   - span ring round trip, wraparound window, torn-slot filtering
//   - deterministic 1-in-N batch sampling
//   - exact span-count reconciliation against shard/sink totals under
//     4-thread ingest contention (runs in the CI TSan job)
//   - label coherence: one label joins metrics, EXPLAIN ANALYZE, spans
//     and provenance
//   - EXPLAIN TRACE provenance (event ids + plan fingerprint)
//   - wire: trace ids survive kEventBatch/kMatch round trips, a v2 peer
//     is rejected with the coded fatal error, GET /trace and
//     kTraceRequest serve valid Chrome-trace JSON, and one sampled
//     batch's spans share a trace id across client and server
//   - flight recorder dumps the ring window and rate-limits triggers
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <thread>

#include "common/string_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/match_sink.h"
#include "runtime/stream_runtime.h"
#include "test_util.h"
#include "workload/stock_gen.h"

namespace zstream::testing {
namespace {

#ifndef ZSTREAM_OBS_STRIPPED

using obs::Span;
using obs::SpanKind;
using obs::Tracer;

// ---------------------------------------------------------------------
// Minimal JSON validity checker (the repo deliberately has no JSON
// parser; Chrome-trace output only needs structural validation).
// ---------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

// Every trace test reconfigures the process-global tracer; reset both
// the rings and the sampling cursor so counts are test-local.
void ConfigureTracer(uint32_t sample_every, size_t ring_slots = 8192,
                     uint32_t num_lanes = 9) {
  obs::TraceOptions opts;
  opts.sample_every = sample_every;
  opts.ring_slots = ring_slots;
  opts.num_lanes = num_lanes;
  Tracer::Global().Configure(opts);
  Tracer::Global().Reset();
}

// ---------------------------------------------------------------------
// Ring mechanics
// ---------------------------------------------------------------------

TEST(TraceRing, RecordRoundTrip) {
  ConfigureTracer(1, 256, 2);
  Tracer& t = Tracer::Global();
  const uint64_t id = t.NewTraceId();
  ASSERT_NE(id, 0u);
  t.Record(1, SpanKind::kQueueWait, id, 100, 250, "stock", 7);
  const std::vector<Span> spans = t.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, id);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].end_ns, 250u);
  EXPECT_EQ(spans[0].arg, 7u);
  EXPECT_EQ(spans[0].lane, 1u);
  EXPECT_EQ(spans[0].kind, static_cast<uint8_t>(SpanKind::kQueueWait));
  EXPECT_STREQ(spans[0].name, "stock");
  EXPECT_EQ(t.KindCount(SpanKind::kQueueWait), 1u);
  EXPECT_EQ(t.spans_recorded(), 1u);
}

TEST(TraceRing, WraparoundKeepsNewestWindow) {
  // 64 is the minimum ring geometry; 200 writes must wrap and keep
  // exactly the most recent 64 spans while the exact counter keeps all.
  ConfigureTracer(1, 64, 1);
  Tracer& t = Tracer::Global();
  const uint64_t id = t.NewTraceId();
  for (uint64_t i = 1; i <= 200; ++i) {
    t.Record(0, SpanKind::kExec, id, i, i + 1, "w", i);
  }
  EXPECT_EQ(t.spans_recorded(), 200u);
  const std::vector<Span> spans = t.CollectSpans();
  ASSERT_EQ(spans.size(), 64u);
  // Oldest-first window over writes 137..200.
  EXPECT_EQ(spans.front().arg, 137u);
  EXPECT_EQ(spans.back().arg, 200u);
}

TEST(TraceRing, StrippedOrDisabledRecordsNothing) {
  ConfigureTracer(0);
  Tracer& t = Tracer::Global();
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.SampleBatch(), 0u);
  EXPECT_EQ(t.NewTraceId(), 0u);
  t.Record(0, SpanKind::kExec, 0, 1, 2, "off");
  EXPECT_EQ(t.spans_recorded(), 0u);
  EXPECT_TRUE(t.CollectSpans().empty());
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

TEST(TraceSampling, DeterministicOneInN) {
  ConfigureTracer(4);
  Tracer& t = Tracer::Global();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(t.SampleBatch());
  // Exactly every 4th decision samples, starting with the first.
  for (int i = 0; i < 100; ++i) {
    if (i % 4 == 0) {
      EXPECT_NE(ids[static_cast<size_t>(i)], 0u) << "batch " << i;
    } else {
      EXPECT_EQ(ids[static_cast<size_t>(i)], 0u) << "batch " << i;
    }
  }
  EXPECT_EQ(t.batches_sampled(), 25u);
  // Sampled ids are unique.
  std::set<uint64_t> unique;
  for (uint64_t id : ids) {
    if (id != 0) unique.insert(id);
  }
  EXPECT_EQ(unique.size(), 25u);
}

// ---------------------------------------------------------------------
// Exact reconciliation under ingest contention
// ---------------------------------------------------------------------

constexpr char kTraceQuery[] =
    "PATTERN IBM;Oracle "
    "WHERE IBM.name='IBM' AND Oracle.name='Oracle' "
    "AND IBM.price > Oracle.price WITHIN 100";

TEST(TraceReconciliation, SpanCountsMatchShardAndSinkTotals) {
  ConfigureTracer(1, 4096, 3);
  runtime::RuntimeOptions options;
  options.num_shards = 2;
  auto rt = runtime::StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  runtime::CollectingMatchSink sink;
  runtime::QueryOptions qopts;
  qopts.sink = &sink;
  CompileOptions copts;
  // One assembly round per event: every match is emitted inside the
  // traced push that completed it, so kMatch spans reconcile exactly.
  copts.engine.batch_size = 1;
  auto id = (*rt)->RegisterQuery(*stream, kTraceQuery, copts, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      StockGenOptions gen;
      gen.names = {"IBM", "Oracle"};
      gen.weights = {1, 1};
      gen.num_events = kPerThread;
      gen.seed = 100 + static_cast<uint64_t>(w);
      for (const EventPtr& e : GenerateStockTrades(gen)) {
        ASSERT_TRUE((*rt)->Ingest(*stream, e));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE((*rt)->Flush().ok());

  Tracer& t = Tracer::Global();
  const uint64_t total_events = kThreads * kPerThread;

  // Every ingested event was sampled (1-in-1) and produced exactly one
  // queue-wait span when its shard dequeued it.
  EXPECT_EQ(t.KindCount(SpanKind::kQueueWait), total_events);

  // The runtime's own counters agree: stats...
  const runtime::RuntimeStats stats = (*rt)->Stats();
  EXPECT_EQ(stats.events_traced, total_events);
  uint64_t shard_total = 0;
  for (const runtime::ShardStats& s : stats.shards) {
    shard_total += s.events_processed;
  }
  EXPECT_EQ(t.KindCount(SpanKind::kQueueWait), shard_total);
  // ...and the exported metric series.
  const std::string metrics = (*rt)->MetricsPrometheus();
  EXPECT_NE(metrics.find("zstream_events_traced_total " +
                         std::to_string(total_events)),
            std::string::npos)
      << metrics;

  // Every match the sink saw was emitted inside a traced push, so the
  // kMatch span counter equals the sink total exactly.
  ASSERT_GT(sink.size(), 0u);
  EXPECT_EQ(t.KindCount(SpanKind::kMatch), sink.size());
  // Provenance was recorded for the (bounded) most recent matches.
  EXPECT_GT(t.ProvenanceFor("").size(), 0u);
}

// ---------------------------------------------------------------------
// Label coherence: one label joins every observability surface
// ---------------------------------------------------------------------

TEST(TraceLabels, LabelJoinsMetricsSpansProvenanceAndExplain) {
  ConfigureTracer(1, 4096, 3);
  runtime::RuntimeOptions options;
  options.num_shards = 2;
  auto rt = runtime::StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  runtime::CollectingMatchSink sink;
  runtime::QueryOptions qopts;
  qopts.sink = &sink;
  CompileOptions copts;
  copts.engine.label = "coherent";
  copts.engine.batch_size = 1;
  auto id = (*rt)->RegisterQuery(*stream, kTraceQuery, copts, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  StockGenOptions gen;
  gen.names = {"IBM", "Oracle"};
  gen.weights = {1, 1};
  gen.num_events = 3000;
  gen.seed = 5;
  for (const EventPtr& e : GenerateStockTrades(gen)) {
    ASSERT_TRUE((*rt)->Ingest(*stream, e));
  }
  ASSERT_TRUE((*rt)->Flush().ok());
  ASSERT_GT(sink.size(), 0u);

  // Metrics series carry the label...
  const std::string metrics = (*rt)->MetricsPrometheus();
  EXPECT_NE(metrics.find("query=\"coherent\""), std::string::npos);
  // ...EXPLAIN ANALYZE names the same query...
  auto rendered = (*rt)->ExplainAnalyze(*id);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("query=coherent"), std::string::npos);
  // ...exec spans carry it as their name...
  bool exec_labeled = false;
  for (const Span& s : Tracer::Global().CollectSpans()) {
    if (s.kind == static_cast<uint8_t>(SpanKind::kExec) &&
        std::strncmp(s.name, "coherent", sizeof(s.name)) == 0) {
      exec_labeled = true;
    }
  }
  EXPECT_TRUE(exec_labeled);
  // ...and provenance is queryable by it.
  const auto prov = Tracer::Global().ProvenanceFor("coherent");
  ASSERT_GT(prov.size(), 0u);
  for (const obs::MatchProvenance& p : prov) {
    EXPECT_STREQ(p.label, "coherent");
    EXPECT_NE(p.plan_fingerprint, 0u);
    EXPECT_GT(p.num_events, 0u);
  }
  EXPECT_TRUE(Tracer::Global().ProvenanceFor("other").empty());
}

// ---------------------------------------------------------------------
// EXPLAIN TRACE
// ---------------------------------------------------------------------

TEST(ExplainTrace, ShowsEventIdsAndPlanFingerprint) {
  ConfigureTracer(1, 4096, 2);
  ZStream session(StockSchema());
  auto created = session.Execute(
      "CREATE QUERY pair ON default AS " + std::string(kTraceQuery));
  ASSERT_TRUE(created.ok()) << created.status();

  // Before any traced match, EXPLAIN TRACE reports the empty state.
  auto empty = session.Execute("EXPLAIN TRACE pair");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_NE(empty->message.find("no sampled match provenance"),
            std::string::npos)
      << empty->message;

  auto query = session.query("pair");
  ASSERT_TRUE(query.ok());
  // Session pushes run on this thread: adopt a trace id the way a
  // shard worker would.
  obs::SetCurrentTrace(Tracer::Global().NewTraceId());
  StockGenOptions gen;
  gen.names = {"IBM", "Oracle"};
  gen.weights = {1, 1};
  gen.num_events = 500;
  gen.seed = 7;
  for (const EventPtr& e : GenerateStockTrades(gen)) (*query)->Push(e);
  obs::SetCurrentTrace(0);

  auto traced = session.Execute("EXPLAIN TRACE pair");
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_NE(traced->message.find("query=pair"), std::string::npos)
      << traced->message;
  EXPECT_NE(traced->message.find("match trace=0x"), std::string::npos);
  EXPECT_NE(traced->message.find("plan=0x"), std::string::npos);
  EXPECT_NE(traced->message.find("id="), std::string::npos);
  EXPECT_NE(traced->message.find("path: "), std::string::npos);

  auto unknown = session.Execute("EXPLAIN TRACE nope");
  EXPECT_FALSE(unknown.ok());
}

// ---------------------------------------------------------------------
// Wire protocol v3
// ---------------------------------------------------------------------

TEST(ProtocolV3, OlderPeerVersionIsFatalCodedReject) {
  // Hand-build a v2 kEventBatch frame header; the parser must reject it
  // with the sticky coded error instead of misparsing the new layout.
  std::string frame;
  frame.push_back(2);  // protocol version 2 (one behind)
  frame.push_back(static_cast<char>(net::MsgType::kEventBatch));
  frame.push_back(0);
  frame.push_back(0);
  for (int i = 0; i < 4; ++i) frame.push_back(0);  // empty payload
  net::FrameParser parser;
  parser.Append(frame.data(), frame.size());
  auto next = parser.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().error_code(), "ZS-N0001");
  EXPECT_TRUE(parser.broken());
  // The error is sticky: the connection is unusable.
  EXPECT_FALSE(parser.Next().ok());
}

constexpr char kStockDdl[] =
    "CREATE STREAM stock "
    "(id INT, name STRING, price DOUBLE, volume INT, ts INT)";
// Selective on purpose: a few hundred matches from 2000 events, so the
// per-match fanout/deliver spans cannot wrap the control lane's ring
// and evict the two ingest/wire_decode spans the end-to-end test
// asserts on (a rising-triple query emits ~170k matches here and turns
// the ring into all-deliver).
constexpr char kRallyDdl[] =
    "CREATE QUERY rally ON stock AS "
    "PATTERN IBM;Oracle WHERE IBM.name = 'IBM' "
    "AND Oracle.name = 'Oracle' "
    "AND IBM.price > Oracle.price + 50 WITHIN 20";

/// One blocking HTTP/1.0 request against the observability side port.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << ErrnoToString(errno);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[16 << 10];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetTrace, EndToEndSpansShareOneTraceId) {
  ConfigureTracer(1, 8192, 3);
  ZStream session;
  ASSERT_TRUE(session.Execute(kStockDdl).ok());
  ASSERT_TRUE(session.Execute(kRallyDdl).ok());

  runtime::RuntimeOptions runtime_options;
  runtime_options.num_shards = 2;
  net::ServerOptions server_options;
  server_options.metrics_port = 0;  // ephemeral HTTP side port
  auto server =
      net::Server::Create(&session, runtime_options, server_options);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Start().ok());

  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("rally").ok());

  StockGenOptions gen;
  gen.num_events = 2000;
  gen.seed = 11;
  const auto events = GenerateStockTrades(gen);
  auto ack = (*client)->Ingest("stock", events);
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_TRUE((*client)->Flush().ok());
  auto got = (*client)->WaitForMatches(1, 10000);
  ASSERT_TRUE(got.ok());
  ASSERT_GT(*got, 0u);

  // Client and server share this process's tracer, so the whole
  // pipeline's spans are visible here. Group kinds per trace id.
  std::map<uint64_t, std::set<uint8_t>> kinds_by_trace;
  for (const Span& s : Tracer::Global().CollectSpans()) {
    kinds_by_trace[s.trace_id].insert(s.kind);
  }
  bool full_pipeline = false;
  for (const auto& [trace, kinds] : kinds_by_trace) {
    if (kinds.count(static_cast<uint8_t>(SpanKind::kIngest)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kWireDecode)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kQueueWait)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kExec)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kOperator)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kMatch)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kFanout)) > 0 &&
        kinds.count(static_cast<uint8_t>(SpanKind::kDeliver)) > 0) {
      full_pipeline = true;
      break;
    }
  }
  std::string kind_summary;
  for (size_t k = 0; k < static_cast<size_t>(SpanKind::kNumKinds); ++k) {
    kind_summary += std::string(SpanKindName(static_cast<SpanKind>(k))) +
                    "=" +
                    std::to_string(Tracer::Global().KindCount(
                        static_cast<SpanKind>(k))) +
                    " ";
  }
  EXPECT_TRUE(full_pipeline)
      << "no trace id carried ingest+decode+queue+exec+operator+match+"
         "fanout+deliver spans; recorded: "
      << kind_summary;

  // kTraceRequest over the wire returns a structurally valid Chrome
  // trace document with the pipeline span names.
  auto doc = (*client)->Trace();
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(JsonChecker(*doc).Valid()) << doc->substr(0, 400);
  EXPECT_NE(doc->find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc->find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc->find("wire_decode"), std::string::npos);
  EXPECT_NE(doc->find("queue_wait"), std::string::npos);
  EXPECT_NE(doc->find("fanout"), std::string::npos);
  EXPECT_NE(doc->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc->find("control/net"), std::string::npos);
  EXPECT_NE(doc->find("shard 0"), std::string::npos);

  // The HTTP side port serves the same document shape.
  const std::string http = HttpGet((*server)->metrics_port(), "/trace");
  EXPECT_NE(http.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(http.find("application/json"), std::string::npos);
  const size_t body_at = http.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = http.substr(body_at + 4);
  EXPECT_TRUE(JsonChecker(body).Valid()) << body.substr(0, 400);
  EXPECT_NE(body.find("traceEvents"), std::string::npos);

  // EXPLAIN TRACE over the wire reports served-match provenance.
  auto traced = (*client)->Execute("EXPLAIN TRACE rally");
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_NE(traced->message.find("query=rally"), std::string::npos)
      << traced->message;
  EXPECT_NE(traced->message.find("plan=0x"), std::string::npos);

  // Delivered matches carried their trace ids to the client.
  bool delivered_traced = false;
  for (const net::NetMatch& m : (*client)->TakeMatches()) {
    if (m.trace_id != 0) delivered_traced = true;
  }
  EXPECT_TRUE(delivered_traced);

  (*server)->Stop();
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, DumpsRingWindowAndRateLimitsTriggers) {
  ConfigureTracer(1, 256, 1);
  Tracer& t = Tracer::Global();
  const uint64_t id = t.NewTraceId();
  t.Record(0, SpanKind::kExec, id, 10, 20, "dumpme", 1);

  const std::string dir =
      ::testing::TempDir() + "zs_flight_" + std::to_string(::getpid());
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Configure(dir);
  ASSERT_TRUE(fr.armed());

  auto path = fr.Dump("unit");
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_NE(path->find("trace-unit-"), std::string::npos);
  std::FILE* f = std::fopen(path->c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_TRUE(JsonChecker(contents).Valid());
  EXPECT_NE(contents.find("traceEvents"), std::string::npos);
  EXPECT_NE(contents.find("dumpme"), std::string::npos);

  // Triggered dumps are rate-limited: back-to-back triggers produce
  // exactly one dump inside the minimum interval.
  const uint64_t before = fr.dumps();
  fr.TriggerDump("slow-event");
  fr.TriggerDump("slow-event");
  EXPECT_EQ(fr.dumps(), before + 1);
}

#endif  // ZSTREAM_OBS_STRIPPED

}  // namespace
}  // namespace zstream::testing
