// Negative test: releasing a capability that is not held must be
// rejected by -Wthread-safety. Catches the double-unlock / early-return
// family of bugs that scoped zs::MutexLock makes structurally
// impossible — this case bypasses the guard on purpose.
#include "common/sync.h"

void Broken() {
  zs::Mutex mu;
  mu.Unlock();  // defect: mu was never locked on this path
}

int main() {
  Broken();
  return 0;
}
