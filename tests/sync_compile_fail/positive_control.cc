// Positive control: correctly annotated and correctly locked code must
// compile clean under -Wthread-safety. Exercises the full vocabulary
// the negative cases reject one piece of — guarded fields under
// zs::MutexLock, a ZS_REQUIRES helper called with the lock held, an
// explicit CondVar wait loop, and reader/writer locking. If this file
// starts failing, the harness (or sync.h) broke, not the callers.
#include "common/sync.h"

class Mailbox {
 public:
  void Put(int v) ZS_EXCLUDES(mu_) {
    {
      zs::MutexLock lock(mu_);
      value_ = v;
      StampLocked();
      ready_ = true;
    }
    cv_.NotifyOne();
  }

  int Take() ZS_EXCLUDES(mu_) {
    zs::MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);
    ready_ = false;
    return value_;
  }

 private:
  void StampLocked() ZS_REQUIRES(mu_) { ++stamps_; }

  zs::Mutex mu_;
  zs::CondVar cv_;
  bool ready_ ZS_GUARDED_BY(mu_) = false;
  int value_ ZS_GUARDED_BY(mu_) = 0;
  int stamps_ ZS_GUARDED_BY(mu_) = 0;
};

class Routes {
 public:
  void Add(int r) ZS_EXCLUDES(mu_) {
    zs::WriterMutexLock lock(mu_);
    last_ = r;
  }

  int last() const ZS_EXCLUDES(mu_) {
    zs::ReaderMutexLock lock(mu_);
    return last_;
  }

 private:
  mutable zs::SharedMutex mu_;
  int last_ ZS_GUARDED_BY(mu_) = 0;
};

int main() {
  Mailbox m;
  m.Put(7);
  Routes r;
  r.Add(3);
  return m.Take() == 7 && r.last() == 3 ? 0 : 1;
}
