// Negative test: writing a ZS_GUARDED_BY field without holding its
// mutex must be rejected by -Wthread-safety. This is the bread-and-
// butter defect the guarded-field annotations in src/runtime/ and
// src/obs/ exist to catch.
#include "common/sync.h"

class Account {
 public:
  // Defect: no zs::MutexLock on mu_ before touching balance_.
  void Deposit(int amount) { balance_ += amount; }

  int balance() const {
    zs::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable zs::Mutex mu_;
  int balance_ ZS_GUARDED_BY(mu_) = 0;
};

int main() {
  Account a;
  a.Deposit(1);
  return a.balance();
}
