// Negative test: calling a ZS_EXCLUDES(mu_) method while holding mu_
// must be rejected by -Wthread-safety. This is the self-deadlock shape
// (public API re-entered from under its own lock) that EXCLUDES
// annotations on StreamRuntime's public methods guard against.
#include "common/sync.h"

class Worker {
 public:
  void Publish() ZS_EXCLUDES(mu_) {
    zs::MutexLock lock(mu_);
    ++published_;
  }

  // Defect: Publish would deadlock re-acquiring the held mu_.
  void Broken() {
    zs::MutexLock lock(mu_);
    Publish();
  }

 private:
  zs::Mutex mu_;
  int published_ ZS_GUARDED_BY(mu_) = 0;
};

int main() {
  Worker w;
  w.Broken();
  return 0;
}
