# Compile-fail driver for the sync.h thread-safety annotations, invoked
# by CTest as `cmake -DCXX=... -DSRC=... -DINC=... -DEXPECT=... -P
# check.cmake` (see tests/CMakeLists.txt).
#
# EXPECT=fail asserts BOTH directions a naive harness gets wrong:
#   1. the source is rejected, AND the diagnostic really comes from the
#      thread-safety analysis (not an unrelated syntax error), and
#   2. the same source compiles clean once the analysis is off — so the
#      case tests the annotation, not broken C++.
# EXPECT=pass is the positive control: correctly locked code must be
# accepted with the analysis on, proving the gate can distinguish.

foreach(var CXX SRC INC EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check.cmake: missing -D${var}=...")
  endif()
endforeach()

set(_base_cmd "${CXX}" -std=c++20 -fsyntax-only "-I${INC}" "${SRC}")

execute_process(
  COMMAND ${_base_cmd} -Wthread-safety -Werror=thread-safety
  RESULT_VARIABLE _rc
  ERROR_VARIABLE _err
  OUTPUT_QUIET)

if(EXPECT STREQUAL "fail")
  if(_rc EQUAL 0)
    message(FATAL_ERROR
      "expected a thread-safety diagnostic for ${SRC}, but it compiled "
      "clean — the annotation under test is not being enforced")
  endif()
  if(NOT _err MATCHES "thread-safety")
    message(FATAL_ERROR
      "${SRC} failed to compile, but not from the thread-safety "
      "analysis; the case is broken C++, not a negative test:\n${_err}")
  endif()
  execute_process(
    COMMAND ${_base_cmd} -Wno-thread-safety
    RESULT_VARIABLE _rc_off
    ERROR_VARIABLE _err_off
    OUTPUT_QUIET)
  if(NOT _rc_off EQUAL 0)
    message(FATAL_ERROR
      "${SRC} does not compile even with the analysis disabled; the "
      "case must be valid C++ apart from the locking defect:\n${_err_off}")
  endif()
  message(STATUS "OK: ${SRC} rejected by -Wthread-safety as intended")
elseif(EXPECT STREQUAL "pass")
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
      "positive control ${SRC} was rejected under -Wthread-safety; "
      "either sync.h annotations regressed or the analysis is "
      "misconfigured:\n${_err}")
  endif()
  message(STATUS "OK: ${SRC} accepted under -Wthread-safety")
else()
  message(FATAL_ERROR "check.cmake: EXPECT must be 'fail' or 'pass', "
    "got '${EXPECT}'")
endif()
