// Negative test: calling a ZS_REQUIRES(mu_) method without holding the
// mutex must be rejected by -Wthread-safety. This is the contract the
// *Locked-style helpers in src/runtime/ (e.g. MpscRingQueue::Place)
// rely on instead of re-acquiring internally.
#include "common/sync.h"

class Table {
 public:
  void RehashLocked() ZS_REQUIRES(mu_) { ++generation_; }

  // Defect: caller promises nothing but invokes the locked helper.
  void Broken() { RehashLocked(); }

 private:
  zs::Mutex mu_;
  int generation_ ZS_GUARDED_BY(mu_) = 0;
};

int main() {
  Table t;
  t.Broken();
  return 0;
}
