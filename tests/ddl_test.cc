// DDL statement parsing, catalog execution, and structured diagnostics:
// malformed PATTERN / CREATE STREAM inputs must report stable error
// codes (query/error_codes.h) and correct 1-based line/column.
#include <gtest/gtest.h>

#include "query/ddl.h"
#include "query/error_codes.h"
#include "query/parser.h"
#include "test_util.h"

namespace zstream {
namespace {

// ---------------------------------------------------------------------
// DDL parsing
// ---------------------------------------------------------------------

TEST(Ddl, ParseCreateStream) {
  auto stmt = ParseDdl(
      "CREATE STREAM stock (sym STRING, price DOUBLE, volume INT, "
      "ok BOOL)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, DdlKind::kCreateStream);
  EXPECT_EQ(stmt->name, "stock");
  ASSERT_EQ(stmt->fields.size(), 4u);
  EXPECT_EQ(stmt->fields[0].name, "sym");
  EXPECT_EQ(stmt->fields[0].type, ValueType::kString);
  EXPECT_EQ(stmt->fields[1].type, ValueType::kDouble);
  EXPECT_EQ(stmt->fields[2].type, ValueType::kInt64);
  EXPECT_EQ(stmt->fields[3].type, ValueType::kBool);
}

TEST(Ddl, ParseCreateQueryKeepsQueryText) {
  auto stmt = ParseDdl(
      "CREATE QUERY q ON stock AS PATTERN A;B WITHIN 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, DdlKind::kCreateQuery);
  EXPECT_EQ(stmt->name, "q");
  EXPECT_EQ(stmt->stream, "stock");
  EXPECT_EQ(stmt->query_text, "PATTERN A;B WITHIN 10");
  ASSERT_TRUE(stmt->query.has_value());
  EXPECT_EQ(stmt->query->window, 10);
}

TEST(Ddl, ParseDropAndShow) {
  EXPECT_EQ(ParseDdl("DROP QUERY q")->kind, DdlKind::kDropQuery);
  EXPECT_EQ(ParseDdl("DROP STREAM s")->kind, DdlKind::kDropStream);
  EXPECT_EQ(ParseDdl("SHOW QUERIES")->kind, DdlKind::kShowQueries);
  EXPECT_EQ(ParseDdl("SHOW STREAMS")->kind, DdlKind::kShowStreams);
  EXPECT_EQ(ParseDdl("PATTERN A;B WITHIN 5")->kind, DdlKind::kSelect);
}

TEST(Ddl, ParseShowPlanRecordsNameLocation) {
  auto stmt = ParseDdl("SHOW PLAN rally");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, DdlKind::kShowPlan);
  EXPECT_EQ(stmt->name, "rally");
  EXPECT_EQ(stmt->name_line, 1);
  EXPECT_EQ(stmt->name_column, 11);

  // Missing name and trailing garbage are coded parse errors.
  auto missing = ParseDdl("SHOW PLAN");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().error_code(), errc::kDdlExpectedIdent);
  auto trailing = ParseDdl("SHOW PLAN rally extra");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().error_code(), errc::kParseTrailingInput);
}

TEST(Ddl, ShowPlanReturnsExplainText) {
  ZStream zs;
  ASSERT_TRUE(zs.Execute("CREATE STREAM stock "
                         "(id INT, name STRING, price DOUBLE, volume INT, "
                         "ts INT)")
                  .ok());
  ASSERT_TRUE(zs.Execute("CREATE QUERY q ON stock AS "
                         "PATTERN A;B WHERE A.price < B.price WITHIN 10")
                  .ok());
  auto shown = zs.Execute("SHOW PLAN q");
  ASSERT_TRUE(shown.ok()) << shown.status();
  EXPECT_EQ(shown->kind, DdlKind::kShowPlan);
  EXPECT_EQ(shown->name, "q");
  ASSERT_NE(shown->query, nullptr);
  EXPECT_EQ(shown->message, shown->query->Explain());
  EXPECT_NE(shown->message.find("stream=stock"), std::string::npos);
}

TEST(Ddl, ShowPlanUnknownQueryReportsCodeAndLocation) {
  ZStream zs;
  auto missing = zs.Execute("SHOW PLAN ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_EQ(missing.status().error_code(), errc::kCatalogUnknownQuery);
  EXPECT_EQ(missing.status().line(), 1);
  EXPECT_EQ(missing.status().column(), 11);
}

// ---------------------------------------------------------------------
// Structured diagnostics: stable codes + line/column
// ---------------------------------------------------------------------

TEST(Diagnostics, MalformedPatternReportsLocationAndCode) {
  // Column 9 (1-based) holds "WITHIN" where a pattern must start.
  auto r = ParseQuery("PATTERN WITHIN 10");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(r.status().error_code(), errc::kParseExpectedPattern);
  EXPECT_EQ(r.status().line(), 1);
  EXPECT_EQ(r.status().column(), 9);
}

TEST(Diagnostics, MissingWithinReportsCode) {
  auto r = ParseQuery("PATTERN A;B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().error_code(), errc::kParseExpectedWithin);
  EXPECT_EQ(r.status().line(), 1);
  EXPECT_EQ(r.status().column(), 12);  // end of input
}

TEST(Diagnostics, MultiLineQueryReportsSecondLine) {
  auto r = ParseQuery("PATTERN A;B\nWITHIN oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().error_code(), errc::kParseBadDuration);
  EXPECT_EQ(r.status().line(), 2);
  EXPECT_EQ(r.status().column(), 8);  // "oops"
}

TEST(Diagnostics, UnknownTimeUnit) {
  auto r = ParseQuery("PATTERN A;B WITHIN 10 fortnights");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().error_code(), errc::kParseBadDuration);
  EXPECT_EQ(r.status().line(), 1);
  EXPECT_EQ(r.status().column(), 23);
}

TEST(Diagnostics, LexerErrorsCarryLocation) {
  auto bad_char = ParseQuery("PATTERN A;B WITHIN 10 RETURN @");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_EQ(bad_char.status().error_code(), errc::kLexUnexpectedChar);
  EXPECT_EQ(bad_char.status().line(), 1);
  EXPECT_EQ(bad_char.status().column(), 30);

  auto bad_string = ParseQuery("PATTERN A;B WHERE A.name = 'oops");
  ASSERT_FALSE(bad_string.ok());
  EXPECT_EQ(bad_string.status().error_code(),
            errc::kLexUnterminatedString);
  EXPECT_EQ(bad_string.status().column(), 28);
}

TEST(Diagnostics, OverflowingNumericLiteralDoesNotThrow) {
  // Regression: std::stod throws out_of_range on 300+-digit literals;
  // the exception-free lexer must saturate instead.
  const std::string huge(400, '9');
  auto r = ParseQuery("PATTERN A;B WHERE A.price < " + huge + " WITHIN 5");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Diagnostics, MalformedCreateStream) {
  auto missing_paren = ParseDdl("CREATE STREAM s sym STRING");
  ASSERT_FALSE(missing_paren.ok());
  EXPECT_EQ(missing_paren.status().error_code(), errc::kDdlExpectedToken);
  EXPECT_EQ(missing_paren.status().line(), 1);
  EXPECT_EQ(missing_paren.status().column(), 17);

  auto bad_type = ParseDdl("CREATE STREAM s (sym BLOB)");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().error_code(), errc::kDdlUnknownType);
  EXPECT_EQ(bad_type.status().line(), 1);
  EXPECT_EQ(bad_type.status().column(), 22);

  auto dup = ParseDdl("CREATE STREAM s (a INT, a INT)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().error_code(), errc::kDdlDuplicateField);
  EXPECT_EQ(dup.status().column(), 25);  // the second 'a', not its type

  auto empty = ParseDdl("CREATE STREAM s ()");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().error_code(), errc::kDdlEmptySchema);
}

TEST(Diagnostics, CreateQueryBodyKeepsStatementCoordinates) {
  // The query body starts mid-statement; its diagnostics must still
  // point into the full CREATE QUERY text, not a re-based substring.
  auto r = ParseDdl("CREATE QUERY q ON stock AS PATTERN A;B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().error_code(), errc::kParseExpectedWithin);
  EXPECT_EQ(r.status().line(), 1);
  EXPECT_EQ(r.status().column(), 39);  // end of the whole statement
}

TEST(Diagnostics, UnknownStatement) {
  auto r = ParseDdl("SELECT * FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().error_code(), errc::kDdlUnknownStatement);
}

TEST(Diagnostics, ToStringRendersCodeAndLocation) {
  auto r = ParseQuery("PATTERN WITHIN 10");
  ASSERT_FALSE(r.ok());
  const std::string s = r.status().ToString();
  EXPECT_NE(s.find("ZS-P0002"), std::string::npos) << s;
  EXPECT_NE(s.find("1:9"), std::string::npos) << s;
}

// ---------------------------------------------------------------------
// Catalog-level errors carry codes too
// ---------------------------------------------------------------------

TEST(Diagnostics, CatalogErrorsHaveStableCodes) {
  ZStream zs(testing::Stock("x", 1, 1)->schema());
  EXPECT_EQ(zs.Execute("DROP QUERY nope").status().error_code(),
            errc::kCatalogUnknownQuery);
  EXPECT_EQ(zs.Execute("DROP STREAM nope").status().error_code(),
            errc::kCatalogUnknownStream);
  ASSERT_TRUE(zs.Execute("CREATE STREAM s2 (a INT)").ok());
  EXPECT_EQ(zs.Execute("CREATE STREAM s2 (a INT)").status().error_code(),
            errc::kCatalogDuplicateStream);
  ASSERT_TRUE(
      zs.Execute("CREATE QUERY q ON s2 AS PATTERN A;B WITHIN 5").ok());
  EXPECT_EQ(zs.Execute("CREATE QUERY q ON s2 AS PATTERN A;B WITHIN 5")
                .status()
                .error_code(),
            errc::kCatalogDuplicateQuery);
  EXPECT_EQ(zs.Execute("DROP STREAM s2").status().error_code(),
            errc::kCatalogStreamInUse);
}

}  // namespace
}  // namespace zstream
