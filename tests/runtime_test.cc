// Concurrency tests for runtime::StreamRuntime (designed to run clean
// under ThreadSanitizer; the CI `thread` job builds this binary with
// -fsanitize=thread).
//
// The determinism tests compare the sharded runtime's match set — not
// just the count — against a single-threaded CompiledQuery on the same
// pre-recorded trace, using CanonicalMatchKey on both sides.
#include "runtime/stream_runtime.h"

#include <random>
#include <thread>

#include "runtime/mpsc_queue.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

namespace zstream::testing {
namespace {

using runtime::BackpressurePolicy;
using runtime::CollectingMatchSink;
using runtime::MpscRingQueue;
using runtime::QueryId;
using runtime::QueryOptions;
using runtime::RoutePolicy;
using runtime::RuntimeOptions;
using runtime::StreamId;
using runtime::StreamRuntime;

// Paper Query 2's shape: three same-name trades with rising prices; the
// analyzer turns the name equalities into a partition key, which is the
// runtime's sharding axis.
constexpr char kPartitionedQuery[] =
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 100";

std::vector<EventPtr> ManyNameTrades(int64_t num_events, uint64_t seed) {
  StockGenOptions gen;
  gen.names.clear();
  gen.weights.clear();
  for (int i = 0; i < 16; ++i) {
    gen.names.push_back("SYM" + std::to_string(i));
    gen.weights.push_back(1.0);
  }
  gen.num_events = num_events;
  gen.seed = seed;
  return GenerateStockTrades(gen);
}

/// Single-threaded reference: match keys of `text` over `events`.
std::vector<std::string> SingleThreadedKeys(
    const SchemaPtr& schema, const std::string& text,
    const std::vector<EventPtr>& events) {
  ZStream zs(schema);
  auto query = zs.Compile(text);
  EXPECT_TRUE(query.ok()) << query.status();
  std::vector<std::string> keys;
  (*query)->SetMatchCallback([&](Match&& m) {
    keys.push_back(runtime::CanonicalMatchKey(m));
  });
  for (const EventPtr& e : events) (*query)->Push(e);
  (*query)->Finish();
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(MpscRingQueue, OrdersAndBounds) {
  MpscRingQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_TRUE(q.TryPush(4));
  EXPECT_FALSE(q.TryPush(5));  // full
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.TryPush(6));
  EXPECT_EQ(q.PopBatch(&out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{4, 6}));
  q.Close();
  EXPECT_FALSE(q.TryPush(7));
  EXPECT_EQ(q.PopBatch(&out, 10), 0u);  // closed and drained
}

TEST(MpscRingQueue, ManyProducersDeliverEverything) {
  MpscRingQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p);
    });
  }
  int64_t got = 0;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (q.PopBatch(&batch, 128) > 0) {
      got += static_cast<int64_t>(batch.size());
    }
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(got, kProducers * kPerProducer);
}

TEST(StreamRuntime, ShardedStockMatchesEqualSingleThreaded) {
  const auto events = ManyNameTrades(20000, 99);
  const auto expected =
      SingleThreadedKeys(StockSchema(), kPartitionedQuery, events);
  ASSERT_FALSE(expected.empty());

  RuntimeOptions options;
  options.num_shards = 4;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());

  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kPartitionedQuery, {}, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  for (const EventPtr& e : events) {
    ASSERT_TRUE((*rt)->Ingest(*stream, e));
  }
  ASSERT_TRUE((*rt)->Flush().ok());

  EXPECT_EQ(sink.SortedKeys(), expected);
  auto matches = (*rt)->query_matches(*id);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, expected.size());
  auto shard_count = (*rt)->query_shard_count(*id);
  ASSERT_TRUE(shard_count.ok());
  EXPECT_EQ(*shard_count, 4);
  auto peak = (*rt)->query_peak_bytes(*id);
  ASSERT_TRUE(peak.ok());
  EXPECT_GT(*peak, 0);
}

TEST(StreamRuntime, IngestBatchEqualsSingleThreaded) {
  const auto events = ManyNameTrades(20000, 7);
  const auto expected =
      SingleThreadedKeys(StockSchema(), kPartitionedQuery, events);

  RuntimeOptions options;
  options.num_shards = 4;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kPartitionedQuery, {}, qopts);
  ASSERT_TRUE(id.ok());

  EXPECT_EQ((*rt)->IngestBatch(*stream, events), 0u);
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);
}

TEST(StreamRuntime, MultiProducerKeyPartitionedPushIsExact) {
  const auto events = ManyNameTrades(20000, 123);
  const auto expected =
      SingleThreadedKeys(StockSchema(), kPartitionedQuery, events);
  ASSERT_FALSE(expected.empty());

  RuntimeOptions options;
  options.num_shards = 4;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kPartitionedQuery, {}, qopts);
  ASSERT_TRUE(id.ok());

  // Four producers, each owning the symbols that hash to it: every
  // partition key still sees its events in timestamp order, so the
  // match set must be exact.
  ConcurrentDriveOptions drive;
  drive.num_producers = 4;
  drive.partition_field = StockSchema()->FieldIndex("name");
  ASSERT_GE(drive.partition_field, 0);
  StreamRuntime* raw = rt->get();
  const StreamId sid = *stream;
  const auto result = DriveConcurrently(
      events, drive,
      [raw, sid](const EventPtr& e) { return raw->Ingest(sid, e); });
  EXPECT_EQ(result.rejected, 0u);
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);
}

TEST(StreamRuntime, WebLogQuery8MatchesEqualSingleThreaded) {
  constexpr char kQuery8[] =
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip = Course.ip "
      "WITHIN 10 hours";
  WebLogGenOptions gen;
  gen.total_records = 120000;
  gen.publication_accesses = 550;
  gen.project_accesses = 930;
  gen.course_accesses = 1290;
  gen.num_ips = 120;
  gen.num_burst_ips = 2;
  const auto events = GenerateWebLog(gen);
  const auto expected = SingleThreadedKeys(WebLogSchema(), kQuery8, events);
  ASSERT_FALSE(expected.empty());

  RuntimeOptions options;
  options.num_shards = 4;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("weblog", WebLogSchema());
  ASSERT_TRUE(stream.ok());
  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kQuery8, {}, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  EXPECT_EQ((*rt)->IngestBatch(*stream, events), 0u);
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);
}

TEST(StreamRuntime, RegisterUnregisterWhileIngesting) {
  const auto events = ManyNameTrades(30000, 5);
  const auto expected =
      SingleThreadedKeys(StockSchema(), kPartitionedQuery, events);

  RuntimeOptions options;
  options.num_shards = 4;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());

  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto primary = (*rt)->RegisterQuery(*stream, kPartitionedQuery, {}, qopts);
  ASSERT_TRUE(primary.ok());

  StreamRuntime* raw = rt->get();
  const StreamId sid = *stream;
  std::thread producer([raw, sid, &events] {
    for (const EventPtr& e : events) raw->Ingest(sid, e);
  });

  // Churn secondary queries (one keyless/pinned, one broadcast) while
  // the producer runs; their counts depend on registration timing, but
  // the primary query's match set must stay exact and nothing may race.
  constexpr char kKeyless[] =
      "PATTERN X;Y WHERE X.name = 'SYM0' AND Y.name = 'SYM1' "
      "AND X.price > Y.price WITHIN 20";
  for (int round = 0; round < 5; ++round) {
    auto secondary = (*rt)->RegisterQuery(*stream, kKeyless);
    ASSERT_TRUE(secondary.ok()) << secondary.status();
    QueryOptions broadcast;
    broadcast.route = RoutePolicy::kBroadcast;
    auto tertiary = (*rt)->RegisterQuery(*stream, kKeyless, {}, broadcast);
    ASSERT_TRUE(tertiary.ok());
    auto removed = (*rt)->UnregisterQuery(*secondary);
    ASSERT_TRUE(removed.ok());
    auto removed2 = (*rt)->UnregisterQuery(*tertiary);
    ASSERT_TRUE(removed2.ok());
  }

  producer.join();
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);
}

TEST(StreamRuntime, BackpressureDropNewestCountsExactly) {
  RuntimeOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  options.backpressure = BackpressurePolicy::kDropNewest;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  auto id = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.name = B.name WITHIN 10");
  ASSERT_TRUE(id.ok());

  // Park the only worker so the queue fills deterministically.
  auto gate = (*rt)->PauseShard(0);
  ASSERT_NE(gate, nullptr);
  gate->WaitParked();

  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if ((*rt)->Ingest(*stream, Stock("SYM", 10.0, i))) ++accepted;
  }
  EXPECT_EQ(accepted, 8);  // ring capacity

  gate->Open();
  ASSERT_TRUE((*rt)->Flush().ok());
  const auto stats = (*rt)->Stats();
  EXPECT_EQ(stats.events_ingested, 20u);
  EXPECT_EQ(stats.events_processed, 8u);
  EXPECT_EQ(stats.events_dropped, 12u);
  EXPECT_EQ(stats.events_processed + stats.events_dropped,
            stats.events_ingested);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].events_dropped, 12u);
}

TEST(StreamRuntime, BackpressureBlockLosesNothing) {
  RuntimeOptions options;
  options.num_shards = 1;
  options.queue_capacity = 4;
  options.backpressure = BackpressurePolicy::kBlock;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  auto id = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.name = B.name WITHIN 10");
  ASSERT_TRUE(id.ok());

  auto gate = (*rt)->PauseShard(0);
  ASSERT_NE(gate, nullptr);
  gate->WaitParked();

  StreamRuntime* raw = rt->get();
  const StreamId sid = *stream;
  std::thread producer([raw, sid] {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(raw->Ingest(sid, Stock("SYM", 10.0, 1000 + i)));
    }
  });
  gate->Open();
  producer.join();
  ASSERT_TRUE((*rt)->Flush().ok());
  const auto stats = (*rt)->Stats();
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_EQ(stats.events_processed, 64u);
}

TEST(StreamRuntime, MergedStatsReplanPreservesMatchSet) {
  // C-rare workload where the initial left-deep plan is the wrong shape;
  // merged windowed stats must trigger a switch without losing or
  // duplicating matches (Section 5.3 under concurrency).
  StockGenOptions gen;
  gen.names = {"A", "B", "C"};
  gen.weights = {50.0, 50.0, 1.0};
  gen.num_events = 8000;
  gen.seed = 17;
  const auto events = GenerateStockTrades(gen);

  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 30");
  const PhysicalPlan initial = LeftDeepPlan(*p);
  std::vector<std::string> expected;
  {
    auto engine = Engine::Create(p, initial);
    ASSERT_TRUE(engine.ok());
    (*engine)->SetMatchCallback([&](Match&& m) {
      expected.push_back(runtime::CanonicalMatchKey(m));
    });
    for (const EventPtr& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    std::sort(expected.begin(), expected.end());
  }
  ASSERT_FALSE(expected.empty());

  RuntimeOptions options;
  options.num_shards = 2;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());

  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  qopts.enable_replan = true;
  qopts.replan.drift_threshold = 0.4;
  qopts.replan.improvement_threshold = 0.05;
  auto id = (*rt)->RegisterQuery(*stream, p, initial, {}, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  // First half, then a merged replan, then the rest.
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*rt)->Ingest(*stream, events[i]));
  }
  ASSERT_TRUE((*rt)->Flush().ok());
  auto switched = (*rt)->ReplanQuery(*id);
  ASSERT_TRUE(switched.ok()) << switched.status();
  EXPECT_TRUE(*switched);  // the skew must beat the uniform defaults
  for (size_t i = half; i < events.size(); ++i) {
    ASSERT_TRUE((*rt)->Ingest(*stream, events[i]));
  }
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);
}

TEST(StreamRuntime, StartRuntimeFacade) {
  ZStream zs(StockSchema());
  auto rt = zs.StartRuntime();
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto stream = (*rt)->stream("default");
  ASSERT_TRUE(stream.ok());
  auto id = (*rt)->RegisterQuery(
      *stream,
      "PATTERN A;B WHERE A.name = B.name AND A.price < B.price WITHIN 50");
  ASSERT_TRUE(id.ok()) << id.status();
  const auto events = ManyNameTrades(5000, 3);
  EXPECT_EQ((*rt)->IngestBatch(*stream, events), 0u);
  ASSERT_TRUE((*rt)->Flush().ok());
  auto matches = (*rt)->query_matches(*id);
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(*matches, 0u);
  const auto stats = (*rt)->Stats();
  EXPECT_EQ(stats.events_processed, events.size());
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput_eps\""), std::string::npos);
  (*rt)->Stop();
  EXPECT_FALSE((*rt)->Ingest(*stream, events.front()));
  EXPECT_TRUE((*rt)->Flush().IsFailedPrecondition());
}

// The facade binds every catalog stream under its name, queries
// register per stream (addressable by name), and events route only to
// their own stream's queries.
TEST(StreamRuntime, FacadeBindsAllCatalogStreams) {
  ZStream zs;
  ASSERT_TRUE(zs.catalog().CreateStream("stock", StockSchema()).ok());
  ASSERT_TRUE(zs.catalog().CreateStream("weblog", WebLogSchema()).ok());
  RuntimeOptions options;
  options.num_shards = 2;
  auto rt = zs.StartRuntime(options);
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ((*rt)->StreamNames(),
            (std::vector<std::string>{"stock", "weblog"}));

  auto stock_q = (*rt)->RegisterQuery(
      "stock", "PATTERN A;B WHERE A.price > B.price WITHIN 10");
  ASSERT_TRUE(stock_q.ok()) << stock_q.status();
  auto web_q = (*rt)->RegisterQuery(
      "weblog",
      "PATTERN Pub;Course WHERE Pub.category='publication' "
      "AND Course.category='course' AND Pub.ip = Course.ip WITHIN 100");
  ASSERT_TRUE(web_q.ok()) << web_q.status();
  EXPECT_FALSE((*rt)->RegisterQuery("nope", "PATTERN A;B WITHIN 1").ok());

  ASSERT_TRUE((*rt)->Ingest("stock", Stock("IBM", 100, 1)));
  ASSERT_TRUE((*rt)->Ingest("stock", Stock("Sun", 50, 2)));
  const auto web_event = [&](const char* ip, const char* cat,
                             Timestamp ts) {
    return EventBuilder(WebLogSchema())
        .Set("ip", ip)
        .Set("url", "/x")
        .Set("category", cat)
        .At(ts)
        .Build();
  };
  ASSERT_TRUE((*rt)->Ingest("weblog", web_event("1.2.3.4",
                                                "publication", 1)));
  ASSERT_TRUE((*rt)->Ingest("weblog", web_event("1.2.3.4", "course", 2)));
  EXPECT_FALSE((*rt)->Ingest("nope", Stock("IBM", 1, 3)));
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(*(*rt)->query_matches(*stock_q), 1u);
  EXPECT_EQ(*(*rt)->query_matches(*web_q), 1u);
}

// Regression: a MatchSink callback may call runtime accessors (which
// take control_mu_); Flush/Unregister must not hold that mutex while
// waiting on the workers, or this deadlocks.
TEST(StreamRuntime, SinkMayReenterRuntimeAccessors) {
  RuntimeOptions options;
  options.num_shards = 2;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());

  StreamRuntime* raw = rt->get();
  std::atomic<uint64_t> reentrant_reads{0};
  runtime::CallbackMatchSink sink([&](runtime::RuntimeMatch&& m) {
    auto matches = raw->query_matches(m.query);  // takes control_mu_
    if (matches.ok()) reentrant_reads.fetch_add(1);
    (void)raw->Stats();
  });
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kPartitionedQuery, {}, qopts);
  ASSERT_TRUE(id.ok());

  const auto events = ManyNameTrades(4000, 31);
  EXPECT_EQ((*rt)->IngestBatch(*stream, events), 0u);
  ASSERT_TRUE((*rt)->Flush().ok());  // must not deadlock
  EXPECT_GT(reentrant_reads.load(), 0u);
  auto removed = (*rt)->UnregisterQuery(*id);  // must not deadlock either
  ASSERT_TRUE(removed.ok());
}

TEST(CollectingMatchSink, TakeOrdersDeterministically) {
  runtime::CollectingMatchSink sink;
  auto make = [](QueryId q, Timestamp ts) {
    runtime::RuntimeMatch m;
    m.query = q;
    m.match.span = TimeSpan{ts, ts + 1};
    m.match.slots.push_back(Stock("S", 1.0, ts));
    return m;
  };
  // Published out of order, across two queries.
  sink.Publish(make(2, 30));
  sink.Publish(make(1, 20));
  sink.Publish(make(2, 10));
  sink.Publish(make(1, 5));
  const auto taken = sink.Take();
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_EQ(taken[0].query, 1);
  EXPECT_EQ(taken[0].match.span.start, 5);
  EXPECT_EQ(taken[1].match.span.start, 20);
  EXPECT_EQ(taken[2].query, 2);
  EXPECT_EQ(taken[2].match.span.start, 10);
  EXPECT_EQ(taken[3].match.span.start, 30);
  EXPECT_EQ(sink.size(), 0u);  // Take drains
}

TEST(StreamRuntime, ErrorsAreReported) {
  auto rt = StreamRuntime::Create();
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE((*rt)->stream("missing").status().IsNotFound());
  EXPECT_TRUE((*rt)->query_matches(42).status().IsNotFound());
  auto stream = (*rt)->AddStream("s", StockSchema());
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE((*rt)->AddStream("s", StockSchema()).ok());
  // kHashKey on a keyless pattern must be rejected.
  QueryOptions qopts;
  qopts.route = RoutePolicy::kHashKey;
  auto bad = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.price < B.price WITHIN 10", {}, qopts);
  EXPECT_FALSE(bad.ok());
  // Replan on a query registered without enable_replan.
  auto id = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.name = B.name WITHIN 10");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE((*rt)->ReplanQuery(*id).status().IsFailedPrecondition());
}

TEST(StreamRuntime, ReorderSlackRestoresOrderAtIngest) {
  // A cross-symbol (keyless) query is order-sensitive: without the
  // Section-4.1 stage at the shard ingest path, interleaved producers
  // would lose late events. With RuntimeOptions::reorder_slack the
  // shuffled replay must produce the exact in-order match set.
  constexpr char kSpread[] =
      "PATTERN X;Y WHERE X.price < Y.price WITHIN 5";
  std::vector<EventPtr> events;
  for (int i = 0; i < 2000; ++i) {
    events.push_back(Stock("SYM" + std::to_string(i % 4),
                           (i * 37) % 100, i));
  }
  const auto expected = SingleThreadedKeys(StockSchema(), kSpread, events);
  ASSERT_FALSE(expected.empty());

  // Shuffle within a bounded disorder window of 8 timestamps.
  std::vector<EventPtr> shuffled = events;
  std::mt19937 rng(7);
  for (size_t i = 0; i + 8 < shuffled.size(); i += 8) {
    std::shuffle(shuffled.begin() + static_cast<long>(i),
                 shuffled.begin() + static_cast<long>(i + 8), rng);
  }

  RuntimeOptions options;
  options.num_shards = 2;
  options.reorder_slack = 16;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  CollectingMatchSink sink;
  QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kSpread, {}, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  for (const EventPtr& e : shuffled) {
    ASSERT_TRUE((*rt)->Ingest(*stream, e));
  }
  ASSERT_TRUE((*rt)->Flush().ok());
  EXPECT_EQ(sink.SortedKeys(), expected);

  const runtime::RuntimeStats stats = (*rt)->Stats();
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.pending, 0u);  // Flush drained the stage
}

TEST(StreamRuntime, UnregisterFlushesReorderedEvents) {
  // Events still buffered in the reorder stage must reach the engine
  // before it retires, so UnregisterQuery's final match count covers
  // everything ingested beforehand.
  RuntimeOptions options;
  options.num_shards = 1;
  options.reorder_slack = 1000;  // holds everything below ts max-1000
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  auto id = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.price < B.price WITHIN 10");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*rt)->Ingest(*stream, Stock("IBM", 1.0, 1)));
  ASSERT_TRUE((*rt)->Ingest(*stream, Stock("IBM", 2.0, 2)));
  // Both events sit inside the reorder buffer (slack >> max ts seen).
  auto final_matches = (*rt)->UnregisterQuery(*id);
  ASSERT_TRUE(final_matches.ok()) << final_matches.status();
  EXPECT_EQ(*final_matches, 1u);
}

TEST(StreamRuntime, ReorderLateDropsAreCountedAndExported) {
  RuntimeOptions options;
  options.num_shards = 1;
  options.reorder_slack = 5;
  auto rt = StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  auto id = (*rt)->RegisterQuery(
      *stream, "PATTERN A;B WHERE A.price < B.price WITHIN 10");
  ASSERT_TRUE(id.ok());

  // ts=200 advances the release watermark past ts=100, which the stage
  // emits; ts=50 then arrives below the emitted frontier — more than
  // the slack allows late — and must be dropped and counted.
  ASSERT_TRUE((*rt)->Ingest(*stream, Stock("IBM", 1.0, 100)));
  ASSERT_TRUE((*rt)->Ingest(*stream, Stock("IBM", 2.0, 200)));
  ASSERT_TRUE((*rt)->Ingest(*stream, Stock("IBM", 3.0, 50)));
  ASSERT_TRUE((*rt)->Flush().ok());

  const runtime::RuntimeStats stats = (*rt)->Stats();
  EXPECT_EQ(stats.late_dropped, 1u);
  EXPECT_EQ(stats.pending, 0u);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"late_dropped\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pending\": 0"), std::string::npos);
}

}  // namespace
}  // namespace zstream::testing
