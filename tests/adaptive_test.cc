// Plan adaptation (Section 5.3): drift detection, the improvement gate,
// and end-to-end adaptive execution correctness.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MatchKey;
using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

TEST(AdaptiveController, NoReplanWithoutDrift) {
  const PatternPtr p = MustAnalyze("PATTERN A;B;C WITHIN 10");
  StatsCatalog stats(3, 10.0);
  AdaptiveController ctl(p, AdaptiveOptions{});
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  ctl.OnPlanInstalled(*plan, stats);
  EXPECT_FALSE(ctl.MaybeReplan(stats).has_value());
  EXPECT_EQ(ctl.replan_evaluations(), 0);
}

TEST(AdaptiveController, DriftTriggersReplanAndSwitch) {
  const PatternPtr p = MustAnalyze("PATTERN A;B;C WITHIN 10");
  StatsCatalog initial(3, 10.0);
  initial.set_rate(0, 0.01);  // left-deep optimal
  AdaptiveController ctl(p, AdaptiveOptions{.drift_threshold = 0.5,
                                            .improvement_threshold = 0.05});
  Planner planner(p, &initial);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain(*p), "[[A ; B] ; C]");
  ctl.OnPlanInstalled(*plan, initial);

  StatsCatalog shifted(3, 10.0);
  shifted.set_rate(0, 1.0);
  shifted.set_rate(2, 0.01);  // now right-deep optimal
  auto next = ctl.MaybeReplan(shifted);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->Explain(*p), "[A ; [B ; C]]");
  EXPECT_EQ(ctl.replan_evaluations(), 1);
}

TEST(AdaptiveController, ImprovementGateBlocksMarginalSwitches) {
  const PatternPtr p = MustAnalyze("PATTERN A;B;C WITHIN 10");
  StatsCatalog initial(3, 10.0);
  initial.set_rate(0, 0.01);
  AdaptiveController ctl(
      p, AdaptiveOptions{.drift_threshold = 0.1,
                         .improvement_threshold = 0.99});
  Planner planner(p, &initial);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  ctl.OnPlanInstalled(*plan, initial);

  StatsCatalog shifted(3, 10.0);
  shifted.set_rate(0, 0.02);  // drift past threshold, same optimal plan
  EXPECT_FALSE(ctl.MaybeReplan(shifted).has_value());
  EXPECT_EQ(ctl.replan_evaluations(), 1);
  // Baseline reset: immediately re-checking does not re-plan again.
  EXPECT_FALSE(ctl.MaybeReplan(shifted).has_value());
  EXPECT_EQ(ctl.replan_evaluations(), 1);
}

std::vector<EventPtr> ThreePhaseStream(int per_phase) {
  // Phase 1: A rare. Phase 2: uniform. Phase 3: C rare.
  std::vector<EventPtr> events;
  Random rng(99);
  Timestamp ts = 0;
  auto phase = [&](double wa, double wb, double wc, int n) {
    const double total = wa + wb + wc;
    for (int i = 0; i < n; ++i) {
      double pick = rng.NextDouble() * total;
      const char* name = pick < wa ? "A" : (pick < wa + wb ? "B" : "C");
      events.push_back(Stock(name, rng.Uniform(100), ++ts));
    }
  };
  phase(1, 50, 50, per_phase);
  phase(1, 1, 1, per_phase);
  phase(50, 50, 1, per_phase);
  return events;
}

TEST(AdaptiveEngine, SwitchesPlansAndKeepsMatchSetExact) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 30");
  const auto events = ThreePhaseStream(3000);
  const auto baseline = RunPlan(p, LeftDeepPlan(*p), events);

  EngineOptions options;
  options.adaptive = true;
  options.adaptive_options.drift_threshold = 0.4;
  options.adaptive_options.improvement_threshold = 0.05;
  options.adaptive_options.check_every_rounds = 4;
  auto engine = Engine::Create(p, LeftDeepPlan(*p), options);
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> keys;
  (*engine)->SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (const auto& e : events) (*engine)->Push(e);
  (*engine)->Finish();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, baseline);
  // The rate flip from A-rare to C-rare must have caused a switch.
  EXPECT_GE((*engine)->plan_switches(), 1u);
}

TEST(WindowedClassStatsTest, WindowedRatesFollowPhaseChanges) {
  WindowedClassStats stats(2, 0, /*bucket_width=*/100, /*num_buckets=*/4);
  // Phase 1: class 0 dominant.
  for (Timestamp ts = 0; ts < 1000; ++ts) {
    stats.OnEvent(ts);
    stats.OnClassAdmit(ts % 10 == 0 ? 1 : 0);
  }
  Pattern dummy;
  dummy.classes.resize(2);
  dummy.window = 100;
  const StatsCatalog defaults(2, 100.0);
  const StatsCatalog s1 = stats.Snapshot(dummy, defaults);
  EXPECT_GT(s1.rate(0), s1.rate(1) * 5);
  // Phase 2: class 1 dominant; the window forgets phase 1.
  for (Timestamp ts = 1000; ts < 3000; ++ts) {
    stats.OnEvent(ts);
    stats.OnClassAdmit(ts % 10 == 0 ? 0 : 1);
  }
  const StatsCatalog s2 = stats.Snapshot(dummy, defaults);
  EXPECT_GT(s2.rate(1), s2.rate(0) * 5);
}

TEST(StatsCatalogTest, MaxRelativeChange) {
  StatsCatalog a(2, 10.0), b(2, 10.0);
  a.set_rate(0, 1.0);
  b.set_rate(0, 2.0);
  EXPECT_NEAR(a.MaxRelativeChange(b), 1.0, 1e-9);
  b.set_rate(0, 1.0);
  b.SetPairSel(0, 1, 0.5);
  EXPECT_NEAR(a.MaxRelativeChange(b), 0.5, 1e-9);
}

}  // namespace
}  // namespace zstream
