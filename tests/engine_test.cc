// Engine-level behaviour: the batch-iterator model, EAT purging and
// memory bounds, plan switching mid-stream, projections, statistics.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MatchKey;
using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

constexpr char kSeq3[] =
    "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
    "WITHIN 20";

std::vector<EventPtr> RandomStream(int n, uint64_t seed,
                                   std::vector<std::string> names = {
                                       "A", "B", "C"}) {
  Random rng(seed);
  std::vector<EventPtr> events;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Timestamp>(rng.Uniform(3));
    events.push_back(
        Stock(names[rng.Uniform(names.size())], rng.Uniform(100), ts));
  }
  return events;
}

TEST(Engine, BatchSizeDoesNotChangeResults) {
  const PatternPtr p = MustAnalyze(kSeq3);
  const auto events = RandomStream(500, 17);
  EngineOptions small;
  small.batch_size = 1;
  EngineOptions medium;
  medium.batch_size = 7;
  EngineOptions large;
  large.batch_size = 256;
  const auto a = RunPlan(p, LeftDeepPlan(*p), events, small);
  const auto b = RunPlan(p, LeftDeepPlan(*p), events, medium);
  const auto c = RunPlan(p, LeftDeepPlan(*p), events, large);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a.empty());
}

TEST(Engine, MemoryBoundedByWindowNotStreamLength) {
  const PatternPtr p = MustAnalyze(kSeq3);
  auto run = [&](int n) {
    auto engine = Engine::Create(p, LeftDeepPlan(*p));
    for (const auto& e : RandomStream(n, 5)) (*engine)->Push(e);
    (*engine)->Finish();
    return (*engine)->memory().peak_bytes();
  };
  const int64_t peak_small = run(2000);
  const int64_t peak_large = run(20000);
  // 10x the stream should not come close to 10x the memory.
  EXPECT_LT(peak_large, peak_small * 3);
}

TEST(Engine, FinishFlushesPendingBatch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  EngineOptions options;
  options.batch_size = 1000;  // never auto-triggers
  auto engine = Engine::Create(p, LeftDeepPlan(*p), options);
  (*engine)->Push(Stock("A", 1, 1));
  (*engine)->Push(Stock("B", 1, 2));
  EXPECT_EQ((*engine)->num_matches(), 0u);
  (*engine)->Finish();
  EXPECT_EQ((*engine)->num_matches(), 1u);
}

TEST(Engine, PlanSwitchPreservesMatchSet) {
  const PatternPtr p = MustAnalyze(kSeq3);
  const auto events = RandomStream(600, 23);

  const auto baseline = RunPlan(p, LeftDeepPlan(*p), events);

  // Same stream, but switch from left-deep to right-deep part-way.
  auto engine = Engine::Create(p, LeftDeepPlan(*p));
  std::vector<std::string> keys;
  (*engine)->SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == events.size() / 2) {
      ASSERT_TRUE((*engine)->SwitchPlan(RightDeepPlan(*p)).ok());
    }
    (*engine)->Push(events[i]);
  }
  (*engine)->Finish();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, baseline);
  EXPECT_EQ((*engine)->plan_switches(), 1u);
}

TEST(Engine, RepeatedPlanSwitchesStayCorrect) {
  const PatternPtr p = MustAnalyze(kSeq3);
  const auto events = RandomStream(600, 29);
  const auto baseline = RunPlan(p, LeftDeepPlan(*p), events);

  auto engine = Engine::Create(p, RightDeepPlan(*p));
  std::vector<std::string> keys;
  (*engine)->SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  const PhysicalPlan plans[] = {LeftDeepPlan(*p), RightDeepPlan(*p)};
  for (size_t i = 0; i < events.size(); ++i) {
    if (i % 97 == 96) {
      ASSERT_TRUE((*engine)->SwitchPlan(plans[(i / 97) % 2]).ok());
    }
    (*engine)->Push(events[i]);
  }
  (*engine)->Finish();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, baseline);
}

TEST(Engine, ProjectionEvaluatesReturnClause) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10 "
      "RETURN A.price, B.price, A.price - B.price");
  auto engine = Engine::Create(p, LeftDeepPlan(*p));
  std::vector<std::vector<Value>> rows;
  (*engine)->SetMatchCallback(
      [&](Match&& m) { rows.push_back(ProjectMatch(*p, m)); });
  (*engine)->Push(Stock("A", 30, 1));
  (*engine)->Push(Stock("B", 12, 2));
  (*engine)->Finish();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 18.0);
}

TEST(Engine, WindowedStatsTrackRatesAndSelectivities) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' AND A.price > B.price "
      "WITHIN 50");
  EngineOptions options;
  options.collect_stats = true;
  auto engine = Engine::Create(p, LeftDeepPlan(*p), options);
  Random rng(31);
  for (int i = 0; i < 4000; ++i) {
    // A twice as frequent as B.
    (*engine)->Push(Stock(rng.Bernoulli(2.0 / 3.0) ? "A" : "B",
                          rng.Uniform(100), i));
  }
  (*engine)->Finish();
  ASSERT_NE((*engine)->windowed_stats(), nullptr);
  const StatsCatalog defaults(2, 50.0);
  const StatsCatalog snap =
      (*engine)->windowed_stats()->Snapshot(*p, defaults);
  EXPECT_NEAR(snap.rate(0) / snap.rate(1), 2.0, 0.5);
  // Uniform independent prices: P(A.price > B.price) ~ 0.5.
  EXPECT_NEAR(snap.PairSel(0, 1), 0.5, 0.15);
}

TEST(Engine, PartitionedEngineMatchesSingleEngineSemantics) {
  // T1;T2 with full-coverage name equality: partitioned execution must
  // produce the same matches as an unpartitioned engine evaluating the
  // equality predicate directly.
  const std::string query =
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 50";
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  const PatternPtr direct = MustAnalyze(query, no_part);
  const PatternPtr parted = MustAnalyze(query);
  ASSERT_TRUE(parted->partition.has_value());

  const auto events = RandomStream(400, 41, {"X", "Y", "Z"});
  const auto baseline = RunPlan(direct, LeftDeepPlan(*direct), events);

  auto pe = PartitionedEngine::Create(parted, LeftDeepPlan(*parted));
  ASSERT_TRUE(pe.ok());
  std::vector<std::string> keys;
  (*pe)->SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (const auto& e : events) (*pe)->Push(e);
  (*pe)->Finish();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, baseline);
  EXPECT_GT((*pe)->num_partitions(), 1u);
}

// Regression (zstream_fuzz case: E0;(E1|E2) with E0.grp = E1.grp): hash
// routing an equality whose class sits in a disjunction branch loses
// the other branch's matches — its records are never indexed under any
// key, and probes for them never ran. Such equalities must not be hash
// routed; with and without hash indexes the match sets must agree.
TEST(Engine, DisjunctionBranchEqualityMatchesWithAndWithoutHash) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;(B|C) WHERE A.volume = 1 AND B.volume = 2 "
      "AND C.volume = 3 AND A.name = B.name WITHIN 10");
  const std::vector<EventPtr> events = {
      Stock("IBM", 1, 1, /*volume=*/1),
      Stock("Sun", 1, 2, /*volume=*/3),  // C branch: name pred vacuous
      Stock("Sun", 1, 3, /*volume=*/2),  // B branch: name mismatch
      Stock("IBM", 1, 4, /*volume=*/2),  // B branch: name matches
  };
  EngineOptions hash_on;
  EngineOptions hash_off;
  hash_off.use_hash_indexes = false;
  const auto with_hash = RunPlan(p, LeftDeepPlan(*p), events, hash_on);
  const auto without = RunPlan(p, LeftDeepPlan(*p), events, hash_off);
  EXPECT_EQ(with_hash, without);
  // (A@1, C@2) via the C branch and (A@1, B@4) via the B branch.
  EXPECT_EQ(with_hash.size(), 2u);
}

// Regression (zstream_fuzz): a non-aggregate predicate on the closure
// class that also references a class outside the KSEQ's operands can
// only attach above the KSEQ, where per-event qualification is
// impossible — it used to silently drop every match; now it is
// rejected as unsupported.
TEST(Engine, ClosurePredicateOutsideKseqOperandsIsRejected) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C;D WHERE A.volume = 1 AND B.volume = 2 "
      "AND C.volume = 3 AND D.volume = 4 AND B.price < D.price "
      "WITHIN 10");
  auto engine = Engine::Create(p, LeftDeepPlan(*p));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);

  // The same predicate against the KSEQ's own operands is supported.
  const PatternPtr ok = MustAnalyze(
      "PATTERN A;B*;C;D WHERE A.volume = 1 AND B.volume = 2 "
      "AND C.volume = 3 AND D.volume = 4 AND B.price < C.price "
      "WITHIN 10");
  EXPECT_TRUE(Engine::Create(ok, LeftDeepPlan(*ok)).ok());
}

}  // namespace
}  // namespace zstream
