// Reordering stage (Section 4.1's disorder handling) and the engine's
// late-event behaviour.
#include <gtest/gtest.h>

#include "exec/reorder.h"
#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

TEST(ReorderStage, EmitsInTimestampOrder) {
  std::vector<Timestamp> out;
  ReorderStage stage(5, [&](const EventPtr& e) {
    out.push_back(e->timestamp());
  });
  for (Timestamp ts : {3, 1, 2, 8, 6, 7, 12}) {
    stage.Push(EventBuilder(StockSchema()).At(ts).Build());
  }
  stage.Flush();
  EXPECT_EQ(out, (std::vector<Timestamp>{1, 2, 3, 6, 7, 8, 12}));
  EXPECT_EQ(stage.late_dropped(), 0u);
}

TEST(ReorderStage, DropsEventsBeyondSlack) {
  std::vector<Timestamp> out;
  ReorderStage stage(2, [&](const EventPtr& e) {
    out.push_back(e->timestamp());
  });
  stage.Push(EventBuilder(StockSchema()).At(10).Build());
  stage.Push(EventBuilder(StockSchema()).At(13).Build());  // emits <= 11
  stage.Push(EventBuilder(StockSchema()).At(9).Build());   // too late
  stage.Flush();
  EXPECT_EQ(out, (std::vector<Timestamp>{10, 13}));
  EXPECT_EQ(stage.late_dropped(), 1u);
}

TEST(ReorderStage, DuplicateTimestampsPreserved) {
  int count = 0;
  ReorderStage stage(5, [&](const EventPtr&) { ++count; });
  stage.Push(EventBuilder(StockSchema()).At(4).Build());
  stage.Push(EventBuilder(StockSchema()).At(4).Build());
  stage.Flush();
  EXPECT_EQ(count, 2);
}

std::vector<EventPtr> Shuffled(const std::vector<EventPtr>& sorted,
                               Duration max_disorder, uint64_t seed) {
  // Displace each event by a bounded random amount, then order by the
  // displaced position — bounded out-of-orderness.
  Random rng(seed);
  std::vector<std::pair<double, EventPtr>> keyed;
  for (const auto& e : sorted) {
    keyed.emplace_back(static_cast<double>(e->timestamp()) +
                           rng.NextDouble() *
                               static_cast<double>(max_disorder),
                       e);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<EventPtr> out;
  for (auto& [k, e] : keyed) out.push_back(e);
  return out;
}

TEST(EngineReorder, SlackRecoversShuffledStreamExactly) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 20");
  Random rng(6);
  std::vector<EventPtr> sorted;
  Timestamp ts = 0;
  for (int i = 0; i < 400; ++i) {
    ts += rng.Uniform(3);
    const char* names[] = {"A", "B", "C"};
    sorted.push_back(Stock(names[rng.Uniform(3)], rng.Uniform(50), ts));
  }
  const auto baseline = RunPlan(p, LeftDeepPlan(*p), sorted);
  ASSERT_FALSE(baseline.empty());

  const auto shuffled = Shuffled(sorted, 10, 7);
  EngineOptions options;
  options.reorder_slack = 12;  // > max disorder
  const auto reordered = RunPlan(p, LeftDeepPlan(*p), shuffled, options);
  EXPECT_EQ(reordered, baseline);
}

TEST(EngineReorder, WithoutSlackLateEventsAreDroppedNotCorrupting) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 20");
  auto engine = Engine::Create(p, LeftDeepPlan(*p));
  (*engine)->Push(Stock("A", 1, 10));
  (*engine)->Push(Stock("B", 1, 5));  // out of order: dropped
  (*engine)->Push(Stock("B", 1, 12));
  (*engine)->Finish();
  EXPECT_EQ((*engine)->late_events(), 1u);
  EXPECT_EQ((*engine)->num_matches(), 1u);  // (10, 12) only
}

TEST(EngineReorder, SlackDelaysButFinishFlushes) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 20");
  EngineOptions options;
  options.reorder_slack = 100;
  options.batch_size = 1;
  auto engine = Engine::Create(p, LeftDeepPlan(*p), options);
  (*engine)->Push(Stock("A", 1, 1));
  (*engine)->Push(Stock("B", 1, 2));
  // Everything is still pending inside the reorder stage.
  EXPECT_EQ((*engine)->num_matches(), 0u);
  (*engine)->Finish();
  EXPECT_EQ((*engine)->num_matches(), 1u);
}

}  // namespace
}  // namespace zstream
