// Property tests: every physical plan for a pattern — left-deep,
// right-deep, every enumerated bushy shape, the optimizer's pick and the
// NFA baseline — must produce exactly the brute-force reference match
// set, across randomized streams.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MatchKey;
using testing::MustAnalyze;
using testing::ReferenceMatcher;
using testing::RunPlan;
using testing::Stock;

std::vector<EventPtr> RandomStream(int n, uint64_t seed, int num_names,
                                   int max_gap = 3) {
  Random rng(seed);
  std::vector<EventPtr> events;
  Timestamp ts = 0;
  const std::string names = "ABCDEF";
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Timestamp>(rng.Uniform(
        static_cast<uint64_t>(max_gap)));
    events.push_back(Stock(std::string(1, names[rng.Uniform(
                               static_cast<uint64_t>(num_names))]),
                           rng.Uniform(100), ts));
  }
  return events;
}

std::vector<std::string> RunNfa(const PatternPtr& p,
                                const std::vector<EventPtr>& events) {
  auto nfa = NfaEngine::Create(p);
  if (!nfa.ok()) {
    ADD_FAILURE() << nfa.status().ToString();
    return {};
  }
  for (const auto& e : events) (*nfa)->Push(e);
  (*nfa)->Finish();
  // The NFA counts matches; for set comparison we only check counts.
  return {std::to_string((*nfa)->num_matches())};
}

class SeqProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeqProperty, AllPlansMatchReference) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND A.price > B.price WITHIN 25");
  const auto events = RandomStream(250, GetParam(), 3);
  ReferenceMatcher ref(p);
  const auto expected = ref.Run(events);

  EXPECT_EQ(RunPlan(p, LeftDeepPlan(*p), events), expected) << "left-deep";
  EXPECT_EQ(RunPlan(p, RightDeepPlan(*p), events), expected) << "right-deep";

  const StatsCatalog stats(p->num_classes(), 25.0);
  Planner planner(p, &stats);
  auto shapes = planner.EnumerateShapes();
  ASSERT_TRUE(shapes.ok());
  for (const PhysicalPlan& plan : *shapes) {
    EXPECT_EQ(RunPlan(p, plan, events), expected)
        << "shape: " << plan.Explain(*p);
  }

  const auto nfa_count = RunNfa(p, events);
  EXPECT_EQ(nfa_count[0], std::to_string(expected.size())) << "NFA";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqProperty,
                         ::testing::Range<uint64_t>(1, 13));

class Seq4Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Seq4Property, FourClassPlansAgree) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C;D WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND D.name='D' AND C.price > B.price AND C.price > D.price "
      "WITHIN 15");
  const auto events = RandomStream(200, GetParam(), 4);
  ReferenceMatcher ref(p);
  const auto expected = ref.Run(events);

  const StatsCatalog stats(p->num_classes(), 15.0);
  Planner planner(p, &stats);
  auto shapes = planner.EnumerateShapes();
  ASSERT_TRUE(shapes.ok());
  ASSERT_EQ(shapes->size(), 5u);  // Catalan(3)
  for (const PhysicalPlan& plan : *shapes) {
    EXPECT_EQ(RunPlan(p, plan, events), expected)
        << "shape: " << plan.Explain(*p);
  }
  EXPECT_EQ(RunNfa(p, events)[0], std::to_string(expected.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seq4Property,
                         ::testing::Range<uint64_t>(100, 108));

class NegationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NegationProperty, PushedAndTopAndNfaMatchReference) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND B.price > C.price WITHIN 25");
  const auto events = RandomStream(250, GetParam(), 3);
  ReferenceMatcher ref(p);
  const auto expected = ref.Run(events);

  // Pushed-down NSEQ records the negator in the match; compare positive
  // slots only.
  const auto strip = [](std::vector<std::string> keys) {
    for (std::string& k : keys) {
      std::string out;
      size_t pos = 0;
      while (pos < k.size() && k.find('|', pos) != std::string::npos) {
        const size_t bar = k.find('|', pos);
        const std::string part = k.substr(pos, bar - pos);
        if (part.rfind("1@", 0) != 0) out += part + "|";
        pos = bar + 1;
      }
      k = out;
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  const auto expected_stripped = strip(expected);
  EXPECT_EQ(strip(RunPlan(p, RightDeepPlan(*p), events)), expected_stripped)
      << "NSEQ pushed";
  EXPECT_EQ(strip(RunPlan(p, NegationTopPlan(*p), events)),
            expected_stripped)
      << "NEG on top";
  EXPECT_EQ(RunNfa(p, events)[0], std::to_string(expected.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegationProperty,
                         ::testing::Range<uint64_t>(200, 212));

class KleeneProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KleeneProperty, ClosureMatchesReference) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 20");
  const auto events = RandomStream(150, GetParam(), 3);
  ReferenceMatcher ref(p);
  const auto expected = ref.Run(events);
  EXPECT_EQ(RunPlan(p, LeftDeepPlan(*p), events), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KleeneProperty,
                         ::testing::Range<uint64_t>(300, 310));

class ConjProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConjProperty, ConjunctionMatchesReferenceCount) {
  // Reference enumerates in class order; conjunction is order-free, so
  // compare via a sequence-free reference: A&B pairs within the window
  // passing predicates.
  const PatternPtr p = MustAnalyze(
      "PATTERN A & B WHERE A.name='A' AND B.name='B' AND "
      "A.price > B.price WITHIN 25");
  const auto events = RandomStream(250, GetParam(), 2);

  // Direct quadratic reference.
  std::vector<EventPtr> as, bs;
  for (const auto& e : events) {
    if (e->value(1) == Value("A")) as.push_back(e);
    if (e->value(1) == Value("B")) bs.push_back(e);
  }
  size_t expected = 0;
  for (const auto& a : as) {
    for (const auto& b : bs) {
      const Timestamp lo = std::min(a->timestamp(), b->timestamp());
      const Timestamp hi = std::max(a->timestamp(), b->timestamp());
      if (hi - lo > 25) continue;
      if (a->value(2).AsDouble() > b->value(2).AsDouble()) ++expected;
    }
  }
  EXPECT_EQ(RunPlan(p, LeftDeepPlan(*p), events).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConjProperty,
                         ::testing::Range<uint64_t>(400, 410));

}  // namespace
}  // namespace zstream
