// Batch-boundary semantics: PushBatch (columnar ingest) must be
// observationally identical to event-at-a-time Push for every operator,
// for every split of the stream into spans, and for every engine batch
// size — including the corner cases that only show up at batch edges:
// WITHIN expiry exactly at a boundary, reorder-slack releases mid-batch,
// and empty / singleton batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::MatchKey;
using testing::ReferenceMatcher;
using testing::ResetStockIds;
using testing::RunPlan;
using testing::Stock;

// Feeds `events` split into spans of `span` via PushBatch (plus one
// empty batch at the end, which must be a no-op) and returns the sorted
// match keys.
std::vector<std::string> RunBatched(const PatternPtr& pattern,
                                    const PhysicalPlan& plan,
                                    const std::vector<EventPtr>& events,
                                    size_t span,
                                    EngineOptions options = {}) {
  auto engine = Engine::Create(pattern, plan, options);
  if (!engine.ok()) {
    ADD_FAILURE() << "engine create failed: " << engine.status().ToString();
    return {};
  }
  std::vector<std::string> keys;
  (*engine)->SetMatchCallback(
      [&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (size_t i = 0; i < events.size(); i += span) {
    const size_t n = std::min(span, events.size() - i);
    (*engine)->PushBatch(EventBatch{events.data() + i, n});
  }
  (*engine)->PushBatch(EventBatch{nullptr, 0});
  (*engine)->Finish();
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<EventPtr> MixedStream(int n, uint64_t seed, int num_names,
                                  int max_gap = 3) {
  Random rng(seed);
  std::vector<EventPtr> events;
  Timestamp ts = 0;
  const std::string names = "ABCDEF";
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Timestamp>(
        rng.Uniform(static_cast<uint64_t>(max_gap)));
    events.push_back(Stock(std::string(1, names[rng.Uniform(
                               static_cast<uint64_t>(num_names))]),
                           rng.Uniform(100), ts));
  }
  return events;
}

// One query per operator kind (SEQ, NSEQ, KSEQ variants, CONJ, DISJ,
// negation under disjunction -> NegFilter).
struct OperatorCase {
  const char* label;
  const char* query;
  int num_names;
};

const OperatorCase kOperatorCases[] = {
    {"seq",
     "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "AND A.price > B.price WITHIN 20",
     3},
    {"nseq",
     "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "WITHIN 20",
     3},
    {"kseq_star",
     "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "WITHIN 20",
     3},
    {"kseq_plus",
     "PATTERN A;B+;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "WITHIN 20",
     3},
    {"kseq_count",
     "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "WITHIN 20",
     3},
    {"conj",
     "PATTERN (A;B) & C WHERE A.name='A' AND B.name='B' AND C.name='C' "
     "WITHIN 20",
     3},
    {"disj",
     "PATTERN (A;B) | (C;D) WHERE A.name='A' AND B.name='B' "
     "AND C.name='C' AND D.name='D' WITHIN 20",
     4},
    {"neg_filter",
     "PATTERN (A;!B;C) | D WHERE A.name='A' AND B.name='B' "
     "AND C.name='C' AND D.name='D' WITHIN 20",
     4},
};

// The brute-force oracle enumerates in class order, which is only the
// semantics of pure sequence shapes (with negation / Kleene); for
// CONJ / DISJ shapes the serial engine execution is the reference.
bool OracleSupports(const std::string& label) {
  return label == "seq" || label == "nseq" || label.rfind("kseq", 0) == 0;
}

// Pushed-down NSEQ records the negator it proved harmless in the match
// payload (an Algorithm 2 artifact, see reference_test); drop negated
// class slots so oracle comparison sees positive bindings only.
std::vector<std::string> StripNegated(const Pattern& p,
                                      std::vector<std::string> keys) {
  const auto negated = p.NegatedClasses();
  if (negated.empty()) return keys;
  for (std::string& k : keys) {
    std::string out;
    size_t pos = 0;
    while (pos < k.size()) {
      const size_t bar = k.find('|', pos);
      if (bar == std::string::npos) {
        out += k.substr(pos);  // group suffix, if any
        break;
      }
      const std::string part = k.substr(pos, bar - pos);
      bool is_negated = false;
      for (const int nc : negated) {
        if (part.rfind(std::to_string(nc) + "@", 0) == 0) is_negated = true;
      }
      if (!is_negated) out += part + "|";
      pos = bar + 1;
    }
    k = out;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(BatchExec, EveryOperatorEqualsSerialAndOracleAcrossSplits) {
  for (const OperatorCase& c : kOperatorCases) {
    ResetStockIds();
    const PatternPtr p = MustAnalyze(c.query);
    const PhysicalPlan plan = LeftDeepPlan(*p);
    const auto events = MixedStream(120, /*seed=*/42, c.num_names);

    // Reference 1: event-at-a-time Push with batch_size 1 (an assembly
    // round after every event — no batching effects at all).
    EngineOptions serial;
    serial.batch_size = 1;
    const auto expected = RunPlan(p, plan, events, serial);

    // Reference 2: the brute-force matcher, where its semantics apply.
    if (OracleSupports(c.label)) {
      ReferenceMatcher ref(p);
      EXPECT_EQ(StripNegated(*p, expected), StripNegated(*p, ref.Run(events)))
          << c.label;
    }

    for (const size_t span : {size_t{1}, size_t{3}, size_t{17}, size_t{64},
                              events.size()}) {
      for (const int batch : {1, 7, 64}) {
        EngineOptions options;
        options.batch_size = batch;
        EXPECT_EQ(RunBatched(p, plan, events, span, options), expected)
            << c.label << " span=" << span << " batch_size=" << batch;
      }
    }
  }
}

TEST(BatchExec, WithinExpiryExactlyAtBatchEdge) {
  // Pairs whose span is exactly the window (A@t, B@t+W: a match, since
  // WITHIN is inclusive) and exactly one past it (never a match), laid
  // out so the trigger lands first-in-batch for every split tested. An
  // off-by-one in the EAT purge at the boundary flips these.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  const PhysicalPlan plan = LeftDeepPlan(*p);
  std::vector<EventPtr> events;
  for (Timestamp base = 0; base < 200; base += 25) {
    events.push_back(Stock("A", 1.0, base));
    events.push_back(Stock("B", 1.0, base + 10));  // exactly at window
    events.push_back(Stock("A", 1.0, base + 11));
    events.push_back(Stock("B", 1.0, base + 22));  // 11 apart: expired
  }
  EngineOptions serial;
  serial.batch_size = 1;
  const auto expected = RunPlan(p, plan, events, serial);
  ReferenceMatcher ref(p);
  EXPECT_EQ(expected, ref.Run(events));
  // One in-window pair per base, and no cross-base pairs (gaps > 10).
  EXPECT_EQ(expected.size(), 8u);

  for (const size_t span : {size_t{1}, size_t{2}, size_t{4}, size_t{5},
                            events.size()}) {
    for (const int batch : {1, 2, 3, 4, 64}) {
      EngineOptions options;
      options.batch_size = batch;
      EXPECT_EQ(RunBatched(p, plan, events, span, options), expected)
          << "span=" << span << " batch_size=" << batch;
    }
  }
}

TEST(BatchExec, ReorderSlackFlushMidBatch) {
  // Out-of-order input within the slack, pushed as batches: the reorder
  // stage releases events mid-batch as the frontier advances. The match
  // set must equal the in-order stream's, with nothing dropped.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 20");
  const PhysicalPlan plan = LeftDeepPlan(*p);
  auto events = MixedStream(90, /*seed=*/7, 3);
  // Swap adjacent pairs a few positions apart; the disorder stays
  // within a slack of 5 (MixedStream gaps are < 3).
  std::vector<EventPtr> shuffled = events;
  for (size_t i = 0; i + 1 < shuffled.size(); i += 3) {
    std::swap(shuffled[i], shuffled[i + 1]);
  }

  EngineOptions serial;
  serial.batch_size = 1;
  const auto expected = RunPlan(p, plan, events, serial);

  for (const size_t span : {size_t{1}, size_t{8}, shuffled.size()}) {
    EngineOptions options;
    options.reorder_slack = 5;
    options.batch_size = 16;
    auto engine = Engine::Create(p, plan, options);
    ASSERT_TRUE(engine.ok());
    std::vector<std::string> keys;
    (*engine)->SetMatchCallback(
        [&](Match&& m) { keys.push_back(MatchKey(m)); });
    for (size_t i = 0; i < shuffled.size(); i += span) {
      const size_t n = std::min(span, shuffled.size() - i);
      (*engine)->PushBatch(EventBatch{shuffled.data() + i, n});
    }
    (*engine)->Finish();
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(keys, expected) << "span=" << span;
    EXPECT_EQ((*engine)->late_events(), 0u) << "span=" << span;
  }
}

TEST(BatchExec, EmptyAndSingletonBatchesThroughEveryOperator) {
  for (const OperatorCase& c : kOperatorCases) {
    ResetStockIds();
    const PatternPtr p = MustAnalyze(c.query);
    const PhysicalPlan plan = LeftDeepPlan(*p);
    const auto events = MixedStream(60, /*seed=*/11, c.num_names);

    EngineOptions serial;
    serial.batch_size = 1;
    const auto expected = RunPlan(p, plan, events, serial);

    // Singleton spans, interleaved with empty batches.
    auto engine = Engine::Create(p, plan, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << c.label;
    std::vector<std::string> keys;
    (*engine)->SetMatchCallback(
        [&](Match&& m) { keys.push_back(MatchKey(m)); });
    for (const EventPtr& e : events) {
      (*engine)->PushBatch(EventBatch{nullptr, 0});
      (*engine)->PushBatch(EventBatch{&e, 1});
    }
    (*engine)->PushBatch(EventBatch{nullptr, 0});
    (*engine)->Finish();
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(keys, expected) << c.label;
  }
}

TEST(BatchExec, MatchCountsAgreeWithoutCallback) {
  // The count-only fast path (no callback installed -> sinks skip
  // payload assembly entirely) must count exactly the same matches.
  for (const OperatorCase& c : kOperatorCases) {
    ResetStockIds();
    const PatternPtr p = MustAnalyze(c.query);
    const PhysicalPlan plan = LeftDeepPlan(*p);
    const auto events = MixedStream(120, /*seed=*/42, c.num_names);

    EngineOptions serial;
    serial.batch_size = 1;
    const auto expected = RunPlan(p, plan, events, serial);

    auto engine = Engine::Create(p, plan, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << c.label;
    (*engine)->PushBatch(EventBatch{events.data(), events.size()});
    (*engine)->Finish();
    EXPECT_EQ((*engine)->num_matches(), expected.size()) << c.label;
  }
}

}  // namespace
}  // namespace zstream
