// Physical plan shapes, explain strings, shape parsing, validation.
#include <gtest/gtest.h>

#include "plan/physical_plan.h"
#include "query/analyzer.h"

namespace zstream {
namespace {

PatternPtr Must(const std::string& q) {
  auto r = AnalyzeQuery(q, StockSchema());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(PhysicalPlan, LeftAndRightDeepShapes) {
  const PatternPtr p = Must("PATTERN A;B;C;D WITHIN 5");
  EXPECT_EQ(LeftDeepPlan(*p).Explain(*p), "[[[A ; B] ; C] ; D]");
  EXPECT_EQ(RightDeepPlan(*p).Explain(*p), "[A ; [B ; [C ; D]]]");
}

TEST(PhysicalPlan, ShapeStringBushyAndInner) {
  const PatternPtr p = Must("PATTERN A;B;C;D WITHIN 5");
  auto bushy = PlanFromShape(*p, "((0 1) (2 3))");
  ASSERT_TRUE(bushy.ok());
  EXPECT_EQ(bushy->Explain(*p), "[[A ; B] ; [C ; D]]");
  auto inner = PlanFromShape(*p, "(0 ((1 2) 3))");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->Explain(*p), "[A ; [[B ; C] ; D]]");
}

TEST(PhysicalPlan, ShapeStringErrors) {
  const PatternPtr p = Must("PATTERN A;B;C WITHIN 5");
  EXPECT_FALSE(PlanFromShape(*p, "((0 1)").ok());
  EXPECT_FALSE(PlanFromShape(*p, "(0 9)").ok());
  EXPECT_FALSE(PlanFromShape(*p, "(0 1) x").ok());
  // Out-of-order shapes violate sequence contiguity.
  EXPECT_FALSE(PlanFromShape(*p, "((0 2) 1)").ok());
}

TEST(PhysicalPlan, NegationShapes) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 5");
  EXPECT_EQ(RightDeepPlan(*p).Explain(*p), "[A ; NSEQ(!B, C)]");
  EXPECT_EQ(NegationTopPlan(*p).Explain(*p), "NEG([A ; C], !B)");
  EXPECT_TRUE(ValidatePlan(*p, RightDeepPlan(*p)).ok());
  EXPECT_TRUE(ValidatePlan(*p, NegationTopPlan(*p)).ok());
}

TEST(PhysicalPlan, KleeneShape) {
  const PatternPtr p = Must("PATTERN A;B^5;C WITHIN 5");
  const PhysicalPlan plan = LeftDeepPlan(*p);
  EXPECT_EQ(plan.Explain(*p), "KSEQ(A, B^5, C)");
  EXPECT_TRUE(ValidatePlan(*p, plan).ok());
}

TEST(PhysicalPlan, KleeneAtEdges) {
  const PatternPtr start = Must("PATTERN B*;C WITHIN 5");
  EXPECT_EQ(LeftDeepPlan(*start).Explain(*start), "KSEQ(_, B*, C)");
  const PatternPtr end = Must("PATTERN A;B+ WITHIN 5");
  EXPECT_EQ(LeftDeepPlan(*end).Explain(*end), "KSEQ(A, B+, _)");
}

TEST(PhysicalPlan, MixedConjDisj) {
  const PatternPtr p = Must("PATTERN (A&B);(C|D) WITHIN 5");
  const PhysicalPlan plan = LeftDeepPlan(*p);
  EXPECT_EQ(plan.Explain(*p), "[[A & B] ; [C | D]]");
  EXPECT_TRUE(ValidatePlan(*p, plan).ok());
}

TEST(PhysicalPlan, CoveredClasses) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 5");
  const PhysicalPlan plan = NegationTopPlan(*p);
  EXPECT_EQ(plan.root->CoveredClasses(), (std::vector<int>{0, 1, 2}));
}

TEST(PhysicalPlan, ValidateCatchesMissingClasses) {
  const PatternPtr p = Must("PATTERN A;B;C WITHIN 5");
  PhysicalPlan bogus{PhysNode::Seq(PhysNode::Leaf(0), PhysNode::Leaf(1)),
                     0.0};
  EXPECT_FALSE(ValidatePlan(*p, bogus).ok());
  PhysicalPlan dup{
      PhysNode::Seq(PhysNode::Seq(PhysNode::Leaf(0), PhysNode::Leaf(1)),
                    PhysNode::Leaf(1)),
      0.0};
  EXPECT_FALSE(ValidatePlan(*p, dup).ok());
}

}  // namespace
}  // namespace zstream
