// Runtime regressions for the PR 8 concurrency pass: the zs::Mutex /
// zs::CondVar wrappers (src/common/sync.h), the explicit-predicate-loop
// rewrite of MpscRingQueue, and the two data races the annotation audit
// surfaced — std::strerror's static buffer (now ErrnoToString) and the
// plain LogLevel global (now a relaxed atomic). The multi-threaded
// cases here are the ones the CI tsan job runs; under TSan they fail
// loudly if any of those fixes regresses.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "runtime/match_sink.h"
#include "runtime/mpsc_queue.h"

namespace zstream {
namespace {

TEST(SyncTest, GuardedCounterUnderContention) {
  zs::Mutex mu;
  int counter ZS_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        zs::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();

  zs::MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, TryLockRefusesHeldMutex) {
  zs::Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock from another thread: trying from this thread is UB on
  // std::mutex.
  std::thread probe([&] {
    if (mu.TryLock()) {
      mu.Unlock();
    } else {
      acquired = false;
    }
  });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarHandoff) {
  zs::Mutex mu;
  zs::CondVar cv;
  bool ready ZS_GUARDED_BY(mu) = false;
  int seen = -1;

  std::thread waiter([&] {
    zs::MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    seen = 42;
  });
  {
    zs::MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(seen, 42);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  zs::SharedMutex mu;
  int value ZS_GUARDED_BY(mu) = 0;
  {
    zs::WriterMutexLock lock(mu);
    value = 7;
  }
  std::atomic<int> readers_in{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        zs::ReaderMutexLock lock(mu);
        const int in = ++readers_in;
        int prev = max_concurrent.load();
        while (in > prev && !max_concurrent.compare_exchange_weak(prev, in)) {
        }
        EXPECT_EQ(value, 7);
        --readers_in;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Not guaranteed by the standard, but with 4 spinning readers it is
  // effectively certain; the real assertion is TSan silence above.
  EXPECT_GE(max_concurrent.load(), 1);
}

TEST(SyncTest, MpscQueueDeliversAllItemsAcrossProducers) {
  runtime::MpscRingQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }

  std::vector<int> received;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(&batch, 64) > 0) {
      received.insert(received.end(), batch.begin(), batch.end());
    }
  });

  for (auto& th : producers) th.join();
  queue.Close();
  consumer.join();

  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(SyncTest, MpscQueueCloseUnblocksFullQueueProducers) {
  runtime::MpscRingQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  EXPECT_FALSE(queue.TryPush(3));

  std::atomic<bool> push_returned{false};
  std::thread blocked([&] {
    // Blocks on the full ring until Close; must return false, not hang.
    EXPECT_FALSE(queue.Push(4));
    push_returned = true;
  });
  queue.Close();
  blocked.join();
  EXPECT_TRUE(push_returned.load());

  // Closed queue still drains what was placed before the close.
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 8), 2u);
  EXPECT_EQ(queue.PopBatch(&batch, 8), 0u);
}

TEST(SyncTest, MpscQueuePushAllHonorsCapacityBackpressure) {
  runtime::MpscRingQueue<int> queue(4);
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);

  std::vector<int> received;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(&batch, 8) > 0) {
      received.insert(received.end(), batch.begin(), batch.end());
    }
  });

  EXPECT_EQ(queue.PushAll(&items), 100u);
  queue.Close();
  consumer.join();

  // Single producer: FIFO order must survive the batched consumer.
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(SyncTest, ErrnoToStringIsThreadSafe) {
  // Regression for the std::strerror static-buffer race: concurrent
  // callers with different errnos must each get their own text.
  const std::string enoent = ErrnoToString(ENOENT);
  const std::string eacces = ErrnoToString(EACCES);
  ASSERT_NE(enoent, eacces);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const int err = (t % 2 == 0) ? ENOENT : EACCES;
      const std::string& expected = (t % 2 == 0) ? enoent : eacces;
      for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(ErrnoToString(err), expected);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(SyncTest, ErrnoToStringUnknownErrno) {
  // Must return something printable, never crash or return empty.
  EXPECT_FALSE(ErrnoToString(0).empty());
  EXPECT_FALSE(ErrnoToString(-1).empty());
  EXPECT_FALSE(ErrnoToString(1 << 20).empty());
}

TEST(SyncTest, LogLevelIsRaceFreeUnderConcurrentToggles) {
  // Regression for the plain (non-atomic) g_level global: flipping the
  // level while other threads log concurrently is exactly what the net
  // server does when a client sends a control frame mid-traffic.
  const LogLevel initial = GetLogLevel();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 500; ++i) {
      SetLogLevel(i % 2 == 0 ? LogLevel::kError : LogLevel::kWarn);
    }
    stop = true;
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 3; ++t) {
    loggers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Below both toggled levels, so nothing is printed — the test
        // exercises the level load, not stderr.
        ZS_LOG(Debug) << "concurrency probe";
      }
    });
  }
  toggler.join();
  for (auto& th : loggers) th.join();
  SetLogLevel(initial);
}

TEST(SyncTest, CallbackMatchSinkSerializesPublish) {
  // The callback below is deliberately not thread-safe; the sink's
  // internal mutex is what makes this test pass (and TSan-clean).
  std::vector<int64_t> seen;
  runtime::CallbackMatchSink sink(
      [&seen](runtime::RuntimeMatch&& m) { seen.push_back(m.query); });

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        runtime::RuntimeMatch m;
        m.query = t;
        sink.Publish(std::move(m));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(SyncTest, CollectingMatchSinkConcurrentPublishAndSize) {
  runtime::CollectingMatchSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        runtime::RuntimeMatch m;
        m.query = t;
        m.shard = i;
        sink.Publish(std::move(m));
        (void)sink.size();  // concurrent reader on the guarded vector
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sink.size(), 2000u);
  EXPECT_EQ(sink.Take().size(), 2000u);
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace zstream
