// Buffer invariants: end-timestamp order, watermarks, EAT purging,
// hash-index consistency, memory accounting.
#include <gtest/gtest.h>

#include "exec/buffer.h"
#include "event/event.h"

namespace zstream {
namespace {

Record Rec(Timestamp start, Timestamp end) {
  Record r;
  r.start_ts = start;
  r.end_ts = end;
  r.slots.assign(1, EventBuilder(StockSchema()).At(end).Build());
  return r;
}

TEST(Buffer, AppendAssignsSequentialIds) {
  MemoryTracker t;
  Buffer b(&t);
  EXPECT_EQ(b.Append(Rec(1, 1)), 0u);
  EXPECT_EQ(b.Append(Rec(2, 2)), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Get(1).end_ts, 2);
}

TEST(Buffer, WatermarkTracksConsumption) {
  MemoryTracker t;
  Buffer b(&t);
  b.Append(Rec(1, 1));
  b.Append(Rec(2, 2));
  EXPECT_TRUE(b.HasUnconsumed());
  EXPECT_EQ(*b.FirstUnconsumedEndTs(), 1);
  b.SetWatermark(2);
  EXPECT_FALSE(b.HasUnconsumed());
  b.RewindWatermark();
  EXPECT_EQ(b.watermark(), 0u);
}

TEST(Buffer, PurgeBeforeRemovesExpiredPrefix) {
  MemoryTracker t;
  Buffer b(&t);
  for (int i = 0; i < 10; ++i) b.Append(Rec(i, i));
  b.PurgeBefore(5);
  EXPECT_EQ(b.base_id(), 5u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.Get(5).end_ts, 5);
  // Watermark below base clamps.
  EXPECT_EQ(b.watermark(), 5u);
}

TEST(Buffer, PurgeStopsAtFirstLiveRecord) {
  MemoryTracker t;
  Buffer b(&t);
  // A record with early end but late start blocks the purge behind it.
  b.Append(Rec(10, 10));
  b.Append(Rec(2, 11));  // start 2 (expired) but behind a live record
  b.PurgeBefore(5);
  EXPECT_EQ(b.size(), 2u);  // front record is live, so nothing popped
}

TEST(Buffer, ClearReleasesEverything) {
  MemoryTracker t;
  Buffer b(&t);
  for (int i = 0; i < 4; ++i) b.Append(Rec(i, i));
  const auto bytes = t.current_bytes();
  EXPECT_GT(bytes, 0);
  b.Clear();
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(b.base_id(), 4u);
  // Ids continue monotonically after a clear.
  EXPECT_EQ(b.Append(Rec(9, 9)), 4u);
}

TEST(Buffer, MemoryAccountingLeafCountsEvents) {
  MemoryTracker t_leaf, t_internal;
  Buffer leaf(&t_leaf, /*count_event_bytes=*/true);
  Buffer internal(&t_internal, /*count_event_bytes=*/false);
  leaf.Append(Rec(1, 1));
  internal.Append(Rec(1, 1));
  EXPECT_GT(t_leaf.current_bytes(), t_internal.current_bytes());
}

Record RecWithGroup(Timestamp ts, const EventGroupPtr& g) {
  Record r = Rec(ts, ts);
  r.group = g;
  return r;
}

TEST(Buffer, SharedKleeneGroupChargedOncePerBuffer) {
  // Regression: many records referencing one Kleene group used to charge
  // the group payload once per record, inflating peak_mb by the group's
  // fan-out. The payload must be charged once per distinct resident
  // group, and released when the last referencing record goes away.
  auto group = std::make_shared<EventGroup>();
  for (int i = 0; i < 8; ++i) {
    group->push_back(EventBuilder(StockSchema()).At(i).Build());
  }
  const size_t group_bytes = Record::GroupByteSize(*group);
  ASSERT_GT(group_bytes, 0u);

  MemoryTracker t;
  Buffer b(&t);
  b.Append(Rec(1, 1));
  const int64_t before = t.current_bytes();
  b.Append(RecWithGroup(2, group));
  const int64_t first = t.current_bytes() - before;
  b.Append(RecWithGroup(3, group));
  b.Append(RecWithGroup(4, group));
  const int64_t all = t.current_bytes() - before;
  // The first referencing record pays the payload...
  EXPECT_GE(first, static_cast<int64_t>(group_bytes));
  // ...and two more references add strictly less than two more payloads.
  EXPECT_LT(all - first, 2 * static_cast<int64_t>(group_bytes));

  // A distinct group is a new payload.
  auto other = std::make_shared<EventGroup>(*group);
  const int64_t before_other = t.current_bytes();
  b.Append(RecWithGroup(5, other));
  EXPECT_GE(t.current_bytes() - before_other,
            static_cast<int64_t>(Record::GroupByteSize(*other)));

  b.Clear();
  EXPECT_EQ(t.current_bytes(), 0);
}

TEST(Buffer, SharedGroupReleasedOnPartialPurge) {
  // Purging only some of the records sharing a group must keep the
  // payload charged; purging the last reference releases it.
  auto group = std::make_shared<EventGroup>();
  group->push_back(EventBuilder(StockSchema()).At(0).Build());
  const auto group_bytes =
      static_cast<int64_t>(Record::GroupByteSize(*group));

  MemoryTracker t;
  Buffer b(&t);
  b.Append(RecWithGroup(1, group));
  b.Append(RecWithGroup(10, group));
  const int64_t with_both = t.current_bytes();
  // Dropping one of the two referencing records must NOT release the
  // payload (the survivor still references it); with internal buffers
  // not charging event bytes, nothing is released at all.
  b.PurgeBefore(5);
  const int64_t with_one = t.current_bytes();
  EXPECT_EQ(with_one, with_both);
  EXPECT_GE(with_one, group_bytes);
  b.PurgeBefore(20);  // last reference gone -> payload released
  EXPECT_GE(with_one - t.current_bytes(), group_bytes);
  b.Clear();
  EXPECT_EQ(t.current_bytes(), 0);
}

TEST(Record, ByteSizeExcludesSharedGroupPayload) {
  // Record::ByteSize charges the handle only; the payload is accounted
  // by the owning buffer (once), not per referencing record.
  auto group = std::make_shared<EventGroup>();
  for (int i = 0; i < 4; ++i) {
    group->push_back(EventBuilder(StockSchema()).At(i).Build());
  }
  Record plain = Rec(1, 1);
  Record with_group = Rec(1, 1);
  with_group.group = group;
  EXPECT_EQ(plain.ByteSize(), with_group.ByteSize());
  EXPECT_EQ(plain.ByteSize(/*count_events=*/true),
            with_group.ByteSize(/*count_events=*/true));
}

TEST(Buffer, HashIndexProbeFindsMatchingRecords) {
  MemoryTracker t;
  Buffer b(&t);
  const auto mk = [&](const std::string& name, Timestamp ts) {
    Record r;
    r.start_ts = ts;
    r.end_ts = ts;
    r.slots.assign(1, EventBuilder(StockSchema())
                          .Set("name", Value(name))
                          .At(ts)
                          .Build());
    return r;
  };
  b.EnableHashIndex(/*class_idx=*/0, /*field_idx=*/1);
  b.Append(mk("X", 1));
  b.Append(mk("Y", 2));
  b.Append(mk("X", 3));
  ASSERT_TRUE(b.has_hash_index());
  const auto& xs = b.hash_index()->Probe(Value("X"));
  EXPECT_EQ(xs, (std::vector<uint64_t>{0, 2}));
  EXPECT_TRUE(b.hash_index()->Probe(Value("Z")).empty());
}

TEST(Buffer, HashIndexBuiltOverExistingRecords) {
  MemoryTracker t;
  Buffer b(&t);
  Record r;
  r.start_ts = 1;
  r.end_ts = 1;
  r.slots.assign(1, EventBuilder(StockSchema())
                        .Set("name", Value("X"))
                        .At(1)
                        .Build());
  b.Append(std::move(r));
  b.EnableHashIndex(0, 1);
  EXPECT_EQ(b.hash_index()->Probe(Value("X")).size(), 1u);
}

TEST(HashIndex, CompactDropsPurgedIds) {
  HashIndex idx(0, 1);
  Record r;
  r.start_ts = 0;
  r.end_ts = 0;
  r.slots.assign(1, EventBuilder(StockSchema())
                        .Set("name", Value("X"))
                        .At(0)
                        .Build());
  for (uint64_t id = 0; id < 10; ++id) idx.Insert(r, id);
  idx.Compact(7);
  EXPECT_EQ(idx.Probe(Value("X")), (std::vector<uint64_t>{7, 8, 9}));
}

}  // namespace
}  // namespace zstream
