// Cost model tests: Table 2 formulas verified against hand-computed
// values; hashing extension; sensitivity directions that drive Figures
// 9, 11 and 13.
#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "query/analyzer.h"

namespace zstream {
namespace {

PatternPtr Must(const std::string& q) {
  auto r = AnalyzeQuery(q, StockSchema(), AnalyzerOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(CostModel, LeafCardIsRateTimesWindow) {
  const PatternPtr p = Must("PATTERN A;B WITHIN 10");
  StatsCatalog stats(2, 10.0);
  stats.set_rate(0, 3.0);
  const CostModel model(p.get(), &stats);
  const auto est = model.EstimateNode(PhysNode::Leaf(0).get());
  EXPECT_DOUBLE_EQ(est.card, 30.0);
  EXPECT_DOUBLE_EQ(est.cost, 0.0);
}

TEST(CostModel, SeqFormulaMatchesTable2) {
  // SEQ(A;B): Ci = CARD_A * CARD_B * Pt; Co = Ci * P_{A,B};
  // C = Ci + n*k*Ci + p*Co.
  const PatternPtr p = Must(
      "PATTERN A;B WHERE A.price > B.price WITHIN 10");
  StatsCatalog stats(2, 10.0);
  stats.set_rate(0, 2.0);  // CARD_A = 20
  stats.set_rate(1, 5.0);  // CARD_B = 50
  stats.SetPairSel(0, 1, 0.1);
  const CostModel model(p.get(), &stats,
                        CostModelParams{.k = 0.25, .p = 1.0,
                                        .assume_hashing = false});
  const PhysicalPlan plan = LeftDeepPlan(*p);
  const auto est = model.EstimateNode(plan.root.get());
  const double ci = 20.0 * 50.0 * 0.5;          // 500
  const double co = ci * 0.1;                    // 50
  EXPECT_DOUBLE_EQ(est.input_cost, ci);
  EXPECT_DOUBLE_EQ(est.card, co);
  EXPECT_DOUBLE_EQ(est.cost, ci + 1 * 0.25 * ci + co);
}

TEST(CostModel, ConjunctionHasNoTimeSelectivity) {
  const PatternPtr p = Must("PATTERN A&B WITHIN 10");
  StatsCatalog stats(2, 10.0);
  stats.set_rate(0, 2.0);
  stats.set_rate(1, 5.0);
  const CostModel model(p.get(), &stats);
  const auto est = model.EstimateNode(LeftDeepPlan(*p).root.get());
  EXPECT_DOUBLE_EQ(est.input_cost, 20.0 * 50.0);
  EXPECT_DOUBLE_EQ(est.card, 20.0 * 50.0);
}

TEST(CostModel, DisjunctionAddsCards) {
  const PatternPtr p = Must("PATTERN A|B WITHIN 10");
  StatsCatalog stats(2, 10.0);
  stats.set_rate(0, 2.0);
  stats.set_rate(1, 5.0);
  const CostModel model(p.get(), &stats);
  const auto est = model.EstimateNode(LeftDeepPlan(*p).root.get());
  EXPECT_DOUBLE_EQ(est.input_cost, 70.0);
  EXPECT_DOUBLE_EQ(est.card, 70.0);
}

TEST(CostModel, OperatorCostOrderingDisjSeqConj) {
  // C_DIS < C_SEQ < C_CON for identical inputs (Section 5.2.1).
  StatsCatalog stats(2, 10.0);
  const PatternPtr dis = Must("PATTERN A|B WITHIN 10");
  const PatternPtr seq = Must("PATTERN A;B WITHIN 10");
  const PatternPtr con = Must("PATTERN A&B WITHIN 10");
  const double c_dis =
      CostModel(dis.get(), &stats).PlanCost(LeftDeepPlan(*dis));
  const double c_seq =
      CostModel(seq.get(), &stats).PlanCost(LeftDeepPlan(*seq));
  const double c_con =
      CostModel(con.get(), &stats).PlanCost(LeftDeepPlan(*con));
  EXPECT_LT(c_dis, c_seq);
  EXPECT_LT(c_seq, c_con);
}

TEST(CostModel, NseqInputCostIndependentOfNegatorRate) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 10");
  StatsCatalog lo(3, 10.0), hi(3, 10.0);
  lo.set_rate(1, 1.0);
  hi.set_rate(1, 1000.0);  // negator rate should not change NSEQ input
  const PhysicalPlan plan = RightDeepPlan(*p);
  const double cost_lo = CostModel(p.get(), &lo).PlanCost(plan);
  const double cost_hi = CostModel(p.get(), &hi).PlanCost(plan);
  EXPECT_DOUBLE_EQ(cost_lo, cost_hi);
}

TEST(CostModel, NegTopCostGrowsWithIntermediateResults) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 10");
  StatsCatalog stats(3, 10.0);
  const double pushed =
      CostModel(p.get(), &stats).PlanCost(RightDeepPlan(*p));
  const double top =
      CostModel(p.get(), &stats).PlanCost(NegationTopPlan(*p));
  // With uniform rates the pushed-down plan is cheaper (Section 6.4).
  EXPECT_LT(pushed, top);
}

TEST(CostModel, SelectivityLowersEarlyJoinCost) {
  // Query 4 shape: predicate between the first two classes. The
  // left-deep plan's cost must drop as selectivity drops; right-deep
  // stays flat-ish (predicate applied late).
  const PatternPtr p = Must(
      "PATTERN A;B;C WHERE A.price > B.price WITHIN 10");
  auto cost = [&](double sel, const PhysicalPlan& plan) {
    StatsCatalog stats(3, 10.0);
    stats.SetPairSel(0, 1, sel);
    return CostModel(p.get(), &stats).PlanCost(plan);
  };
  const PhysicalPlan left = LeftDeepPlan(*p);
  const PhysicalPlan right = RightDeepPlan(*p);
  EXPECT_LT(cost(1.0 / 32, left), cost(1.0, left));
  EXPECT_LT(cost(1.0 / 32, left), cost(1.0 / 32, right));
  // At selectivity 1 the cardinalities agree; the shapes differ only by
  // where the predicate-evaluation term n*k*Ci lands (Formula 1), which
  // is cheaper when evaluated against the smaller early join.
  EXPECT_LE(cost(1.0, left), cost(1.0, right));
  EXPECT_NEAR(cost(1.0, left), cost(1.0, right),
              0.1 * cost(1.0, right));
}

TEST(CostModel, RareFirstClassFavorsLeftDeep) {
  // Figure 10's regime: when the first class is rare, join it early.
  const PatternPtr p = Must("PATTERN A;B;C WITHIN 10");
  StatsCatalog stats(3, 10.0);
  stats.set_rate(0, 0.01);
  stats.set_rate(1, 1.0);
  stats.set_rate(2, 1.0);
  const CostModel model(p.get(), &stats);
  EXPECT_LT(model.PlanCost(LeftDeepPlan(*p)),
            model.PlanCost(RightDeepPlan(*p)));
  // And the mirror: rare last class favors right-deep.
  StatsCatalog mirror(3, 10.0);
  mirror.set_rate(2, 0.01);
  const CostModel m2(p.get(), &mirror);
  EXPECT_LT(m2.PlanCost(RightDeepPlan(*p)),
            m2.PlanCost(LeftDeepPlan(*p)));
}

TEST(CostModel, HashingReducesInputCost) {
  AnalyzerOptions o;
  o.detect_partition = false;
  auto r = AnalyzeQuery("PATTERN A;B WHERE A.name = B.name WITHIN 10",
                        StockSchema(), o);
  ASSERT_TRUE(r.ok());
  const PatternPtr p = *r;
  StatsCatalog stats(2, 10.0);
  stats.SetPairSel(0, 1, 0.01);
  CostModelParams with_hash{.k = 0.25, .p = 1.0, .assume_hashing = true};
  CostModelParams no_hash{.k = 0.25, .p = 1.0, .assume_hashing = false};
  const double c_hash =
      CostModel(p.get(), &stats, with_hash).PlanCost(LeftDeepPlan(*p));
  const double c_scan =
      CostModel(p.get(), &stats, no_hash).PlanCost(LeftDeepPlan(*p));
  EXPECT_LT(c_hash, c_scan);
}

TEST(CostModel, KleeneCountScalesN) {
  const PatternPtr p2 = Must("PATTERN A;B^2;C WITHIN 10");
  const PatternPtr p5 = Must("PATTERN A;B^5;C WITHIN 10");
  StatsCatalog stats(3, 10.0);
  const double c2 =
      CostModel(p2.get(), &stats).PlanCost(LeftDeepPlan(*p2));
  const double c5 =
      CostModel(p5.get(), &stats).PlanCost(LeftDeepPlan(*p5));
  EXPECT_LT(c2, c5);
}

}  // namespace
}  // namespace zstream
