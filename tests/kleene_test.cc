// Kleene closure (Algorithm 4), including the paper's Figure 6 worked
// example and aggregate predicates over closure groups (Query 3 style).
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

// Figure 6's stream: a1, b2, b3, b5, c6.
std::vector<EventPtr> Figure6Stream() {
  return {
      Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
      Stock("B", 1, 5), Stock("C", 1, 6),
  };
}

TEST(Kleene, Figure6UnspecifiedCount) {
  // "A;B*;C": one maximal group per (start, end) pair.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), Figure6Stream());
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0@1|2@6|g{2,3,5,}");  // a1, b2-b5, c6
}

TEST(Kleene, Figure6CountTwo) {
  // "A;B^2;C": sliding windows of 2 -> groups (b2,b3) and (b3,b5).
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), Figure6Stream());
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], "0@1|2@6|g{2,3,}");
  EXPECT_EQ(matches[1], "0@1|2@6|g{3,5,}");
}

TEST(Kleene, StarAllowsEmptyGroup) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p), {Stock("A", 1, 1), Stock("C", 1, 2)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0@1|2@2|g{}");
}

TEST(Kleene, PlusRequiresOneEvent) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B+;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto empty = RunPlan(
      p, LeftDeepPlan(*p), {Stock("A", 1, 1), Stock("C", 1, 2)});
  EXPECT_TRUE(empty.empty());
  const auto one = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2), Stock("C", 1, 3)});
  EXPECT_EQ(one.size(), 1u);
}

TEST(Kleene, CountRequiresExactRun) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^3;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const auto two = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
       Stock("C", 1, 4)});
  EXPECT_TRUE(two.empty());
  const auto three = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
       Stock("B", 1, 4), Stock("C", 1, 5)});
  EXPECT_EQ(three.size(), 1u);
}

TEST(Kleene, AggregatePredicateOverGroup) {
  // Query 3 style: sum of closure volumes must exceed a threshold.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND sum(B.volume) > 350 WITHIN 100");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2, /*volume=*/100),
       Stock("B", 1, 3, /*volume=*/200), Stock("B", 1, 4, /*volume=*/300),
       Stock("C", 1, 5)});
  // Groups: (100,200)=300 no; (200,300)=500 yes.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0@1|2@5|g{3,4,}");
}

TEST(Kleene, PerEventPredicateFiltersClosureEvents) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND B.price > A.price WITHIN 100");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 50, 1), Stock("B", 10, 2), Stock("B", 90, 3),
       Stock("C", 1, 4)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0@1|2@4|g{3,}");  // only b@3 qualifies
}

TEST(Kleene, ClosureAtPatternStart) {
  const PatternPtr p = MustAnalyze(
      "PATTERN B*;C WHERE B.name='B' AND C.name='C' WITHIN 100");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("B", 1, 1), Stock("B", 1, 2), Stock("C", 1, 3)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "1@3|g{1,2,}");
}

TEST(Kleene, ClosureAtPatternEndIncremental) {
  // Documented deviation: each closure event acts as an end trigger.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B^2 WHERE A.name='A' AND B.name='B' WITHIN 100");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
       Stock("B", 1, 4)});
  // Runs of 2 ending at b3 and b4.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], "0@1|1@3|g{2,3,}");
  EXPECT_EQ(matches[1], "0@1|1@4|g{3,4,}");
}

TEST(Kleene, WindowBoundsGroups) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 5");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 0), Stock("B", 1, 2), Stock("C", 1, 6)});
  EXPECT_TRUE(matches.empty());  // span 6 > window 5
}

TEST(Kleene, RejectsMultipleClosures) {
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN A*;B* WITHIN 10", StockSchema()).ok());
}

}  // namespace
}  // namespace zstream
