// Cross-module integration: the paper's experimental queries end to
// end, all plan shapes agreeing, on generated workloads.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;

constexpr char kQuery4[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

constexpr char kQuery6[] =
    "PATTERN IBM;Sun;Oracle;Google "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND Google.name='Google' AND Oracle.price > Sun.price "
    "AND Oracle.price > Google.price WITHIN 100";

constexpr char kQuery7[] =
    "PATTERN IBM;!Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "WITHIN 200";

std::vector<EventPtr> Workload(const std::string& ratio, int n,
                               uint64_t seed,
                               std::vector<std::string> names = {
                                   "IBM", "Sun", "Oracle"}) {
  StockGenOptions options;
  options.names = std::move(names);
  options.weights = ParseRateRatio(ratio);
  options.num_events = n;
  options.seed = seed;
  return GenerateStockTrades(options);
}

TEST(Integration, Query4AllPlansAgree) {
  const PatternPtr p = MustAnalyze(kQuery4);
  const auto events = Workload("1:1:1", 3000, 13);
  const auto left = RunPlan(p, LeftDeepPlan(*p), events);
  const auto right = RunPlan(p, RightDeepPlan(*p), events);
  EXPECT_EQ(left, right);
  EXPECT_FALSE(left.empty());

  auto nfa = NfaEngine::Create(p);
  ASSERT_TRUE(nfa.ok());
  for (const auto& e : events) (*nfa)->Push(e);
  EXPECT_EQ((*nfa)->num_matches(), left.size());
}

TEST(Integration, Query6AllFourShapesAndNfaAgree) {
  const PatternPtr p = MustAnalyze(kQuery6);
  const auto events = Workload("1:5:5:5", 2000, 19,
                               {"IBM", "Sun", "Oracle", "Google"});
  const auto left = RunPlan(p, LeftDeepPlan(*p), events);
  const auto right = RunPlan(p, RightDeepPlan(*p), events);
  auto bushy_plan = PlanFromShape(*p, "((0 1) (2 3))");
  auto inner_plan = PlanFromShape(*p, "(0 ((1 2) 3))");
  ASSERT_TRUE(bushy_plan.ok());
  ASSERT_TRUE(inner_plan.ok());
  const auto bushy = RunPlan(p, *bushy_plan, events);
  const auto inner = RunPlan(p, *inner_plan, events);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, bushy);
  EXPECT_EQ(left, inner);

  auto nfa = NfaEngine::Create(p);
  ASSERT_TRUE(nfa.ok());
  for (const auto& e : events) (*nfa)->Push(e);
  EXPECT_EQ((*nfa)->num_matches(), left.size());
}

TEST(Integration, Query7NegationPlansAgree) {
  const PatternPtr p = MustAnalyze(kQuery7);
  const auto events = Workload("1:1:10", 3000, 29);
  const auto pushed = RunPlan(p, RightDeepPlan(*p), events);
  const auto top = RunPlan(p, NegationTopPlan(*p), events);
  // Compare counts (the pushed plan binds the negator slot).
  EXPECT_EQ(pushed.size(), top.size());

  auto nfa = NfaEngine::Create(p);
  ASSERT_TRUE(nfa.ok());
  for (const auto& e : events) (*nfa)->Push(e);
  EXPECT_EQ((*nfa)->num_matches(), pushed.size());
}

TEST(Integration, Query8WebLogPartitionedRun) {
  WebLogGenOptions options;
  options.total_records = 100000;
  options.publication_accesses = 2000;
  options.project_accesses = 3000;
  options.course_accesses = 4000;
  options.num_ips = 50;  // dense enough for same-IP triples to occur
  const auto events = GenerateWebLog(options);

  ZStream zs(WebLogSchema());
  auto query = zs.Compile(
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip = Course.ip "
      "WITHIN 10 hours");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE((*query)->partitioned());
  for (const auto& e : events) (*query)->Push(e);
  (*query)->Finish();
  const uint64_t partitioned_matches = (*query)->num_matches();
  EXPECT_GT(partitioned_matches, 0u);

  // Cross-check against an unpartitioned engine with the explicit
  // equality predicates.
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  auto direct = AnalyzeQuery(
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip = Course.ip "
      "WITHIN 10 hours",
      WebLogSchema(), no_part);
  ASSERT_TRUE(direct.ok());
  const auto baseline =
      RunPlan(*direct, LeftDeepPlan(**direct), events);
  EXPECT_EQ(partitioned_matches, baseline.size());
}

TEST(Integration, OptimizerPlanNeverLosesToForcedShapesOnThroughput) {
  // Sanity (not a strict guarantee): on a skewed workload the
  // cost-chosen plan should process at least as few pairs as the worst
  // forced shape.
  const PatternPtr p = MustAnalyze(kQuery4);
  const auto events = Workload("1:50:50", 20000, 31);

  StatsCatalog stats(3, 200.0);
  stats.set_rate(0, 1.0 / 101.0);
  stats.set_rate(1, 50.0 / 101.0);
  stats.set_rate(2, 50.0 / 101.0);
  Planner planner(p, &stats);
  auto optimal = planner.OptimalPlan();
  ASSERT_TRUE(optimal.ok());

  auto pairs = [&](const PhysicalPlan& plan) {
    auto engine = Engine::Create(p, plan);
    for (const auto& e : events) (*engine)->Push(e);
    (*engine)->Finish();
    return (*engine)->pairs_tried();
  };
  const uint64_t opt_pairs = pairs(*optimal);
  const uint64_t worst = std::max(pairs(LeftDeepPlan(*p)),
                                  pairs(RightDeepPlan(*p)));
  EXPECT_LE(opt_pairs, worst);
}

}  // namespace
}  // namespace zstream
