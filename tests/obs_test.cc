// Tests for the observability layer (src/obs/ and its hooks):
//   - registry instruments keep exact totals under concurrent writers
//     (run in the CI thread job alongside runtime_test: TSan-clean)
//   - Prometheus / JSON exposition formats
//   - EXPLAIN ANALYZE per-node counters reconcile exactly with the
//     match totals a CollectingMatchSink observed on corpus queries
//   - EXPLAIN / EXPLAIN ANALYZE DDL round trips through the session
//   - kMetricsRequest over the wire and the HTTP /metrics side port
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/string_util.h"
#include "exec/partitioned_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "runtime/match_sink.h"
#include "runtime/stream_runtime.h"
#include "test_util.h"
#include "workload/stock_gen.h"

namespace zstream::testing {
namespace {

using obs::Histogram;
using obs::Labels;
using obs::Registry;

// ---------------------------------------------------------------------
// Instruments: exact totals under contention
// ---------------------------------------------------------------------

TEST(ObsCounter, ExactUnderConcurrentWriters) {
  Registry registry;
  obs::Counter* counter =
      registry.GetCounter("test_ops_total", {}, "test counter");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 250000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(ObsHistogram, ExactCountAndSumUnderConcurrentWriters) {
  Registry registry;
  Histogram* hist =
      registry.GetHistogram("test_latency", {}, "test histogram");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 1; i <= kPerThread; ++i) hist->Observe(i);
    });
  }
  for (auto& th : threads) th.join();
  const Histogram::Snapshot snap = hist->snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Each thread observed 1 + 2 + ... + kPerThread.
  EXPECT_EQ(snap.sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket i counts values < 2^(i+1).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 0);
  EXPECT_EQ(Histogram::BucketOf(2), 1);
  EXPECT_EQ(Histogram::BucketOf(3), 1);
  EXPECT_EQ(Histogram::BucketOf(4), 2);
  EXPECT_EQ(Histogram::BucketOf((1ull << 31) - 1), 30);
  EXPECT_EQ(Histogram::BucketOf(1ull << 31), 31);
  EXPECT_EQ(Histogram::BucketOf(~0ull), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::UpperBound(0), 2u);
  EXPECT_EQ(Histogram::UpperBound(1), 4u);
}

TEST(ObsHistogram, QuantileOrderingIsSane) {
  Registry registry;
  Histogram* hist = registry.GetHistogram("test_q", {}, "");
  for (uint64_t i = 1; i <= 1000; ++i) hist->Observe(i);
  const Histogram::Snapshot snap = hist->snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p95 = snap.Quantile(0.95);
  const double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
  // Log2 buckets: the estimate is within a factor of 2 of the truth.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1024.0);
}

TEST(ObsRegistry, SameSeriesReturnsSamePointer) {
  Registry registry;
  obs::Counter* a =
      registry.GetCounter("dup_total", {{"k", "v"}}, "help");
  obs::Counter* b =
      registry.GetCounter("dup_total", {{"k", "v"}}, "ignored");
  EXPECT_EQ(a, b);
  obs::Counter* other = registry.GetCounter("dup_total", {{"k", "w"}});
  EXPECT_NE(a, other);
}

// ---------------------------------------------------------------------
// Exposition formats
// ---------------------------------------------------------------------

TEST(ObsRegistry, PrometheusTextFormat) {
  Registry registry;
  registry.GetCounter("zs_requests_total", {{"code", "200"}}, "Requests")
      ->Inc(3);
  registry.GetCounter("zs_requests_total", {{"code", "500"}})->Inc();
  registry.GetGauge("zs_depth", {}, "Depth")->Set(-7);
  registry.GetHistogram("zs_lat_seconds", {}, "Latency", 1e-9)
      ->Observe(1500000000);  // 1.5s in ns

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP zs_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zs_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("zs_requests_total{code=\"200\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("zs_requests_total{code=\"500\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zs_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("zs_depth -7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zs_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("zs_lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // The family's scale maps raw nanoseconds to seconds in the sum.
  EXPECT_NE(text.find("zs_lat_seconds_sum 1.5\n"), std::string::npos);
}

TEST(ObsRegistry, JsonFormat) {
  Registry registry;
  registry.GetCounter("zs_total", {{"q", "r\"1"}}, "C")->Inc(2);
  registry.GetHistogram("zs_h", {}, "H")->Observe(8);
  const std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"zs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":2"), std::string::npos);
  // Label values are JSON-escaped.
  EXPECT_NE(json.find("r\\\"1"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ObsRegistry, LabelEscaping) {
  EXPECT_EQ(obs::RenderLabels({{"a", "x\"y\\z\n"}}),
            "{a=\"x\\\"y\\\\z\\n\"}");
  EXPECT_EQ(obs::RenderLabels({}), "");
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE reconciliation with observed match totals
// ---------------------------------------------------------------------

constexpr char kQuery4[] =
    "PATTERN IBM;Sun;Oracle "
    "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
    "AND IBM.price > Sun.price WITHIN 200";

std::vector<EventPtr> StockWorkload(int n, uint64_t seed) {
  StockGenOptions options;
  options.names = {"IBM", "Sun", "Oracle"};
  options.weights = {1, 1, 1};
  options.num_events = n;
  options.seed = seed;
  return GenerateStockTrades(options);
}

#ifndef ZSTREAM_OBS_STRIPPED
TEST(ExplainAnalyze, EngineCountersReconcileWithEmittedMatches) {
  const PatternPtr p = MustAnalyze(kQuery4);
  const auto events = StockWorkload(5000, 21);
  auto engine = Engine::Create(p, LeftDeepPlan(*p));
  ASSERT_TRUE(engine.ok());
  uint64_t matches = 0;
  (*engine)->SetMatchCallback([&](Match&&) { ++matches; });
  for (const EventPtr& e : events) (*engine)->Push(e);
  (*engine)->Finish();
  ASSERT_GT(matches, 0u);

  const NodeProfile profile = (*engine)->Profile();
  // The plan root's output records are exactly the emitted matches.
  EXPECT_EQ(profile.records_out, matches);
  // Every primitive event was offered to every leaf.
  std::vector<const NodeProfile*> stack{&profile};
  uint64_t leaves = 0;
  while (!stack.empty()) {
    const NodeProfile* node = stack.back();
    stack.pop_back();
    if (node->children.empty()) {
      ++leaves;
      EXPECT_EQ(node->events_in, events.size()) << node->label;
    }
    for (const NodeProfile& c : node->children) stack.push_back(&c);
  }
  EXPECT_EQ(leaves, 3u);

  const std::string rendered = (*engine)->ExplainAnalyze();
  EXPECT_NE(rendered.find("SEQ"), std::string::npos);
  EXPECT_NE(rendered.find("out=" + std::to_string(matches)),
            std::string::npos);
}

TEST(ExplainAnalyze, RuntimeCountersReconcileWithCollectingSink) {
  const auto events = StockWorkload(8000, 33);
  runtime::RuntimeOptions options;
  options.num_shards = 2;
  auto rt = runtime::StreamRuntime::Create(options);
  ASSERT_TRUE(rt.ok());
  auto stream = (*rt)->AddStream("stock", StockSchema());
  ASSERT_TRUE(stream.ok());
  runtime::CollectingMatchSink sink;
  runtime::QueryOptions qopts;
  qopts.sink = &sink;
  auto id = (*rt)->RegisterQuery(*stream, kQuery4, {}, qopts);
  ASSERT_TRUE(id.ok()) << id.status();

  for (const EventPtr& e : events) ASSERT_TRUE((*rt)->Ingest(*stream, e));
  ASSERT_TRUE((*rt)->Flush().ok());
  const size_t expected = sink.size();
  ASSERT_GT(expected, 0u);

  auto rendered = (*rt)->ExplainAnalyze(*id);
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  // The merged per-shard profile's match total is the sink's total, and
  // the header reports every pushed event.
  EXPECT_NE(rendered->find("matches=" + std::to_string(expected)),
            std::string::npos)
      << *rendered;
  EXPECT_NE(
      rendered->find("events_pushed=" + std::to_string(events.size())),
      std::string::npos)
      << *rendered;

  // The runtime's registry carries the same totals, plus a populated
  // detection-latency histogram for the query.
  const std::string metrics = (*rt)->MetricsPrometheus();
  EXPECT_NE(
      metrics.find("zstream_query_matches_total{query=\"q" +
                   std::to_string(*id) + "\"} " + std::to_string(expected)),
      std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("zstream_detection_latency_seconds_count"),
            std::string::npos);
}
#endif  // ZSTREAM_OBS_STRIPPED

// ---------------------------------------------------------------------
// DDL: EXPLAIN / EXPLAIN ANALYZE
// ---------------------------------------------------------------------

TEST(ExplainDdl, ExplainAliasesShowPlanAndAnalyzeProfiles) {
  ZStream session(StockSchema());
  auto created = session.Execute(
      "CREATE QUERY rally ON default AS " + std::string(kQuery4));
  ASSERT_TRUE(created.ok()) << created.status();

  auto plan = session.Execute("EXPLAIN rally");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->message.empty());

  const auto events = StockWorkload(2000, 5);
  auto rally = session.query("rally");
  ASSERT_TRUE(rally.ok());
  for (const EventPtr& e : events) (*rally)->Push(e);

  auto analyzed = session.Execute("EXPLAIN ANALYZE rally");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->message.find("query=rally"), std::string::npos)
      << analyzed->message;
#ifndef ZSTREAM_OBS_STRIPPED
  EXPECT_NE(analyzed->message.find("in=" + std::to_string(events.size())),
            std::string::npos)
      << analyzed->message;
#endif

  auto unknown = session.Execute("EXPLAIN ANALYZE nope");
  EXPECT_FALSE(unknown.ok());
  auto trailing = session.Execute("EXPLAIN ANALYZE rally extra");
  EXPECT_FALSE(trailing.ok());
}

// ---------------------------------------------------------------------
// Wire + HTTP exposition
// ---------------------------------------------------------------------

constexpr char kStockDdl[] =
    "CREATE STREAM stock "
    "(id INT, name STRING, price DOUBLE, volume INT, ts INT)";
constexpr char kRallyDdl[] =
    "CREATE QUERY rally ON stock AS "
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 100";

/// One blocking HTTP/1.0 request against the metrics side port;
/// returns the raw response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << ErrnoToString(errno);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[16 << 10];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetMetrics, WireAndHttpExposition) {
  ZStream session;
  ASSERT_TRUE(session.Execute(kStockDdl).ok());
  ASSERT_TRUE(session.Execute(kRallyDdl).ok());

  runtime::RuntimeOptions runtime_options;
  runtime_options.num_shards = 2;
  net::ServerOptions server_options;
  server_options.metrics_port = 0;  // ephemeral HTTP side port
  auto server =
      net::Server::Create(&session, runtime_options, server_options);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_NE((*server)->metrics_port(), 0);

  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  StockGenOptions gen;
  gen.num_events = 2000;
  gen.seed = 11;
  const auto events = GenerateStockTrades(gen);
  auto ack = (*client)->Ingest("stock", events);
  ASSERT_TRUE(ack.ok());
  ASSERT_TRUE((*client)->Flush().ok());

  // Wire: Prometheus text and JSON.
  auto text = (*client)->Metrics();
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("zstream_events_ingested_total 2000\n"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("query=\"rally\""), std::string::npos);
  EXPECT_NE(text->find("zstream_server_frames_dispatched_total"),
            std::string::npos);
  auto json = (*client)->Metrics(net::kMetricsFormatJson);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->front(), '{');
  EXPECT_NE(json->find("\"runtime\""), std::string::npos);
  EXPECT_NE(json->find("\"process\""), std::string::npos);
  auto bad = (*client)->Metrics(99);
  EXPECT_FALSE(bad.ok());

  // HTTP side port: /metrics, /metrics.json, /healthz, 404.
  const uint16_t mport = (*server)->metrics_port();
  const std::string metrics = HttpGet(mport, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("zstream_events_ingested_total 2000\n"),
            std::string::npos);
  const std::string mjson = HttpGet(mport, "/metrics.json");
  EXPECT_NE(mjson.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(mjson.find("application/json"), std::string::npos);
  const std::string health = HttpGet(mport, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);
  const std::string missing = HttpGet(mport, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  (*server)->Stop();
}

}  // namespace
}  // namespace zstream::testing
