// End-to-end API tests: compile the paper's queries, run streams,
// inspect plans.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::Stock;

TEST(Api, CompileAndRunQuery1Style) {
  // Query 1: a stock rises x% above the following Google tick, then
  // falls y% below it, within the window.
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;T2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND T1.price > (1 + 20%) * T2.price "
      "AND T3.price < (1 - 20%) * T2.price "
      "WITHIN 10 RETURN T1, T2, T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  std::vector<Match> matches;
  (*query)->SetMatchCallback([&](Match&& m) { matches.push_back(m); });
  (*query)->Push(Stock("IBM", 130, 1));
  (*query)->Push(Stock("Google", 100, 2));
  (*query)->Push(Stock("IBM", 70, 3));
  (*query)->Push(Stock("Oracle", 75, 4));  // name mismatch with IBM
  (*query)->Finish();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[0]->value(1), Value("IBM"));
  EXPECT_EQ(matches[0].slots[2]->timestamp(), 3);
}

TEST(Api, Query2StylePartitionsOnName) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T2.name = T3.name "
      "AND T1.price > 50 AND T2.price < 50 "
      "AND T3.price > 50 * (1 + 20%) "
      "WITHIN 10 RETURN T1, T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE((*query)->partitioned());

  (*query)->Push(Stock("IBM", 60, 1));
  (*query)->Push(Stock("Sun", 40, 2));   // different partition
  (*query)->Push(Stock("IBM", 70, 3));   // match: 60 -> 70, no dip
  (*query)->Push(Stock("IBM", 40, 4));   // dip
  (*query)->Push(Stock("IBM", 80, 5));   // every pair ending here dips
  (*query)->Finish();
  // Only (60@1, 70@3) survives: the dip at t=4 negates both
  // (60@1, 80@5) and (70@3, 80@5).
  EXPECT_EQ((*query)->num_matches(), 1u);
}

TEST(Api, Query3StyleKleeneAggregate) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND sum(T2.volume) > 150 "
      "AND T3.price > (1 + 20%) * T1.price "
      "WITHIN 10 RETURN T1, sum(T2.volume), T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  std::vector<std::vector<Value>> rows;
  (*query)->SetMatchCallback([&](Match&& m) {
    rows.push_back(ProjectMatch((*query)->pattern(), m));
  });
  (*query)->Push(Stock("IBM", 100, 1));
  (*query)->Push(Stock("Google", 1, 2, /*volume=*/100));
  (*query)->Push(Stock("Google", 1, 3, /*volume=*/80));
  (*query)->Push(Stock("IBM", 130, 4));
  (*query)->Finish();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 180.0);
}

TEST(Api, ExplainShowsPlanShape) {
  ZStream zs(StockSchema());
  CompileOptions left;
  left.strategy = PlanStrategy::kLeftDeep;
  auto query = zs.Compile("PATTERN A;B;C WITHIN 10", left);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->Explain(), "[[A ; B] ; C]");
}

TEST(Api, ShapeStrategy) {
  ZStream zs(StockSchema());
  CompileOptions bushy;
  bushy.strategy = PlanStrategy::kShape;
  bushy.shape = "((0 1) (2 3))";
  auto query = zs.Compile("PATTERN A;B;C;D WITHIN 10", bushy);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->Explain(), "[[A ; B] ; [C ; D]]");
}

TEST(Api, OptimalStrategyUsesStats) {
  ZStream zs(StockSchema());
  CompileOptions options;
  StatsCatalog stats(3, 10.0);
  stats.set_rate(2, 0.001);
  options.stats = stats;
  auto query = zs.Compile("PATTERN A;B;C WITHIN 10", options);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->Explain(), "[A ; [B ; C]]");
}

TEST(Api, CompileErrorsSurface) {
  ZStream zs(StockSchema());
  EXPECT_FALSE(zs.Compile("PATTERN WITHIN 10").ok());
  EXPECT_FALSE(zs.Compile("PATTERN A;!B WITHIN 10").ok());
  EXPECT_FALSE(zs.Compile("PATTERN A;B WHERE A.zz > 1 WITHIN 10").ok());
}

TEST(Api, AnalyzeOnly) {
  ZStream zs(StockSchema());
  auto p = zs.Analyze("PATTERN A;B WITHIN 10");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->num_classes(), 2);
}

}  // namespace
}  // namespace zstream
