// End-to-end API tests: compile the paper's queries, run streams,
// inspect plans.
#include <gtest/gtest.h>

#include "api/internal.h"
#include "test_util.h"

namespace zstream {
namespace {

using testing::Stock;

TEST(Api, CompileAndRunQuery1Style) {
  // Query 1: a stock rises x% above the following Google tick, then
  // falls y% below it, within the window.
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;T2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND T1.price > (1 + 20%) * T2.price "
      "AND T3.price < (1 - 20%) * T2.price "
      "WITHIN 10 RETURN T1, T2, T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  std::vector<Match> matches;
  (*query)->SetMatchCallback([&](Match&& m) { matches.push_back(m); });
  (*query)->Push(Stock("IBM", 130, 1));
  (*query)->Push(Stock("Google", 100, 2));
  (*query)->Push(Stock("IBM", 70, 3));
  (*query)->Push(Stock("Oracle", 75, 4));  // name mismatch with IBM
  (*query)->Finish();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[0]->value(1), Value("IBM"));
  EXPECT_EQ(matches[0].slots[2]->timestamp(), 3);
}

TEST(Api, Query2StylePartitionsOnName) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T2.name = T3.name "
      "AND T1.price > 50 AND T2.price < 50 "
      "AND T3.price > 50 * (1 + 20%) "
      "WITHIN 10 RETURN T1, T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE((*query)->partitioned());

  (*query)->Push(Stock("IBM", 60, 1));
  (*query)->Push(Stock("Sun", 40, 2));   // different partition
  (*query)->Push(Stock("IBM", 70, 3));   // match: 60 -> 70, no dip
  (*query)->Push(Stock("IBM", 40, 4));   // dip
  (*query)->Push(Stock("IBM", 80, 5));   // every pair ending here dips
  (*query)->Finish();
  // Only (60@1, 70@3) survives: the dip at t=4 negates both
  // (60@1, 80@5) and (70@3, 80@5).
  EXPECT_EQ((*query)->num_matches(), 1u);
}

TEST(Api, Query3StyleKleeneAggregate) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND sum(T2.volume) > 150 "
      "AND T3.price > (1 + 20%) * T1.price "
      "WITHIN 10 RETURN T1, sum(T2.volume), T3");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  std::vector<std::vector<Value>> rows;
  (*query)->SetMatchCallback([&](Match&& m) {
    rows.push_back(ProjectMatch((*query)->pattern(), m));
  });
  (*query)->Push(Stock("IBM", 100, 1));
  (*query)->Push(Stock("Google", 1, 2, /*volume=*/100));
  (*query)->Push(Stock("Google", 1, 3, /*volume=*/80));
  (*query)->Push(Stock("IBM", 130, 4));
  (*query)->Finish();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 180.0);
}

TEST(Api, ExplainShowsStreamPlanCostAndStatsSource) {
  ZStream zs(StockSchema());
  CompileOptions left;
  left.strategy = PlanStrategy::kLeftDeep;
  auto query = zs.Compile("PATTERN A;B;C WITHIN 10", left);
  ASSERT_TRUE(query.ok());
  const std::string explain = (*query)->Explain();
  EXPECT_NE(explain.find("stream=default"), std::string::npos) << explain;
  EXPECT_NE(explain.find("plan=[[A ; B] ; C]"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("cost="), std::string::npos) << explain;
  EXPECT_NE(explain.find("stats=uniform-defaults"), std::string::npos)
      << explain;
  // Fixed shapes are costed too, with the same defaulted stats.
  EXPECT_GT((*query)->plan().estimated_cost, 0.0);
}

TEST(Api, ShapeStrategy) {
  ZStream zs(StockSchema());
  CompileOptions bushy;
  bushy.strategy = PlanStrategy::kShape;
  bushy.shape = "((0 1) (2 3))";
  auto query = zs.Compile("PATTERN A;B;C;D WITHIN 10", bushy);
  ASSERT_TRUE(query.ok());
  EXPECT_NE((*query)->Explain().find("plan=[[A ; B] ; [C ; D]]"),
            std::string::npos)
      << (*query)->Explain();
}

TEST(Api, OptimalStrategyUsesStats) {
  ZStream zs(StockSchema());
  CompileOptions options;
  StatsCatalog stats(3, 10.0);
  stats.set_rate(2, 0.001);
  options.stats = stats;
  auto query = zs.Compile("PATTERN A;B;C WITHIN 10", options);
  ASSERT_TRUE(query.ok());
  const std::string explain = (*query)->Explain();
  EXPECT_NE(explain.find("plan=[A ; [B ; C]]"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("stats=provided"), std::string::npos) << explain;
}

TEST(Api, CompileErrorsSurface) {
  ZStream zs(StockSchema());
  EXPECT_FALSE(zs.Compile("PATTERN WITHIN 10").ok());
  EXPECT_FALSE(zs.Compile("PATTERN A;!B WITHIN 10").ok());
  EXPECT_FALSE(zs.Compile("PATTERN A;B WHERE A.zz > 1 WITHIN 10").ok());
}

TEST(Api, AnalyzeOnly) {
  ZStream zs(StockSchema());
  auto p = zs.Analyze("PATTERN A;B WITHIN 10");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->num_classes(), 2);
}

// ---------------------------------------------------------------------
// Catalog + DDL session model
// ---------------------------------------------------------------------

TEST(Api, DdlCreateStreamAndQueryEndToEnd) {
  ZStream zs;  // empty catalog
  auto created = zs.Execute(
      "CREATE STREAM stock "
      "(id INT, name STRING, price DOUBLE, volume INT, ts INT)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(zs.catalog().HasStream("stock"));

  auto ddl = zs.Execute(
      "CREATE QUERY rally ON stock AS "
      "PATTERN A;B WHERE A.price > B.price WITHIN 10");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  Query* q = ddl->query;
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->name(), "rally");
  EXPECT_EQ(q->stream(), "stock");

  q->Push(Stock("IBM", 100, 1));
  q->Push(Stock("Sun", 50, 2));
  q->Finish();
  EXPECT_EQ(q->num_matches(), 1u);

  // The handle is also reachable by name.
  auto by_name = zs.query("rally");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, q);
}

TEST(Api, DdlShowAndDrop) {
  ZStream zs(StockSchema());
  ASSERT_TRUE(zs.Execute("CREATE QUERY q1 ON default AS "
                         "PATTERN A;B WITHIN 10")
                  .ok());
  auto shown = zs.Execute("SHOW QUERIES");
  ASSERT_TRUE(shown.ok());
  ASSERT_EQ(shown->rows.size(), 1u);
  EXPECT_EQ(shown->rows[0].name, "q1");
  EXPECT_EQ(shown->rows[0].stream, "default");
  EXPECT_NE(shown->message.find("PATTERN"), std::string::npos);

  auto streams = zs.Execute("SHOW STREAMS");
  ASSERT_TRUE(streams.ok());
  EXPECT_EQ(streams->stream_names,
            std::vector<std::string>{"default"});

  ASSERT_TRUE(zs.Execute("DROP QUERY q1").ok());
  EXPECT_FALSE(zs.query("q1").ok());
  EXPECT_TRUE(zs.Execute("SHOW QUERIES")->rows.empty());

  // Dropping a stream with no queries works; unknown drops error.
  ASSERT_TRUE(zs.Execute("DROP STREAM default").ok());
  EXPECT_FALSE(zs.Execute("DROP STREAM default").ok());
}

TEST(Api, TwoNamedStreamsWithDistinctSchemas) {
  ZStream zs;
  ASSERT_TRUE(zs.catalog().CreateStream("stock", StockSchema()).ok());
  ASSERT_TRUE(zs.catalog().CreateStream("weblog", WebLogSchema()).ok());

  auto stock_q = zs.Compile("stock",
                            "PATTERN A;B WHERE A.price > B.price WITHIN 10");
  ASSERT_TRUE(stock_q.ok()) << stock_q.status().ToString();
  auto web_q = zs.Compile(
      "weblog",
      "PATTERN Pub;Course WHERE Pub.category='publication' "
      "AND Course.category='course' AND Pub.ip = Course.ip WITHIN 100");
  ASSERT_TRUE(web_q.ok()) << web_q.status().ToString();
  EXPECT_NE((*stock_q)->Explain().find("stream=stock"), std::string::npos);
  EXPECT_NE((*web_q)->Explain().find("stream=weblog"), std::string::npos);

  (*stock_q)->Push(Stock("IBM", 100, 1));
  (*stock_q)->Push(Stock("Sun", 50, 2));
  (*stock_q)->Finish();
  EXPECT_EQ((*stock_q)->num_matches(), 1u);

  const auto web_event = [&](const char* ip, const char* cat,
                             Timestamp ts) {
    return EventBuilder(WebLogSchema())
        .Set("ip", ip)
        .Set("url", "/x")
        .Set("category", cat)
        .At(ts)
        .Build();
  };
  (*web_q)->Push(web_event("1.2.3.4", "publication", 1));
  (*web_q)->Push(web_event("1.2.3.4", "course", 2));
  (*web_q)->Push(web_event("9.9.9.9", "course", 3));  // different IP
  (*web_q)->Finish();
  EXPECT_EQ((*web_q)->num_matches(), 1u);

  // The weblog schema has no 'price': compiling a stock query against
  // it fails in analysis, proving per-stream schemas are honored.
  EXPECT_FALSE(
      zs.Compile("weblog", "PATTERN A;B WHERE A.price > 1 WITHIN 10").ok());
}

TEST(Api, CompileAgainstUnknownStreamFails) {
  ZStream zs(StockSchema());
  auto bad = zs.Compile("nope", "PATTERN A;B WITHIN 10");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.status().error_code(), "ZS-S0002");
}

TEST(Api, InternalQueryAccessReachesEngines) {
  // api/internal.h is the one sanctioned route to the raw engines; keep
  // it compiling and honest about which side backs the query.
  ZStream zs(StockSchema());
  auto plain = zs.Compile("PATTERN A;B WITHIN 10");
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(internal::QueryAccess::Core(**plain), nullptr);
  EXPECT_NE(internal::QueryAccess::SingleEngine(**plain), nullptr);
  EXPECT_EQ(internal::QueryAccess::Partitioned(**plain), nullptr);

  auto keyed = zs.Compile(
      "PATTERN A;B WHERE A.name = B.name AND A.price < B.price WITHIN 10");
  ASSERT_TRUE(keyed.ok());
  ASSERT_TRUE((*keyed)->partitioned());
  EXPECT_EQ(internal::QueryAccess::SingleEngine(**keyed), nullptr);
  EXPECT_EQ(internal::QueryAccess::Core(**keyed),
            static_cast<EngineCore*>(
                internal::QueryAccess::Partitioned(**keyed)));
}

TEST(Api, CompileFromPatternBuilder) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(PatternBuilder(Seq("A", "B"))
                              .Where(Attr("A", "price") > Attr("B", "price"))
                              .Within(10));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  (*query)->Push(Stock("IBM", 100, 1));
  (*query)->Push(Stock("Sun", 50, 2));
  (*query)->Finish();
  EXPECT_EQ((*query)->num_matches(), 1u);
}

}  // namespace
}  // namespace zstream
