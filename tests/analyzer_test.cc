// Semantic analysis: class binding, predicate classification and
// pushdown, partition detection, negated-disjunction merging.
#include <gtest/gtest.h>

#include "expr/analysis.h"
#include "query/analyzer.h"

namespace zstream {
namespace {

PatternPtr Must(const std::string& q, AnalyzerOptions o = {}) {
  auto r = AnalyzeQuery(q, StockSchema(), o);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << q;
  return r.ok() ? *r : nullptr;
}

TEST(Analyzer, ClassesInTemporalOrder) {
  const PatternPtr p = Must("PATTERN T1;T2;T3 WITHIN 10");
  ASSERT_EQ(p->num_classes(), 3);
  EXPECT_EQ(p->classes[0].alias, "T1");
  EXPECT_EQ(p->classes[2].alias, "T3");
  EXPECT_TRUE(p->IsSequence());
}

TEST(Analyzer, SingleClassPredicatesPushDown) {
  const PatternPtr p = Must(
      "PATTERN T1;T2 WHERE T2.name = 'Google' AND T1.price > 5 "
      "AND T1.price > T2.price WITHIN 10");
  EXPECT_EQ(p->classes[0].leaf_predicates.size(), 1u);
  EXPECT_EQ(p->classes[1].leaf_predicates.size(), 1u);
  EXPECT_EQ(p->multi_predicates.size(), 1u);
}

TEST(Analyzer, AggregatePredicatesStayMulti) {
  const PatternPtr p = Must(
      "PATTERN T1;T2^3;T3 WHERE sum(T2.volume) > 10 WITHIN 10");
  // Aggregates must be evaluated over the closure group, never at the
  // leaf even though they reference one class.
  EXPECT_TRUE(p->classes[1].leaf_predicates.empty());
  EXPECT_EQ(p->multi_predicates.size(), 1u);
}

TEST(Analyzer, PartitionDetectedForFullEqualityCoverage) {
  const PatternPtr p = Must(
      "PATTERN T1;T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  ASSERT_TRUE(p->partition.has_value());
  EXPECT_EQ(p->partition->field_name, "name");
  EXPECT_TRUE(p->multi_predicates.empty());  // implied by partitioning
}

TEST(Analyzer, NoPartitionForPartialCoverage) {
  // Query 1 shape: equality links T1 and T3 only.
  const PatternPtr p = Must(
      "PATTERN T1;T2;T3 WHERE T1.name = T3.name AND T2.name = 'Google' "
      "WITHIN 10");
  EXPECT_FALSE(p->partition.has_value());
  EXPECT_EQ(p->multi_predicates.size(), 1u);
}

TEST(Analyzer, PartitionCanBeDisabled) {
  AnalyzerOptions o;
  o.detect_partition = false;
  const PatternPtr p = Must(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10", o);
  EXPECT_FALSE(p->partition.has_value());
  EXPECT_EQ(p->multi_predicates.size(), 1u);
}

TEST(Analyzer, NegatedClassMarked) {
  const PatternPtr p = Must("PATTERN T1;!T2;T3 WITHIN 10");
  EXPECT_TRUE(p->classes[1].negated);
  EXPECT_EQ(p->NegatedClasses(), (std::vector<int>{1}));
}

TEST(Analyzer, NegatedDisjunctionMergesIntoBranches) {
  const PatternPtr p = Must(
      "PATTERN A;!(B|C);D WHERE B.price > 10 AND C.price < 5 WITHIN 10",
      AnalyzerOptions{.apply_rewrites = false});
  ASSERT_EQ(p->num_classes(), 3);
  const EventClass& merged = p->classes[1];
  EXPECT_TRUE(merged.negated);
  ASSERT_EQ(merged.neg_branches.size(), 2u);
  EXPECT_EQ(merged.neg_branches[0].alias, "B");
  EXPECT_EQ(merged.neg_branches[0].predicates.size(), 1u);
  EXPECT_EQ(merged.neg_branches[1].predicates.size(), 1u);
}

TEST(Analyzer, DeMorganThenMergeEndToEnd) {
  // With rewrites on, !B & !C becomes !(B|C) and then merges.
  const PatternPtr p = Must("PATTERN A;(!B&!C);D WITHIN 10");
  ASSERT_EQ(p->num_classes(), 3);
  EXPECT_EQ(p->classes[1].neg_branches.size(), 2u);
}

TEST(Analyzer, ReturnItemsResolved) {
  const PatternPtr p = Must(
      "PATTERN T1;T2 WITHIN 10 RETURN T1, T2.price, T1.price - T2.price");
  ASSERT_EQ(p->return_items.size(), 3u);
  EXPECT_EQ(p->return_items[0].expr, nullptr);
  EXPECT_EQ(p->return_items[0].class_idx, 0);
  EXPECT_NE(p->return_items[1].expr, nullptr);
}

TEST(Analyzer, DefaultReturnSkipsNegatedClasses) {
  const PatternPtr p = Must("PATTERN T1;!T2;T3 WITHIN 10");
  ASSERT_EQ(p->return_items.size(), 2u);
  EXPECT_EQ(p->return_items[0].class_idx, 0);
  EXPECT_EQ(p->return_items[1].class_idx, 2);
}

TEST(Analyzer, TriggerClasses) {
  EXPECT_EQ(Must("PATTERN A;B;C WITHIN 5")->TriggerClasses(),
            (std::vector<int>{2}));
  EXPECT_EQ(Must("PATTERN A;(B|C) WITHIN 5")->TriggerClasses(),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(Must("PATTERN A&B WITHIN 5")->TriggerClasses(),
            (std::vector<int>{0, 1}));
}

TEST(Analyzer, Errors) {
  const SchemaPtr s = StockSchema();
  EXPECT_FALSE(AnalyzeQuery("PATTERN T1;T1 WITHIN 5", s).ok());
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN T1;T2 WHERE T9.price > 1 WITHIN 5", s).ok());
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN T1;T2 WHERE T1.bogus > 1 WITHIN 5", s).ok());
  EXPECT_FALSE(AnalyzeQuery("PATTERN T1;T2 WITHIN 0", s).ok());
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN T1;T2 WHERE sum(T1.price) > 1 WITHIN 5", s)
          .ok());  // aggregate over non-Kleene class
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN T1;!T2;T3 WITHIN 5 RETURN T2", s).ok());
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN T1;T2 WHERE 1 > 0 WITHIN 5", s).ok());
}

TEST(Analyzer, TsAttributeResolves) {
  // Stock schema has a ts column; other schemas fall back to the event
  // timestamp.
  const PatternPtr p = Must(
      "PATTERN T1;T2 WHERE T2.ts - T1.ts > 3 WITHIN 10");
  EXPECT_EQ(p->multi_predicates.size(), 1u);
  const SchemaPtr weblog = WebLogSchema();
  auto q = AnalyzeQuery("PATTERN A;B WHERE B.ts - A.ts > 3 WITHIN 10",
                        weblog);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
}

// Same-attribute equality chains denote one equivalence class (the
// Figure 4 "partition by name" reading), but predicate logic alone is
// not transitive through an optional class: A.name=B.name AND
// B.name=C.name with !B says nothing about A vs C when no B occurs.
// The analyzer materializes the direct A=C equality so partitioned and
// non-partitioned analyses agree (regression found by zstream_fuzz).
TEST(Analyzer, EqualityChainThroughNegationMaterializesClosure) {
  constexpr char kChain[] =
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10";
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  const PatternPtr p = Must(kChain, no_part);
  bool direct_t1_t3 = false;
  for (const ExprPtr& pred : p->multi_predicates) {
    if (ReferencedClasses(pred) == std::set<int>{0, 2}) {
      direct_t1_t3 = true;
    }
  }
  EXPECT_TRUE(direct_t1_t3) << p->ToString();

  // With detection on, the whole chain (materialized edge included)
  // becomes the partition key.
  const PatternPtr partitioned = Must(kChain);
  ASSERT_TRUE(partitioned->partition.has_value());
  EXPECT_EQ(partitioned->partition->field_name, "name");
  EXPECT_TRUE(partitioned->multi_predicates.empty());
}

// A chain over always-bound classes already enforces its closure; no
// predicates are invented for it.
TEST(Analyzer, BoundOnlyEqualityChainIsNotMaterialized) {
  AnalyzerOptions no_part;
  no_part.detect_partition = false;
  const PatternPtr p = Must(
      "PATTERN T1;T2;T3 WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10",
      no_part);
  EXPECT_EQ(p->multi_predicates.size(), 2u);
}

}  // namespace
}  // namespace zstream
