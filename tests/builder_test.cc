// PatternBuilder <-> query-string parity: for each tier-1 corpus query,
// the typed-builder construction and the parsed text must produce the
// same Explain() (identical plan, cost and stats source) and the same
// match set on the generated workloads — and the builder's
// ToQueryString() must round-trip through the parser to the same query.
#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"
#include "testing/pattern_gen.h"
#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

namespace zstream {
namespace {

using testing::MatchKey;

std::vector<std::string> RunQuery(Query& query,
                                  const std::vector<EventPtr>& events) {
  std::vector<std::string> keys;
  query.SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (const EventPtr& e : events) query.Push(e);
  query.Finish();
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Compiles `text` and `builder` against `zs`, requires identical
/// Explain() and identical match sets over `events`, and checks the
/// ToQueryString() round-trip.
void ExpectParity(const ZStream& zs, const std::string& label,
                  const std::string& text, const PatternBuilder& builder,
                  const std::vector<EventPtr>& events) {
  SCOPED_TRACE(label);
  auto from_text = zs.Compile(builder.stream(), text);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  auto from_builder = zs.Compile(builder);
  ASSERT_TRUE(from_builder.ok()) << from_builder.status().ToString();

  EXPECT_EQ((*from_text)->Explain(), (*from_builder)->Explain());

  auto roundtrip = zs.Compile(builder.stream(), builder.ToQueryString());
  ASSERT_TRUE(roundtrip.ok())
      << roundtrip.status().ToString() << "\n  round-trip text was: "
      << builder.ToQueryString();
  EXPECT_EQ((*roundtrip)->Explain(), (*from_builder)->Explain());

  const auto text_keys = RunQuery(**from_text, events);
  const auto builder_keys = RunQuery(**from_builder, events);
  const auto roundtrip_keys = RunQuery(**roundtrip, events);
  EXPECT_FALSE(text_keys.empty()) << "corpus query should match something";
  EXPECT_EQ(text_keys, builder_keys);
  EXPECT_EQ(text_keys, roundtrip_keys);
}

std::vector<EventPtr> StockWorkload(const std::string& ratio, int n,
                                    uint64_t seed,
                                    std::vector<std::string> names = {
                                        "IBM", "Sun", "Oracle"}) {
  StockGenOptions options;
  options.names = std::move(names);
  options.weights = ParseRateRatio(ratio);
  options.num_events = n;
  options.seed = seed;
  return GenerateStockTrades(options);
}

TEST(BuilderParity, Query1RiseFallAroundGoogle) {
  ZStream zs(StockSchema());
  const auto events =
      StockWorkload("2:1:2", 4000, 11, {"IBM", "Google", "Oracle"});
  ExpectParity(
      zs, "query1",
      "PATTERN T1;T2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND T1.price > (1 + 20%) * T2.price "
      "AND T3.price < (1 - 20%) * T2.price "
      "WITHIN 10 RETURN T1, T2, T3",
      PatternBuilder(Seq("T1", "T2", "T3"))
          .Where(Attr("T1", "name") == Attr("T3", "name"))
          .Where(Attr("T2", "name") == "Google")
          .Where(Attr("T1", "price") >
                 (ExprBuilder(1) + 0.2) * Attr("T2", "price"))
          .Where(Attr("T3", "price") <
                 (ExprBuilder(1) - 0.2) * Attr("T2", "price"))
          .Within(10)
          .Return(Ref("T1"))
          .Return(Ref("T2"))
          .Return(Ref("T3")),
      events);
}

TEST(BuilderParity, Query2NegationPartitioned) {
  ZStream zs(StockSchema());
  const auto events = StockWorkload("1:1:1", 4000, 17);
  ExpectParity(
      zs, "query2",
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T2.name AND T2.name = T3.name "
      "AND T1.price > 50 AND T2.price < 50 "
      "AND T3.price > 50 * (1 + 20%) "
      "WITHIN 10 RETURN T1, T3",
      PatternBuilder(Seq("T1", Neg("T2"), "T3"))
          .Where(Attr("T1", "name") == Attr("T2", "name"))
          .Where(Attr("T2", "name") == Attr("T3", "name"))
          .Where(Attr("T1", "price") > 50)
          .Where(Attr("T2", "price") < 50)
          .Where(Attr("T3", "price") > 50 * (ExprBuilder(1) + 0.2))
          .Within(10)
          .Return(Ref("T1"))
          .Return(Ref("T3")),
      events);
}

TEST(BuilderParity, Query3KleeneAggregate) {
  ZStream zs(StockSchema());
  const auto events =
      StockWorkload("1:3:1", 3000, 23, {"IBM", "Google", "Oracle"});
  ExpectParity(
      zs, "query3",
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND sum(T2.volume) > 150 "
      "AND T3.price > (1 + 20%) * T1.price "
      "WITHIN 10 RETURN T1, sum(T2.volume), T3",
      PatternBuilder(Seq("T1", PatternExpr("T2").Times(2), "T3"))
          .Where(Attr("T1", "name") == Attr("T3", "name"))
          .Where(Attr("T2", "name") == "Google")
          .Where(Sum("T2", "volume") > 150)
          .Where(Attr("T3", "price") >
                 (ExprBuilder(1) + 0.2) * Attr("T1", "price"))
          .Within(10)
          .Return(Ref("T1"))
          .Return(Sum("T2", "volume"))
          .Return(Ref("T3")),
      events);
}

TEST(BuilderParity, Query4SequenceWithPredicate) {
  ZStream zs(StockSchema());
  const auto events = StockWorkload("1:1:1", 3000, 13);
  ExpectParity(
      zs, "query4",
      "PATTERN IBM;Sun;Oracle "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "AND IBM.price > Sun.price WITHIN 200",
      PatternBuilder(Seq("IBM", "Sun", "Oracle"))
          .Where(Attr("IBM", "name") == "IBM")
          .Where(Attr("Sun", "name") == "Sun")
          .Where(Attr("Oracle", "name") == "Oracle")
          .Where(Attr("IBM", "price") > Attr("Sun", "price"))
          .Within(200),
      events);
}

TEST(BuilderParity, Query6FourClassChain) {
  ZStream zs(StockSchema());
  const auto events = StockWorkload("1:5:5:5", 2000, 19,
                                    {"IBM", "Sun", "Oracle", "Google"});
  ExpectParity(
      zs, "query6",
      "PATTERN IBM;Sun;Oracle;Google "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "AND Google.name='Google' AND Oracle.price > Sun.price "
      "AND Oracle.price > Google.price WITHIN 100",
      PatternBuilder(Seq("IBM", "Sun", "Oracle", "Google"))
          .Where(Attr("IBM", "name") == "IBM")
          .Where(Attr("Sun", "name") == "Sun")
          .Where(Attr("Oracle", "name") == "Oracle")
          .Where(Attr("Google", "name") == "Google")
          .Where(Attr("Oracle", "price") > Attr("Sun", "price"))
          .Where(Attr("Oracle", "price") > Attr("Google", "price"))
          .Within(100),
      events);
}

TEST(BuilderParity, Query7Negation) {
  ZStream zs(StockSchema());
  const auto events = StockWorkload("1:1:10", 3000, 29);
  ExpectParity(
      zs, "query7",
      "PATTERN IBM;!Sun;Oracle "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "WITHIN 200",
      PatternBuilder(Seq("IBM", Neg("Sun"), "Oracle"))
          .Where(Attr("IBM", "name") == "IBM")
          .Where(Attr("Sun", "name") == "Sun")
          .Where(Attr("Oracle", "name") == "Oracle")
          .Within(200),
      events);
}

TEST(BuilderParity, Query8WebLogPartitioned) {
  ZStream zs;
  ASSERT_TRUE(zs.catalog().CreateStream("weblog", WebLogSchema()).ok());
  WebLogGenOptions gen;
  gen.total_records = 50000;
  gen.publication_accesses = 1500;
  gen.project_accesses = 2000;
  gen.course_accesses = 2500;
  gen.num_ips = 40;
  const auto events = GenerateWebLog(gen);
  ExpectParity(
      zs, "query8",
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip AND Proj.ip = Course.ip "
      "WITHIN 10 hours RETURN Pub.ip",
      PatternBuilder(Seq("Pub", "Proj", "Course"))
          .On("weblog")
          .Where(Attr("Pub", "category") == "publication")
          .Where(Attr("Proj", "category") == "project")
          .Where(Attr("Course", "category") == "course")
          .Where(Attr("Pub", "ip") == Attr("Proj", "ip"))
          .Where(Attr("Proj", "ip") == Attr("Course", "ip"))
          .Within(10LL * 3600 * 1000)
          .Return(Attr("Pub", "ip")),
      events);
}

TEST(BuilderParity, DisjunctionAndConjunctionStructure) {
  ZStream zs(StockSchema());
  const auto events = StockWorkload("1:1:1", 1500, 37);
  ExpectParity(zs, "disjunction",
               "PATTERN (IBM|Sun);Oracle "
               "WHERE IBM.name='IBM' AND Sun.name='Sun' "
               "AND Oracle.name='Oracle' WITHIN 50",
               PatternBuilder(Seq(Or("IBM", "Sun"), "Oracle"))
                   .Where(Attr("IBM", "name") == "IBM")
                   .Where(Attr("Sun", "name") == "Sun")
                   .Where(Attr("Oracle", "name") == "Oracle")
                   .Within(50),
               events);
  ExpectParity(zs, "conjunction",
               "PATTERN (IBM&Sun);Oracle "
               "WHERE IBM.name='IBM' AND Sun.name='Sun' "
               "AND Oracle.name='Oracle' WITHIN 50",
               PatternBuilder(Seq(And("IBM", "Sun"), "Oracle"))
                   .Where(Attr("IBM", "name") == "IBM")
                   .Where(Attr("Sun", "name") == "Sun")
                   .Where(Attr("Oracle", "name") == "Oracle")
                   .Within(50),
               events);
}

TEST(BuilderParity, KleeneStarAndPlusRoundTrip) {
  ZStream zs(StockSchema());
  const auto events =
      StockWorkload("1:2:1", 800, 41, {"A", "B", "C"});
  ExpectParity(zs, "kleene-plus",
               "PATTERN A;B+;C WHERE A.name='A' AND B.name='B' "
               "AND C.name='C' WITHIN 20",
               PatternBuilder(Seq("A", PatternExpr("B").Plus(), "C"))
                   .Where(Attr("A", "name") == "A")
                   .Where(Attr("B", "name") == "B")
                   .Where(Attr("C", "name") == "C")
                   .Within(20),
               events);
}

// Unparser idempotence at the expression level: serialize, reparse,
// serialize again — the texts must agree, or precedence shifted.
void ExpectStableUnparse(const ExprBuilder& e) {
  const std::string text = UExprToString(*e.node());
  auto reparsed = ParsePredicate(text);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\n  text was: " << text;
  EXPECT_EQ(UExprToString(**reparsed), text);
}

TEST(BuilderParity, UnaryNotStaysBoundToItsOperand) {
  // Regression: "NOT (x)" (parens on the operand only) reparses as NOT
  // over the whole enclosing comparison; the unparser must emit
  // "(NOT (x))".
  ExpectStableUnparse((!(Attr("A", "price") > 1)) == Lit(Value(true)));
  ExpectStableUnparse((!(Attr("A", "price") > 1)) &&
                      (Attr("B", "price") > 2));
  ExpectStableUnparse(-Attr("A", "price") * 2 < 5);
}

TEST(BuilderParity, QuotedStringLiteralsRoundTrip) {
  // Regression: ' inside a string literal must double to '' on unparse
  // (and the lexer must fold '' back to one quote).
  ExpectStableUnparse(Attr("A", "name") == "O'Brien");
  ExpectStableUnparse(Attr("A", "name") == "''");
  const ExprBuilder e = Attr("A", "name") == "O'Brien";
  auto reparsed = ParsePredicate(UExprToString(*e.node()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)->right->literal, Value("O'Brien"));
}

TEST(BuilderParity, ExtremeDoubleLiteralsRoundTrip) {
  // Regression: fixed-notation unparsing of huge/tiny doubles needs a
  // ~1.1 kB buffer; a failed to_chars must never leak garbage.
  ExpectStableUnparse(Attr("A", "price") > 1e300);
  ExpectStableUnparse(Attr("A", "price") > 5e-324);
  ExpectStableUnparse(Attr("A", "price") > 0.1);
}

TEST(BuilderParity, BuilderRequiresWithin) {
  ZStream zs(StockSchema());
  auto incomplete = zs.Compile(PatternBuilder(Seq("A", "B")));
  ASSERT_FALSE(incomplete.ok());
  EXPECT_TRUE(incomplete.status().IsInvalidArgument());
}

// Property: every random pattern from the fuzz generator
// (src/testing/pattern_gen.h) survives ToQueryString() -> parse ->
// unparse with byte-identical text, and the builder, the text, and the
// reparsed text all compile to an identical Explain() (same plan, cost
// and stats source).
TEST(BuilderProperty, GeneratedPatternsRoundTripThroughUnparser) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    testing::PatternGen gen(seed * 0x9e3779b97f4a7c15ULL);
    const testing::GeneratedPattern g = gen.Next();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query: " + g.text);

    auto parsed = ParseQuery(g.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(ToQueryString(*parsed), g.text);

    ZStream zs(g.schema);
    auto from_builder = zs.Compile(g.builder);
    ASSERT_TRUE(from_builder.ok()) << from_builder.status().ToString();
    auto from_text = zs.Compile("default", g.text);
    ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
    auto from_reparse = zs.Compile("default", ToQueryString(*parsed));
    ASSERT_TRUE(from_reparse.ok()) << from_reparse.status().ToString();

    EXPECT_EQ((*from_builder)->Explain(), (*from_text)->Explain());
    EXPECT_EQ((*from_builder)->Explain(), (*from_reparse)->Explain());
  }
}

}  // namespace
}  // namespace zstream
