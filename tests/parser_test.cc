// Lexer and parser tests for the query language of Section 3.
#include <gtest/gtest.h>

#include "query/lexer.h"
#include "query/parser.h"

namespace zstream {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = Tokenize("PATTERN T1;T2 WHERE T1.price >= 1.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "PATTERN");
  EXPECT_EQ((*toks)[2].type, TokenType::kSemicolon);
  EXPECT_TRUE((*toks)[4].IsKeyword("where"));
}

TEST(Lexer, PercentLiteralVsModulo) {
  auto toks = Tokenize("20% 7 % 3");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kPercent);
  EXPECT_DOUBLE_EQ((*toks)[0].number, 0.20);
  EXPECT_EQ((*toks)[2].type, TokenType::kPercentOp);
}

TEST(Lexer, StringsAndErrors) {
  auto toks = Tokenize("'Google'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kString);
  EXPECT_EQ((*toks)[0].text, "Google");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("@").ok());
}

TEST(Lexer, TwoCharOperators) {
  auto toks = Tokenize("!= <= >= <> < >");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kNe);
  EXPECT_EQ((*toks)[1].type, TokenType::kLe);
  EXPECT_EQ((*toks)[2].type, TokenType::kGe);
  EXPECT_EQ((*toks)[3].type, TokenType::kNe);
  EXPECT_EQ((*toks)[4].type, TokenType::kLt);
  EXPECT_EQ((*toks)[5].type, TokenType::kGt);
}

TEST(Parser, SequencePattern) {
  auto p = ParsePattern("T1;T2;T3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->op, ParseOp::kSeq);
  EXPECT_EQ((*p)->children.size(), 3u);
  EXPECT_EQ((*p)->ToString(), "(T1;T2;T3)");
}

TEST(Parser, PrecedenceSemicolonLoosest) {
  auto p = ParsePattern("A;B|C&D");
  ASSERT_TRUE(p.ok());
  // A ; (B | (C & D))
  EXPECT_EQ((*p)->op, ParseOp::kSeq);
  EXPECT_EQ((*p)->children[1]->op, ParseOp::kDisj);
  EXPECT_EQ((*p)->children[1]->children[1]->op, ParseOp::kConj);
}

TEST(Parser, NegationAndParens) {
  auto p = ParsePattern("A;(!B&!C);D");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->children[1]->op, ParseOp::kConj);
  EXPECT_EQ((*p)->children[1]->children[0]->op, ParseOp::kNeg);
}

TEST(Parser, KleeneMarkers) {
  auto star = ParsePattern("A;B*;C");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ((*star)->children[1]->op, ParseOp::kKleene);
  EXPECT_EQ((*star)->children[1]->kleene, KleeneKind::kStar);

  auto plus = ParsePattern("B+");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ((*plus)->kleene, KleeneKind::kPlus);

  auto count = ParsePattern("T1;T2^5;T3");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*count)->children[1]->kleene, KleeneKind::kCount);
  EXPECT_EQ((*count)->children[1]->kleene_count, 5);
}

TEST(Parser, OperatorCount) {
  auto p = ParsePattern("A;(!B&!C);D");
  ASSERT_TRUE(p.ok());
  // seq(3 children)=2 ops, conj=1, neg x2 = 2 -> 5.
  EXPECT_EQ((*p)->OperatorCount(), 5);
}

TEST(Parser, FullQuery1Shape) {
  auto q = ParseQuery(
      "PATTERN T1;T2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND T1.price > (1 + 5%) * T2.price "
      "AND T3.price < (1 - 2%) * T2.price "
      "WITHIN 10 secs "
      "RETURN T1, T2, T3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window, 10000);  // 10 secs in ms
  EXPECT_EQ(q->return_items.size(), 3u);
  ASSERT_NE(q->where, nullptr);
}

TEST(Parser, ChainedEquality) {
  auto q = ParsePredicate("T1.name = T2.name = T3.name");
  ASSERT_TRUE(q.ok());
  // Expands to (T1=T2) AND (T2=T3).
  EXPECT_EQ((*q)->kind, UExprKind::kBinary);
  EXPECT_EQ((*q)->bin_op, BinaryOp::kAnd);
}

TEST(Parser, WithinUnits) {
  EXPECT_EQ(ParseQuery("PATTERN A;B WITHIN 200")->window, 200);
  EXPECT_EQ(ParseQuery("PATTERN A;B WITHIN 2 secs")->window, 2000);
  EXPECT_EQ(ParseQuery("PATTERN A;B WITHIN 3 mins")->window, 180000);
  EXPECT_EQ(ParseQuery("PATTERN A;B WITHIN 10 hours")->window, 36000000);
  EXPECT_FALSE(ParseQuery("PATTERN A;B WITHIN 5 fortnights").ok());
}

TEST(Parser, Aggregates) {
  auto q = ParsePredicate("sum(T2.volume) > 100");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->left->kind, UExprKind::kAgg);
  EXPECT_EQ((*q)->left->agg_name, "sum");
  auto cnt = ParsePredicate("count(T2) >= 3");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->left->field, "");
}

TEST(Parser, RepeatedWhereToleratedLikeQuery3) {
  auto q = ParseQuery(
      "PATTERN T1;T2^5;T3 "
      "WHERE T1.name = T3.name "
      "WHERE T2.name = 'Google' AND sum(T2.volume) > 10 "
      "WITHIN 10 secs RETURN T1, sum(T2.volume), T3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->return_items.size(), 3u);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseQuery("WHERE x WITHIN 1").ok());
  EXPECT_FALSE(ParseQuery("PATTERN A;B").ok());  // missing WITHIN
  EXPECT_FALSE(ParseQuery("PATTERN A;;B WITHIN 1").ok());
  EXPECT_FALSE(ParseQuery("PATTERN (A;B WITHIN 1").ok());
  EXPECT_FALSE(ParseQuery("PATTERN A;B WITHIN 1 EXTRA garbage").ok());
  EXPECT_FALSE(ParsePattern("A^x").ok());
}

TEST(Parser, NegativeNumbersAndUnaryMinus) {
  auto q = ParsePredicate("T1.price > -5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->right->kind, UExprKind::kUnary);
}

}  // namespace
}  // namespace zstream
