// PartitionedEngine: callback propagation to late-created partitions
// (regression), cross-partition plan switching, and merged statistics.
#include "exec/partitioned_engine.h"

#include "test_util.h"
#include "workload/stock_gen.h"

namespace zstream::testing {
namespace {

constexpr char kQuery[] =
    "PATTERN A;B WHERE A.name = B.name AND A.price < B.price WITHIN 100";

std::unique_ptr<PartitionedEngine> MakeEngine(const PatternPtr& p,
                                              const PhysicalPlan& plan,
                                              EngineOptions options = {}) {
  auto engine = PartitionedEngine::Create(p, plan, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(*engine);
}

// Regression: the callback is installed BEFORE any event arrives, so
// every partition is created after it; each must still deliver.
TEST(PartitionedEngine, PartitionsCreatedAfterCallbackInheritIt) {
  const PatternPtr p = MustAnalyze(kQuery);
  ASSERT_TRUE(p->partition.has_value());
  auto engine = MakeEngine(p, LeftDeepPlan(*p));

  uint64_t delivered = 0;
  engine->SetMatchCallback([&](Match&&) { ++delivered; });
  ASSERT_EQ(engine->num_partitions(), 0u);  // nothing exists yet

  for (int k = 0; k < 4; ++k) {
    const std::string name = "SYM" + std::to_string(k);
    engine->Push(Stock(name, 10.0, 4 * k));
    engine->Push(Stock(name, 20.0, 4 * k + 1));
  }
  engine->Finish();

  EXPECT_EQ(engine->num_partitions(), 4u);
  EXPECT_EQ(engine->num_matches(), 4u);
  EXPECT_EQ(delivered, engine->num_matches());
}

// Clearing the callback must also apply to partitions created later.
TEST(PartitionedEngine, ClearedCallbackAppliesToNewPartitions) {
  const PatternPtr p = MustAnalyze(kQuery);
  EngineOptions options;
  options.batch_size = 1;  // deliver X's match before the clear below
  auto engine = MakeEngine(p, LeftDeepPlan(*p), options);

  uint64_t delivered = 0;
  engine->SetMatchCallback([&](Match&&) { ++delivered; });
  engine->Push(Stock("X", 10.0, 0));
  engine->Push(Stock("X", 20.0, 1));
  engine->SetMatchCallback(nullptr);
  engine->Push(Stock("Y", 10.0, 2));  // partition created after clearing
  engine->Push(Stock("Y", 20.0, 3));
  engine->Finish();

  EXPECT_EQ(engine->num_matches(), 2u);
  EXPECT_EQ(delivered, 1u);  // only X's match, before the clear
}

TEST(PartitionedEngine, SwitchPlanPreservesMatchSetAcrossPartitions) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
      "AND A.price < B.price AND B.price < C.price WITHIN 100");
  StockGenOptions gen;
  gen.names = {"S0", "S1", "S2", "S3"};
  gen.weights = {1.0, 1.0, 1.0, 1.0};
  gen.num_events = 4000;
  gen.seed = 11;
  const auto events = GenerateStockTrades(gen);

  // Baseline: left-deep throughout.
  std::vector<std::string> expected;
  {
    auto base = MakeEngine(p, LeftDeepPlan(*p));
    base->SetMatchCallback([&](Match&& m) { expected.push_back(MatchKey(m)); });
    for (const EventPtr& e : events) base->Push(e);
    base->Finish();
    std::sort(expected.begin(), expected.end());
  }
  ASSERT_FALSE(expected.empty());

  // Same trace with a mid-stream switch to right-deep on every partition.
  auto engine = MakeEngine(p, LeftDeepPlan(*p));
  std::vector<std::string> keys;
  engine->SetMatchCallback([&](Match&& m) { keys.push_back(MatchKey(m)); });
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) engine->Push(events[i]);
  ASSERT_TRUE(engine->SwitchPlan(RightDeepPlan(*p)).ok());
  EXPECT_EQ(engine->plan_switches(), 1u);
  for (size_t i = half; i < events.size(); ++i) engine->Push(events[i]);
  engine->Finish();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, expected);
}

TEST(PartitionedEngine, StatsSnapshotMergesPartitionStats) {
  // Leaf predicates split the price range 10%/90%, so the merged
  // windowed stats must report class A well below class B.
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name = B.name AND A.price > 90 "
      "AND B.price <= 90 WITHIN 100");
  EngineOptions options;
  options.collect_stats = true;
  auto engine = MakeEngine(p, LeftDeepPlan(*p), options);

  StockGenOptions gen;
  gen.names = {"S0", "S1", "S2"};
  gen.weights = {1.0, 1.0, 1.0};
  gen.num_events = 6000;
  gen.seed = 21;
  for (const EventPtr& e : GenerateStockTrades(gen)) engine->Push(e);
  engine->Finish();

  const StatsCatalog defaults(p->num_classes(),
                              static_cast<double>(p->window));
  const StatsCatalog merged = engine->StatsSnapshot(defaults);
  EXPECT_GT(merged.rate(1), merged.rate(0) * 4);
}

TEST(MergeStatsCatalogs, RatesSumAndSelectivitiesAverage) {
  StatsCatalog a(2, 100.0), b(2, 100.0);
  a.set_rate(0, 1.0);
  a.set_rate(1, 3.0);
  b.set_rate(0, 2.0);
  b.set_rate(1, 5.0);
  a.SetPairSel(0, 1, 0.2);
  b.SetPairSel(0, 1, 0.6);
  // Weights 1:3 -> selectivity 0.2*0.25 + 0.6*0.75 = 0.5; rates sum.
  const StatsCatalog merged = MergeStatsCatalogs({a, b}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(merged.rate(0), 3.0);
  EXPECT_DOUBLE_EQ(merged.rate(1), 8.0);
  EXPECT_DOUBLE_EQ(merged.PairSel(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(merged.window(), 100.0);
}

// Regression (zstream_fuzz): EngineOptions::reorder_slack used to be
// ignored on the partitioned path — Push routed straight to the
// sub-engine's Offer, which drops out-of-order events. The reorder
// stage must sit BEFORE partition routing (a per-partition stage could
// never see cross-partition disorder).
TEST(PartitionedEngine, ReorderSlackAppliesBeforeRouting) {
  const PatternPtr p = MustAnalyze(kQuery);
  EngineOptions options;
  options.reorder_slack = 10;
  auto engine = MakeEngine(p, LeftDeepPlan(*p), options);
  uint64_t delivered = 0;
  engine->SetMatchCallback([&](Match&&) { ++delivered; });

  // Same partition, out of order: @2 used to be dropped as late.
  engine->Push(Stock("SYM0", 20.0, 9));
  engine->Push(Stock("SYM0", 10.0, 2));
  // Cross-partition interleaving, also out of order.
  engine->Push(Stock("SYM1", 20.0, 8));
  engine->Push(Stock("SYM1", 10.0, 3));
  engine->Finish();

  EXPECT_EQ(engine->late_events(), 0u);
  EXPECT_EQ(delivered, 2u);  // (10@2, 20@9) and (10@3, 20@8)
}

}  // namespace
}  // namespace zstream::testing
