// Event model and streams.
#include <gtest/gtest.h>

#include "event/event.h"
#include "event/stream.h"

namespace zstream {
namespace {

TEST(Event, BuilderAndAccessors) {
  const EventPtr e = EventBuilder(StockSchema())
                         .Set("id", int64_t{7})
                         .Set("name", "IBM")
                         .Set("price", 95.5)
                         .Set("volume", int64_t{10})
                         .Set("ts", int64_t{42})
                         .At(42)
                         .Build();
  EXPECT_EQ(e->timestamp(), 42);
  EXPECT_EQ(e->value(1), Value("IBM"));
  EXPECT_EQ((*e->ValueOf("price")).AsDouble(), 95.5);
  EXPECT_FALSE(e->ValueOf("nope").ok());
  EXPECT_GT(e->ByteSize(), sizeof(Event));
}

TEST(Event, ToStringMentionsFields) {
  const EventPtr e =
      EventBuilder(StockSchema()).Set("name", "Sun").At(3).Build();
  const std::string s = e->ToString();
  EXPECT_NE(s.find("name='Sun'"), std::string::npos);
  EXPECT_NE(s.find("ts=3"), std::string::npos);
}

TEST(Stream, VectorStreamYieldsInOrder) {
  std::vector<EventPtr> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(EventBuilder(StockSchema()).At(i).Build());
  }
  VectorStream vs(events);
  EXPECT_EQ(vs.SizeHint(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(vs.Next()->timestamp(), i);
  }
  EXPECT_EQ(vs.Next(), nullptr);
}

TEST(Stream, ConcatStreamSpansSegments) {
  auto seg = [](Timestamp base) {
    std::vector<EventPtr> events;
    for (int i = 0; i < 3; ++i) {
      events.push_back(EventBuilder(StockSchema()).At(base + i).Build());
    }
    return std::make_unique<VectorStream>(std::move(events));
  };
  std::vector<std::unique_ptr<EventStream>> segs;
  segs.push_back(seg(0));
  segs.push_back(seg(10));
  ConcatStream cs(std::move(segs));
  EXPECT_EQ(cs.SizeHint(), 6);
  std::vector<Timestamp> got;
  while (EventPtr e = cs.Next()) got.push_back(e->timestamp());
  EXPECT_EQ(got, (std::vector<Timestamp>{0, 1, 2, 10, 11, 12}));
}

TEST(Stream, DrainStream) {
  std::vector<EventPtr> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(EventBuilder(StockSchema()).At(i).Build());
  }
  VectorStream vs(events);
  EXPECT_EQ(DrainStream(&vs).size(), 4u);
}

}  // namespace
}  // namespace zstream
