// Pattern structure validation and introspection.
#include <gtest/gtest.h>

#include "query/analyzer.h"

namespace zstream {
namespace {

PatternPtr Must(const std::string& q) {
  auto r = AnalyzeQuery(q, StockSchema());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(Pattern, IsSequence) {
  EXPECT_TRUE(Must("PATTERN A;B;C WITHIN 5")->IsSequence());
  EXPECT_TRUE(Must("PATTERN A;!B;C WITHIN 5")->IsSequence());
  EXPECT_TRUE(Must("PATTERN A WITHIN 5")->IsSequence());
  EXPECT_FALSE(Must("PATTERN A&B WITHIN 5")->IsSequence());
  EXPECT_FALSE(Must("PATTERN A;(B&C) WITHIN 5")->IsSequence());
}

TEST(Pattern, KleeneClassLookup) {
  EXPECT_EQ(Must("PATTERN A;B*;C WITHIN 5")->KleeneClass(), 1);
  EXPECT_EQ(Must("PATTERN A;B WITHIN 5")->KleeneClass(), -1);
}

TEST(Pattern, PredicatesForCut) {
  const PatternPtr p = Must(
      "PATTERN A;B;C WHERE A.price > B.price AND B.price > C.price "
      "WITHIN 5");
  // Node covering {A,B} with children {A},{B}: only the A-B predicate.
  std::vector<bool> cover{true, true, false};
  std::vector<std::vector<bool>> children{{true, false, false},
                                          {false, true, false}};
  EXPECT_EQ(p->PredicatesFor(cover, children).size(), 1u);
  // Root with children {A,B},{C}: only the B-C predicate (A-B attaches
  // deeper).
  std::vector<bool> root{true, true, true};
  std::vector<std::vector<bool>> root_children{{true, true, false},
                                               {false, false, true}};
  EXPECT_EQ(p->PredicatesFor(root, root_children).size(), 1u);
}

TEST(Pattern, ToStringShowsStructure) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 7");
  const std::string s = p->ToString();
  EXPECT_NE(s.find("!B"), std::string::npos);
  EXPECT_NE(s.find("WITHIN 7"), std::string::npos);
}

TEST(Pattern, ValidateRejectsAdjacentNegations) {
  EXPECT_FALSE(
      AnalyzeQuery("PATTERN A;!B;!C;D WITHIN 5", StockSchema()).ok());
}

TEST(Pattern, ValidateRejectsNegationWithKleene) {
  EXPECT_FALSE(AnalyzeQuery("PATTERN A;!(B*);C WITHIN 5",
                            StockSchema()).ok());
}

}  // namespace
}  // namespace zstream
