// Operator semantics: SEQ (Algorithm 1), CONJ (Algorithm 3), DISJ,
// hash-equality probing, and predicate attachment, on hand-crafted
// streams with exhaustively known answers.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

std::vector<EventPtr> AbabStream() {
  return {
      Stock("A", 10, 1), Stock("B", 20, 2), Stock("A", 30, 3),
      Stock("B", 40, 4),
  };
}

constexpr char kSeqQuery[] =
    "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10";

TEST(SeqOperator, AllOrderedPairsWithinWindow) {
  const PatternPtr p = MustAnalyze(kSeqQuery);
  const auto matches = RunPlan(p, LeftDeepPlan(*p), AbabStream());
  EXPECT_EQ(matches.size(), 3u);  // (1,2), (1,4), (3,4)
}

TEST(SeqOperator, StrictTemporalOrder) {
  const PatternPtr p = MustAnalyze(kSeqQuery);
  // Simultaneous A and B never combine (A.end < B.start is strict).
  const auto matches =
      RunPlan(p, LeftDeepPlan(*p), {Stock("A", 1, 5), Stock("B", 1, 5)});
  EXPECT_TRUE(matches.empty());
}

TEST(SeqOperator, WindowExcludesDistantPairs) {
  const PatternPtr p = MustAnalyze(kSeqQuery);
  const auto matches = RunPlan(p, LeftDeepPlan(*p),
                               {Stock("A", 1, 0), Stock("B", 1, 11)});
  EXPECT_TRUE(matches.empty());
  const auto edge = RunPlan(p, LeftDeepPlan(*p),
                            {Stock("A", 1, 0), Stock("B", 1, 10)});
  EXPECT_EQ(edge.size(), 1u);  // span == window is allowed
}

TEST(SeqOperator, MultiClassPredicateFilters) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' AND A.price > B.price "
      "WITHIN 10");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), AbabStream());
  // (A@1:10, B@2:20) no; (A@1, B@4:40) no; (A@3:30, B@4:40) no.
  EXPECT_TRUE(matches.empty());
  const auto matches2 = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 50, 1), Stock("B", 20, 2), Stock("B", 60, 3)});
  EXPECT_EQ(matches2.size(), 1u);
}

TEST(SeqOperator, ThreeWaySequenceLeftAndRightDeepAgree) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  std::vector<EventPtr> events;
  // Interleave 4 of each.
  for (int i = 0; i < 4; ++i) {
    events.push_back(Stock("A", i, 3 * i));
    events.push_back(Stock("B", i, 3 * i + 1));
    events.push_back(Stock("C", i, 3 * i + 2));
  }
  const auto l = RunPlan(p, LeftDeepPlan(*p), events);
  const auto r = RunPlan(p, RightDeepPlan(*p), events);
  EXPECT_EQ(l, r);
  // Count: choose a_i, b_j>a_i, c_k>b_j. For this layout it is the
  // number of i<=j<=k triples = C(4+2,3) = 20.
  EXPECT_EQ(l.size(), 20u);
}

TEST(SeqOperator, EqualityPredicateViaHashIndexMatchesScan) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name = B.name WITHIN 50");
  std::vector<EventPtr> events;
  Random rng(11);
  for (int i = 0; i < 200; ++i) {
    events.push_back(
        Stock(rng.Bernoulli(0.5) ? "X" : "Y", i, i));
  }
  EngineOptions with_hash;
  with_hash.use_hash_indexes = true;
  EngineOptions no_hash;
  no_hash.use_hash_indexes = false;
  const auto a = RunPlan(p, LeftDeepPlan(*p), events, with_hash);
  const auto b = RunPlan(p, LeftDeepPlan(*p), events, no_hash);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(ConjOperator, OrderFreeCombination) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A & B WHERE A.name='A' AND B.name='B' WITHIN 10");
  // B before A still matches (conjunction ignores order).
  const auto matches =
      RunPlan(p, LeftDeepPlan(*p), {Stock("B", 1, 1), Stock("A", 1, 2)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST(ConjOperator, WindowApplies) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A & B WHERE A.name='A' AND B.name='B' WITHIN 10");
  const auto matches =
      RunPlan(p, LeftDeepPlan(*p), {Stock("B", 1, 0), Stock("A", 1, 20)});
  EXPECT_TRUE(matches.empty());
}

TEST(ConjOperator, AllPairsBothDirections) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A & B WHERE A.name='A' AND B.name='B' WITHIN 100");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), AbabStream());
  EXPECT_EQ(matches.size(), 4u);  // 2 As x 2 Bs
}

TEST(DisjOperator, UnionOfBothClasses) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A | B WHERE A.name='A' AND B.name='B' WITHIN 10");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), AbabStream());
  EXPECT_EQ(matches.size(), 4u);
}

TEST(DisjOperator, InsideSequence) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;(B|C) WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 10");
  const auto matches = RunPlan(
      p, LeftDeepPlan(*p),
      {Stock("A", 1, 1), Stock("B", 1, 2), Stock("C", 1, 3)});
  EXPECT_EQ(matches.size(), 2u);  // (A,B) and (A,C)
}

TEST(Operators, SingleClassPattern) {
  const PatternPtr p =
      MustAnalyze("PATTERN A WHERE A.name='A' AND A.price > 15 WITHIN 10");
  const auto matches = RunPlan(p, LeftDeepPlan(*p), AbabStream());
  EXPECT_EQ(matches.size(), 1u);  // A@3 with price 30
}

}  // namespace
}  // namespace zstream
