// Static verification layer (src/verify/): expression typechecker,
// plan-verifier pass framework, and query linter.
//
// Three sections:
//   1. Positives — the paper's corpus query shapes build and verify
//      clean under every planning strategy (false rejections at any
//      plan-producing seam would break compilation outright).
//   2. Negatives — one targeted test per named invariant, each
//      hand-building the smallest plan (or pattern edit) that violates
//      exactly that invariant and asserting the stable ZS-T/ZS-V/ZS-W
//      code plus, for typechecker/linter diagnostics, the 1-based
//      line/column the parser threaded through.
//   3. Regressions — PR 5's fuzz-found bugs reconstructed as the broken
//      plans/patterns they effectively installed, now rejected before
//      any event flows.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/zstream.h"
#include "exec/engine.h"
#include "plan/physical_plan.h"
#include "query/analyzer.h"
#include "query/error_codes.h"
#include "test_util.h"
#include "testing/plan_mutator.h"
#include "verify/lint.h"
#include "verify/plan_verifier.h"
#include "verify/typecheck.h"

namespace zstream {
namespace {

using zstream::testing::MustAnalyze;

PhysNodePtr L(int c) { return PhysNode::Leaf(c); }

// The strategies BuildPlan can realize for this pattern (mirrors the
// fuzzer's --verify-only sweep).
std::vector<std::pair<std::string, PlanStrategy>> AllStrategies(
    const Pattern& p) {
  std::vector<std::pair<std::string, PlanStrategy>> out = {
      {"optimal", PlanStrategy::kOptimal},
      {"left-deep", PlanStrategy::kLeftDeep},
      {"right-deep", PlanStrategy::kRightDeep},
  };
  if (!p.NegatedClasses().empty()) {
    out.emplace_back("negation-top", PlanStrategy::kNegationTop);
  }
  return out;
}

// Compiles `text` under every strategy and expects each produced plan
// to pass the full invariant report (NotSupported is a legitimate
// capability skip, same as the differential driver treats it).
void ExpectVerifiesEverywhere(const std::string& text) {
  const PatternPtr p = MustAnalyze(text);
  int produced = 0;
  for (const auto& [name, strategy] : AllStrategies(*p)) {
    CompileOptions options;
    options.strategy = strategy;
    auto plan = BuildPlan(p, options);
    if (!plan.ok() && plan.status().code() == StatusCode::kNotSupported) {
      continue;
    }
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString()
                           << "\n  query: " << text;
    const verify::VerifyReport report = verify::VerifyPlanReport(*p, *plan);
    for (const verify::Violation& v : report.violations) {
      ADD_FAILURE() << name << " plan violates [" << v.invariant
                    << "] " << v.code << ": " << v.message
                    << "\n  query: " << text
                    << "\n  plan: " << plan->Explain(*p);
    }
    ++produced;
  }
  EXPECT_GT(produced, 0) << "no strategy produced a plan for: " << text;
}

bool HasViolation(const verify::VerifyReport& report,
                  const std::string& invariant, const std::string& code) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const verify::Violation& v) {
                       return v.invariant == invariant && v.code == code;
                     });
}

std::string Dump(const verify::VerifyReport& report) {
  std::string out;
  for (const verify::Violation& v : report.violations) {
    out += "[" + v.invariant + "] " + v.code + ": " + v.message + "\n";
  }
  return out.empty() ? "(no violations)" : out;
}

// ---------------------------------------------------------------------
// 1. Positives: corpus query shapes verify under every strategy
// ---------------------------------------------------------------------

TEST(VerifyPositive, PaperQuery1RisingFallingSequence) {
  ExpectVerifiesEverywhere(
      "PATTERN T1;T2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND T1.price > (1 + 20%) * T2.price "
      "AND T3.price < (1 - 20%) * T2.price "
      "WITHIN 10 RETURN T1, T2, T3");
}

TEST(VerifyPositive, PaperQuery2NegationWithPartitionableChain) {
  ExpectVerifiesEverywhere(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T2.name = T3.name "
      "AND T1.price > 50 AND T2.price < 50 "
      "AND T3.price > 50 * (1 + 20%) "
      "WITHIN 10 RETURN T1, T3");
}

TEST(VerifyPositive, PaperQuery3KleeneCountWithAggregate) {
  ExpectVerifiesEverywhere(
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND sum(T2.volume) > 150 "
      "AND T3.price > (1 + 20%) * T1.price "
      "WITHIN 10 RETURN T1, sum(T2.volume), T3");
}

TEST(VerifyPositive, ConjunctionShape) {
  ExpectVerifiesEverywhere(
      "PATTERN (T1 & T2) "
      "WHERE T1.name = T2.name AND T1.price > T2.price "
      "WITHIN 10 RETURN T1, T2");
}

TEST(VerifyPositive, DisjunctionShape) {
  ExpectVerifiesEverywhere(
      "PATTERN (T1 | T2) "
      "WHERE T1.price > 100 AND T2.volume > 500 "
      "WITHIN 10 RETURN T1, T2");
}

TEST(VerifyPositive, SequenceOfConjunction) {
  ExpectVerifiesEverywhere(
      "PATTERN (T1 & T2);T3 "
      "WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10 RETURN T1, T2, T3");
}

TEST(VerifyPositive, MergedNegationDisjunction) {
  ExpectVerifiesEverywhere(
      "PATTERN T1;!(T2|T3);T4 "
      "WHERE T1.name = T4.name AND T2.price > 90 AND T3.price < 10 "
      "WITHIN 10 RETURN T1, T4");
}

TEST(VerifyPositive, KleeneStarUnanchored) {
  ExpectVerifiesEverywhere(
      "PATTERN T1;T2*;T3 "
      "WHERE T1.name = T3.name AND count(T2) >= 0 "
      "WITHIN 10 RETURN T1, T3");
}

// The registry itself: stable names and codes, no duplicates — the
// docs/diagnostics.md catalogue is generated from this exact list.
TEST(VerifyRegistry, InvariantNamesAndCodesAreUniqueAndStable) {
  const auto& invariants = verify::Invariants();
  EXPECT_EQ(invariants.size(), 18u);
  std::set<std::string> names;
  std::set<std::string> codes;
  for (const auto& inv : invariants) {
    EXPECT_TRUE(names.insert(inv.name).second) << inv.name;
    EXPECT_TRUE(codes.insert(inv.code).second) << inv.code;
    EXPECT_EQ(std::string(inv.code).substr(0, 4), "ZS-V") << inv.code;
    EXPECT_NE(std::string(inv.summary), "") << inv.name;
  }
  EXPECT_EQ(names.count("class-coverage"), 1u);
  EXPECT_EQ(names.count("structure-compat"), 1u);
  EXPECT_EQ(names.count("negation-handled"), 1u);
}

// ---------------------------------------------------------------------
// 2a. Negatives: one test per plan-verifier invariant
// ---------------------------------------------------------------------

TEST(VerifyNegative, V0001EmptyPlan) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const Status st = verify::VerifyPlan(*p, PhysicalPlan{});
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
  EXPECT_EQ(st.error_code(), errc::kVerifyEmptyPlan);
}

TEST(VerifyNegative, V0002CoverageMissingClass) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2;T3 WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(L(0), L(1)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "class-coverage", errc::kVerifyCoverage))
      << Dump(report);
}

TEST(VerifyNegative, V0002CoverageDuplicateLeaf) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(PhysNode::Seq(L(0), L(1)), L(1)),
                          0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "class-coverage", errc::kVerifyCoverage))
      << Dump(report);
}

TEST(VerifyNegative, V0003NodeShapeLeafOutOfRange) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(L(0), L(7)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "node-shape", errc::kVerifyNodeShape))
      << Dump(report);
  EXPECT_EQ(verify::VerifyPlan(*p, plan).error_code(),
            errc::kVerifyNodeShape);
}

TEST(VerifyNegative, V0003NodeShapeWrongArity) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  auto seq = std::make_shared<PhysNode>();
  seq->op = PhysOp::kSeq;
  seq->children = {L(0)};  // SEQ with one operand
  const PhysicalPlan plan{seq, 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "node-shape", errc::kVerifyNodeShape))
      << Dump(report);
  // Arity violations gate the deeper tree passes: no pass may have
  // dereferenced the missing operand.
  for (const auto& v : report.violations) {
    EXPECT_TRUE(v.invariant == "node-shape" || v.invariant == "plan-nonempty")
        << v.invariant;
  }
}

TEST(VerifyNegative, V0004StructureSeqOrderFlipped) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(L(1), L(0)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "structure-compat", errc::kVerifyStructure))
      << Dump(report);
}

TEST(VerifyNegative, V0005NSeqOperandNotNegatedLeaf) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T3.name AND T2.price > 90 "
      "WITHIN 10");
  // NSEQ whose "negated" operand is the positive class T1.
  const PhysicalPlan plan{PhysNode::NSeq(L(0), PhysNode::Seq(L(1), L(2)),
                                         /*neg_left=*/true),
                          0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "nseq-negated-leaf", errc::kVerifyNseqLeaf))
      << Dump(report);
}

TEST(VerifyNegative, V0006NSeqNegatedClassNotAdjacent) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3;T4 "
      "WHERE T1.name = T3.name AND T3.name = T4.name AND T2.price > 90 "
      "WITHIN 10");
  // !T2 fused against T4 with T3 (its true right neighbor) elsewhere:
  // the NSEQ would test "no T2 between T1 and T4", admitting matches
  // where a T2 sits between T1 and T3.
  const PhysicalPlan plan{
      PhysNode::Seq(PhysNode::Seq(L(0), PhysNode::NSeq(L(1), L(3),
                                                       /*neg_left=*/true)),
                    L(2)),
      0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(
      HasViolation(report, "nseq-adjacency", errc::kVerifyNseqAdjacency))
      << Dump(report);
}

TEST(VerifyNegative, V0007NSeqPredicateSpansOutside) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.price = T2.price AND T1.name = T3.name WITHIN 10");
  // Structurally fine NSEQ, but T1.price = T2.price reaches above it:
  // a capability limit (Section 4.4.2), reported as NotSupported so
  // callers fall back to a NEG-filter shape.
  const PhysicalPlan plan{
      PhysNode::Seq(L(0), PhysNode::NSeq(L(1), L(2), /*neg_left=*/true)),
      0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  ASSERT_TRUE(
      HasViolation(report, "nseq-pred-scope", errc::kVerifyNseqPredScope))
      << Dump(report);
  const Status st = report.ToStatus();
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_EQ(st.error_code(), errc::kVerifyNseqPredScope);
}

TEST(VerifyNegative, V0008KSeqMiddleNotKleene) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2+;T3 WHERE T1.name = T3.name WITHIN 10");
  const PhysicalPlan plan{PhysNode::KSeq(L(0), L(2), L(1)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "kseq-shape", errc::kVerifyKseqShape))
      << Dump(report);
}

TEST(VerifyNegative, V0009KSeqStartNotAdjacent) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2;T3+;T4 "
      "WHERE T1.name = T2.name AND T2.name = T4.name WITHIN 10");
  // KSEQ anchored on T1 with T2 (the closure's true left neighbor)
  // missing: groups would extend left across T2 events.
  const PhysicalPlan plan{PhysNode::KSeq(L(0), L(2), L(3)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(
      HasViolation(report, "kseq-adjacency", errc::kVerifyKseqAdjacency))
      << Dump(report);
}

TEST(VerifyNegative, V0010KSeqNonAggregatePredicateSpansOutside) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2+;T3;T4 "
      "WHERE T2.price < T4.price AND T1.name = T4.name WITHIN 10");
  // T2.price < T4.price must filter closure events while the group is
  // assembled, but T4 is outside the KSEQ: Algorithm 4 cannot attach
  // it. PR 5's bug #9 (silently dropped closure predicates) is now a
  // static NotSupported.
  const PhysicalPlan plan{
      PhysNode::Seq(PhysNode::KSeq(L(0), L(1), L(2)), L(3)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  ASSERT_TRUE(
      HasViolation(report, "kseq-pred-scope", errc::kVerifyKseqPredScope))
      << Dump(report);
  const Status st = report.ToStatus();
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_EQ(st.error_code(), errc::kVerifyKseqPredScope);
}

TEST(VerifyNegative, V0011KleeneClassJoinedAsPlainLeaf) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2+;T3 WHERE T1.name = T3.name WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(PhysNode::Seq(L(0), L(1)), L(2)),
                          0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "kleene-legal", errc::kVerifyKleeneLegal))
      << Dump(report);
}

TEST(VerifyNegative, V0011KleeneCountMustBePositive) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2^2;T3 WHERE T1.name = T3.name WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  corrupted.classes[1].kleene_count = 0;
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "kleene-legal", errc::kVerifyKleeneLegal))
      << Dump(report);
}

TEST(VerifyNegative, V0012NegatedClassJoinedAsPlainLeaf) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T3.name AND T2.price > 90 "
      "WITHIN 10");
  const PhysicalPlan plan{PhysNode::Seq(PhysNode::Seq(L(0), L(1)), L(2)),
                          0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "negation-handled",
                           errc::kVerifyNegationHandled))
      << Dump(report);
}

TEST(VerifyNegative, V0013NegFilterOnPositiveClass) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const PhysicalPlan plan{
      PhysNode::NegFilter(PhysNode::Seq(L(0), L(1)), /*neg_class=*/1), 0.0};
  const auto report = verify::VerifyPlanReport(*p, plan);
  EXPECT_TRUE(HasViolation(report, "negfilter-target",
                           errc::kVerifyNegFilterTarget))
      << Dump(report);
}

TEST(VerifyNegative, V0014WindowMustBePositive) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  corrupted.window = 0;
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(
      HasViolation(report, "within-positive", errc::kVerifyWindowPositive))
      << Dump(report);
}

TEST(VerifyNegative, V0015PartitionKeyIndexOutOfRange) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  ASSERT_TRUE(p->partition.has_value())
      << "paper Query 2's equality chain should partition on name";
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  PartitionSpec spec = *corrupted.partition;
  spec.field_indices[0] = 99;
  corrupted.partition = spec;
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "partition-key", errc::kVerifyPartitionKey))
      << Dump(report);
}

TEST(VerifyNegative, V0015PartitionKeyNameMismatch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  ASSERT_TRUE(p->partition.has_value());
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  PartitionSpec spec = *corrupted.partition;
  spec.field_name = "price";  // indices still resolve to 'name'
  corrupted.partition = spec;
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "partition-key", errc::kVerifyPartitionKey))
      << Dump(report);
}

TEST(VerifyNegative, V0016LeafPredicateReferencingOtherClass) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.price > T2.price WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  ASSERT_FALSE(corrupted.multi_predicates.empty());
  corrupted.classes[0].leaf_predicates.push_back(
      corrupted.multi_predicates[0]);
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "predicate-scope",
                           errc::kVerifyPredicateScope))
      << Dump(report);
}

TEST(VerifyNegative, V0016AggregateInLeafPredicate) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND sum(T2.volume) > 150 WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Push the aggregate predicate down into T2's per-event filter: an
  // aggregate only has a value over an assembled group.
  Pattern corrupted = *p;
  ExprPtr agg;
  for (const ExprPtr& pred : corrupted.multi_predicates) {
    if (ContainsAggregate(pred)) agg = pred;
  }
  ASSERT_NE(agg, nullptr);
  corrupted.classes[1].leaf_predicates.push_back(agg);
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "predicate-scope",
                           errc::kVerifyPredicateScope))
      << Dump(report);
}

TEST(VerifyNegative, V0017ReturnItemOnNegatedClass) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T3.name AND T2.price > 90 WITHIN 10 RETURN T1");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  corrupted.return_items.push_back(ReturnItem{nullptr, 1, "T2"});
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "return-items", errc::kVerifyReturnItems))
      << Dump(report);

  Pattern out_of_range = *p;
  out_of_range.return_items.push_back(ReturnItem{nullptr, 9, "T9"});
  EXPECT_TRUE(HasViolation(verify::VerifyPlanReport(out_of_range, *plan),
                           "return-items", errc::kVerifyReturnItems));
}

TEST(VerifyNegative, V0018NegBranchReferencingForeignClass) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.price > 50 AND T1.name = T3.name AND T2.price > 90 "
      "WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  ASSERT_FALSE(corrupted.classes[0].leaf_predicates.empty());
  // A branch of the merged negation that admits negators based on T1's
  // attributes: branches may only look at their own merged class.
  NegBranch branch;
  branch.alias = "X";
  branch.predicates = {corrupted.classes[0].leaf_predicates[0]};
  corrupted.classes[1].neg_branches.push_back(branch);
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "neg-branch", errc::kVerifyNegBranch))
      << Dump(report);

  Pattern not_negated = *p;
  not_negated.classes[0].neg_branches.push_back(NegBranch{"Y", {}});
  EXPECT_TRUE(HasViolation(verify::VerifyPlanReport(not_negated, *plan),
                           "neg-branch", errc::kVerifyNegBranch));
}

// ---------------------------------------------------------------------
// 2b. Negatives: typechecker diagnostics with locations
// ---------------------------------------------------------------------

// Analyzer-reported name/aggregate errors (the ZS-T codes that fire
// during resolution, before the typechecker proper).
void ExpectAnalyzeError(const std::string& text, const char* code, int line,
                        int column) {
  const auto result = AnalyzeQuery(text, StockSchema());
  ASSERT_FALSE(result.ok()) << text;
  EXPECT_EQ(result.status().error_code(), code)
      << result.status().ToString();
  EXPECT_EQ(result.status().line(), line) << result.status().ToString();
  EXPECT_EQ(result.status().column(), column) << result.status().ToString();
}

// Typechecker-reported errors: the analyzer accepts the query (names
// resolve), TypecheckPattern rejects it with a located ZS-T code.
void ExpectTypecheckError(const std::string& text, const char* code,
                          int line, int column) {
  const PatternPtr p = MustAnalyze(text);
  const Status st = verify::TypecheckPattern(*p);
  ASSERT_FALSE(st.ok()) << text;
  EXPECT_EQ(st.error_code(), code) << st.ToString();
  EXPECT_EQ(st.line(), line) << st.ToString();
  EXPECT_EQ(st.column(), column) << st.ToString();

  // The compile seam rejects it with the same diagnostic.
  const auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_FALSE(plan.ok()) << text;
  EXPECT_EQ(plan.status().error_code(), code);
}

TEST(TypecheckNegative, T0001UnknownAttribute) {
  ExpectAnalyzeError("PATTERN T1;T2 WHERE T1.bogus > 1 WITHIN 10",
                     errc::kTypeUnknownAttribute, 1, 21);
}

TEST(TypecheckNegative, T0002UnknownAlias) {
  ExpectAnalyzeError("PATTERN T1;T2 WHERE T9.price > 1 WITHIN 10",
                     errc::kTypeUnknownAlias, 1, 21);
}

TEST(TypecheckNegative, T0003IncomparableTypes) {
  ExpectTypecheckError("PATTERN T1;T2 WHERE T1.price > T2.name WITHIN 10",
                       errc::kTypeIncomparable, 1, 30);
}

TEST(TypecheckNegative, T0004NonNumericArithmetic) {
  ExpectTypecheckError("PATTERN T1;T2 WHERE T1.name + 1 > 0 WITHIN 10",
                       errc::kTypeNonNumericArith, 1, 29);
}

TEST(TypecheckNegative, T0005NonBooleanLogicOperand) {
  ExpectTypecheckError(
      "PATTERN T1;T2 WHERE (T1.name OR T1.price > 0) "
      "AND T1.name = T2.name WITHIN 10",
      errc::kTypeNonBoolLogic, 1, 30);
}

TEST(TypecheckNegative, T0006AggregateOverNonKleeneClass) {
  ExpectAnalyzeError("PATTERN T1;T2 WHERE sum(T1.volume) > 5 WITHIN 10",
                     errc::kTypeAggNonKleene, 1, 21);
}

TEST(TypecheckNegative, T0007AggregateOverNonNumericAttribute) {
  ExpectTypecheckError(
      "PATTERN T1;T2+;T3 WHERE sum(T2.name) > 10 "
      "AND T1.name = T3.name WITHIN 10",
      errc::kTypeAggNonNumeric, 1, 25);
}

TEST(TypecheckNegative, T0008NonBooleanPredicate) {
  ExpectTypecheckError("PATTERN T1;T2 WHERE T1.price + 1 WITHIN 10",
                       errc::kTypeNonBoolPredicate, 1, 30);
}

TEST(TypecheckNegative, T0009ClassIndexOutOfRange) {
  // A predicate lifted from a three-class pattern, checked against a
  // two-class one: only reachable through programmatic construction,
  // which is exactly what the code path guards.
  const PatternPtr three = MustAnalyze(
      "PATTERN T1;T2;T3 WHERE T3.price > 50 AND T1.name = T2.name "
      "WITHIN 10");
  const PatternPtr two =
      MustAnalyze("PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  ASSERT_FALSE(three->classes[2].leaf_predicates.empty());
  const auto result = verify::InferExprType(
      three->classes[2].leaf_predicates[0], *two);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().error_code(), errc::kTypeBadClassIndex);
  EXPECT_EQ(result.status().line(), 1);
}

TEST(TypecheckNegative, T0010AggregateWithoutAttribute) {
  ExpectAnalyzeError("PATTERN T1;T2+ WHERE avg(T2) > 5 WITHIN 10",
                     errc::kTypeAggMissingField, 1, 22);
}

// ---------------------------------------------------------------------
// 2c. Linter warnings
// ---------------------------------------------------------------------

std::vector<verify::LintWarning> Lint(const std::string& text) {
  return verify::LintPattern(*MustAnalyze(text));
}

bool HasWarning(const std::vector<verify::LintWarning>& warnings,
                const char* code, int line = -1, int column = -1) {
  return std::any_of(warnings.begin(), warnings.end(),
                     [&](const verify::LintWarning& w) {
                       return w.code == code &&
                              (line < 0 || w.line == line) &&
                              (column < 0 || w.column == column);
                     });
}

TEST(LintWarning, W0001ContradictoryRangeConstraints) {
  const auto warnings = Lint(
      "PATTERN T1;T2 WHERE T1.price > 10 AND T1.price < 5 "
      "AND T1.name = T2.name WITHIN 10");
  EXPECT_TRUE(HasWarning(warnings, errc::kLintUnsatisfiable, 1, 48));
}

TEST(LintWarning, W0002UnreferencedAlias) {
  const auto warnings = Lint(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10 RETURN T1");
  ASSERT_TRUE(HasWarning(warnings, errc::kLintUnreferencedAlias));
  // No predicate and never returned: the warning names the alias.
  bool named = false;
  for (const auto& w : warnings) {
    if (w.code == errc::kLintUnreferencedAlias &&
        w.message.find("'T2'") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named);
}

TEST(LintWarning, W0003CartesianPattern) {
  const auto warnings = Lint(
      "PATTERN T1;T2 WHERE T1.price > 0 AND T2.price > 0 WITHIN 10");
  EXPECT_TRUE(HasWarning(warnings, errc::kLintCartesian));
}

TEST(LintWarning, W0003NotRaisedForKleeneOrNegatedClasses) {
  // Paper Query 3: the closure class T2 carries only leaf + aggregate
  // predicates; its group is anchored by the sequence neighbors, so it
  // must NOT count as an uncorrelated component (regression for a lint
  // false-positive on the corpus).
  const auto warnings = Lint(
      "PATTERN T1;T2^2;T3 "
      "WHERE T1.name = T3.name AND T2.name = 'Google' "
      "AND sum(T2.volume) > 150 WITHIN 10 RETURN T1, sum(T2.volume), T3");
  EXPECT_FALSE(HasWarning(warnings, errc::kLintCartesian));
  // Same for the negated class in paper Query 2.
  const auto q2 = Lint(
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  EXPECT_FALSE(HasWarning(q2, errc::kLintCartesian));
}

TEST(LintWarning, W0004TautologicalConjunct) {
  // A literal-literal conjunct only survives to the linter when built
  // programmatically (the analyzer rejects class-free conjuncts in
  // query text).
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  Pattern edited = *p;
  edited.classes[0].leaf_predicates.push_back(
      Expr::Binary(BinaryOp::kLt, Expr::Literal(Value(int64_t{1})),
                   Expr::Literal(Value(int64_t{2}))));
  const auto warnings = verify::LintPattern(edited);
  EXPECT_TRUE(HasWarning(warnings, errc::kLintTautology));
}

TEST(LintWarning, W0005DuplicateConjunct) {
  const auto warnings = Lint(
      "PATTERN T1;T2 WHERE T1.price > 5 AND T1.price > 5 "
      "AND T1.name = T2.name WITHIN 10");
  EXPECT_TRUE(HasWarning(warnings, errc::kLintDuplicateConjunct, 1, 47));
}

TEST(LintWarning, CorpusQueriesLintClean) {
  EXPECT_TRUE(Lint("PATTERN T1;T2;T3 "
                   "WHERE T1.name = T3.name AND T2.name = 'Google' "
                   "AND T1.price > (1 + 20%) * T2.price "
                   "AND T3.price < (1 - 20%) * T2.price "
                   "WITHIN 10 RETURN T1, T2, T3")
                  .empty());
  EXPECT_TRUE(Lint("PATTERN T1;!T2;T3 "
                   "WHERE T1.name = T2.name = T3.name "
                   "AND T1.price > 50 AND T2.price < 50 "
                   "WITHIN 10 RETURN T1, T3")
                  .empty());
}

// ---------------------------------------------------------------------
// 3. Regressions: PR 5's fuzz bugs as statically-rejected plans
// ---------------------------------------------------------------------

// Bug #4: NegationTopPlan flattened CONJ/DISJ structure into a SEQ
// chain, imposing a temporal order the pattern doesn't have. The exact
// broken shape it used to emit is now a structure-compat violation.
TEST(FuzzBugRegression, ConjunctionFlattenedIntoSeqChain) {
  const PatternPtr p = MustAnalyze(
      "PATTERN (T1 & T2);T3 "
      "WHERE T1.name = T2.name AND T2.name = T3.name WITHIN 10");
  const PhysicalPlan flattened{
      PhysNode::Seq(PhysNode::Seq(L(0), L(1)), L(2)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, flattened);
  EXPECT_TRUE(HasViolation(report, "structure-compat", errc::kVerifyStructure))
      << Dump(report);
}

// Bug #7: hash-equality routing treated disjunction branches as jointly
// bound. A plan joining (T1 | T2) with a CONJ demands both branches in
// one match — the same class-relation confusion, caught structurally.
TEST(FuzzBugRegression, DisjunctionBranchesJoinedAsConjunction) {
  const PatternPtr p = MustAnalyze(
      "PATTERN (T1 | T2) WHERE T1.price > 100 AND T2.price > 100 "
      "WITHIN 10");
  const PhysicalPlan conj{PhysNode::Conj(L(0), L(1)), 0.0};
  const auto report = verify::VerifyPlanReport(*p, conj);
  EXPECT_TRUE(HasViolation(report, "structure-compat", errc::kVerifyStructure))
      << Dump(report);
}

// Bug #5: NegFilterNode applied a negation across the other disjunction
// branch's matches. The push-mask invariant: a negated class appears
// exactly once, as NSEQ operand or NEG filter — here it appears twice.
TEST(FuzzBugRegression, NegationConsumedTwice) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 "
      "WHERE T1.name = T3.name AND T2.price > 90 WITHIN 10");
  const PhysicalPlan doubled{
      PhysNode::NegFilter(
          PhysNode::Seq(L(0), PhysNode::NSeq(L(1), L(2), /*neg_left=*/true)),
          /*neg_class=*/1),
      0.0};
  const auto report = verify::VerifyPlanReport(*p, doubled);
  EXPECT_TRUE(HasViolation(report, "negation-handled",
                           errc::kVerifyNegationHandled))
      << Dump(report);
}

// Bugs #6/#8: the NFA ignored stripped partition-key equalities and the
// analyzer materialized unsound transitive chains. What survives in the
// Pattern is now checked for structural coherence before the runtime
// routes events by raw field index.
TEST(FuzzBugRegression, PartitionSpecSizeMismatch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  ASSERT_TRUE(p->partition.has_value());
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Pattern corrupted = *p;
  PartitionSpec spec = *corrupted.partition;
  spec.field_indices.pop_back();  // one index short of the class count
  corrupted.partition = spec;
  const auto report = verify::VerifyPlanReport(corrupted, *plan);
  EXPECT_TRUE(HasViolation(report, "partition-key", errc::kVerifyPartitionKey))
      << Dump(report);
}

// Bug #3: PartitionedEngine's lazy instantiation swallowed
// Engine::Create errors, running partitions on unvalidated plans.
// Engine::Create now runs the full verifier: a corrupt plan is an
// error at build time, never a silently wrong partition.
TEST(FuzzBugRegression, EngineCreateRejectsCorruptPlan) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;T2 WHERE T1.name = T2.name WITHIN 10");
  const PhysicalPlan corrupt{PhysNode::Seq(L(0), L(0)), 0.0};
  const auto engine = Engine::Create(p, corrupt);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kSemanticError);
}

// ---------------------------------------------------------------------
// Plan mutator: the fuzzer's --mutate-plans mode in miniature
// ---------------------------------------------------------------------

TEST(PlanMutator, DeterministicPerSeed) {
  const PatternPtr p = MustAnalyze(
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10");
  auto plan = BuildPlan(p, CompileOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto a = zstream::testing::MutatePlan(*p, *plan, 42);
  const auto b = zstream::testing::MutatePlan(*p, *plan, 42);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->description, b->description);
}

TEST(PlanMutator, EveryMutationIsRejectedByTheVerifier) {
  const std::vector<std::string> corpus = {
      "PATTERN T1;T2;T3 WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10",
      "PATTERN T1;!T2;T3 WHERE T1.name = T2.name = T3.name WITHIN 10",
      "PATTERN T1;T2^2;T3 WHERE T1.name = T3.name AND sum(T2.volume) > 150 "
      "WITHIN 10",
      "PATTERN (T1 & T2);T3 WHERE T1.name = T2.name AND T2.name = T3.name "
      "WITHIN 10",
  };
  for (const std::string& text : corpus) {
    const PatternPtr p = MustAnalyze(text);
    for (const auto& [name, strategy] : AllStrategies(*p)) {
      CompileOptions options;
      options.strategy = strategy;
      auto plan = BuildPlan(p, options);
      if (!plan.ok() && plan.status().code() == StatusCode::kNotSupported) {
        continue;
      }
      ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
      for (uint64_t seed = 1; seed <= 25; ++seed) {
        const auto mutation = zstream::testing::MutatePlan(*p, *plan, seed);
        if (!mutation.has_value()) continue;
        const Status verdict =
            verify::VerifyPlan(mutation->pattern, mutation->plan);
        EXPECT_FALSE(verdict.ok())
            << "surviving mutant [" << mutation->description << "] of "
            << name << " plan for: " << text;
      }
    }
  }
}

}  // namespace
}  // namespace zstream
