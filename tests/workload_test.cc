// Workload generators: rate ratios, exact selectivity control, and the
// web-log generator's Table 4 statistics.
#include <gtest/gtest.h>

#include <map>

#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

namespace zstream {
namespace {

TEST(StockGen, RespectsRateRatio) {
  StockGenOptions options;
  options.names = {"IBM", "Sun", "Oracle"};
  options.weights = {1.0, 10.0, 10.0};
  options.num_events = 42000;
  const auto events = GenerateStockTrades(options);
  std::map<std::string, int> counts;
  for (const auto& e : events) ++counts[e->value(1).string_value()];
  EXPECT_NEAR(counts["IBM"], 2000, 300);
  EXPECT_NEAR(counts["Sun"], 20000, 1000);
  EXPECT_NEAR(counts["Oracle"], 20000, 1000);
}

TEST(StockGen, TimestampsNonDecreasing) {
  StockGenOptions options;
  options.num_events = 1000;
  const auto events = GenerateStockTrades(options);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1]->timestamp(), events[i]->timestamp());
  }
}

TEST(StockGen, FixedPriceForSelectivityFormula) {
  EXPECT_DOUBLE_EQ(FixedPriceForSelectivity(1.0, 0, 100), 0.0);
  EXPECT_DOUBLE_EQ(FixedPriceForSelectivity(0.5, 0, 100), 50.0);
  EXPECT_DOUBLE_EQ(FixedPriceForSelectivity(1.0 / 32, 0, 100),
                   100.0 - 100.0 / 32);
}

TEST(StockGen, RealizedSelectivityMatchesTarget) {
  // Pin Sun's price so P(IBM.price > Sun.price) == 1/8.
  const double target = 1.0 / 8;
  StockGenOptions options;
  options.names = {"IBM", "Sun"};
  options.weights = {1.0, 1.0};
  options.num_events = 40000;
  options.fixed_price = {{"Sun", FixedPriceForSelectivity(target, 0, 100)}};
  const auto events = GenerateStockTrades(options);
  int64_t above = 0, total = 0;
  const double sun_price = FixedPriceForSelectivity(target, 0, 100);
  for (const auto& e : events) {
    if (e->value(1).string_value() != "IBM") continue;
    ++total;
    if (e->value(2).AsDouble() > sun_price) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / static_cast<double>(total),
              target, 0.02);
}

TEST(StockGen, ParseRateRatio) {
  EXPECT_EQ(ParseRateRatio("1:100:100"),
            (std::vector<double>{1.0, 100.0, 100.0}));
  EXPECT_EQ(ParseRateRatio("1 : 2"), (std::vector<double>{1.0, 2.0}));
}

TEST(StockGen, DeterministicForSeed) {
  StockGenOptions options;
  options.num_events = 100;
  const auto a = GenerateStockTrades(options);
  const auto b = GenerateStockTrades(options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value(1), b[i]->value(1));
    EXPECT_EQ(a[i]->value(2), b[i]->value(2));
  }
}

TEST(WebLogGen, MatchesTable4Counts) {
  WebLogGenOptions options;
  options.total_records = 150000;  // scaled 10x down for test speed
  options.publication_accesses = 677;
  options.project_accesses = 1161;
  options.course_accesses = 1608;
  WebLogStats stats;
  const auto events = GenerateWebLog(options, &stats);
  EXPECT_EQ(static_cast<int64_t>(events.size()), options.total_records);
  EXPECT_EQ(stats.publications, 677);
  EXPECT_EQ(stats.projects, 1161);
  EXPECT_EQ(stats.courses, 1608);
  EXPECT_EQ(stats.other,
            options.total_records - 677 - 1161 - 1608);
}

TEST(WebLogGen, TimestampsSpanTheMonth) {
  WebLogGenOptions options;
  options.total_records = 50000;
  options.publication_accesses = 100;
  options.project_accesses = 100;
  options.course_accesses = 100;
  const auto events = GenerateWebLog(options);
  EXPECT_EQ(events.front()->timestamp(), 0);
  EXPECT_GT(events.back()->timestamp(),
            options.span - options.span / 100);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1]->timestamp(), events[i]->timestamp());
  }
}

TEST(WebLogGen, SchemaAndCategories) {
  WebLogGenOptions options;
  options.total_records = 5000;
  options.publication_accesses = 50;
  options.project_accesses = 50;
  options.course_accesses = 50;
  const auto events = GenerateWebLog(options);
  int special = 0;
  for (const auto& e : events) {
    const std::string cat = e->value(2).string_value();
    EXPECT_TRUE(cat == "other" || cat == "publication" ||
                cat == "project" || cat == "course");
    if (cat != "other") ++special;
    EXPECT_FALSE(e->value(0).string_value().empty());  // ip
  }
  EXPECT_EQ(special, 150);
}

}  // namespace
}  // namespace zstream
