// NFA baseline: equivalence with the tree engine on sequences and
// negation; unsupported features rejected.
#include <gtest/gtest.h>

#include "test_util.h"

namespace zstream {
namespace {

using testing::MustAnalyze;
using testing::RunPlan;
using testing::Stock;

uint64_t RunNfaCount(const PatternPtr& p,
                     const std::vector<EventPtr>& events) {
  auto nfa = NfaEngine::Create(p);
  EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
  for (const auto& e : events) (*nfa)->Push(e);
  return (*nfa)->num_matches();
}

TEST(Nfa, SimpleSequenceCounts) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("B", 1, 2), Stock("A", 1, 3),
      Stock("B", 1, 4),
  };
  EXPECT_EQ(RunNfaCount(p, events), 3u);
}

TEST(Nfa, WindowEnforced) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  EXPECT_EQ(RunNfaCount(p, {Stock("A", 1, 0), Stock("B", 1, 20)}), 0u);
}

TEST(Nfa, PredicatesDuringBackwardSearch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND A.price > B.price WITHIN 20");
  const std::vector<EventPtr> events = {
      Stock("A", 50, 1), Stock("B", 80, 2), Stock("B", 10, 3),
      Stock("C", 1, 4),
  };
  // Only (A, B@3, C) passes A.price > B.price.
  EXPECT_EQ(RunNfaCount(p, events), 1u);
}

TEST(Nfa, NegationAsPostFilter) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "WITHIN 100");
  const std::vector<EventPtr> events = {
      Stock("A", 1, 1), Stock("B", 1, 2), Stock("B", 1, 3),
      Stock("A", 1, 4), Stock("C", 1, 5),
  };
  EXPECT_EQ(RunNfaCount(p, events), 1u);  // Figure 5's single match
}

TEST(Nfa, AgreesWithTreeEngineOnRandomStreams) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B;C WHERE A.name='A' AND B.name='B' AND C.name='C' "
      "AND B.price > C.price WITHIN 25");
  Random rng(77);
  for (int round = 0; round < 5; ++round) {
    std::vector<EventPtr> events;
    Timestamp ts = 0;
    for (int i = 0; i < 300; ++i) {
      ts += rng.Uniform(3);
      const char* names[] = {"A", "B", "C"};
      events.push_back(Stock(names[rng.Uniform(3)], rng.Uniform(50), ts));
    }
    const auto tree = RunPlan(p, LeftDeepPlan(*p), events);
    EXPECT_EQ(RunNfaCount(p, events), tree.size()) << "round " << round;
  }
}

TEST(Nfa, MemoryBoundedByWindow) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10");
  auto nfa = NfaEngine::Create(p);
  ASSERT_TRUE(nfa.ok());
  Random rng(5);
  for (int i = 0; i < 50000; ++i) {
    (*nfa)->Push(Stock(rng.Bernoulli(0.5) ? "A" : "B", 1, i));
  }
  // The stacks hold at most ~window events once purging kicks in.
  EXPECT_LT((*nfa)->memory().current_bytes(), 100000);
}

TEST(Nfa, RejectsUnsupportedPatterns) {
  EXPECT_FALSE(
      NfaEngine::Create(MustAnalyze("PATTERN A&B WITHIN 10")).ok());
  EXPECT_FALSE(
      NfaEngine::Create(MustAnalyze("PATTERN A;B*;C WITHIN 10")).ok());
}

// Regression (zstream_fuzz): a detected hash-partition key is an
// equality join the analyzer strips from the predicates — the backward
// search must enforce it, or combinations cross partitions.
TEST(Nfa, PartitionKeyEnforcedInBackwardSearch) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;B WHERE A.name = B.name AND A.price < B.price WITHIN 10");
  ASSERT_TRUE(p->partition.has_value());
  const std::vector<EventPtr> events = {
      Stock("IBM", 1, 1), Stock("Sun", 5, 2), Stock("IBM", 7, 3),
  };
  // Only (IBM@1, IBM@3) shares the key; (IBM@1, Sun@2) and
  // (Sun@2, IBM@3) used to be counted too.
  EXPECT_EQ(RunNfaCount(p, events), 1u);
}

TEST(Nfa, PartitionKeyAppliesToNegators) {
  const PatternPtr p = MustAnalyze(
      "PATTERN A;!B;C WHERE A.name = B.name AND B.name = C.name "
      "AND A.volume = 1 AND B.volume = 2 AND C.volume = 3 WITHIN 10");
  ASSERT_TRUE(p->partition.has_value());
  // A cross-partition negator cannot kill the match...
  EXPECT_EQ(RunNfaCount(p, {Stock("IBM", 1, 1, /*volume=*/1),
                            Stock("Sun", 1, 2, /*volume=*/2),
                            Stock("IBM", 1, 3, /*volume=*/3)}),
            1u);
  // ...a same-partition negator does.
  EXPECT_EQ(RunNfaCount(p, {Stock("IBM", 1, 11, /*volume=*/1),
                            Stock("IBM", 1, 12, /*volume=*/2),
                            Stock("IBM", 1, 13, /*volume=*/3)}),
            0u);
}

}  // namespace
}  // namespace zstream
