// Shared helpers for the ZStream test suite.
#ifndef ZSTREAM_TESTS_TEST_UTIL_H_
#define ZSTREAM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/zstream.h"
#include "common/random.h"
#include "exec/engine.h"
#include "nfa/nfa_engine.h"
#include "query/analyzer.h"

namespace zstream::testing {

/// Counter behind Stock()'s auto-assigned event ids. Reset at the start
/// of every test (see the listener below) so ids depend only on the
/// calls a test itself makes — never on which tests ran earlier in the
/// binary or on ctest -j sharding.
inline int64_t& StockIdCounter() {
  static int64_t id = 0;
  return id;
}

inline void ResetStockIds() { StockIdCounter() = 0; }

namespace internal {
class ResetStockIdsListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override { ResetStockIds(); }
};

// Registered during static initialization, before gtest_main's
// RUN_ALL_TESTS; the listener list takes ownership.
inline const bool kResetStockIdsRegistered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new ResetStockIdsListener());
  return true;
}();
}  // namespace internal

/// Builds a stock event.
inline EventPtr Stock(const std::string& name, double price, Timestamp ts,
                      int64_t volume = 100) {
  return EventBuilder(StockSchema())
      .Set("id", StockIdCounter()++)
      .Set("name", Value(name))
      .Set("price", price)
      .Set("volume", volume)
      .Set("ts", static_cast<int64_t>(ts))
      .At(ts)
      .Build();
}

/// Parses + analyzes a query against the stock schema (CHECK-fails on
/// error so tests read cleanly).
inline PatternPtr MustAnalyze(const std::string& text,
                              AnalyzerOptions options = {}) {
  auto result = AnalyzeQuery(text, StockSchema(), options);
  if (!result.ok()) {
    ADD_FAILURE() << "analyze failed: " << result.status().ToString()
                  << " for query: " << text;
    abort();
  }
  return *result;
}

/// Canonical string for a match: per-class event timestamps plus the
/// Kleene group's timestamps. Order-independent comparison of match sets
/// uses sorted vectors of these keys.
inline std::string MatchKey(const Match& m) {
  std::ostringstream os;
  for (size_t i = 0; i < m.slots.size(); ++i) {
    if (m.slots[i] != nullptr) {
      os << i << "@" << m.slots[i]->timestamp() << "|";
    }
  }
  if (m.group != nullptr) {
    os << "g{";
    for (const EventPtr& e : *m.group) os << e->timestamp() << ",";
    os << "}";
  }
  return os.str();
}

/// Runs an engine over events and returns sorted match keys.
inline std::vector<std::string> RunPlan(const PatternPtr& pattern,
                                        const PhysicalPlan& plan,
                                        const std::vector<EventPtr>& events,
                                        EngineOptions options = {}) {
  auto engine = Engine::Create(pattern, plan, options);
  if (!engine.ok()) {
    ADD_FAILURE() << "engine create failed: " << engine.status().ToString();
    return {};
  }
  std::vector<std::string> keys;
  (*engine)->SetMatchCallback(
      [&](Match&& m) { keys.push_back(MatchKey(m)); });
  for (const EventPtr& e : events) (*engine)->Push(e);
  (*engine)->Finish();
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------------
// Brute-force reference matcher.
//
// Enumerates every combination of admitted events (one per positive
// class, strictly increasing timestamps, span <= window), evaluates all
// multi-class predicates on the full binding, and applies negation by
// scanning for an interleaving admitted negator (strictly between the
// enclosing events, all negation predicates passing). Kleene closure
// follows Algorithm 4's semantics.
// ---------------------------------------------------------------------

class ReferenceMatcher {
 public:
  explicit ReferenceMatcher(PatternPtr pattern) : pattern_(std::move(pattern)) {}

  std::vector<std::string> Run(const std::vector<EventPtr>& events) {
    const Pattern& p = *pattern_;
    const int n = p.num_classes();
    admitted_.assign(static_cast<size_t>(n), {});
    for (const EventPtr& e : events) {
      for (int c = 0; c < n; ++c) {
        if (Admit(c, e)) admitted_[static_cast<size_t>(c)].push_back(e);
      }
    }
    keys_.clear();
    Record rec;
    rec.slots.assign(static_cast<size_t>(n), nullptr);
    Enumerate(0, rec);
    std::sort(keys_.begin(), keys_.end());
    return keys_;
  }

 private:
  bool Admit(int cls, const EventPtr& e) const {
    const EventClass& ec = pattern_->classes[static_cast<size_t>(cls)];
    Record probe = Record::FromEvent(cls, pattern_->num_classes(), e);
    const EvalInput in = probe.ToEvalInput();
    for (const ExprPtr& pred : ec.leaf_predicates) {
      if (!pred->EvalPredicate(in)) return false;
    }
    if (!ec.neg_branches.empty()) {
      for (const NegBranch& b : ec.neg_branches) {
        bool all = true;
        for (const ExprPtr& pred : b.predicates) {
          if (!pred->EvalPredicate(in)) all = false;
        }
        if (all) return true;
      }
      return false;
    }
    return true;
  }

  // Recursively binds positive, non-Kleene classes in pattern order.
  void Enumerate(int cls, Record& rec) {
    const Pattern& p = *pattern_;
    const int n = p.num_classes();
    if (cls == n) {
      Finalize(rec);
      return;
    }
    const EventClass& ec = p.classes[static_cast<size_t>(cls)];
    if (ec.negated || ec.is_kleene()) {
      Enumerate(cls + 1, rec);  // bound later / grouped later
      return;
    }
    const Timestamp prev = PrevPositiveTs(rec, cls);
    for (const EventPtr& e : admitted_[static_cast<size_t>(cls)]) {
      if (prev != kMinTimestamp && e->timestamp() <= prev) continue;
      rec.slots[static_cast<size_t>(cls)] = e;
      Enumerate(cls + 1, rec);
    }
    rec.slots[static_cast<size_t>(cls)] = nullptr;
  }

  Timestamp PrevPositiveTs(const Record& rec, int cls) const {
    for (int c = cls - 1; c >= 0; --c) {
      const EventPtr& e = rec.slots[static_cast<size_t>(c)];
      if (e != nullptr) return e->timestamp();
      if (pattern_->classes[static_cast<size_t>(c)].negated ||
          pattern_->classes[static_cast<size_t>(c)].is_kleene()) {
        continue;
      }
    }
    return kMinTimestamp;
  }

  void Finalize(Record& rec) {
    const Pattern& p = *pattern_;
    // Window over the positive bindings.
    Timestamp lo = kMaxTimestamp, hi = kMinTimestamp;
    for (const EventPtr& e : rec.slots) {
      if (e == nullptr) continue;
      lo = std::min(lo, e->timestamp());
      hi = std::max(hi, e->timestamp());
    }
    if (lo == kMaxTimestamp || hi - lo > p.window) return;

    // Negation: any admitted negator strictly inside its enclosure
    // (with all negation predicates passing) kills the match.
    for (int nc : p.NegatedClasses()) {
      const EventPtr& a = rec.slots[static_cast<size_t>(nc - 1)];
      const EventPtr& c = rec.slots[static_cast<size_t>(nc + 1)];
      for (const EventPtr& b : admitted_[static_cast<size_t>(nc)]) {
        if (b->timestamp() <= a->timestamp() ||
            b->timestamp() >= c->timestamp()) {
          continue;
        }
        rec.slots[static_cast<size_t>(nc)] = b;
        if (PredsPass(rec, /*restrict_to_neg=*/nc)) {
          rec.slots[static_cast<size_t>(nc)] = nullptr;
          return;  // negated
        }
      }
      rec.slots[static_cast<size_t>(nc)] = nullptr;
    }

    const int kc = p.KleeneClass();
    if (kc < 0) {
      if (!PredsPass(rec, -1)) return;
      Emit(rec, nullptr);
      return;
    }

    // Kleene closure between its neighbors (virtual boundaries at the
    // pattern edges, bounded by the window).
    const EventPtr* before = kc > 0 ? &rec.slots[static_cast<size_t>(kc - 1)]
                                    : nullptr;
    const EventPtr* after = kc + 1 < p.num_classes()
                                ? &rec.slots[static_cast<size_t>(kc + 1)]
                                : nullptr;
    const Timestamp lo_b =
        before != nullptr && *before != nullptr ? (*before)->timestamp()
                                                : kMinTimestamp;
    const Timestamp hi_b = after != nullptr && *after != nullptr
                               ? (*after)->timestamp()
                               : kMaxTimestamp;
    EventGroup qualifying;
    for (const EventPtr& m : admitted_[static_cast<size_t>(kc)]) {
      const Timestamp ts = m->timestamp();
      if (ts <= lo_b || ts >= hi_b) continue;
      if (hi != kMinTimestamp && lo != kMaxTimestamp) {
        const Timestamp s = std::min(lo, ts);
        const Timestamp e2 = std::max(hi, ts);
        if (e2 - s > p.window) continue;
      }
      // Per-closure-event predicates (non-aggregate predicates that
      // reference the Kleene class) filter each event individually.
      rec.slots[static_cast<size_t>(kc)] = m;
      bool ok = true;
      const EvalInput in = rec.ToEvalInput();
      for (const ExprPtr& pred : p.multi_predicates) {
        if (ContainsAggregate(pred)) continue;
        const std::set<int> classes = ReferencedClasses(pred);
        if (classes.count(kc) == 0) continue;
        bool all_bound = true;
        for (int c : classes) {
          if (rec.slots[static_cast<size_t>(c)] == nullptr) all_bound = false;
        }
        if (!all_bound) continue;
        if (!pred->EvalPredicate(in)) ok = false;
      }
      rec.slots[static_cast<size_t>(kc)] = nullptr;
      if (ok) qualifying.push_back(m);
    }
    const EventClass& kcl = p.classes[static_cast<size_t>(kc)];
    const auto emit_group = [&](EventGroup g) {
      rec.group = std::make_shared<EventGroup>(std::move(g));
      if (PredsPass(rec, -1)) Emit(rec, rec.group.get());
      rec.group = nullptr;
    };
    switch (kcl.kleene) {
      case KleeneKind::kStar:
        emit_group(qualifying);
        break;
      case KleeneKind::kPlus:
        if (!qualifying.empty()) emit_group(qualifying);
        break;
      case KleeneKind::kCount: {
        const size_t cc = static_cast<size_t>(kcl.kleene_count);
        for (size_t i = 0; i + cc <= qualifying.size(); ++i) {
          emit_group(EventGroup(qualifying.begin() + static_cast<long>(i),
                                qualifying.begin() +
                                    static_cast<long>(i + cc)));
        }
        break;
      }
      case KleeneKind::kNone:
        break;
    }
  }

  // Evaluates multi-class predicates whose referenced slots are bound;
  // when `restrict_to_neg` >= 0, only predicates touching that class.
  bool PredsPass(const Record& rec, int restrict_to_neg) const {
    const EvalInput in = rec.ToEvalInput(pattern_->KleeneClass());
    const int kc = pattern_->KleeneClass();
    for (const ExprPtr& pred : pattern_->multi_predicates) {
      const std::set<int> classes = ReferencedClasses(pred);
      if (restrict_to_neg >= 0 &&
          classes.count(restrict_to_neg) == 0) {
        continue;
      }
      if (restrict_to_neg < 0) {
        // Skip negation predicates here; they only matter for negators.
        bool touches_neg = false;
        for (int nc : pattern_->NegatedClasses()) {
          if (classes.count(nc) > 0) touches_neg = true;
        }
        if (touches_neg) continue;
        // Non-aggregate Kleene-class predicates were enforced per
        // closure event already.
        if (kc >= 0 && classes.count(kc) > 0 && !ContainsAggregate(pred)) {
          continue;
        }
      }
      bool all_bound = true;
      for (int c : classes) {
        if (rec.slots[static_cast<size_t>(c)] == nullptr &&
            !(c == pattern_->KleeneClass() && rec.group != nullptr)) {
          all_bound = false;
        }
      }
      if (!all_bound) continue;
      if (!pred->EvalPredicate(in)) return false;
    }
    return true;
  }

  void Emit(const Record& rec, const EventGroup* group) {
    std::ostringstream os;
    for (size_t i = 0; i < rec.slots.size(); ++i) {
      if (rec.slots[i] != nullptr) {
        os << i << "@" << rec.slots[i]->timestamp() << "|";
      }
    }
    if (group != nullptr) {
      os << "g{";
      for (const EventPtr& e : *group) os << e->timestamp() << ",";
      os << "}";
    } else if (pattern_->KleeneClass() >= 0) {
      os << "g{}";
    }
    keys_.push_back(os.str());
  }

  PatternPtr pattern_;
  std::vector<std::vector<EventPtr>> admitted_;
  std::vector<std::string> keys_;
};

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTS_TEST_UTIL_H_
