// Planner tests: the DP (Algorithm 5) against exhaustive enumeration,
// expected shapes under known statistics, negation choice, timing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "opt/planner.h"
#include "query/analyzer.h"

namespace zstream {
namespace {

PatternPtr Must(const std::string& q) {
  auto r = AnalyzeQuery(q, StockSchema());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

PatternPtr SeqPattern(int n) {
  std::string q = "PATTERN C0";
  for (int i = 1; i < n; ++i) q += ";C" + std::to_string(i);
  q += " WITHIN 10";
  return Must(q);
}

TEST(Planner, TrivialTwoClassPlan) {
  const PatternPtr p = SeqPattern(2);
  StatsCatalog stats(2, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->Explain(*p), "[C0 ; C1]");
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST(Planner, PicksLeftDeepWhenFirstClassRare) {
  const PatternPtr p = SeqPattern(3);
  StatsCatalog stats(3, 10.0);
  stats.set_rate(0, 0.01);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain(*p), "[[C0 ; C1] ; C2]");
}

TEST(Planner, PicksRightDeepWhenLastClassRare) {
  const PatternPtr p = SeqPattern(3);
  StatsCatalog stats(3, 10.0);
  stats.set_rate(2, 0.01);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain(*p), "[C0 ; [C1 ; C2]]");
}

TEST(Planner, ConsidersBushyPlans) {
  // Rare classes at positions 0-1 and 2-3 with selective predicates
  // inside the halves make the bushy split optimal.
  const PatternPtr p = Must(
      "PATTERN C0;C1;C2;C3 WHERE C0.price > C1.price AND "
      "C2.price > C3.price WITHIN 10");
  StatsCatalog stats(4, 10.0);
  stats.SetPairSel(0, 1, 0.001);
  stats.SetPairSel(2, 3, 0.001);
  stats.set_rate(0, 10);
  stats.set_rate(1, 10);
  stats.set_rate(2, 10);
  stats.set_rate(3, 10);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain(*p), "[[C0 ; C1] ; [C2 ; C3]]");
}

class DpVsExhaustive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpVsExhaustive, DpFindsTheExhaustiveMinimum) {
  Random rng(GetParam());
  for (int n = 2; n <= 6; ++n) {
    const PatternPtr p = SeqPattern(n);
    StatsCatalog stats(n, 10.0);
    for (int c = 0; c < n; ++c) {
      stats.set_rate(c, std::pow(10.0, rng.NextDouble() * 4 - 2));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.3)) {
          stats.SetPairSel(i, j, std::pow(10.0, -3 * rng.NextDouble()));
        }
      }
    }
    Planner planner(p, &stats);
    auto dp = planner.OptimalPlan();
    auto exhaustive = planner.ExhaustiveOptimal();
    ASSERT_TRUE(dp.ok());
    ASSERT_TRUE(exhaustive.ok());
    EXPECT_NEAR(dp->estimated_cost, exhaustive->estimated_cost,
                1e-9 * std::max(1.0, exhaustive->estimated_cost))
        << "n=" << n << " dp=" << dp->Explain(*p)
        << " exhaustive=" << exhaustive->Explain(*p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsExhaustive,
                         ::testing::Range<uint64_t>(1, 11));

TEST(Planner, EnumerateShapesIsCatalan) {
  const int catalan[] = {1, 1, 2, 5, 14, 42};
  for (int n = 2; n <= 6; ++n) {
    const PatternPtr p = SeqPattern(n);
    StatsCatalog stats(n, 10.0);
    Planner planner(p, &stats);
    auto shapes = planner.EnumerateShapes();
    ASSERT_TRUE(shapes.ok());
    EXPECT_EQ(shapes->size(), static_cast<size_t>(catalan[n - 1])) << n;
    for (const auto& plan : *shapes) {
      EXPECT_TRUE(ValidatePlan(*p, plan).ok());
    }
  }
}

TEST(Planner, NegationChoiceUsesNseqWhenLegal) {
  const PatternPtr p = Must("PATTERN A;!B;C WITHIN 10");
  StatsCatalog stats(3, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Explain(*p).find("NSEQ"), std::string::npos);
}

TEST(Planner, NegationFallsBackToTopFilterWhenSpanning) {
  // B's predicates touch both A and C, so NSEQ is illegal
  // (Section 4.4.2) and the planner must use the NEG filter.
  const PatternPtr p = Must(
      "PATTERN A;!B;C WHERE B.price > A.price AND B.price > C.price "
      "WITHIN 10");
  StatsCatalog stats(3, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Explain(*p).find("NEG("), std::string::npos);
}

TEST(Planner, KleeneFusedAsTrinaryUnit) {
  const PatternPtr p = Must("PATTERN A;B^3;C;D WITHIN 10");
  StatsCatalog stats(4, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Explain(*p).find("KSEQ(A, B^3, C)"), std::string::npos);
  EXPECT_TRUE(ValidatePlan(*p, *plan).ok());
}

TEST(Planner, PlansLength20UnderTenMilliseconds) {
  // Section 5.2.3: "less than 10 ms to search for an optimal plan with
  // pattern length 20". The paper's bound only holds for optimized
  // builds; unoptimized and sanitizer-instrumented builds get generous
  // headroom so the DP is still exercised without a flaky wall-clock
  // assertion.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ZSTREAM_TEST_SLOW_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ZSTREAM_TEST_SLOW_BUILD 1
#endif
#endif
#if !defined(NDEBUG)
#define ZSTREAM_TEST_SLOW_BUILD 1
#endif
#if defined(ZSTREAM_TEST_SLOW_BUILD)
  constexpr double kBudgetMicros = 1e6;
#else
  constexpr double kBudgetMicros = 10000.0;
#endif
  const PatternPtr p = SeqPattern(20);
  StatsCatalog stats(20, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(planner.last_plan_micros(), kBudgetMicros)
      << "planning took " << planner.last_plan_micros() << "us";
}

TEST(Planner, NonSequenceFallsBackStructurally) {
  const PatternPtr p = Must("PATTERN A&B WITHIN 10");
  StatsCatalog stats(2, 10.0);
  Planner planner(p, &stats);
  auto plan = planner.OptimalPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain(*p), "[A & B]");
}

}  // namespace
}  // namespace zstream
