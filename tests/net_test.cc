// Tests for the src/net/ serving layer: wire-protocol round trips,
// FrameParser recovery on malformed input, and the end-to-end TCP path
// (DDL + ingest + subscription fanout) compared against the in-process
// runtime on the same trace. Designed TSan-clean: the CI thread job
// runs this binary alongside runtime_test.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/string_util.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "query/error_codes.h"
#include "test_util.h"
#include "workload/net_replay.h"
#include "workload/stock_gen.h"

namespace zstream::testing {
namespace {

using net::Client;
using net::FrameParser;
using net::MsgType;
using net::NetMatch;
using net::PayloadReader;
using net::Server;

constexpr char kStockDdl[] =
    "CREATE STREAM stock "
    "(id INT, name STRING, price DOUBLE, volume INT, ts INT)";
constexpr char kRallyDdl[] =
    "CREATE QUERY rally ON stock AS "
    "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
    "AND A.price < B.price AND B.price < C.price WITHIN 100";

std::vector<EventPtr> ManyNameTrades(int64_t num_events, uint64_t seed) {
  StockGenOptions gen;
  gen.names.clear();
  gen.weights.clear();
  for (int i = 0; i < 8; ++i) {
    gen.names.push_back("SYM" + std::to_string(i));
    gen.weights.push_back(1.0);
  }
  gen.num_events = num_events;
  gen.seed = seed;
  return GenerateStockTrades(gen);
}

/// Single-threaded in-process reference: sorted canonical match keys.
std::vector<std::string> SingleThreadedKeys(
    const std::string& text, const std::vector<EventPtr>& events) {
  ZStream zs(StockSchema());
  auto query = zs.Compile(text);
  EXPECT_TRUE(query.ok()) << query.status();
  std::vector<std::string> keys;
  (*query)->SetMatchCallback([&](Match&& m) {
    keys.push_back(runtime::CanonicalMatchKey(m));
  });
  for (const EventPtr& e : events) (*query)->Push(e);
  (*query)->Finish();
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// A raw TCP connection for crafting protocol-violating byte streams.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << ErrnoToString(errno);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Write(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(n, 0) << ErrnoToString(errno);
      sent += static_cast<size_t>(n);
    }
  }

  /// Blocks until one full frame arrives.
  FrameParser::Frame ReadFrame() {
    while (true) {
      auto next = parser_.Next();
      EXPECT_TRUE(next.ok()) << next.status();
      if (next.ok() && next->has_value()) return std::move(**next);
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      EXPECT_GT(n, 0) << "connection closed while waiting for a frame";
      if (n <= 0) return FrameParser::Frame{};
      parser_.Append(buf, static_cast<size_t>(n));
    }
  }

  /// Blocks until the server closes the connection (EOF/reset),
  /// discarding any residual bytes; false on timeout.
  bool WaitForClose(int timeout_ms) {
    while (true) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc <= 0) return false;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return true;
    }
  }

  /// Reads a kError frame and decodes the transported Status.
  Status ReadError() {
    const FrameParser::Frame frame = ReadFrame();
    EXPECT_EQ(frame.header.type, MsgType::kError);
    PayloadReader reader(frame.payload);
    Status decoded;
    const Status parse = net::DecodeErrorPayload(&reader, &decoded);
    EXPECT_TRUE(parse.ok()) << parse;
    return decoded;
  }

 private:
  int fd_ = -1;
  FrameParser parser_;
};

struct ServerFixture {
  ZStream session;
  std::unique_ptr<Server> server;

  explicit ServerFixture(int shards = 2,
                         const std::vector<std::string>& ddl = {}) {
    for (const std::string& stmt : ddl) {
      auto r = session.Execute(stmt);
      EXPECT_TRUE(r.ok()) << r.status();
    }
    runtime::RuntimeOptions ropts;
    ropts.num_shards = shards;
    auto created = Server::Create(&session, ropts);
    EXPECT_TRUE(created.ok()) << created.status();
    server = std::move(*created);
    const Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st;
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(*client);
  }
};

// ---------------------------------------------------------------------
// Wire encoding round trips
// ---------------------------------------------------------------------

TEST(NetProtocol, ValueRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),    Value(true),           Value(false),
      Value(int64_t{-42}), Value(int64_t{1} << 60), Value(3.25),
      Value(-0.0),      Value("hello"),        Value(std::string()),
      Value(std::string(1000, 'x'))};
  std::string buf;
  for (const Value& v : values) net::AppendValue(&buf, v);
  PayloadReader reader(buf);
  for (const Value& v : values) {
    auto got = net::ReadValue(&reader);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->type(), v.type());
    if (!v.is_null()) {
      EXPECT_EQ(*got, v);
    }
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(NetProtocol, EventRoundTripValidatesSchema) {
  const EventPtr event = Stock("IBM", 95.5, 42);
  std::string buf;
  net::AppendEvent(&buf, *event);
  PayloadReader reader(buf);
  auto got = net::ReadEvent(&reader, StockSchema());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ((*got)->timestamp(), 42);
  EXPECT_EQ((*got)->values(), event->values());

  // Same bytes against a narrower schema: field count mismatch.
  PayloadReader again(buf);
  auto bad = net::ReadEvent(
      &again, Schema::Make({{"a", ValueType::kInt64}}));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().error_code(), errc::kNetSchemaMismatch);
}

TEST(NetProtocol, TruncatedValuePayloadIsCodedError) {
  const EventPtr event = Stock("IBM", 95.5, 42);
  std::string buf;
  net::AppendEvent(&buf, *event);
  // Chop the payload mid-value: every prefix must fail cleanly with the
  // truncation code, never crash or mis-decode.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    PayloadReader reader(std::string_view(buf).substr(0, cut));
    auto got = net::ReadEvent(&reader, StockSchema());
    ASSERT_FALSE(got.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(got.status().error_code(), errc::kNetTruncatedPayload);
  }
}

TEST(NetProtocol, SchemaRoundTrip) {
  std::string buf;
  net::AppendSchema(&buf, *StockSchema());
  PayloadReader reader(buf);
  auto got = net::ReadSchema(&reader);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ((*got)->num_fields(), StockSchema()->num_fields());
  for (int i = 0; i < (*got)->num_fields(); ++i) {
    EXPECT_EQ((*got)->field(i).name, StockSchema()->field(i).name);
    EXPECT_EQ((*got)->field(i).type, StockSchema()->field(i).type);
  }
}

TEST(NetProtocol, StatusPayloadRoundTrip) {
  const Status original = Status::ParseError("bad token")
                              .WithErrorCode(errc::kParseExpectedWithin)
                              .WithLocation(3, 17);
  std::string buf;
  net::AppendStatusPayload(&buf, original);
  PayloadReader reader(buf);
  Status decoded;
  ASSERT_TRUE(net::DecodeErrorPayload(&reader, &decoded).ok());
  EXPECT_TRUE(decoded.IsParseError());
  EXPECT_EQ(decoded.message(), "bad token");
  EXPECT_EQ(decoded.error_code(), errc::kParseExpectedWithin);
  EXPECT_EQ(decoded.line(), 3);
  EXPECT_EQ(decoded.column(), 17);
}

TEST(NetProtocol, MatchRoundTripWithNullSlotsAndGroup) {
  Match match;
  match.span = TimeSpan{10, 30};
  match.slots = {Stock("IBM", 10, 10), nullptr, Stock("Sun", 20, 30)};
  match.group = std::make_shared<EventGroup>(
      EventGroup{Stock("Oracle", 15, 12), Stock("Oracle", 16, 14)});
  std::string buf;
  net::AppendMatch(&buf, "q1", match);
  PayloadReader reader(buf);
  auto got = net::ReadMatch(&reader, StockSchema());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->query, "q1");
  EXPECT_EQ(runtime::CanonicalMatchKey(got->match),
            runtime::CanonicalMatchKey(match));
}

// Regression (found by zstream_fuzz): an empty-but-present Kleene group
// (a '*' closure that matched zero events) must survive the wire — it
// used to decode as "no group", changing the match's canonical key.
TEST(NetProtocol, MatchRoundTripKeepsEmptyGroup) {
  Match match;
  match.span = TimeSpan{5, 9};
  match.slots = {Stock("IBM", 10, 5), Stock("Sun", 20, 9)};
  match.group = std::make_shared<EventGroup>();  // present, empty
  std::string buf;
  net::AppendMatch(&buf, "q1", match);
  PayloadReader reader(buf);
  auto got = net::ReadMatch(&reader, StockSchema());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_NE(got->match.group, nullptr);
  EXPECT_TRUE(got->match.group->empty());
  EXPECT_EQ(runtime::CanonicalMatchKey(got->match),
            runtime::CanonicalMatchKey(match));

  Match no_group;
  no_group.span = TimeSpan{5, 9};
  no_group.slots = {Stock("IBM", 10, 5), Stock("Sun", 20, 9)};
  buf.clear();
  net::AppendMatch(&buf, "q1", no_group);
  PayloadReader reader2(buf);
  auto got2 = net::ReadMatch(&reader2, StockSchema());
  ASSERT_TRUE(got2.ok()) << got2.status();
  EXPECT_EQ(got2->match.group, nullptr);
}

// ---------------------------------------------------------------------
// FrameParser: partial reads, oversized frames, resynchronization
// ---------------------------------------------------------------------

TEST(NetFrameParser, ReassemblesAcrossArbitrarySplits) {
  std::string stream;
  net::AppendFrame(&stream, MsgType::kDdl, 0, "CREATE ...");
  net::AppendFrame(&stream, MsgType::kFlush, 0, "");
  net::AppendFrame(&stream, MsgType::kStats, 0, std::string(300, 'j'));

  // Feed one byte at a time: every frame must come out exactly once.
  FrameParser parser;
  std::vector<FrameParser::Frame> frames;
  for (char c : stream) {
    parser.Append(&c, 1);
    while (true) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].header.type, MsgType::kDdl);
  EXPECT_EQ(frames[0].payload, "CREATE ...");
  EXPECT_EQ(frames[1].header.type, MsgType::kFlush);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(frames[2].header.type, MsgType::kStats);
  EXPECT_EQ(frames[2].payload.size(), 300u);
}

TEST(NetFrameParser, OversizedFrameErrorsOnceThenResyncs) {
  FrameParser parser(/*max_payload=*/64);
  std::string stream;
  net::AppendFrame(&stream, MsgType::kDdl, 0, std::string(100, 'x'));
  net::AppendFrame(&stream, MsgType::kFlush, 0, "");
  parser.Append(stream.data(), stream.size());

  auto first = parser.Next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().error_code(), errc::kNetOversizedFrame);

  // The 100-byte payload is skipped; the following frame parses.
  auto second = parser.Next();
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->header.type, MsgType::kFlush);
}

TEST(NetFrameParser, OversizedSkipSurvivesPartialDelivery) {
  FrameParser parser(/*max_payload=*/16);
  std::string bad;
  net::AppendFrame(&bad, MsgType::kDdl, 0, std::string(1000, 'x'));
  std::string good;
  net::AppendFrame(&good, MsgType::kStatsRequest, 0, "");

  parser.Append(bad.data(), 20);  // header + a sliver of payload
  auto first = parser.Next();
  ASSERT_FALSE(first.ok());
  // Dribble the rest of the bad payload, then the good frame.
  for (size_t i = 20; i < bad.size(); ++i) {
    parser.Append(bad.data() + i, 1);
    auto mid = parser.Next();
    ASSERT_TRUE(mid.ok());
    EXPECT_FALSE(mid->has_value());
  }
  parser.Append(good.data(), good.size());
  auto next = parser.Next();
  ASSERT_TRUE(next.ok()) << next.status();
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->header.type, MsgType::kStatsRequest);
}

TEST(NetFrameParser, UnknownTypeIsCodedAndResyncs) {
  FrameParser parser;
  std::string raw;
  net::PutU8(&raw, net::kProtocolVersion);
  net::PutU8(&raw, 99);  // no such message type
  net::PutU8(&raw, 0);
  net::PutU8(&raw, 0);
  net::PutU32(&raw, 4);
  raw += "junk";
  net::AppendFrame(&raw, MsgType::kFlush, 0, "");
  parser.Append(raw.data(), raw.size());
  auto next = parser.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().error_code(), errc::kNetUnknownType);
  EXPECT_FALSE(parser.broken());
  // The version byte was valid, so the announced length is trusted and
  // the stream resynchronizes at the next frame.
  auto resynced = parser.Next();
  ASSERT_TRUE(resynced.ok()) << resynced.status();
  ASSERT_TRUE(resynced->has_value());
  EXPECT_EQ((*resynced)->header.type, MsgType::kFlush);
}

TEST(NetFrameParser, BadVersionIsFatal) {
  FrameParser parser;
  std::string raw;
  net::PutU8(&raw, 42);  // wrong version: nothing after it is trusted
  net::PutU8(&raw, static_cast<uint8_t>(MsgType::kFlush));
  net::PutU8(&raw, 0);
  net::PutU8(&raw, 0);
  net::PutU32(&raw, 0);
  net::AppendFrame(&raw, MsgType::kFlush, 0, "");  // never reached
  parser.Append(raw.data(), raw.size());
  auto next = parser.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().error_code(), errc::kNetBadVersion);
  EXPECT_TRUE(parser.broken());
  // Sticky: the stream cannot be resynchronized.
  auto again = parser.Next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().error_code(), errc::kNetBadVersion);
}

// ---------------------------------------------------------------------
// FrameParser byte-mutation fuzz: seeded random corruption of valid
// frame streams. Properties: payload-only corruption never desyncs
// framing (exact frame count, later frames intact) and corrupt
// payloads decode to coded errors, never crashes; arbitrary corruption
// (headers included) always yields sane frames, coded errors, or the
// sticky fatal state — never a crash, a hang, or an oversized payload.
// ---------------------------------------------------------------------

namespace fuzz {

struct FrameStream {
  std::string bytes;
  std::vector<std::pair<size_t, size_t>> header_spans;
  size_t num_frames = 0;
};

FrameStream BuildValidStream(uint64_t seed) {
  Random rng(seed);
  FrameStream out;
  const auto add = [&](MsgType type, const std::string& payload) {
    out.header_spans.emplace_back(out.bytes.size(), out.bytes.size() + 8);
    net::AppendFrame(&out.bytes, type, 0, payload);
    ++out.num_frames;
  };
  add(MsgType::kDdl, kStockDdl);
  std::string batch;
  std::vector<EventPtr> events;
  const int n = 1 + static_cast<int>(rng.Uniform(6));
  for (int i = 0; i < n; ++i) {
    events.push_back(Stock("SYM" + std::to_string(rng.Uniform(3)),
                           static_cast<double>(rng.Uniform(100)),
                           static_cast<Timestamp>(i)));
  }
  net::AppendEventBatch(&batch, "stock", events, 0, events.size());
  add(MsgType::kEventBatch, batch);
  Match match;
  match.span = TimeSpan{0, 9};
  match.slots = {events.front(), nullptr, events.back()};
  std::string match_payload;
  net::AppendMatch(&match_payload, "q", match);
  add(MsgType::kMatch, match_payload);
  add(MsgType::kFlush, "");
  return out;
}

/// Drains the parser; every yielded frame must be sane, every error
/// coded. Returns the frames; stops on the sticky fatal state.
std::vector<FrameParser::Frame> DrainChecked(FrameParser* parser,
                                             uint32_t max_payload) {
  std::vector<FrameParser::Frame> frames;
  // Bounded: each iteration either consumes bytes or returns nullopt,
  // so buffered()+1 iterations cannot loop forever.
  for (size_t guard = 0; guard < parser->buffered() + 16; ++guard) {
    auto next = parser->Next();
    if (!next.ok()) {
      EXPECT_FALSE(next.status().error_code().empty())
          << "parser error must be coded: " << next.status();
      if (parser->broken()) break;
      continue;
    }
    if (!next->has_value()) break;
    EXPECT_TRUE(net::IsValidMsgType(
        static_cast<uint8_t>((**next).header.type)));
    EXPECT_LE((**next).payload.size(), max_payload);
    frames.push_back(std::move(**next));
  }
  return frames;
}

/// Runs the typed payload decoder for the frame's type: must return a
/// value or a coded error — never crash or read out of bounds (ASan).
void DecodeChecked(const FrameParser::Frame& frame) {
  PayloadReader reader(frame.payload);
  switch (frame.header.type) {
    case MsgType::kEventBatch: {
      auto stream_name = reader.ReadString();
      if (!stream_name.ok()) return;
      auto count = reader.ReadU32();
      if (!count.ok()) return;
      for (uint32_t i = 0; i < std::min<uint32_t>(*count, 1024); ++i) {
        if (!net::ReadEvent(&reader, StockSchema()).ok()) return;
      }
      break;
    }
    case MsgType::kMatch:
      (void)net::ReadMatch(&reader, StockSchema());
      break;
    default:
      break;
  }
}

}  // namespace fuzz

TEST(NetFrameParserFuzz, PayloadMutationsKeepFramingAndDecodeSafely) {
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Random rng(seed * 7919);
    fuzz::FrameStream stream = fuzz::BuildValidStream(seed);
    // Corrupt 1-8 payload bytes; headers stay intact, so framing must
    // deliver every frame and the trailing sentinel exactly once.
    const auto in_header = [&](size_t pos) {
      for (const auto& [lo, hi] : stream.header_spans) {
        if (pos >= lo && pos < hi) return true;
      }
      return false;
    };
    const int mutations = 1 + static_cast<int>(rng.Uniform(8));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(stream.bytes.size());
      if (in_header(pos)) continue;  // only payload bytes this test
      stream.bytes[pos] = static_cast<char>(rng.Uniform(256));
    }
    net::AppendFrame(&stream.bytes, MsgType::kDdl, 0, "SENTINEL");

    FrameParser parser;
    size_t pos = 0;
    std::vector<FrameParser::Frame> frames;
    while (pos < stream.bytes.size()) {
      const size_t chunk = std::min(stream.bytes.size() - pos,
                                    1 + rng.Uniform(97));
      parser.Append(stream.bytes.data() + pos, chunk);
      pos += chunk;
      auto drained = fuzz::DrainChecked(&parser, net::kMaxFramePayload);
      for (auto& f : drained) frames.push_back(std::move(f));
    }
    ASSERT_EQ(frames.size(), stream.num_frames + 1) << "seed " << seed;
    EXPECT_EQ(frames.back().payload, "SENTINEL") << "seed " << seed;
    for (const auto& frame : frames) fuzz::DecodeChecked(frame);
  }
}

TEST(NetFrameParserFuzz, ArbitraryMutationsNeverCrashOrAcceptOversized) {
  constexpr uint32_t kSmallBound = 4096;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Random rng(seed * 6271);
    fuzz::FrameStream stream = fuzz::BuildValidStream(seed);
    const int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations; ++m) {
      // Anywhere, version and length bytes included.
      stream.bytes[rng.Uniform(stream.bytes.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    FrameParser parser(kSmallBound);
    size_t pos = 0;
    while (pos < stream.bytes.size()) {
      const size_t chunk = std::min(stream.bytes.size() - pos,
                                    1 + rng.Uniform(29));
      parser.Append(stream.bytes.data() + pos, chunk);
      pos += chunk;
      for (const auto& frame : fuzz::DrainChecked(&parser, kSmallBound)) {
        fuzz::DecodeChecked(frame);
      }
      if (parser.broken()) break;  // fatal (mutated version byte): done
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end over TCP
// ---------------------------------------------------------------------

TEST(NetServer, EndToEndStockMatchesEqualInProcess) {
  const auto events = ManyNameTrades(8000, 99);
  const std::string pattern_text(
      std::strstr(kRallyDdl, "PATTERN"));  // the query body
  const auto expected = SingleThreadedKeys(pattern_text, events);
  ASSERT_FALSE(expected.empty());

  ServerFixture fx(/*shards=*/2);
  auto ddl_client = fx.Connect();
  ASSERT_TRUE(ddl_client->Execute(kStockDdl).ok());
  ASSERT_TRUE(ddl_client->Execute(kRallyDdl).ok());

  // Subscribe on a second connection; replay on the first.
  auto sub_client = fx.Connect();
  auto sub = sub_client->Subscribe("rally");
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->stream, "stock");

  auto ack = ddl_client->Ingest("stock", events, /*batch_size=*/512);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, events.size());
  EXPECT_EQ(ack->dropped, 0u);

  auto flush = ddl_client->Flush();
  ASSERT_TRUE(flush.ok()) << flush.status();
  ASSERT_EQ(flush->queries.size(), 1u);
  EXPECT_EQ(flush->queries[0].first, "rally");
  EXPECT_EQ(flush->queries[0].second, expected.size());

  // The subscriber receives the exact same match set (canonical keys).
  auto got = sub_client->WaitForMatches(expected.size(), /*timeout_ms=*/30000);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, expected.size());
  std::vector<std::string> keys;
  for (const NetMatch& m : sub_client->TakeMatches()) {
    EXPECT_EQ(m.query, "rally");
    keys.push_back(runtime::CanonicalMatchKey(m.match));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, expected);
}

TEST(NetServer, ReplayOverWireMatchesInProcess) {
  const auto events = ManyNameTrades(6000, 7);
  const std::string pattern_text(std::strstr(kRallyDdl, "PATTERN"));
  const auto expected = SingleThreadedKeys(pattern_text, events);

  ServerFixture fx(/*shards=*/2, {kStockDdl, kRallyDdl});
  auto client = fx.Connect();

  // Two connections, key-partitioned on the name field (index 1): per-key
  // order is preserved, so the match set is exact.
  NetReplayOptions options;
  options.num_connections = 2;
  options.partition_field = 1;
  options.batch_size = 256;
  auto result = ReplayOverWire("127.0.0.1", fx.server->port(), "stock",
                               events, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->accepted, events.size());

  auto flush = client->Flush();
  ASSERT_TRUE(flush.ok()) << flush.status();
  ASSERT_EQ(flush->queries.size(), 1u);
  EXPECT_EQ(flush->queries[0].second, expected.size());
}

TEST(NetServer, MalformedDdlKeepsConnectionUsable) {
  ServerFixture fx;
  auto client = fx.Connect();

  auto bad = client->Execute("CREATE NONSENSE foo");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().error_code(), errc::kDdlUnknownStatement);
  EXPECT_GT(bad.status().line(), 0);

  auto worse = client->Execute("CREATE STREAM s (x WIBBLE)");
  ASSERT_FALSE(worse.ok());
  EXPECT_EQ(worse.status().error_code(), errc::kDdlUnknownType);

  // Same connection still serves valid statements.
  auto good = client->Execute(kStockDdl);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->name, "stock");
}

TEST(NetServer, ShowPlanAndShowQueriesOverWire) {
  ServerFixture fx(2, {kStockDdl, kRallyDdl});
  auto client = fx.Connect();

  auto plan = client->Execute("SHOW PLAN rally");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->kind, DdlKind::kShowPlan);
  EXPECT_NE(plan->message.find("stream=stock"), std::string::npos);
  EXPECT_NE(plan->message.find("plan="), std::string::npos);

  auto missing = client->Execute("SHOW PLAN nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().error_code(), errc::kCatalogUnknownQuery);
  EXPECT_EQ(missing.status().line(), 1);
  EXPECT_EQ(missing.status().column(), 11);

  auto queries = client->Execute("SHOW QUERIES");
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->rows.size(), 1u);
  EXPECT_EQ(queries->rows[0].name, "rally");
}

TEST(NetServer, IngestToUnknownStreamIsCodedError) {
  ServerFixture fx;
  auto client = fx.Connect();
  auto ack = client->Ingest("nope", {Stock("IBM", 1.0, 1)});
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().error_code(), errc::kCatalogUnknownStream);
  // Connection survives the error.
  EXPECT_TRUE(client->Execute(kStockDdl).ok());
}

TEST(NetServer, ConnectResolvesHostnames) {
  ServerFixture fx;
  auto client = Client::Connect("localhost", fx.server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE((*client)->Execute("SHOW STREAMS").ok());
}

TEST(NetServer, SubscribeUnknownQueryIsCodedError) {
  ServerFixture fx;
  auto client = fx.Connect();
  auto sub = client->Subscribe("ghost");
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().error_code(), errc::kCatalogUnknownQuery);
}

TEST(NetServer, ZeroLengthDdlFrameIsCodedError) {
  ServerFixture fx;
  RawConn raw(fx.server->port());
  std::string frame;
  net::AppendFrame(&frame, MsgType::kDdl, 0, "");
  raw.Write(frame);
  const Status err = raw.ReadError();
  EXPECT_EQ(err.error_code(), errc::kNetEmptyPayload);

  // The connection is still alive: a stats request answers.
  std::string stats;
  net::AppendFrame(&stats, MsgType::kStatsRequest, 0, "");
  raw.Write(stats);
  EXPECT_EQ(raw.ReadFrame().header.type, MsgType::kStats);
}

TEST(NetServer, TruncatedEventBatchOverWireIsCodedError) {
  ServerFixture fx(2, {kStockDdl});
  RawConn raw(fx.server->port());

  // A batch frame announcing 3 events but carrying only one event's
  // bytes: decode fails mid-payload with the truncation code and
  // nothing is ingested.
  std::string payload;
  net::PutString(&payload, "stock");
  net::PutU64(&payload, 0);  // v3: trace id (unsampled)
  net::PutU32(&payload, 3);
  net::AppendEvent(&payload, *Stock("IBM", 9.5, 1));
  std::string frame;
  net::AppendFrame(&frame, MsgType::kEventBatch, 0, payload);
  raw.Write(frame);
  const Status err = raw.ReadError();
  EXPECT_EQ(err.error_code(), errc::kNetTruncatedPayload);
  EXPECT_EQ(fx.server->runtime().Stats().events_ingested, 0u);

  // Follow with a well-formed single-event batch on the same socket.
  std::string ok_payload;
  net::PutString(&ok_payload, "stock");
  net::PutU64(&ok_payload, 0);  // v3: trace id (unsampled)
  net::PutU32(&ok_payload, 1);
  net::AppendEvent(&ok_payload, *Stock("IBM", 9.5, 2));
  std::string ok_frame;
  net::AppendFrame(&ok_frame, MsgType::kEventBatch, 0, ok_payload);
  raw.Write(ok_frame);
  EXPECT_EQ(raw.ReadFrame().header.type, MsgType::kIngestAck);
}

TEST(NetServer, OversizedFrameOverWireIsCodedErrorAndRecovers) {
  net::ServerOptions sopts;
  sopts.max_frame_payload = 1024;
  ZStream session;
  auto server = Server::Create(&session, {}, sopts);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Start().ok());

  RawConn raw((*server)->port());
  std::string big;
  net::AppendFrame(&big, MsgType::kDdl, 0, std::string(4096, 'x'));
  raw.Write(big);
  const Status err = raw.ReadError();
  EXPECT_EQ(err.error_code(), errc::kNetOversizedFrame);

  std::string stats;
  net::AppendFrame(&stats, MsgType::kStatsRequest, 0, "");
  raw.Write(stats);
  EXPECT_EQ(raw.ReadFrame().header.type, MsgType::kStats);
}

TEST(NetServer, DropPolicyReportsThrottleFlag) {
  // Tiny queues + kDropNewest + a paused shard: the ack must carry the
  // drop count and the throttle flag (protocol-level flow control).
  ZStream session;
  for (const char* stmt : {kStockDdl,
                           "CREATE QUERY pinned ON stock AS "
                           "PATTERN A;B WHERE A.price < B.price WITHIN 10"}) {
    ASSERT_TRUE(session.Execute(stmt).ok());
  }
  runtime::RuntimeOptions ropts;
  ropts.num_shards = 1;
  ropts.queue_capacity = 8;
  ropts.backpressure = runtime::BackpressurePolicy::kDropNewest;
  auto server = Server::Create(&session, ropts);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Start().ok());

  auto gate = (*server)->runtime().PauseShard(0);
  ASSERT_NE(gate, nullptr);
  gate->WaitParked();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  std::vector<EventPtr> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back(Stock("IBM", 1.0 + i, i));
  }
  auto ack = (*client)->Ingest("stock", events);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_GT(ack->dropped, 0u);
  EXPECT_TRUE(ack->throttled);
  EXPECT_EQ(ack->accepted + ack->dropped, events.size());

  gate->Open();
  (*server)->Stop();
}

TEST(NetServer, BadVersionFrameGetsErrorThenDisconnect) {
  ServerFixture fx;
  RawConn raw(fx.server->port());
  std::string bytes;
  net::PutU8(&bytes, 7);  // wrong protocol version
  net::PutU8(&bytes, static_cast<uint8_t>(MsgType::kFlush));
  net::PutU8(&bytes, 0);
  net::PutU8(&bytes, 0);
  net::PutU32(&bytes, 0);
  raw.Write(bytes);
  const Status err = raw.ReadError();
  EXPECT_EQ(err.error_code(), errc::kNetBadVersion);
  // The stream cannot be resynchronized: the server hangs up.
  EXPECT_TRUE(raw.WaitForClose(5000));
}

TEST(NetServer, RecreatedStreamMustKeepItsSchema) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_TRUE(client->Execute("CREATE STREAM s (a INT, b STRING)").ok());
  ASSERT_TRUE(client->Execute("DROP STREAM s").ok());

  // Recreating with a different layout must fail — the runtime keeps
  // the original binding — and must not leave the catalog diverged.
  auto changed = client->Execute("CREATE STREAM s (a INT, b STRING, c INT)");
  ASSERT_FALSE(changed.ok());
  EXPECT_EQ(changed.status().error_code(), errc::kCatalogDuplicateStream);
  auto ingest_gone = client->Ingest(
      "s", {EventBuilder(Schema::Make({{"a", ValueType::kInt64},
                                       {"b", ValueType::kString}}))
                .Set("a", 1)
                .Set("b", "x")
                .At(1)
                .Build()});
  ASSERT_FALSE(ingest_gone.ok());  // catalog rolled back: stream unknown
  EXPECT_EQ(ingest_gone.status().error_code(), errc::kCatalogUnknownStream);

  // Recreating with the identical schema reuses the binding and serves.
  ASSERT_TRUE(client->Execute("CREATE STREAM s (a INT, b STRING)").ok());
  auto ingest = client->Ingest(
      "s", {EventBuilder(Schema::Make({{"a", ValueType::kInt64},
                                       {"b", ValueType::kString}}))
                .Set("a", 1)
                .Set("b", "x")
                .At(1)
                .Build()});
  ASSERT_TRUE(ingest.ok()) << ingest.status();
  EXPECT_EQ(ingest->accepted, 1u);
}

TEST(NetServer, IngestSplitsOversizedBatchesByBytes) {
  // 24 events of ~1 MiB each with the default batch_size would encode
  // a ~24 MiB frame, past the 16 MiB protocol bound; the client must
  // split by encoded bytes and the whole trace must land.
  ServerFixture fx(1, {"CREATE STREAM blobs (data STRING)"});
  auto client = fx.Connect();
  const SchemaPtr schema = Schema::Make({{"data", ValueType::kString}});
  std::vector<EventPtr> events;
  for (int i = 0; i < 24; ++i) {
    events.push_back(EventBuilder(schema)
                         .Set("data", Value(std::string(1u << 20, 'x')))
                         .At(i)
                         .Build());
  }
  auto ack = client->Ingest("blobs", events);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, events.size());
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_EQ(fx.server->runtime().Stats().events_ingested, events.size());
}

TEST(NetServer, ReplayRejectsOutOfRangePartitionField) {
  ServerFixture fx(2, {kStockDdl});
  NetReplayOptions options;
  options.partition_field = 9;  // stock schema has 5 fields
  auto result = ReplayOverWire("127.0.0.1", fx.server->port(), "stock",
                               {Stock("IBM", 1.0, 1)}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(NetServer, DropQueryStopsServiceAndUnsubscribes) {
  ServerFixture fx(2, {kStockDdl, kRallyDdl});
  auto client = fx.Connect();
  ASSERT_TRUE(client->Subscribe("rally").ok());
  ASSERT_TRUE(client->Execute("DROP QUERY rally").ok());

  auto flush = client->Flush();
  ASSERT_TRUE(flush.ok());
  EXPECT_TRUE(flush->queries.empty());
  auto sub = client->Subscribe("rally");
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().error_code(), errc::kCatalogUnknownQuery);
}

}  // namespace
}  // namespace zstream::testing
