// The ZStream network front-end: a TCP server speaking the framed
// protocol of net/protocol.h over a shared session + sharded runtime.
//
//   clients --TCP--> poll loop --DDL--> ZStream session (catalog)
//                        |       \----> StreamRuntime registration
//                        |--event batches--> StreamRuntime::Ingest
//                        |<-- match fanout -- shard workers (MatchSink)
//
// One poll-loop thread owns every connection (non-blocking sockets,
// incremental FrameParser per connection, buffered writes), so the
// session and the query registry need no locking; the only cross-thread
// channel is the match sink, which shard workers fill and a self-pipe
// wakes the poll loop to drain. Matches are delivered in the
// CollectingMatchSink order (query, span, canonical key) within each
// drained batch, and everything produced by events ingested before a
// kFlush is delivered before that flush's kFlushAck.
//
// Backpressure: under BackpressurePolicy::kBlock a full shard queue
// blocks the poll loop inside Ingest, which stops reads and lets the
// TCP window throttle every producer. Under kDropNewest the runtime
// drops and counts; the kIngestAck then carries the drop count with
// kFlagThrottle set — the protocol-level flow-control signal.
//
// Protocol violations (malformed DDL, truncated payloads, oversized
// frames, unknown streams/queries) answer with a coded kError frame and
// leave the connection open; only socket errors and a write buffer
// overrun (slow consumer) close it.
#ifndef ZSTREAM_NET_SERVER_H_
#define ZSTREAM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/zstream.h"
#include "common/sync.h"
#include "net/protocol.h"
#include "runtime/match_sink.h"
#include "runtime/stream_runtime.h"

namespace zstream::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  uint16_t port = 0;
  int listen_backlog = 16;
  int max_connections = 64;
  /// Per-connection inbound frame payload bound (<= kMaxFramePayload).
  uint32_t max_frame_payload = kMaxFramePayload;
  /// A connection whose unsent output exceeds this is dropped (slow or
  /// stalled match subscriber).
  size_t max_write_buffer_bytes = 64u << 20;
  /// HTTP side port serving GET /metrics (Prometheus text),
  /// /metrics.json and /healthz on the same poll loop. -1 disables;
  /// 0 binds an ephemeral port — read the outcome from metrics_port().
  int metrics_port = -1;
};

/// \brief The TCP serving layer over one ZStream session and one
/// StreamRuntime.
///
/// The session is borrowed, must outlive the server, and is *shared*:
/// streams and queries already in its catalog are bound/registered on
/// the runtime at Create, and DDL arriving over the wire executes
/// against it. After Start() the poll thread owns the session — do not
/// mutate it concurrently from other threads.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(
      ZStream* session,
      const runtime::RuntimeOptions& runtime_options = {},
      const ServerOptions& options = {});

  ~Server();
  ZS_DISALLOW_COPY_AND_ASSIGN(Server);

  /// Spawns the poll-loop thread. Call once.
  Status Start();

  /// Joins the poll loop, stops the runtime and closes every socket.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound TCP port (resolved when ServerOptions::port was 0).
  uint16_t port() const { return port_; }
  /// The bound HTTP metrics port (0 when the side port is disabled).
  uint16_t metrics_port() const { return metrics_port_; }
  const std::string& bind_address() const { return options_.bind_address; }

  runtime::StreamRuntime& runtime() { return *runtime_; }

  /// Total frames dispatched and matches fanned out (for tests).
  uint64_t frames_dispatched() const {
    return frames_dispatched_.load(std::memory_order_relaxed);
  }
  uint64_t matches_fanned_out() const {
    return matches_fanned_out_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct HttpConnection;

  /// Thread-safe match funnel: shard workers publish, the poll loop
  /// drains (woken through the self-pipe).
  class FanoutSink : public runtime::MatchSink {
   public:
    explicit FanoutSink(Server* server) : server_(server) {}
    void Publish(runtime::RuntimeMatch&& match) override;

   private:
    friend class Server;
    Server* server_;
    zs::Mutex mu_;
    bool signaled_ ZS_GUARDED_BY(mu_) = false;
    std::vector<runtime::RuntimeMatch> pending_ ZS_GUARDED_BY(mu_);
  };

  /// Runtime-side registration of one served query.
  struct QueryEntry {
    runtime::QueryId id = 0;
    std::string stream;
    SchemaPtr schema;
  };

  Server(ZStream* session, const ServerOptions& options);

  Status Listen();
  Status BindCatalog(const runtime::RuntimeOptions& runtime_options);
  Status RegisterOnRuntime(const std::string& query_name);

  void PollLoop();
  void AcceptPending();
  void HandleReadable(Connection* conn);
  void DispatchFrame(Connection* conn, const FrameParser::Frame& frame);
  void HandleDdl(Connection* conn, const std::string& text);
  void HandleEventBatch(Connection* conn, const std::string& payload);
  void HandleSubscribe(Connection* conn, const std::string& payload);
  void HandleUnsubscribe(Connection* conn, const std::string& payload);
  void HandleStatsRequest(Connection* conn);
  void HandleMetricsRequest(Connection* conn, const std::string& payload);
  void HandleFlush(Connection* conn);
  void DrainMatches();

  /// The full metrics document: server-level series mirrored into the
  /// runtime registry, then runtime + process-default registries
  /// rendered (Prometheus families concatenate; both sets are disjoint).
  std::string MetricsText();
  std::string MetricsJsonDoc();
  void AcceptHttpPending();
  void HandleHttpReadable(HttpConnection* conn);
  void FlushHttpWrites(HttpConnection* conn);

  /// Appends one frame to the connection's write buffer (drops the
  /// connection on overrun) without flushing — fanout queues many and
  /// flushes once.
  void Queue(Connection* conn, MsgType type, uint8_t flags,
             std::string_view payload);
  /// Queue + immediate flush attempt (request/reply path).
  void Send(Connection* conn, MsgType type, uint8_t flags,
            std::string_view payload);
  void SendError(Connection* conn, const Status& status);
  void FlushWrites(Connection* conn);
  std::string BuildStatsJson() const;

  ZStream* session_;
  ServerOptions options_;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;

  int listen_fd_ = -1;
  int http_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  FanoutSink sink_{this};
  std::unique_ptr<runtime::StreamRuntime> runtime_;

  /// Poll-thread-owned state (no locks: one thread).
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<int, std::unique_ptr<HttpConnection>> http_connections_;
  /// Streams bound on the runtime, by name. The runtime keeps a stream
  /// binding for the life of the server (it has no stream removal), so
  /// after DROP STREAM a re-CREATE must carry the identical schema —
  /// this map is how the server enforces that instead of letting
  /// catalog and runtime diverge.
  std::map<std::string, SchemaPtr> runtime_streams_;
  std::map<std::string, QueryEntry> queries_;
  std::map<runtime::QueryId, std::string> query_names_;
  std::vector<std::string> query_order_;
  uint64_t next_connection_id_ = 1;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> frames_dispatched_{0};
  std::atomic<uint64_t> matches_fanned_out_{0};
};

}  // namespace zstream::net

#endif  // ZSTREAM_NET_SERVER_H_
