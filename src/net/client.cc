#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zstream::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          ErrnoToString(errno));
}

Status ConnectionClosed() {
  return Status::FailedPrecondition("connection closed by server");
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  // Resolve with getaddrinfo so hostnames ("localhost", DNS names) and
  // IPv6 literals work, not just dotted-quad IPv4.
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): gai_strerror returns
    // pointers to immutable static strings on glibc (MT-Safe).
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "': " + ::gai_strerror(rc));
  }
  auto client = std::unique_ptr<Client>(new Client());
  Status last = Status::Internal("no addresses resolved for '" + host + "'");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    client->fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (client->fd_ < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(client->fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect");
    ::close(client->fd_);
    client->fd_ = -1;
  }
  ::freeaddrinfo(results);
  if (client->fd_ < 0) return last;
  const int one = 1;
  ::setsockopt(client->fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// Wire I/O
// ---------------------------------------------------------------------

Status Client::SendFrame(MsgType type, uint8_t flags,
                         std::string_view payload) {
  if (fd_ < 0) return ConnectionClosed();
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(&frame, type, flags, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadChunk(int timeout_ms) {
  if (fd_ < 0) return ConnectionClosed();
  if (timeout_ms >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) return Errno("poll");
    if (rc == 0) {
      return Status::OutOfRange("timed out waiting for server data");
    }
  }
  char buf[64 << 10];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return ConnectionClosed();
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Errno("recv");
    }
    parser_.Append(buf, static_cast<size_t>(n));
    return Status::OK();
  }
}

void Client::QueueMatch(const FrameParser::Frame& frame) {
  // Peek the query name to pick the subscription schema, then decode
  // the full frame against it. Matches for queries we never subscribed
  // to (e.g. racing an unsubscribe) are dropped.
  PayloadReader peek(frame.payload);
  auto name = peek.ReadString();
  if (!name.ok()) return;
  const auto schema_it = schemas_.find(*name);
  if (schema_it == schemas_.end()) return;
  PayloadReader reader(frame.payload);
  auto match = ReadMatch(&reader, schema_it->second);
  if (!match.ok()) return;
  if (match->trace_id != 0) {
    const uint64_t now = obs::MonotonicNanos();
    obs::TraceRecord(0, obs::SpanKind::kDeliver, match->trace_id, now, now,
                     match->query.c_str());
  }
  matches_.push_back(std::move(*match));
}

Result<FrameParser::Frame> Client::ReadUntil(MsgType expected) {
  while (true) {
    while (true) {
      auto next = parser_.Next();
      if (!next.ok()) {
        // Our own peer violated the protocol: the stream cannot be
        // trusted any more.
        Close();
        return next.status();
      }
      if (!next->has_value()) break;
      FrameParser::Frame frame = std::move(**next);
      if (frame.header.type == expected) return frame;
      if (frame.header.type == MsgType::kMatch) {
        QueueMatch(frame);
        continue;
      }
      if (frame.header.type == MsgType::kError) {
        PayloadReader reader(frame.payload);
        Status decoded;
        ZS_RETURN_IF_ERROR(DecodeErrorPayload(&reader, &decoded));
        return decoded;
      }
      // Unexpected but well-formed server frame (e.g. a stale ack):
      // skip it.
    }
    ZS_RETURN_IF_ERROR(ReadChunk(/*timeout_ms=*/-1));
  }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

Result<DdlReply> Client::Execute(const std::string& statement) {
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kDdl, 0, statement));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kDdlResult));
  PayloadReader reader(frame.payload);
  return ReadDdlReply(&reader);
}

Result<IngestAck> Client::Ingest(const std::string& stream,
                                 const std::vector<EventPtr>& events,
                                 size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  batch_size = std::min<size_t>(batch_size, kMaxBatchEvents);
  // Batches are bounded by encoded bytes as well as event count:
  // otherwise a batch of large (string-heavy) events could encode past
  // the server's frame bound and be rejected whole. Leave headroom for
  // the stream name + count prefix.
  const size_t byte_limit =
      max_frame_payload_ > (128u << 10)
          ? max_frame_payload_ - (64u << 10)
          : static_cast<size_t>(max_frame_payload_) / 2;
  IngestAck total;
  std::string rows;
  size_t count = 0;

  const auto flush_batch = [&]() -> Status {
    if (count == 0) return Status::OK();
    // Per-batch sampling decision; a sampled batch's trace id travels in
    // the frame so the server's spans join the client's (obs/trace.h).
    const uint64_t trace_id = obs::TraceSampleBatch();
    const uint64_t t0 = trace_id != 0 ? obs::MonotonicNanos() : 0;
    std::string payload;
    payload.reserve(rows.size() + stream.size() + 24);
    PutString(&payload, stream);
    PutU64(&payload, trace_id);
    PutU32(&payload, static_cast<uint32_t>(count));
    payload += rows;
    const uint64_t batch_events = count;
    rows.clear();
    count = 0;
    ZS_RETURN_IF_ERROR(SendFrame(MsgType::kEventBatch, 0, payload));
    ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                        ReadUntil(MsgType::kIngestAck));
    PayloadReader reader(frame.payload);
    ZS_ASSIGN_OR_RETURN(uint64_t accepted, reader.ReadU64());
    ZS_ASSIGN_OR_RETURN(uint64_t dropped, reader.ReadU64());
    total.accepted += accepted;
    total.dropped += dropped;
    total.throttled |= (frame.header.flags & kFlagThrottle) != 0;
    obs::TraceRecord(0, obs::SpanKind::kIngest, trace_id, t0,
                     obs::MonotonicNanos(), stream.c_str(), batch_events);
    return Status::OK();
  };

  std::string row;
  for (const EventPtr& event : events) {
    row.clear();
    AppendEvent(&row, *event);
    // Flush BEFORE the row that would push the frame past the bound (a
    // single row larger than the bound is unsendable either way and
    // surfaces as the server's ZS-N0003).
    if (count > 0 && rows.size() + row.size() > byte_limit) {
      ZS_RETURN_IF_ERROR(flush_batch());
    }
    rows += row;
    ++count;
    if (count >= batch_size) ZS_RETURN_IF_ERROR(flush_batch());
  }
  ZS_RETURN_IF_ERROR(flush_batch());
  return total;
}

Result<SubscribeAck> Client::Subscribe(const std::string& query) {
  std::string payload;
  PutString(&payload, query);
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kSubscribe, 0, payload));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kSubscribeAck));
  PayloadReader reader(frame.payload);
  SubscribeAck ack;
  ZS_ASSIGN_OR_RETURN(ack.query, reader.ReadString());
  ZS_ASSIGN_OR_RETURN(ack.stream, reader.ReadString());
  ZS_ASSIGN_OR_RETURN(ack.schema, ReadSchema(&reader));
  schemas_[ack.query] = ack.schema;
  return ack;
}

Status Client::Unsubscribe(const std::string& query) {
  std::string payload;
  PutString(&payload, query);
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kUnsubscribe, 0, payload));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kUnsubscribeAck));
  (void)frame;
  return Status::OK();
}

Result<FlushAck> Client::Flush() {
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kFlush, 0, ""));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kFlushAck));
  PayloadReader reader(frame.payload);
  return ReadFlushAck(&reader);
}

Result<std::string> Client::StatsJson() {
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kStatsRequest, 0, ""));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kStats));
  return frame.payload;
}

Result<std::string> Client::Metrics(uint8_t format) {
  std::string payload;
  PutU8(&payload, format);
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kMetricsRequest, 0, payload));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kMetrics));
  return frame.payload;
}

Result<std::string> Client::Trace() {
  ZS_RETURN_IF_ERROR(SendFrame(MsgType::kTraceRequest, 0, ""));
  ZS_ASSIGN_OR_RETURN(FrameParser::Frame frame,
                      ReadUntil(MsgType::kTrace));
  return frame.payload;
}

// ---------------------------------------------------------------------
// Matches
// ---------------------------------------------------------------------

std::vector<NetMatch> Client::TakeMatches() {
  std::vector<NetMatch> out;
  out.swap(matches_);
  return out;
}

Result<size_t> Client::WaitForMatches(size_t min_count, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (matches_.size() < min_count) {
    // Drain anything already buffered first.
    bool progressed = false;
    while (true) {
      auto next = parser_.Next();
      if (!next.ok()) {
        Close();
        return next.status();
      }
      if (!next->has_value()) break;
      if ((*next)->header.type == MsgType::kMatch) QueueMatch(**next);
      progressed = true;
    }
    if (progressed) continue;
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline -
                                   std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    const Status st = ReadChunk(static_cast<int>(remaining.count()));
    if (st.IsOutOfRange()) break;  // timeout
    ZS_RETURN_IF_ERROR(st);
  }
  return matches_.size();
}

}  // namespace zstream::net
