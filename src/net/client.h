// Blocking client library for the ZStream wire protocol.
//
//   auto client = net::Client::Connect("127.0.0.1", port);
//   (*client)->Execute("CREATE STREAM stock (...)");
//   (*client)->Execute("CREATE QUERY rally ON stock AS PATTERN ...");
//   (*client)->Subscribe("rally");
//   (*client)->Ingest("stock", events);
//   auto counts = (*client)->Flush();          // barrier + match counts
//   for (const NetMatch& m : (*client)->TakeMatches()) ...
//
// One Client is one connection and is NOT thread-safe; open one client
// per thread for concurrent producers (see workload/net_replay.h).
// Request methods are synchronous: they send one frame and block until
// the matching reply (or a kError frame, which comes back as the coded
// Status the server attached). kMatch frames arriving while waiting are
// decoded against their subscription's schema and queued; read them
// with TakeMatches()/WaitForMatches().
#ifndef ZSTREAM_NET_CLIENT_H_
#define ZSTREAM_NET_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "net/protocol.h"

namespace zstream::net {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();
  ZS_DISALLOW_COPY_AND_ASSIGN(Client);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Executes one DDL statement on the server (CREATE/DROP/SHOW/bare
  /// PATTERN). Server-side failures return the transported coded
  /// Status.
  Result<DdlReply> Execute(const std::string& statement);

  /// Sends `events` to the named stream in frames of at most
  /// `batch_size` events — split earlier whenever the encoded frame
  /// would exceed max_frame_payload() — waiting for each kIngestAck.
  /// The returned ack aggregates all batches; `throttled` is true when
  /// any batch saw drops (the server's flow-control signal under
  /// kDropNewest).
  Result<IngestAck> Ingest(const std::string& stream,
                           const std::vector<EventPtr>& events,
                           size_t batch_size = 1024);

  /// Byte bound for frames this client builds. Defaults to the
  /// protocol maximum; lower it to match a server configured with a
  /// smaller ServerOptions::max_frame_payload.
  void set_max_frame_payload(uint32_t bytes) {
    max_frame_payload_ = std::min(bytes, kMaxFramePayload);
  }
  uint32_t max_frame_payload() const { return max_frame_payload_; }

  /// Subscribes to a served query's matches; the ack carries the
  /// stream's schema, which the client keeps for decoding kMatch
  /// frames.
  Result<SubscribeAck> Subscribe(const std::string& query);
  Status Unsubscribe(const std::string& query);

  /// Runtime barrier: everything ingested so far is fully evaluated and
  /// every resulting match frame has been queued locally before this
  /// returns. The reply carries per-query total match counts.
  Result<FlushAck> Flush();

  /// The server's stats document (runtime + per-connection JSON).
  Result<std::string> StatsJson();

  /// The server's metrics registry snapshot: Prometheus text by default
  /// (kMetricsFormatPrometheus), or the stable JSON rendering — the
  /// same documents the HTTP /metrics side port serves.
  Result<std::string> Metrics(uint8_t format = kMetricsFormatPrometheus);

  /// The server's trace window as a chrome://tracing / Perfetto JSON
  /// document — the same document the HTTP /trace side port serves.
  Result<std::string> Trace();

  /// Matches received so far (drained; arrival order = server delivery
  /// order).
  std::vector<NetMatch> TakeMatches();
  size_t pending_matches() const { return matches_.size(); }

  /// Blocks until at least `min_count` matches are queued or
  /// `timeout_ms` elapses; returns the number queued.
  Result<size_t> WaitForMatches(size_t min_count, int timeout_ms);

 private:
  Client() = default;

  Status SendFrame(MsgType type, uint8_t flags, std::string_view payload);
  /// Reads frames until one of `expected` arrives (returning it), a
  /// kError frame arrives (returned as its decoded Status), or the
  /// connection drops. kMatch frames are queued along the way.
  Result<FrameParser::Frame> ReadUntil(MsgType expected);
  Status ReadChunk(int timeout_ms);  // one recv into the parser
  void QueueMatch(const FrameParser::Frame& frame);

  int fd_ = -1;
  uint32_t max_frame_payload_ = kMaxFramePayload;
  FrameParser parser_;
  std::vector<NetMatch> matches_;
  /// Subscription schemas keyed by query name (from kSubscribeAck).
  std::map<std::string, SchemaPtr> schemas_;
};

}  // namespace zstream::net

#endif  // ZSTREAM_NET_CLIENT_H_
