#include "net/protocol.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"
#include "query/error_codes.h"

namespace zstream::net {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) |
         static_cast<uint16_t>(static_cast<uint16_t>(p[1]) << 8);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

/// Rebuilds a Status with the given code (the inverse of the factory
/// methods; OK on the wire in an error frame decodes as Internal, since
/// an error frame by definition reports a failure).
Status MakeStatus(uint8_t raw_code, std::string msg) {
  switch (static_cast<StatusCode>(raw_code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kSemanticError:
      return Status::SemanticError(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kDdl: return "DDL";
    case MsgType::kDdlResult: return "DDL_RESULT";
    case MsgType::kEventBatch: return "EVENT_BATCH";
    case MsgType::kIngestAck: return "INGEST_ACK";
    case MsgType::kSubscribe: return "SUBSCRIBE";
    case MsgType::kSubscribeAck: return "SUBSCRIBE_ACK";
    case MsgType::kUnsubscribe: return "UNSUBSCRIBE";
    case MsgType::kUnsubscribeAck: return "UNSUBSCRIBE_ACK";
    case MsgType::kMatch: return "MATCH";
    case MsgType::kStatsRequest: return "STATS_REQUEST";
    case MsgType::kStats: return "STATS";
    case MsgType::kFlush: return "FLUSH";
    case MsgType::kFlushAck: return "FLUSH_ACK";
    case MsgType::kError: return "ERROR";
    case MsgType::kMetricsRequest: return "METRICS_REQUEST";
    case MsgType::kMetrics: return "METRICS";
    case MsgType::kTraceRequest: return "TRACE_REQUEST";
    case MsgType::kTrace: return "TRACE";
  }
  return "UNKNOWN";
}

bool IsValidMsgType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgType::kDdl) &&
         raw <= static_cast<uint8_t>(MsgType::kTrace);
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

Status PayloadReader::Truncated(const char* what) const {
  return Status::ParseError(std::string("truncated payload: expected ") +
                            what)
      .WithErrorCode(errc::kNetTruncatedPayload);
}

Result<uint8_t> PayloadReader::ReadU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> PayloadReader::ReadU16() {
  if (remaining() < 2) return Truncated("u16");
  const uint16_t v =
      LoadU16(reinterpret_cast<const uint8_t*>(data_.data()) + pos_);
  pos_ += 2;
  return v;
}

Result<uint32_t> PayloadReader::ReadU32() {
  if (remaining() < 4) return Truncated("u32");
  const uint32_t v =
      LoadU32(reinterpret_cast<const uint8_t*>(data_.data()) + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::ReadU64() {
  if (remaining() < 8) return Truncated("u64");
  const uint64_t v =
      LoadU64(reinterpret_cast<const uint8_t*>(data_.data()) + pos_);
  pos_ += 8;
  return v;
}

Result<int64_t> PayloadReader::ReadI64() {
  ZS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> PayloadReader::ReadF64() {
  ZS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return std::bit_cast<double>(v);
}

Result<std::string> PayloadReader::ReadString() {
  ZS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  if (remaining() < len) return Truncated("string bytes");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Status PayloadReader::ExpectEnd() const {
  if (AtEnd()) return Status::OK();
  return Status::ParseError("trailing bytes after payload")
      .WithErrorCode(errc::kNetTruncatedPayload);
}

// ---------------------------------------------------------------------
// Values, schema rows, events, matches
// ---------------------------------------------------------------------

void AppendValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(out, v.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt64:
      PutI64(out, v.int64_value());
      break;
    case ValueType::kDouble:
      PutF64(out, v.double_value());
      break;
    case ValueType::kString:
      PutString(out, v.string_value());
      break;
  }
}

Result<Value> ReadValue(PayloadReader* in) {
  ZS_ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      ZS_ASSIGN_OR_RETURN(uint8_t b, in->ReadU8());
      return Value(b != 0);
    }
    case ValueType::kInt64: {
      ZS_ASSIGN_OR_RETURN(int64_t v, in->ReadI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      ZS_ASSIGN_OR_RETURN(double v, in->ReadF64());
      return Value(v);
    }
    case ValueType::kString: {
      ZS_ASSIGN_OR_RETURN(std::string s, in->ReadString());
      return Value(std::move(s));
    }
  }
  return Status::ParseError("unknown value type tag " +
                            std::to_string(tag))
      .WithErrorCode(errc::kNetTruncatedPayload);
}

void AppendSchema(std::string* out, const Schema& schema) {
  PutU32(out, static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(out, f.name);
    PutU8(out, static_cast<uint8_t>(f.type));
  }
}

Result<SchemaPtr> ReadSchema(PayloadReader* in) {
  ZS_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32());
  if (count > 4096) {
    return Status::ParseError("schema row count " + std::to_string(count) +
                              " exceeds bound")
        .WithErrorCode(errc::kNetBatchTooLarge);
  }
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Field f;
    ZS_ASSIGN_OR_RETURN(f.name, in->ReadString());
    ZS_ASSIGN_OR_RETURN(uint8_t type, in->ReadU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("unknown field type tag " +
                                std::to_string(type))
          .WithErrorCode(errc::kNetSchemaMismatch);
    }
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

void AppendEvent(std::string* out, const Event& event) {
  PutI64(out, event.timestamp());
  PutU16(out, static_cast<uint16_t>(event.values().size()));
  for (const Value& v : event.values()) AppendValue(out, v);
}

Result<EventPtr> ReadEvent(PayloadReader* in, const SchemaPtr& schema) {
  ZS_ASSIGN_OR_RETURN(int64_t ts, in->ReadI64());
  ZS_ASSIGN_OR_RETURN(uint16_t count, in->ReadU16());
  if (static_cast<int>(count) != schema->num_fields()) {
    return Status::SemanticError(
               "event carries " + std::to_string(count) +
               " values, stream schema has " +
               std::to_string(schema->num_fields()) + " fields")
        .WithErrorCode(errc::kNetSchemaMismatch);
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    ZS_ASSIGN_OR_RETURN(Value v, ReadValue(in));
    if (!v.is_null() && v.type() != schema->field(i).type) {
      return Status::SemanticError(
                 "field '" + schema->field(i).name + "' expects " +
                 ValueTypeName(schema->field(i).type) + ", got " +
                 ValueTypeName(v.type()))
          .WithErrorCode(errc::kNetSchemaMismatch);
    }
    values.push_back(std::move(v));
  }
  return EventPtr(std::make_shared<Event>(schema, std::move(values), ts));
}

void AppendEventBatch(std::string* out, std::string_view stream,
                      const std::vector<EventPtr>& events, size_t from,
                      size_t count, uint64_t trace_id) {
  PutString(out, stream);
  PutU64(out, trace_id);
  PutU32(out, static_cast<uint32_t>(count));
  for (size_t i = from; i < from + count; ++i) AppendEvent(out, *events[i]);
}

void AppendMatch(std::string* out, std::string_view query,
                 const Match& match, uint64_t trace_id) {
  PutString(out, query);
  PutU64(out, trace_id);
  PutI64(out, match.span.start);
  PutI64(out, match.span.end);
  PutU32(out, static_cast<uint32_t>(match.slots.size()));
  for (const EventPtr& slot : match.slots) {
    PutU8(out, slot != nullptr ? 1 : 0);
    if (slot != nullptr) AppendEvent(out, *slot);
  }
  // Group presence travels separately from the count: an empty-but-
  // present Kleene group (a '*' closure that matched zero events) is a
  // different composite event than "no group".
  PutU8(out, match.group != nullptr ? 1 : 0);
  if (match.group != nullptr) {
    PutU32(out, static_cast<uint32_t>(match.group->size()));
    for (const EventPtr& e : *match.group) AppendEvent(out, *e);
  }
}

Result<NetMatch> ReadMatch(PayloadReader* in, const SchemaPtr& schema) {
  NetMatch out;
  ZS_ASSIGN_OR_RETURN(out.query, in->ReadString());
  ZS_ASSIGN_OR_RETURN(out.trace_id, in->ReadU64());
  ZS_ASSIGN_OR_RETURN(out.match.span.start, in->ReadI64());
  ZS_ASSIGN_OR_RETURN(out.match.span.end, in->ReadI64());
  ZS_ASSIGN_OR_RETURN(uint32_t nslots, in->ReadU32());
  if (nslots > 1024) {
    return Status::ParseError("match slot count " + std::to_string(nslots) +
                              " exceeds bound")
        .WithErrorCode(errc::kNetBatchTooLarge);
  }
  out.match.slots.reserve(nslots);
  for (uint32_t i = 0; i < nslots; ++i) {
    ZS_ASSIGN_OR_RETURN(uint8_t present, in->ReadU8());
    if (present == 0) {
      out.match.slots.push_back(nullptr);
      continue;
    }
    ZS_ASSIGN_OR_RETURN(EventPtr e, ReadEvent(in, schema));
    out.match.slots.push_back(std::move(e));
  }
  ZS_ASSIGN_OR_RETURN(uint8_t has_group, in->ReadU8());
  if (has_group != 0) {
    ZS_ASSIGN_OR_RETURN(uint32_t ngroup, in->ReadU32());
    if (ngroup > kMaxBatchEvents) {
      return Status::ParseError("match group count " +
                                std::to_string(ngroup) + " exceeds bound")
          .WithErrorCode(errc::kNetBatchTooLarge);
    }
    auto group = std::make_shared<std::vector<EventPtr>>();
    group->reserve(ngroup);
    for (uint32_t i = 0; i < ngroup; ++i) {
      ZS_ASSIGN_OR_RETURN(EventPtr e, ReadEvent(in, schema));
      group->push_back(std::move(e));
    }
    out.match.group = std::move(group);
  }
  return out;
}

// ---------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------

void AppendDdlReply(std::string* out, const DdlResult& result) {
  PutU8(out, static_cast<uint8_t>(result.kind));
  PutString(out, result.name);
  PutString(out, result.message);
  PutU32(out, static_cast<uint32_t>(result.rows.size()));
  for (const QueryInfo& row : result.rows) {
    PutString(out, row.name);
    PutString(out, row.stream);
    PutString(out, row.text);
  }
  PutU32(out, static_cast<uint32_t>(result.stream_names.size()));
  for (const std::string& name : result.stream_names) PutString(out, name);
}

Result<DdlReply> ReadDdlReply(PayloadReader* in) {
  DdlReply reply;
  ZS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind > static_cast<uint8_t>(DdlKind::kSelect)) {
    return Status::ParseError("unknown DDL result kind " +
                              std::to_string(kind))
        .WithErrorCode(errc::kNetTruncatedPayload);
  }
  reply.kind = static_cast<DdlKind>(kind);
  ZS_ASSIGN_OR_RETURN(reply.name, in->ReadString());
  ZS_ASSIGN_OR_RETURN(reply.message, in->ReadString());
  ZS_ASSIGN_OR_RETURN(uint32_t nrows, in->ReadU32());
  if (nrows > kMaxBatchEvents) {
    return Status::ParseError("DDL row count exceeds bound")
        .WithErrorCode(errc::kNetBatchTooLarge);
  }
  for (uint32_t i = 0; i < nrows; ++i) {
    QueryInfo row;
    ZS_ASSIGN_OR_RETURN(row.name, in->ReadString());
    ZS_ASSIGN_OR_RETURN(row.stream, in->ReadString());
    ZS_ASSIGN_OR_RETURN(row.text, in->ReadString());
    reply.rows.push_back(std::move(row));
  }
  ZS_ASSIGN_OR_RETURN(uint32_t nstreams, in->ReadU32());
  if (nstreams > kMaxBatchEvents) {
    return Status::ParseError("stream name count exceeds bound")
        .WithErrorCode(errc::kNetBatchTooLarge);
  }
  for (uint32_t i = 0; i < nstreams; ++i) {
    ZS_ASSIGN_OR_RETURN(std::string name, in->ReadString());
    reply.stream_names.push_back(std::move(name));
  }
  return reply;
}

void AppendStatusPayload(std::string* out, const Status& status) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  PutString(out, status.error_code());
  PutU32(out, static_cast<uint32_t>(status.line()));
  PutU32(out, static_cast<uint32_t>(status.column()));
  PutString(out, status.message());
}

Status DecodeErrorPayload(PayloadReader* in, Status* decoded) {
  ZS_ASSIGN_OR_RETURN(uint8_t code, in->ReadU8());
  ZS_ASSIGN_OR_RETURN(std::string error_code, in->ReadString());
  ZS_ASSIGN_OR_RETURN(uint32_t line, in->ReadU32());
  ZS_ASSIGN_OR_RETURN(uint32_t column, in->ReadU32());
  ZS_ASSIGN_OR_RETURN(std::string message, in->ReadString());
  Status status = MakeStatus(code, std::move(message));
  if (!error_code.empty()) status = status.WithErrorCode(error_code);
  if (line > 0) {
    status = status.WithLocation(static_cast<int>(line),
                                 static_cast<int>(column));
  }
  *decoded = std::move(status);
  return Status::OK();
}

void AppendFlushAck(std::string* out, const FlushAck& ack) {
  PutU32(out, static_cast<uint32_t>(ack.queries.size()));
  for (const auto& [name, matches] : ack.queries) {
    PutString(out, name);
    PutU64(out, matches);
  }
}

Result<FlushAck> ReadFlushAck(PayloadReader* in) {
  FlushAck ack;
  ZS_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32());
  if (count > kMaxBatchEvents) {
    return Status::ParseError("flush ack query count exceeds bound")
        .WithErrorCode(errc::kNetBatchTooLarge);
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::pair<std::string, uint64_t> entry;
    ZS_ASSIGN_OR_RETURN(entry.first, in->ReadString());
    ZS_ASSIGN_OR_RETURN(entry.second, in->ReadU64());
    ack.queries.push_back(std::move(entry));
  }
  return ack;
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

void AppendFrame(std::string* out, MsgType type, uint8_t flags,
                 std::string_view payload) {
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU8(out, flags);
  PutU8(out, 0);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

ZS_HOT void FrameParser::Append(const char* data, size_t n) {
  buf_.append(data, n);
}

ZS_HOT void FrameParser::Consume(size_t n) {
  consumed_ += n;
  if (consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10) && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
}

ZS_HOT Result<std::optional<FrameParser::Frame>> FrameParser::Next() {
  if (!fatal_.ok()) return fatal_;
  if (skip_ > 0) {
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(skip_, buf_.size() - consumed_));
    Consume(take);
    skip_ -= take;
    if (skip_ > 0) return std::optional<Frame>();  // need more to skip
  }
  if (buf_.size() - consumed_ < kFrameHeaderSize) {
    return std::optional<Frame>();
  }
  const uint8_t* h =
      reinterpret_cast<const uint8_t*>(buf_.data()) + consumed_;
  const uint8_t version = h[0];
  const uint8_t raw_type = h[1];
  const uint8_t flags = h[2];
  const uint32_t length = LoadU32(h + 4);
  if (version != kProtocolVersion) {
    // The header itself is untrusted, so the length field cannot be
    // used to resynchronize (a foreign-protocol peer would decode
    // garbage lengths and black-hole the stream). Fatal: the caller
    // must drop the connection.
    fatal_ = Status::InvalidArgument("unsupported protocol version " +
                                     std::to_string(version))
                 .WithErrorCode(errc::kNetBadVersion);
    return fatal_;
  }
  if (!IsValidMsgType(raw_type)) {
    Consume(kFrameHeaderSize);
    skip_ = length;
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type))
        .WithErrorCode(errc::kNetUnknownType);
  }
  if (length > max_payload_) {
    Consume(kFrameHeaderSize);
    skip_ = length;
    return Status::InvalidArgument(
               "frame payload of " + std::to_string(length) +
               " bytes exceeds the " + std::to_string(max_payload_) +
               "-byte bound")
        .WithErrorCode(errc::kNetOversizedFrame);
  }
  if (buf_.size() - consumed_ < kFrameHeaderSize + length) {
    return std::optional<Frame>();  // wait for the full payload
  }
  Frame frame;
  frame.header.type = static_cast<MsgType>(raw_type);
  frame.header.flags = flags;
  frame.header.length = length;
  frame.payload = buf_.substr(consumed_ + kFrameHeaderSize, length);
  Consume(kFrameHeaderSize + length);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace zstream::net
