// The ZStream wire protocol: length-prefixed frames over a byte stream.
//
// Every message is one frame:
//
//   byte 0      protocol version (kProtocolVersion)
//   byte 1      message type (MsgType)
//   byte 2      flags (kFlag*)
//   byte 3      reserved, 0
//   bytes 4..7  payload length, unsigned 32-bit little-endian
//   bytes 8..   payload (length bytes)
//
// All multi-byte integers on the wire are little-endian regardless of
// host order; doubles travel as the LE bytes of their IEEE-754 bit
// pattern — the serialization is endian-stable by construction, never
// by memcpy of host representations. Strings are a u32 length followed
// by raw bytes. Frame payloads are bounded (kMaxFramePayload, and a
// lower per-connection limit if the server configures one); a peer that
// announces a larger frame gets a coded error and the oversized payload
// is skipped, so one bad frame never kills the connection.
//
// Message catalogue (direction, payload):
//
//   kDdl           c->s  DDL statement text (non-empty)
//   kDdlResult     s->c  DdlReply: kind, name, message, rows
//   kEventBatch    c->s  stream name + typed event rows
//   kIngestAck     s->c  accepted/dropped counts (kFlagThrottle set
//                        when the runtime dropped under backpressure)
//   kSubscribe     c->s  query name
//   kSubscribeAck  s->c  query name + stream name + schema rows
//   kUnsubscribe   c->s  query name
//   kUnsubscribeAck s->c query name
//   kMatch         s->c  query name + match (span, slots, Kleene group)
//   kStatsRequest  c->s  empty
//   kStats         s->c  JSON document (runtime + per-connection stats)
//   kFlush         c->s  empty; barrier over the runtime
//   kFlushAck      s->c  per-query match counts
//   kError         s->c  coded Status (code, ZS-xxxx, line/column, text)
//   kMetricsRequest c->s u8 format (0 Prometheus text, 1 JSON; an empty
//                        payload means 0)
//   kMetrics       s->c  the rendered metrics registry snapshot (same
//                        document the HTTP /metrics side port serves)
//   kTraceRequest  c->s  empty
//   kTrace         s->c  Chrome-trace JSON document (same document the
//                        HTTP /trace side port serves)
//
// This header is the single source of truth for the layout; see
// docs/protocol.md for the prose version.
#ifndef ZSTREAM_NET_PROTOCOL_H_
#define ZSTREAM_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/zstream.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "event/event.h"
#include "exec/engine.h"

namespace zstream::net {

/// Version history: 1 = initial framed protocol; 2 = kMatch carries a
/// group-presence byte before the group count (an empty-but-present
/// Kleene group is distinct from "no group"); 3 = kEventBatch and
/// kMatch carry a u64 trace id (0 = unsampled) so a sampled ingest's
/// spans join across client and server (obs/trace.h), plus the
/// kTraceRequest/kTrace message pair. Each layout change is
/// incompatible, so mixed-version peers must be rejected at the
/// version byte rather than misparse frames.
inline constexpr uint8_t kProtocolVersion = 3;
inline constexpr size_t kFrameHeaderSize = 8;
/// Hard upper bound on one frame's payload (16 MiB).
inline constexpr uint32_t kMaxFramePayload = 16u << 20;
/// Hard upper bound on events per kEventBatch frame.
inline constexpr uint32_t kMaxBatchEvents = 1u << 16;

enum class MsgType : uint8_t {
  kDdl = 1,
  kDdlResult = 2,
  kEventBatch = 3,
  kIngestAck = 4,
  kSubscribe = 5,
  kSubscribeAck = 6,
  kUnsubscribe = 7,
  kUnsubscribeAck = 8,
  kMatch = 9,
  kStatsRequest = 10,
  kStats = 11,
  kFlush = 12,
  kFlushAck = 13,
  kError = 14,
  kMetricsRequest = 15,
  kMetrics = 16,
  kTraceRequest = 17,
  kTrace = 18,
};

/// kMetricsRequest payload: the requested exposition format.
inline constexpr uint8_t kMetricsFormatPrometheus = 0;
inline constexpr uint8_t kMetricsFormatJson = 1;

const char* MsgTypeName(MsgType type);
bool IsValidMsgType(uint8_t raw);

/// kIngestAck: the runtime dropped events under BackpressurePolicy::
/// kDropNewest — the client should slow down (protocol-level flow
/// control; under kBlock the TCP window itself is the backpressure).
inline constexpr uint8_t kFlagThrottle = 0x01;

struct FrameHeader {
  MsgType type = MsgType::kError;
  uint8_t flags = 0;
  uint32_t length = 0;
};

// ---------------------------------------------------------------------
// Primitive wire encoding (append to a std::string buffer)
// ---------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, std::string_view s);

/// \brief Bounds-checked cursor over one frame payload. Every getter
/// fails with a ZS-N0004 ParseError instead of reading past the end, so
/// truncated payloads surface as coded errors.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// ParseError when trailing bytes remain (strict decoders call this
  /// last).
  Status ExpectEnd() const;

 private:
  Status Truncated(const char* what) const;

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Values, schema rows, events, matches
// ---------------------------------------------------------------------

void AppendValue(std::string* out, const Value& v);
Result<Value> ReadValue(PayloadReader* in);

/// Schema rows: u32 field count, then {string name, u8 ValueType}.
void AppendSchema(std::string* out, const Schema& schema);
Result<SchemaPtr> ReadSchema(PayloadReader* in);

/// One event row: i64 timestamp, u16 value count, values.
void AppendEvent(std::string* out, const Event& event);
/// Decodes one event row against `schema`: the value count must equal
/// the schema's field count and every non-null value must carry the
/// declared type (ZS-N0006 otherwise).
Result<EventPtr> ReadEvent(PayloadReader* in, const SchemaPtr& schema);

/// kEventBatch payload: string stream name, u64 trace id (0 =
/// unsampled batch), u32 count, event rows.
void AppendEventBatch(std::string* out, std::string_view stream,
                      const std::vector<EventPtr>& events, size_t from,
                      size_t count, uint64_t trace_id = 0);

/// \brief Decoded kMatch frame: a full Match whose slot/group events
/// were rebuilt against the subscription's schema, so client-side code
/// (including runtime::CanonicalMatchKey) treats it exactly like a
/// local match.
struct NetMatch {
  std::string query;
  /// Trace id of the sampled ingest that emitted the match (0 =
  /// untraced); lets the client's delivery span join the trace.
  uint64_t trace_id = 0;
  Match match;
};

void AppendMatch(std::string* out, std::string_view query,
                 const Match& match, uint64_t trace_id = 0);
Result<NetMatch> ReadMatch(PayloadReader* in, const SchemaPtr& schema);

// ---------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------

/// \brief Wire form of api DdlResult (the handle pointer obviously does
/// not travel).
struct DdlReply {
  DdlKind kind = DdlKind::kSelect;
  std::string name;
  std::string message;
  std::vector<QueryInfo> rows;           // SHOW QUERIES (pattern unset)
  std::vector<std::string> stream_names;  // SHOW STREAMS
};

void AppendDdlReply(std::string* out, const DdlResult& result);
Result<DdlReply> ReadDdlReply(PayloadReader* in);

/// kError payload: u8 StatusCode, string ZS-xxxx code, u32 line,
/// u32 column, string message. DecodeErrorPayload reconstructs the
/// transported (always non-OK) Status into *decoded; the return value
/// reports whether the payload itself parsed.
void AppendStatusPayload(std::string* out, const Status& status);
Status DecodeErrorPayload(PayloadReader* in, Status* decoded);

struct IngestAck {
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  bool throttled = false;  // from kFlagThrottle
};

struct SubscribeAck {
  std::string query;
  std::string stream;
  SchemaPtr schema;
};

struct FlushAck {
  /// (query name, matches delivered so far), in registration order.
  std::vector<std::pair<std::string, uint64_t>> queries;
};

void AppendFlushAck(std::string* out, const FlushAck& ack);
Result<FlushAck> ReadFlushAck(PayloadReader* in);

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Appends an 8-byte header followed by `payload`.
void AppendFrame(std::string* out, MsgType type, uint8_t flags,
                 std::string_view payload);

/// \brief Incremental frame decoder for a TCP byte stream.
///
/// Feed arbitrary chunks with Append (partial frames, many frames per
/// chunk — any split works); Next() yields one complete frame at a
/// time. Recoverable protocol violations (unknown type, payload larger
/// than the configured bound — both behind a validated version byte,
/// so the announced length is trustworthy) return a coded error Status
/// ONCE, after which the offending frame's payload is skipped as it
/// arrives and parsing resumes at the next frame — the connection
/// survives. A bad version byte is FATAL: nothing after it can be
/// trusted (not even the length field), so every subsequent Next()
/// returns the same error and the caller must close the connection.
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  struct Frame {
    FrameHeader header;
    std::string payload;
  };

  void Append(const char* data, size_t n);

  /// One of: a complete frame; std::nullopt (need more bytes); or an
  /// error Status for a protocol violation (recoverable, see above).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buf_.size() - consumed_; }

  /// True after a fatal (unresynchronizable) violation — close the
  /// connection.
  bool broken() const { return !fatal_.ok(); }

 private:
  void Consume(size_t n);

  uint32_t max_payload_;
  std::string buf_;
  size_t consumed_ = 0;
  /// Payload bytes of a rejected frame still owed to the skip.
  uint64_t skip_ = 0;
  /// Set on a bad version byte; sticky.
  Status fatal_;
};

}  // namespace zstream::net

#endif  // ZSTREAM_NET_PROTOCOL_H_
