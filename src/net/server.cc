#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/error_codes.h"

namespace zstream::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          ErrnoToString(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

bool SchemasEqual(const Schema& a, const Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (int i = 0; i < a.num_fields(); ++i) {
    if (a.field(i).name != b.field(i).name ||
        a.field(i).type != b.field(i).type) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameParser parser;
  /// Buffered outbound bytes [out_off, out.size()).
  std::string out;
  size_t out_off = 0;
  std::vector<std::string> subscriptions;
  bool closing = false;

  // Per-connection stats, reported in the kStats JSON document.
  uint64_t frames_received = 0;
  uint64_t events_ingested = 0;
  uint64_t events_dropped = 0;
  uint64_t matches_sent = 0;
  uint64_t errors_sent = 0;

  explicit Connection(uint32_t max_payload) : parser(max_payload) {}

  bool SubscribedTo(const std::string& query) const {
    return std::find(subscriptions.begin(), subscriptions.end(), query) !=
           subscriptions.end();
  }
};

/// \brief One HTTP/1.0 scrape connection on the metrics side port:
/// read one GET request, write one response, close. No keep-alive.
struct Server::HttpConnection {
  int fd = -1;
  std::string in;
  std::string out;
  size_t out_off = 0;
  bool responded = false;
  bool closing = false;
};

// ---------------------------------------------------------------------
// FanoutSink
// ---------------------------------------------------------------------

void Server::FanoutSink::Publish(runtime::RuntimeMatch&& match) {
  bool signal = false;
  {
    zs::MutexLock lock(mu_);
    pending_.push_back(std::move(match));
    if (!signaled_) {
      signaled_ = true;
      signal = true;
    }
  }
  if (signal) {
    // Non-blocking wake; a full pipe means a wake is already pending.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(server_->wake_write_fd_, &byte, 1);
  }
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

Server::Server(ZStream* session, const ServerOptions& options)
    : session_(session), options_(options) {
  options_.max_frame_payload =
      std::min(options_.max_frame_payload, kMaxFramePayload);
}

Result<std::unique_ptr<Server>> Server::Create(
    ZStream* session, const runtime::RuntimeOptions& runtime_options,
    const ServerOptions& options) {
  if (session == nullptr) {
    return Status::InvalidArgument("session must not be null");
  }
  auto server = std::unique_ptr<Server>(new Server(session, options));
  ZS_RETURN_IF_ERROR(server->Listen());
  ZS_RETURN_IF_ERROR(server->BindCatalog(runtime_options));
  return server;
}

Server::~Server() { Stop(); }

namespace {

/// Opens a non-blocking listening socket on (address, port); writes the
/// resolved port (ephemeral bind) to *bound_port.
Result<int> OpenListener(const std::string& address, uint16_t port,
                         int backlog, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" + address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  *bound_port = ntohs(bound.sin_port);
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    ::close(fd);
    return st;
  }
  return fd;
}

}  // namespace

Status Server::Listen() {
  ZS_ASSIGN_OR_RETURN(listen_fd_,
                      OpenListener(options_.bind_address, options_.port,
                                   options_.listen_backlog, &port_));
  if (options_.metrics_port >= 0) {
    ZS_ASSIGN_OR_RETURN(
        http_fd_,
        OpenListener(options_.bind_address,
                     static_cast<uint16_t>(options_.metrics_port),
                     options_.listen_backlog, &metrics_port_));
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return Errno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ZS_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  ZS_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));
  return Status::OK();
}

Status Server::BindCatalog(const runtime::RuntimeOptions& runtime_options) {
  ZS_ASSIGN_OR_RETURN(runtime_,
                      runtime::StreamRuntime::Create(runtime_options));
  for (const std::string& name : session_->catalog().StreamNames()) {
    SchemaPtr schema = *session_->catalog().stream(name);
    ZS_RETURN_IF_ERROR(runtime_->AddStream(name, schema).status());
    runtime_streams_[name] = std::move(schema);
  }
  // Share the session: queries already registered in the catalog are
  // served too (their in-session engines stay idle; the runtime engines
  // do the work).
  for (const QueryInfo& info : session_->catalog().queries()) {
    ZS_RETURN_IF_ERROR(RegisterOnRuntime(info.name));
  }
  return Status::OK();
}

Status Server::RegisterOnRuntime(const std::string& query_name) {
  ZS_ASSIGN_OR_RETURN(QueryInfo info,
                      session_->catalog().query(query_name));
  ZS_ASSIGN_OR_RETURN(SchemaPtr schema,
                      session_->catalog().stream(info.stream));
  runtime::QueryOptions qopts;
  qopts.sink = &sink_;
  // Label the runtime engines with the catalog name so metrics series
  // and EXPLAIN ANALYZE report "rally", not the runtime's "q<id>".
  CompileOptions copts;
  copts.engine.label = query_name;
  ZS_ASSIGN_OR_RETURN(runtime::QueryId id,
                      runtime_->RegisterQuery(info.stream, info.text,
                                              copts, qopts));
  queries_[query_name] = QueryEntry{id, info.stream, std::move(schema)};
  query_names_[id] = query_name;
  query_order_.push_back(query_name);
  return Status::OK();
}

Status Server::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  thread_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  running_.store(false);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  // Poll thread is gone: safe to stop the runtime (workers flush their
  // engines; final matches land in the sink and die with the server).
  if (runtime_ != nullptr) runtime_->Stop();
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  for (auto& [fd, conn] : http_connections_) ::close(fd);
  http_connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = http_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

// ---------------------------------------------------------------------
// Poll loop
// ---------------------------------------------------------------------

void Server::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  std::vector<HttpConnection*> http_polled;
  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    polled.clear();
    http_polled.clear();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    size_t http_listen_idx = 0;
    if (http_fd_ >= 0) {
      http_listen_idx = fds.size();
      fds.push_back(pollfd{http_fd_, POLLIN, 0});
    }
    const size_t conn_base = fds.size();
    for (auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (conn->out.size() > conn->out_off) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn.get());
    }
    const size_t http_base = fds.size();
    for (auto& [fd, conn] : http_connections_) {
      short events = POLLIN;
      if (conn->out.size() > conn->out_off) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
      http_polled.push_back(conn.get());
    }

    const int rc = ::poll(fds.data(), fds.size(), /*timeout=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ZS_LOG(Warn) << "poll failed: " << ErrnoToString(errno);
      break;
    }
    if (!running_.load(std::memory_order_relaxed)) break;

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    DrainMatches();

    if ((fds[1].revents & POLLIN) != 0) AcceptPending();
    if (http_fd_ >= 0 && (fds[http_listen_idx].revents & POLLIN) != 0) {
      AcceptHttpPending();
    }

    for (size_t i = conn_base; i < http_base; ++i) {
      Connection* conn = polled[i - conn_base];
      if (conn->closing) continue;
      if ((fds[i].revents & POLLOUT) != 0) FlushWrites(conn);
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        HandleReadable(conn);
      }
    }
    for (size_t i = http_base; i < fds.size(); ++i) {
      HttpConnection* conn = http_polled[i - http_base];
      if (conn->closing) continue;
      if ((fds[i].revents & POLLOUT) != 0) FlushHttpWrites(conn);
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        HandleHttpReadable(conn);
      }
    }

    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->closing) {
        ::close(it->second->fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = http_connections_.begin();
         it != http_connections_.end();) {
      if (it->second->closing) {
        ::close(it->second->fd);
        it = http_connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      ZS_LOG(Warn) << "accept failed: " << ErrnoToString(errno);
      return;
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_frame_payload);
    conn->fd = fd;
    conn->id = next_connection_id_++;
    connections_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(Connection* conn) {
  char buf[64 << 10];
  while (!conn->closing) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      conn->closing = true;
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->closing = true;
      return;
    }
    conn->parser.Append(buf, static_cast<size_t>(n));
    while (!conn->closing) {
      auto next = conn->parser.Next();
      if (!next.ok()) {
        // Protocol violation: answer with the coded error. Recoverable
        // ones (oversized/unknown type) already scheduled a payload
        // skip and parsing continues; a fatal one (bad version — the
        // stream cannot be resynchronized) drops the connection after
        // the error frame.
        SendError(conn, next.status());
        if (conn->parser.broken()) {
          FlushWrites(conn);
          conn->closing = true;
          return;
        }
        continue;
      }
      if (!next->has_value()) break;
      DispatchFrame(conn, **next);
    }
  }
}

// ---------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------

void Server::DispatchFrame(Connection* conn,
                           const FrameParser::Frame& frame) {
  frames_dispatched_.fetch_add(1, std::memory_order_relaxed);
  ++conn->frames_received;
  switch (frame.header.type) {
    case MsgType::kDdl:
      if (frame.payload.empty()) {
        SendError(conn,
                  Status::InvalidArgument("empty DDL frame")
                      .WithErrorCode(errc::kNetEmptyPayload));
        return;
      }
      HandleDdl(conn, frame.payload);
      return;
    case MsgType::kEventBatch:
      HandleEventBatch(conn, frame.payload);
      return;
    case MsgType::kSubscribe:
      HandleSubscribe(conn, frame.payload);
      return;
    case MsgType::kUnsubscribe:
      HandleUnsubscribe(conn, frame.payload);
      return;
    case MsgType::kStatsRequest:
      HandleStatsRequest(conn);
      return;
    case MsgType::kMetricsRequest:
      HandleMetricsRequest(conn, frame.payload);
      return;
    case MsgType::kTraceRequest:
      Send(conn, MsgType::kTrace, 0,
           obs::Tracer::Global().RenderChromeJson());
      return;
    case MsgType::kFlush:
      HandleFlush(conn);
      return;
    default:
      SendError(conn, Status::InvalidArgument(
                          std::string("unexpected client message ") +
                          MsgTypeName(frame.header.type))
                          .WithErrorCode(errc::kNetUnexpectedMessage));
      return;
  }
}

void Server::HandleDdl(Connection* conn, const std::string& text) {
  auto result = session_->Execute(text);
  if (!result.ok()) {
    SendError(conn, result.status());
    return;
  }
  Status post = Status::OK();
  switch (result->kind) {
    case DdlKind::kCreateStream: {
      auto schema = session_->catalog().stream(result->name);
      if (schema.ok()) {
        auto bound = runtime_streams_.find(result->name);
        if (bound == runtime_streams_.end()) {
          post = runtime_->AddStream(result->name, *schema).status();
          if (post.ok()) runtime_streams_[result->name] = *schema;
        } else if (!SchemasEqual(*bound->second, **schema)) {
          // The runtime keeps stream bindings for the life of the
          // server; a dropped stream can only be recreated with the
          // identical schema — anything else would decode events
          // against one layout and evaluate them against another.
          post = Status::InvalidArgument(
                     "stream '" + result->name +
                     "' was previously served with a different schema; "
                     "recreate it with the original field list or "
                     "restart the server")
                     .WithErrorCode(errc::kCatalogDuplicateStream);
        }
        // Identical schema: reuse the existing runtime binding.
      }
      if (!post.ok()) {
        // Keep catalog and runtime in sync: undo the catalog-side
        // creation the Execute above performed.
        (void)session_->Execute("DROP STREAM " + result->name);
      }
      break;
    }
    case DdlKind::kCreateQuery:
    case DdlKind::kSelect: {
      post = RegisterOnRuntime(result->name);
      if (!post.ok()) {
        // Keep catalog and runtime in sync: undo the session-side
        // registration the Execute above performed.
        (void)session_->Execute("DROP QUERY " + result->name);
      }
      break;
    }
    case DdlKind::kExplainAnalyze: {
      // The session's compiled engine never sees served traffic — the
      // runtime's per-shard engines do. Replace the session's (empty)
      // profile with the live merged one when the query is served.
      auto it = queries_.find(result->name);
      if (it != queries_.end()) {
        auto profile = runtime_->ExplainAnalyze(it->second.id);
        if (!profile.ok()) {
          post = profile.status();
        } else {
          result->message = std::move(*profile);
        }
      }
      break;
    }
    case DdlKind::kDropQuery: {
      auto it = queries_.find(result->name);
      if (it != queries_.end()) {
        (void)runtime_->UnregisterQuery(it->second.id);
        query_names_.erase(it->second.id);
        query_order_.erase(std::remove(query_order_.begin(),
                                       query_order_.end(), result->name),
                           query_order_.end());
        for (auto& [fd, c] : connections_) {
          auto& subs = c->subscriptions;
          subs.erase(std::remove(subs.begin(), subs.end(), result->name),
                     subs.end());
        }
        queries_.erase(it);
      }
      break;
    }
    default:
      break;
  }
  if (!post.ok()) {
    SendError(conn, post);
    return;
  }
  std::string payload;
  AppendDdlReply(&payload, *result);
  Send(conn, MsgType::kDdlResult, 0, payload);
}

void Server::HandleEventBatch(Connection* conn,
                              const std::string& payload) {
  const uint64_t decode_t0 = obs::MonotonicNanos();
  PayloadReader reader(payload);
  std::string stream_name;
  uint64_t trace_id = 0;
  uint32_t count = 0;
  Status st = [&]() -> Status {
    ZS_ASSIGN_OR_RETURN(stream_name, reader.ReadString());
    ZS_ASSIGN_OR_RETURN(trace_id, reader.ReadU64());
    ZS_ASSIGN_OR_RETURN(count, reader.ReadU32());
    return Status::OK();
  }();
  if (!st.ok()) {
    SendError(conn, st);
    return;
  }
  // A client that never armed its own tracer stamps 0 on every batch;
  // when this server samples (--trace-sample), take the per-batch
  // decision here instead, so server-side spans still appear without
  // client cooperation. A client-stamped id is always adopted as-is.
  if (trace_id == 0) trace_id = obs::TraceSampleBatch();
  if (count > kMaxBatchEvents) {
    SendError(conn, Status::InvalidArgument(
                        "event batch of " + std::to_string(count) +
                        " exceeds the " +
                        std::to_string(kMaxBatchEvents) + "-event bound")
                        .WithErrorCode(errc::kNetBatchTooLarge));
    return;
  }
  const auto stream_id = runtime_->stream(stream_name);
  const auto schema = session_->catalog().stream(stream_name);
  if (!stream_id.ok() || !schema.ok()) {
    SendError(conn, Status::NotFound("no stream named '" + stream_name +
                                     "'")
                        .WithErrorCode(errc::kCatalogUnknownStream));
    return;
  }
  std::vector<EventPtr> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto event = ReadEvent(&reader, *schema);
    if (!event.ok()) {
      // Nothing from a malformed batch is ingested (decode-then-ingest,
      // so a truncated tail cannot leave a half-applied batch behind).
      SendError(conn, event.status());
      return;
    }
    events.push_back(std::move(*event));
  }
  if (Status end = reader.ExpectEnd(); !end.ok()) {
    SendError(conn, end);
    return;
  }
  obs::TraceRecord(0, obs::SpanKind::kWireDecode, trace_id, decode_t0,
                   obs::MonotonicNanos(), stream_name.c_str(), count);
  const uint64_t dropped =
      runtime_->IngestBatch(*stream_id, events, trace_id);
  const uint64_t accepted =
      dropped >= events.size() ? 0 : events.size() - dropped;
  conn->events_ingested += accepted;
  conn->events_dropped += dropped;
  std::string ack;
  PutU64(&ack, accepted);
  PutU64(&ack, dropped);
  Send(conn, MsgType::kIngestAck, dropped > 0 ? kFlagThrottle : 0, ack);
}

void Server::HandleSubscribe(Connection* conn, const std::string& payload) {
  PayloadReader reader(payload);
  auto name = reader.ReadString();
  if (!name.ok()) {
    SendError(conn, name.status());
    return;
  }
  auto it = queries_.find(*name);
  if (it == queries_.end()) {
    SendError(conn, Status::NotFound("no query named '" + *name + "'")
                        .WithErrorCode(errc::kCatalogUnknownQuery));
    return;
  }
  if (!conn->SubscribedTo(*name)) conn->subscriptions.push_back(*name);
  std::string ack;
  PutString(&ack, *name);
  PutString(&ack, it->second.stream);
  AppendSchema(&ack, *it->second.schema);
  Send(conn, MsgType::kSubscribeAck, 0, ack);
}

void Server::HandleUnsubscribe(Connection* conn,
                               const std::string& payload) {
  PayloadReader reader(payload);
  auto name = reader.ReadString();
  if (!name.ok()) {
    SendError(conn, name.status());
    return;
  }
  if (queries_.find(*name) == queries_.end()) {
    SendError(conn, Status::NotFound("no query named '" + *name + "'")
                        .WithErrorCode(errc::kCatalogUnknownQuery));
    return;
  }
  auto& subs = conn->subscriptions;
  subs.erase(std::remove(subs.begin(), subs.end(), *name), subs.end());
  std::string ack;
  PutString(&ack, *name);
  Send(conn, MsgType::kUnsubscribeAck, 0, ack);
}

void Server::HandleStatsRequest(Connection* conn) {
  Send(conn, MsgType::kStats, 0, BuildStatsJson());
}

void Server::HandleMetricsRequest(Connection* conn,
                                  const std::string& payload) {
  uint8_t format = kMetricsFormatPrometheus;
  if (!payload.empty()) {
    PayloadReader reader(payload);
    auto f = reader.ReadU8();
    if (!f.ok()) {
      SendError(conn, f.status());
      return;
    }
    format = *f;
  }
  if (format != kMetricsFormatPrometheus && format != kMetricsFormatJson) {
    SendError(conn, Status::InvalidArgument(
                        "unknown metrics format " + std::to_string(format))
                        .WithErrorCode(errc::kNetUnexpectedMessage));
    return;
  }
  Send(conn, MsgType::kMetrics, 0,
       format == kMetricsFormatJson ? MetricsJsonDoc() : MetricsText());
}

void Server::HandleFlush(Connection* conn) {
  if (Status st = runtime_->Flush(); !st.ok()) {
    SendError(conn, st);
    return;
  }
  // The barrier returned, so every match from events ingested before
  // the kFlush has been published; deliver them before the ack.
  DrainMatches();
  FlushAck ack;
  for (const std::string& name : query_order_) {
    const auto it = queries_.find(name);
    if (it == queries_.end()) continue;
    ack.queries.emplace_back(
        name, runtime_->query_matches(it->second.id).ValueOr(0));
  }
  std::string payload;
  AppendFlushAck(&payload, ack);
  Send(conn, MsgType::kFlushAck, 0, payload);
}

// ---------------------------------------------------------------------
// Match fanout
// ---------------------------------------------------------------------

void Server::DrainMatches() {
  std::vector<runtime::RuntimeMatch> pending;
  {
    zs::MutexLock lock(sink_.mu_);
    sink_.signaled_ = false;
    pending.swap(sink_.pending_);
  }
  if (pending.empty()) return;
  // Deterministic delivery order within the drained batch: the shared
  // (query, span, canonical key) order of CollectingMatchSink::Take.
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    order.emplace_back(runtime::CanonicalMatchKey(pending[i].match), i);
  }
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    return runtime::RuntimeMatchLess(pending[a.second], a.first,
                                     pending[b.second], b.first);
  });
  // Queue every frame first and flush each connection once: one
  // send() per subscriber per drain, not per match.
  std::string payload;
  for (const auto& [key, idx] : order) {
    const runtime::RuntimeMatch& m = pending[idx];
    const auto name_it = query_names_.find(m.query);
    if (name_it == query_names_.end()) continue;  // dropped query
    payload.clear();
    AppendMatch(&payload, name_it->second, m.match, m.trace_id);
    const uint64_t fanout_t0 =
        m.trace_id != 0 ? obs::MonotonicNanos() : 0;
    uint64_t fanned = 0;
    for (auto& [fd, conn] : connections_) {
      if (conn->closing || !conn->SubscribedTo(name_it->second)) continue;
      Queue(conn.get(), MsgType::kMatch, 0, payload);
      ++conn->matches_sent;
      ++fanned;
      matches_fanned_out_.fetch_add(1, std::memory_order_relaxed);
    }
    if (m.trace_id != 0) {
      obs::TraceRecord(0, obs::SpanKind::kFanout, m.trace_id, fanout_t0,
                       obs::MonotonicNanos(), name_it->second.c_str(),
                       fanned);
    }
  }
  for (auto& [fd, conn] : connections_) {
    if (!conn->closing && conn->out.size() > conn->out_off) {
      FlushWrites(conn.get());
    }
  }
}

// ---------------------------------------------------------------------
// Writes and stats
// ---------------------------------------------------------------------

void Server::Queue(Connection* conn, MsgType type, uint8_t flags,
                   std::string_view payload) {
  if (conn->closing) return;
  const size_t queued = conn->out.size() - conn->out_off;
  if (queued + kFrameHeaderSize + payload.size() >
      options_.max_write_buffer_bytes) {
    ZS_LOG(Warn) << "connection " << conn->id
                 << " write buffer overrun; dropping connection";
    conn->closing = true;
    return;
  }
  AppendFrame(&conn->out, type, flags, payload);
}

void Server::Send(Connection* conn, MsgType type, uint8_t flags,
                  std::string_view payload) {
  Queue(conn, type, flags, payload);
  if (!conn->closing) FlushWrites(conn);
}

void Server::SendError(Connection* conn, const Status& status) {
  std::string payload;
  AppendStatusPayload(&payload, status);
  ++conn->errors_sent;
  Send(conn, MsgType::kError, 0, payload);
}

void Server::FlushWrites(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->closing = true;
      return;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (1u << 20)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
}

std::string Server::BuildStatsJson() const {
  std::string out = "{\"server\": {";
  out += "\"connections\": " + std::to_string(connections_.size());
  out += ", \"queries\": " + std::to_string(queries_.size());
  out += ", \"frames_dispatched\": " +
         std::to_string(frames_dispatched_.load(std::memory_order_relaxed));
  out += ", \"matches_fanned_out\": " +
         std::to_string(matches_fanned_out_.load(std::memory_order_relaxed));
  out += "}, \"connections\": [";
  bool first = true;
  for (const auto& [fd, conn] : connections_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(conn->id);
    out += ", \"frames_received\": " + std::to_string(conn->frames_received);
    out += ", \"events_ingested\": " + std::to_string(conn->events_ingested);
    out += ", \"events_dropped\": " + std::to_string(conn->events_dropped);
    out += ", \"matches_sent\": " + std::to_string(conn->matches_sent);
    out += ", \"errors_sent\": " + std::to_string(conn->errors_sent);
    out += ", \"subscriptions\": " +
           std::to_string(conn->subscriptions.size());
    out += "}";
  }
  out += "], \"runtime\": " + runtime_->Stats().ToJson() + "}";
  return out;
}

// ---------------------------------------------------------------------
// Metrics exposition (wire kMetrics + HTTP side port)
// ---------------------------------------------------------------------

std::string Server::MetricsText() {
  obs::Registry& reg = runtime_->metrics_registry();
  reg.GetGauge("zstream_server_connections", {},
               "Open protocol connections")
      ->Set(static_cast<int64_t>(connections_.size()));
  reg.GetCounter("zstream_server_frames_dispatched_total", {},
                 "Protocol frames dispatched")
      ->Store(frames_dispatched_.load(std::memory_order_relaxed));
  reg.GetCounter("zstream_server_matches_fanned_out_total", {},
                 "Match frames queued to subscribers")
      ->Store(matches_fanned_out_.load(std::memory_order_relaxed));
  // The runtime registry (shard/query series + the server series just
  // mirrored) and the process-wide registry (planner, verifier,
  // slow-event counters) have disjoint family names, so the Prometheus
  // documents concatenate into one valid exposition.
  return runtime_->MetricsPrometheus() +
         obs::Registry::Default().RenderPrometheus();
}

std::string Server::MetricsJsonDoc() {
  MetricsText();  // mirror the server + runtime series first
  return "{\"runtime\": " + runtime_->metrics_registry().RenderJson() +
         ", \"process\": " + obs::Registry::Default().RenderJson() + "}";
}

void Server::AcceptHttpPending() {
  while (true) {
    const int fd = ::accept(http_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      ZS_LOG(Warn) << "metrics accept failed: " << ErrnoToString(errno);
      return;
    }
    if (static_cast<int>(http_connections_.size()) >=
        options_.max_connections) {
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<HttpConnection>();
    conn->fd = fd;
    http_connections_.emplace(fd, std::move(conn));
  }
}

void Server::HandleHttpReadable(HttpConnection* conn) {
  char buf[4096];
  while (!conn->closing) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      conn->closing = true;
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->closing = true;
      return;
    }
    conn->in.append(buf, static_cast<size_t>(n));
    if (conn->in.size() > 8192) {  // a GET request line is tiny
      conn->closing = true;
      return;
    }
  }
  if (conn->responded || conn->in.find("\r\n") == std::string::npos) {
    return;  // headers may still be in flight; the request line suffices
  }
  conn->responded = true;
  const std::string line = conn->in.substr(0, conn->in.find("\r\n"));
  std::string body;
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (line.rfind("GET /metrics.json", 0) == 0) {
    body = MetricsJsonDoc();
    content_type = "application/json";
  } else if (line.rfind("GET /metrics", 0) == 0) {
    body = MetricsText();
  } else if (line.rfind("GET /trace", 0) == 0) {
    body = obs::Tracer::Global().RenderChromeJson();
    content_type = "application/json";
  } else if (line.rfind("GET /healthz", 0) == 0) {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  conn->out = "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type +
              "\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n" + body;
  conn->out_off = 0;
  FlushHttpWrites(conn);
}

void Server::FlushHttpWrites(HttpConnection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      conn->closing = true;
      return;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  // One response per connection: done once fully written.
  if (conn->responded) conn->closing = true;
}

}  // namespace zstream::net
