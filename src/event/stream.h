// Event streams: pull-based sources of time-ordered primitive events.
//
// The paper runs ZStream over pre-recorded data files "pulled into the
// system at the maximum rate the system could accept"; VectorStream models
// exactly that. ConcatStream supports the plan-adaptation experiment
// (Figure 14), which concatenates three differently-parameterized streams.
#ifndef ZSTREAM_EVENT_STREAM_H_
#define ZSTREAM_EVENT_STREAM_H_

#include <memory>
#include <vector>

#include "event/event.h"

namespace zstream {

/// \brief Pull interface. Next() returns nullptr when exhausted.
/// Implementations must yield events in non-decreasing timestamp order.
class EventStream {
 public:
  virtual ~EventStream() = default;
  virtual EventPtr Next() = 0;

  /// Number of events if known up front, else -1.
  virtual int64_t SizeHint() const { return -1; }
};

/// \brief In-memory, pre-recorded stream.
class VectorStream : public EventStream {
 public:
  explicit VectorStream(std::vector<EventPtr> events)
      : events_(std::move(events)) {}

  EventPtr Next() override {
    if (pos_ >= events_.size()) return nullptr;
    return events_[pos_++];
  }
  int64_t SizeHint() const override {
    return static_cast<int64_t>(events_.size());
  }
  void Reset() { pos_ = 0; }

 private:
  std::vector<EventPtr> events_;
  size_t pos_ = 0;
};

/// \brief Concatenation of several streams (timestamps must continue to be
/// non-decreasing across the seam; generators take a start-ts offset for
/// this purpose).
class ConcatStream : public EventStream {
 public:
  explicit ConcatStream(std::vector<std::unique_ptr<EventStream>> streams)
      : streams_(std::move(streams)) {}

  EventPtr Next() override;
  int64_t SizeHint() const override;

 private:
  std::vector<std::unique_ptr<EventStream>> streams_;
  size_t idx_ = 0;
};

/// Drains a stream into a vector (helper for benchmarks that pre-record).
std::vector<EventPtr> DrainStream(EventStream* stream);

}  // namespace zstream

#endif  // ZSTREAM_EVENT_STREAM_H_
