// Primitive events: the atomic inputs of a CEP engine.
//
// A primitive event has a schema, one value per schema field and a single
// timestamp (start == end, Section 3 of the paper). Composite events are
// represented at execution time by exec::Record, which points back at its
// constituent primitive events.
#ifndef ZSTREAM_EVENT_EVENT_H_
#define ZSTREAM_EVENT_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace zstream {

/// \brief An immutable primitive event.
class Event {
 public:
  Event(SchemaPtr schema, std::vector<Value> values, Timestamp ts);

  const SchemaPtr& schema() const { return schema_; }
  Timestamp timestamp() const { return ts_; }

  /// Process-unique sequence id, assigned at construction from a
  /// relaxed atomic counter. Match provenance (obs/trace.h) records the
  /// ids of a sampled match's contributing events, so "which events
  /// produced this match" survives after the events themselves are
  /// evicted from operator buffers.
  uint64_t id() const { return id_; }

  const Value& value(int field_idx) const {
    return values_[static_cast<size_t>(field_idx)];
  }
  const std::vector<Value>& values() const { return values_; }

  /// Attribute lookup by name; errors if the schema lacks the field.
  Result<Value> ValueOf(const std::string& field_name) const;

  /// Approximate resident size in bytes, used for peak-memory accounting.
  size_t ByteSize() const { return byte_size_; }

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  Timestamp ts_;
  size_t byte_size_;
  uint64_t id_;
};

using EventPtr = std::shared_ptr<const Event>;

/// \brief Convenience builder for tests, examples and generators.
///
///   auto e = EventBuilder(schema).Set("name", "IBM").Set("price", 95)
///                .At(42).Build();
class EventBuilder {
 public:
  explicit EventBuilder(SchemaPtr schema)
      : schema_(std::move(schema)),
        values_(static_cast<size_t>(schema_->num_fields())) {}

  EventBuilder& Set(const std::string& field, Value v);
  EventBuilder& Set(const std::string& field, const char* v) {
    return Set(field, Value(v));
  }
  EventBuilder& Set(const std::string& field, int64_t v) {
    return Set(field, Value(v));
  }
  EventBuilder& Set(const std::string& field, int v) {
    return Set(field, Value(v));
  }
  EventBuilder& Set(const std::string& field, double v) {
    return Set(field, Value(v));
  }
  EventBuilder& At(Timestamp ts) {
    ts_ = ts;
    return *this;
  }

  EventPtr Build() const {
    return std::make_shared<Event>(schema_, values_, ts_);
  }

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  Timestamp ts_ = 0;
};

/// The stock-trade schema used throughout the paper:
/// (id:int64, name:string, price:double, volume:int64, ts:int64).
SchemaPtr StockSchema();

/// The web-access-log schema of Section 6.5:
/// (ip:string, url:string, category:string).
SchemaPtr WebLogSchema();

}  // namespace zstream

#endif  // ZSTREAM_EVENT_EVENT_H_
