#include "event/stream.h"

namespace zstream {

EventPtr ConcatStream::Next() {
  while (idx_ < streams_.size()) {
    EventPtr e = streams_[idx_]->Next();
    if (e != nullptr) return e;
    ++idx_;
  }
  return nullptr;
}

int64_t ConcatStream::SizeHint() const {
  int64_t total = 0;
  for (const auto& s : streams_) {
    const int64_t n = s->SizeHint();
    if (n < 0) return -1;
    total += n;
  }
  return total;
}

std::vector<EventPtr> DrainStream(EventStream* stream) {
  std::vector<EventPtr> out;
  const int64_t hint = stream->SizeHint();
  if (hint > 0) out.reserve(static_cast<size_t>(hint));
  while (EventPtr e = stream->Next()) {
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace zstream
