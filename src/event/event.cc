#include "event/event.h"

#include <atomic>
#include <sstream>

namespace zstream {

namespace {
size_t ValueBytes(const Value& v) {
  size_t b = sizeof(Value);
  if (v.is_string()) b += v.string_value().capacity();
  return b;
}

uint64_t NextEventId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

Event::Event(SchemaPtr schema, std::vector<Value> values, Timestamp ts)
    : schema_(std::move(schema)),
      values_(std::move(values)),
      ts_(ts),
      id_(NextEventId()) {
  ZS_DCHECK(static_cast<int>(values_.size()) == schema_->num_fields());
  byte_size_ = sizeof(Event);
  for (const Value& v : values_) byte_size_ += ValueBytes(v);
}

Result<Value> Event::ValueOf(const std::string& field_name) const {
  ZS_ASSIGN_OR_RETURN(const int idx, schema_->RequireField(field_name));
  return values_[static_cast<size_t>(idx)];
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << "{ts=" << ts_;
  for (int i = 0; i < schema_->num_fields(); ++i) {
    os << ", " << schema_->field(i).name << "="
       << values_[static_cast<size_t>(i)].ToString();
  }
  os << "}";
  return os.str();
}

EventBuilder& EventBuilder::Set(const std::string& field, Value v) {
  const int idx = schema_->FieldIndex(field);
  ZS_DCHECK(idx >= 0);
  values_[static_cast<size_t>(idx)] = std::move(v);
  return *this;
}

SchemaPtr StockSchema() {
  static const SchemaPtr schema = Schema::Make({
      {"id", ValueType::kInt64},
      {"name", ValueType::kString},
      {"price", ValueType::kDouble},
      {"volume", ValueType::kInt64},
      {"ts", ValueType::kInt64},
  });
  return schema;
}

SchemaPtr WebLogSchema() {
  static const SchemaPtr schema = Schema::Make({
      {"ip", ValueType::kString},
      {"url", ValueType::kString},
      {"category", ValueType::kString},
  });
  return schema;
}

}  // namespace zstream
