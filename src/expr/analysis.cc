#include "expr/analysis.h"

namespace zstream {

namespace {
void CollectClasses(const ExprPtr& e, std::set<int>* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case ExprKind::kAttrRef:
    case ExprKind::kTimeRef:
    case ExprKind::kIsNull:
    case ExprKind::kAggregate:
      out->insert(e->class_idx());
      break;
    case ExprKind::kUnary:
      CollectClasses(e->operand(), out);
      break;
    case ExprKind::kBinary:
      CollectClasses(e->left(), out);
      CollectClasses(e->right(), out);
      break;
    case ExprKind::kLiteral:
      break;
  }
}

void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kBinary && e->binary_op() == BinaryOp::kAnd) {
    CollectConjuncts(e->left(), out);
    CollectConjuncts(e->right(), out);
    return;
  }
  out->push_back(e);
}
}  // namespace

std::set<int> ReferencedClasses(const ExprPtr& expr) {
  std::set<int> out;
  CollectClasses(expr, &out);
  return out;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  CollectConjuncts(expr, &out);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const ExprPtr& c : conjuncts) {
    acc = acc == nullptr ? c : Expr::Binary(BinaryOp::kAnd, acc, c);
  }
  return acc;
}

std::optional<EqualityJoin> AsEqualityJoin(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() != ExprKind::kBinary ||
      expr->binary_op() != BinaryOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = expr->left();
  const ExprPtr& r = expr->right();
  if (l->kind() != ExprKind::kAttrRef || r->kind() != ExprKind::kAttrRef) {
    return std::nullopt;
  }
  if (l->class_idx() == r->class_idx()) return std::nullopt;
  return EqualityJoin{l->class_idx(), l->field_idx(), r->class_idx(),
                      r->field_idx()};
}

bool IsSingleClass(const ExprPtr& expr, int class_idx) {
  const std::set<int> classes = ReferencedClasses(expr);
  return classes.size() == 1 && *classes.begin() == class_idx;
}

ExprPtr RemapClasses(const ExprPtr& expr, const std::vector<int>& remap) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kAttrRef:
      return Expr::AttrRef(remap[static_cast<size_t>(expr->class_idx())],
                           expr->field_idx(), expr->class_name(),
                           expr->field_name());
    case ExprKind::kTimeRef:
      return Expr::TimeRef(remap[static_cast<size_t>(expr->class_idx())],
                           expr->class_name());
    case ExprKind::kIsNull:
      return Expr::IsNull(remap[static_cast<size_t>(expr->class_idx())],
                          expr->class_name());
    case ExprKind::kAggregate:
      return Expr::Aggregate(expr->agg_fn(),
                             remap[static_cast<size_t>(expr->class_idx())],
                             expr->field_idx(), expr->class_name(),
                             expr->field_name());
    case ExprKind::kUnary:
      return Expr::Unary(expr->unary_op(),
                         RemapClasses(expr->operand(), remap));
    case ExprKind::kBinary:
      return Expr::Binary(expr->binary_op(), RemapClasses(expr->left(), remap),
                          RemapClasses(expr->right(), remap));
  }
  return expr;
}

bool ContainsAggregate(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case ExprKind::kAggregate:
      return true;
    case ExprKind::kUnary:
      return ContainsAggregate(expr->operand());
    case ExprKind::kBinary:
      return ContainsAggregate(expr->left()) ||
             ContainsAggregate(expr->right());
    default:
      return false;
  }
}

}  // namespace zstream
