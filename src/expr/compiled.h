// Compiled predicates: flat comparison programs for the hot eval paths.
//
// The tree walker in eval.cc is general but pays per node: virtual-free
// but recursive dispatch, and kAttrRef returns the attribute Value *by
// value* — a heap copy for every string comparison. The execution hot
// paths (leaf admission, join-pair predicates) overwhelmingly evaluate
// conjunctions of binary comparisons over attribute/timestamp/literal
// operands, so those shapes compile to a flat term vector evaluated
// with zero copies: operands resolve to `const Value*` into the event's
// value column (or the literal), and three-valued-logic truthiness is
// preserved exactly — a conjunction is truthy iff every comparison is
// truthy, and any null/unbound/incomparable operand fails the term.
//
// FilterBatch is the columnar flavour: one term at a time swept across
// an event batch, narrowing a selection mask (term-major evaluation over
// column slices instead of record-major tree walks).
//
// Unsupported shapes (OR, arithmetic, aggregates, IS NULL, NOT) return
// nullopt from Compile; callers keep the tree walker as the fallback,
// so compilation is a pure fast path with the oracle-checked
// interpreter defining semantics.
#ifndef ZSTREAM_EXPR_COMPILED_H_
#define ZSTREAM_EXPR_COMPILED_H_

#include <optional>
#include <vector>

#include "expr/expr.h"

namespace zstream {

/// \brief A conjunction of binary comparisons, compiled for copy-free
/// evaluation.
class CompiledPredicate {
 public:
  /// Compiles `expr` when it is an AND-tree of comparisons over
  /// attribute references, timestamp references and literals; nullopt
  /// otherwise.
  static std::optional<CompiledPredicate> Compile(const ExprPtr& expr);

  /// Exact-parity replacement for expr->EvalPredicate(in).
  bool Eval(const EvalInput& in) const;

  /// True when every operand references class `c` (or is a literal):
  /// the predicate can then run against a bare event of that class.
  bool SingleClass(int c) const;

  /// Columnar leaf admission: for each event with mask[j] != 0, clears
  /// mask[j] unless every term passes with the event bound to the
  /// predicate's (single) class. Requires SingleClass(c) for the class
  /// the events belong to.
  void FilterBatch(const EventPtr* events, int n, uint8_t* mask) const;

  size_t num_terms() const { return terms_.size(); }

 private:
  struct Operand {
    enum class Kind : char { kAttr, kTime, kLit };
    Kind kind = Kind::kLit;
    int class_idx = -1;
    int field_idx = -1;
    Value literal;
  };
  struct Term {
    BinaryOp op = BinaryOp::kEq;
    Operand lhs;
    Operand rhs;
  };

  static bool CompileInto(const Expr& e, std::vector<Term>* terms);
  // Returns false (leaving *out untouched) for operand shapes the
  // compiled path doesn't cover. Out-param rather than
  // std::optional<Operand> — see the note in compiled.cc.
  static bool CompileOperand(const ExprPtr& e, Operand* out);
  static bool TermPasses(const Term& t, const EvalInput& in);
  static bool TermPassesEvent(const Term& t, const Event& event);

  std::vector<Term> terms_;
};

}  // namespace zstream

#endif  // ZSTREAM_EXPR_COMPILED_H_
