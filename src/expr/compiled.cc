#include "expr/compiled.h"

#include "common/macros.h"

namespace zstream {

namespace {

inline bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

inline bool RelationHolds(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

}  // namespace

// Writes into caller-owned storage rather than returning
// std::optional<Operand>: copying the Value variant out of a returned
// optional trips GCC 12's -Wmaybe-uninitialized false positive under
// -O2 + sanitizers (PR80635 family).
bool CompiledPredicate::CompileOperand(const ExprPtr& e, Operand* out) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      out->kind = Operand::Kind::kLit;
      out->literal = e->literal();
      return true;
    case ExprKind::kAttrRef:
      out->kind = Operand::Kind::kAttr;
      out->class_idx = e->class_idx();
      out->field_idx = e->field_idx();
      return true;
    case ExprKind::kTimeRef:
      out->kind = Operand::Kind::kTime;
      out->class_idx = e->class_idx();
      return true;
    default:
      return false;
  }
}

bool CompiledPredicate::CompileInto(const Expr& e, std::vector<Term>* terms) {
  if (e.kind() != ExprKind::kBinary) return false;
  if (e.binary_op() == BinaryOp::kAnd) {
    // Term order mirrors the interpreter's left-to-right evaluation;
    // with pure comparisons the outcome is order-independent, this just
    // keeps the common cheap-first authoring order intact.
    return CompileInto(*e.left(), terms) && CompileInto(*e.right(), terms);
  }
  if (!IsComparison(e.binary_op())) return false;
  Term t;
  t.op = e.binary_op();
  if (!CompileOperand(e.left(), &t.lhs)) return false;
  if (!CompileOperand(e.right(), &t.rhs)) return false;
  terms->push_back(std::move(t));
  return true;
}

std::optional<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& expr) {
  if (expr == nullptr) return std::nullopt;
  CompiledPredicate out;
  if (!CompileInto(*expr, &out.terms_)) return std::nullopt;
  if (out.terms_.empty()) return std::nullopt;
  return out;
}

bool CompiledPredicate::SingleClass(int c) const {
  for (const Term& t : terms_) {
    for (const Operand* o : {&t.lhs, &t.rhs}) {
      if (o->kind != Operand::Kind::kLit && o->class_idx != c) return false;
    }
  }
  return true;
}

ZS_HOT bool CompiledPredicate::TermPasses(const Term& t, const EvalInput& in) {
  // Operand resolution matching Expr::Eval: out-of-range or unbound
  // slots yield null, and a null on either side fails the comparison
  // (EvalCompare returns null, which is not truthy).
  Value time_l, time_r;
  const Value* a = nullptr;
  const Value* b = nullptr;
  switch (t.lhs.kind) {
    case Operand::Kind::kLit:
      a = &t.lhs.literal;
      break;
    case Operand::Kind::kAttr: {
      if (t.lhs.class_idx >= in.num_slots) return false;
      const EventPtr& ev = in.slots[t.lhs.class_idx];
      if (ev == nullptr) return false;
      a = &ev->value(t.lhs.field_idx);
      break;
    }
    case Operand::Kind::kTime: {
      if (t.lhs.class_idx >= in.num_slots) return false;
      const EventPtr& ev = in.slots[t.lhs.class_idx];
      if (ev == nullptr) return false;
      time_l = Value(static_cast<int64_t>(ev->timestamp()));
      a = &time_l;
      break;
    }
  }
  switch (t.rhs.kind) {
    case Operand::Kind::kLit:
      b = &t.rhs.literal;
      break;
    case Operand::Kind::kAttr: {
      if (t.rhs.class_idx >= in.num_slots) return false;
      const EventPtr& ev = in.slots[t.rhs.class_idx];
      if (ev == nullptr) return false;
      b = &ev->value(t.rhs.field_idx);
      break;
    }
    case Operand::Kind::kTime: {
      if (t.rhs.class_idx >= in.num_slots) return false;
      const EventPtr& ev = in.slots[t.rhs.class_idx];
      if (ev == nullptr) return false;
      time_r = Value(static_cast<int64_t>(ev->timestamp()));
      b = &time_r;
      break;
    }
  }
  if (a == nullptr || b == nullptr) return false;
  if (a->is_null() || b->is_null()) return false;
  const auto cmp = a->Compare(*b);
  if (!cmp.ok()) return false;
  return RelationHolds(t.op, *cmp);
}

ZS_HOT bool CompiledPredicate::TermPassesEvent(const Term& t,
                                               const Event& event) {
  Value time_l, time_r;
  const Value* a = nullptr;
  const Value* b = nullptr;
  switch (t.lhs.kind) {
    case Operand::Kind::kLit:
      a = &t.lhs.literal;
      break;
    case Operand::Kind::kAttr:
      a = &event.value(t.lhs.field_idx);
      break;
    case Operand::Kind::kTime:
      time_l = Value(static_cast<int64_t>(event.timestamp()));
      a = &time_l;
      break;
  }
  switch (t.rhs.kind) {
    case Operand::Kind::kLit:
      b = &t.rhs.literal;
      break;
    case Operand::Kind::kAttr:
      b = &event.value(t.rhs.field_idx);
      break;
    case Operand::Kind::kTime:
      time_r = Value(static_cast<int64_t>(event.timestamp()));
      b = &time_r;
      break;
  }
  if (a == nullptr || b == nullptr) return false;
  if (a->is_null() || b->is_null()) return false;
  const auto cmp = a->Compare(*b);
  if (!cmp.ok()) return false;
  return RelationHolds(t.op, *cmp);
}

ZS_HOT bool CompiledPredicate::Eval(const EvalInput& in) const {
  for (const Term& t : terms_) {
    if (!TermPasses(t, in)) return false;
  }
  return true;
}

ZS_HOT void CompiledPredicate::FilterBatch(const EventPtr* events, int n,
                                           uint8_t* mask) const {
  for (const Term& t : terms_) {
    for (int j = 0; j < n; ++j) {
      if (mask[j] != 0 && !TermPassesEvent(t, *events[j])) mask[j] = 0;
    }
  }
}

}  // namespace zstream
