// Static analysis of predicate expressions: which classes they touch,
// whether they are single-class (pushdown candidates, Section 4.1),
// equality joins (hash candidates, Section 5.2.2), and conjunct splitting.
#ifndef ZSTREAM_EXPR_ANALYSIS_H_
#define ZSTREAM_EXPR_ANALYSIS_H_

#include <optional>
#include <set>
#include <vector>

#include "expr/expr.h"

namespace zstream {

/// Set of pattern-class indices referenced by an expression.
std::set<int> ReferencedClasses(const ExprPtr& expr);

/// Splits a predicate on top-level ANDs into its conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// AND-combines a list of predicates (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Description of a hashable equality predicate `A.f = B.g` between two
/// distinct classes, where both sides are bare attribute references.
struct EqualityJoin {
  int left_class;
  int left_field;
  int right_class;
  int right_field;
};

/// Recognizes `A.f = B.g` (either side order). Returns nullopt for
/// anything else (including `A.f = const`, which is a single-class
/// predicate, and arithmetic like `A.f = B.g * 2`).
std::optional<EqualityJoin> AsEqualityJoin(const ExprPtr& expr);

/// True when every attribute reference in `expr` is to class `class_idx`
/// and the expression references at least one class.
bool IsSingleClass(const ExprPtr& expr, int class_idx);

/// Rewrites class indices through `remap` (old index -> new index),
/// returning a structurally-shared new expression. Used when a
/// sub-pattern is planned in isolation (e.g. per-partition plans).
ExprPtr RemapClasses(const ExprPtr& expr, const std::vector<int>& remap);

/// True if the expression contains an aggregate node.
bool ContainsAggregate(const ExprPtr& expr);

}  // namespace zstream

#endif  // ZSTREAM_EXPR_ANALYSIS_H_
