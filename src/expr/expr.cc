#include "expr/expr.h"

#include <sstream>

namespace zstream {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kCount: return "count";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

Result<AggFn> AggFnFromName(const std::string& name) {
  if (name == "sum") return AggFn::kSum;
  if (name == "avg") return AggFn::kAvg;
  if (name == "count") return AggFn::kCount;
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  return Status::SemanticError("unknown aggregate function '" + name + "'");
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::AttrRef(int class_idx, int field_idx, std::string class_name,
                      std::string field_name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAttrRef;
  e->class_idx_ = class_idx;
  e->field_idx_ = field_idx;
  e->class_name_ = std::move(class_name);
  e->field_name_ = std::move(field_name);
  return e;
}

ExprPtr Expr::TimeRef(int class_idx, std::string class_name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kTimeRef;
  e->class_idx_ = class_idx;
  e->class_name_ = std::move(class_name);
  e->field_name_ = "ts";
  return e;
}

ExprPtr Expr::IsNull(int class_idx, std::string class_name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIsNull;
  e->class_idx_ = class_idx;
  e->class_name_ = std::move(class_name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->un_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->bin_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Aggregate(AggFn fn, int class_idx, int field_idx,
                        std::string class_name, std::string field_name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAggregate;
  e->agg_fn_ = fn;
  e->class_idx_ = class_idx;
  e->field_idx_ = field_idx;
  e->class_name_ = std::move(class_name);
  e->field_name_ = std::move(field_name);
  return e;
}

ExprPtr Expr::WithLocation(const ExprPtr& expr, int line, int column) {
  if (expr == nullptr || (expr->line_ == line && expr->column_ == column)) {
    return expr;
  }
  auto e = std::shared_ptr<Expr>(new Expr(*expr));
  e->line_ = line;
  e->column_ = column;
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kLiteral:
      os << literal_.ToString();
      break;
    case ExprKind::kAttrRef:
      os << class_name_ << "." << field_name_;
      break;
    case ExprKind::kTimeRef:
      os << class_name_ << ".ts";
      break;
    case ExprKind::kIsNull:
      os << "isnull(" << class_name_ << ")";
      break;
    case ExprKind::kUnary:
      os << (un_op_ == UnaryOp::kNot ? "NOT " : "-") << "("
         << left_->ToString() << ")";
      break;
    case ExprKind::kBinary:
      os << "(" << left_->ToString() << " " << BinaryOpName(bin_op_) << " "
         << right_->ToString() << ")";
      break;
    case ExprKind::kAggregate:
      os << AggFnName(agg_fn_) << "(" << class_name_ << "." << field_name_
         << ")";
      break;
  }
  return os.str();
}

}  // namespace zstream
