// Expression evaluation with SQL-style three-valued logic.
#include "expr/expr.h"

namespace zstream {

namespace {

// Comparison returning Value(bool) or null when either side is null or
// the categories are incomparable.
Value EvalCompare(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  auto cmp = a.Compare(b);
  if (!cmp.ok()) return Value::Null();
  const int c = *cmp;
  switch (op) {
    case BinaryOp::kEq: return Value(c == 0);
    case BinaryOp::kNe: return Value(c != 0);
    case BinaryOp::kLt: return Value(c < 0);
    case BinaryOp::kLe: return Value(c <= 0);
    case BinaryOp::kGt: return Value(c > 0);
    case BinaryOp::kGe: return Value(c >= 0);
    default: return Value::Null();
  }
}

// Kleene three-valued AND / OR.
Value EvalAnd(const Value& a, const Value& b) {
  const bool a_false = a.is_bool() && !a.bool_value();
  const bool b_false = b.is_bool() && !b.bool_value();
  if (a_false || b_false) return Value(false);
  if (a.IsTruthy() && b.IsTruthy()) return Value(true);
  return Value::Null();
}

Value EvalOr(const Value& a, const Value& b) {
  if (a.IsTruthy() || b.IsTruthy()) return Value(true);
  const bool a_false = a.is_bool() && !a.bool_value();
  const bool b_false = b.is_bool() && !b.bool_value();
  if (a_false && b_false) return Value(false);
  return Value::Null();
}

Value EvalAggregate(const Expr& e, const EvalInput& input) {
  if (input.group == nullptr || e.class_idx() != input.group_class) {
    return Value::Null();
  }
  const auto& group = *input.group;
  if (e.agg_fn() == AggFn::kCount) {
    return Value(static_cast<int64_t>(group.size()));
  }
  if (group.empty()) return Value::Null();
  bool first = true;
  double sum = 0.0;
  Value best;
  for (const EventPtr& ev : group) {
    const Value& v = ev->value(e.field_idx());
    if (v.is_null()) continue;
    switch (e.agg_fn()) {
      case AggFn::kSum:
      case AggFn::kAvg:
        if (!v.is_numeric()) return Value::Null();
        sum += v.AsDouble();
        first = false;
        break;
      case AggFn::kMin:
      case AggFn::kMax: {
        if (first) {
          best = v;
          first = false;
        } else {
          auto cmp = v.Compare(best);
          if (!cmp.ok()) return Value::Null();
          if ((e.agg_fn() == AggFn::kMin && *cmp < 0) ||
              (e.agg_fn() == AggFn::kMax && *cmp > 0)) {
            best = v;
          }
        }
        break;
      }
      case AggFn::kCount:
        break;  // handled above
    }
  }
  if (first) return Value::Null();  // all inputs null
  switch (e.agg_fn()) {
    case AggFn::kSum:
      return Value(sum);
    case AggFn::kAvg:
      return Value(sum / static_cast<double>(group.size()));
    case AggFn::kMin:
    case AggFn::kMax:
      return best;
    default:
      return Value::Null();
  }
}

}  // namespace

Value Expr::Eval(const EvalInput& input) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kAttrRef: {
      if (class_idx_ >= input.num_slots) return Value::Null();
      const EventPtr& ev = input.slot(class_idx_);
      if (ev == nullptr) return Value::Null();
      return ev->value(field_idx_);
    }
    case ExprKind::kTimeRef: {
      if (class_idx_ >= input.num_slots) return Value::Null();
      const EventPtr& ev = input.slot(class_idx_);
      if (ev == nullptr) return Value::Null();
      return Value(static_cast<int64_t>(ev->timestamp()));
    }
    case ExprKind::kIsNull: {
      const bool unbound =
          class_idx_ >= input.num_slots || input.slot(class_idx_) == nullptr;
      return Value(unbound);
    }
    case ExprKind::kUnary: {
      const Value v = left_->Eval(input);
      if (un_op_ == UnaryOp::kNot) {
        if (!v.is_bool()) return Value::Null();
        return Value(!v.bool_value());
      }
      // Numeric negation.
      if (v.is_int64()) return Value(-v.int64_value());
      if (v.is_double()) return Value(-v.double_value());
      return Value::Null();
    }
    case ExprKind::kBinary: {
      switch (bin_op_) {
        case BinaryOp::kAnd: {
          // Short-circuit on definite false.
          const Value a = left_->Eval(input);
          if (a.is_bool() && !a.bool_value()) return Value(false);
          return EvalAnd(a, right_->Eval(input));
        }
        case BinaryOp::kOr: {
          const Value a = left_->Eval(input);
          if (a.IsTruthy()) return Value(true);
          return EvalOr(a, right_->Eval(input));
        }
        case BinaryOp::kAdd:
          return Add(left_->Eval(input), right_->Eval(input));
        case BinaryOp::kSub:
          return Subtract(left_->Eval(input), right_->Eval(input));
        case BinaryOp::kMul:
          return Multiply(left_->Eval(input), right_->Eval(input));
        case BinaryOp::kDiv:
          return Divide(left_->Eval(input), right_->Eval(input));
        case BinaryOp::kMod:
          return Modulo(left_->Eval(input), right_->Eval(input));
        default:
          return EvalCompare(bin_op_, left_->Eval(input),
                             right_->Eval(input));
      }
    }
    case ExprKind::kAggregate:
      return EvalAggregate(*this, input);
  }
  return Value::Null();
}

}  // namespace zstream
