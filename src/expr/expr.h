// Expression AST for WHERE predicates and RETURN projections.
//
// Expressions reference pattern event classes by index (the class's
// position in the pattern, assigned by the analyzer). Evaluation happens
// against an EvalInput view: one primitive-event slot per class (possibly
// null when the class is unbound, e.g. a negated class with no negating
// instance) plus an optional Kleene group.
#ifndef ZSTREAM_EXPR_EXPR_H_
#define ZSTREAM_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/event.h"

namespace zstream {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : char {
  kLiteral,
  kAttrRef,    // class.field
  kTimeRef,    // class.ts (the event's timestamp)
  kIsNull,     // true when the slot of a class is unbound
  kUnary,      // NOT, negate
  kBinary,     // comparisons, arithmetic, AND/OR
  kAggregate,  // sum/avg/count/min/max over a Kleene group attribute
};

enum class BinaryOp : char {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparison
  kAnd, kOr,                     // logic
  kAdd, kSub, kMul, kDiv, kMod,  // arithmetic
};

enum class UnaryOp : char { kNot, kNegate };

enum class AggFn : char { kSum, kAvg, kCount, kMin, kMax };

const char* BinaryOpName(BinaryOp op);
const char* AggFnName(AggFn fn);
Result<AggFn> AggFnFromName(const std::string& name);

/// \brief Flat view of a composite record for expression evaluation.
///
/// `slots[i]` is the primitive event bound to pattern class i (or null).
/// `group` holds the events of the Kleene-closure class `group_class`
/// when the pattern has one.
struct EvalInput {
  const EventPtr* slots = nullptr;
  int num_slots = 0;
  const std::vector<EventPtr>* group = nullptr;
  int group_class = -1;

  const EventPtr& slot(int i) const { return slots[i]; }
};

/// \brief Immutable expression node.
class Expr {
 public:
  // -- constructors ---------------------------------------------------
  static ExprPtr Literal(Value v);
  static ExprPtr AttrRef(int class_idx, int field_idx, std::string class_name,
                         std::string field_name);
  static ExprPtr TimeRef(int class_idx, std::string class_name);
  static ExprPtr IsNull(int class_idx, std::string class_name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Aggregate(AggFn fn, int class_idx, int field_idx,
                           std::string class_name, std::string field_name);

  /// Returns a copy of `expr` carrying 1-based source coordinates.
  /// Locations are advisory: they only feed diagnostics (ZS-T codes from
  /// verify/typecheck), never evaluation, so 0/0 (unknown) is always safe.
  static ExprPtr WithLocation(const ExprPtr& expr, int line, int column);

  ExprKind kind() const { return kind_; }

  // 1-based source position of the originating token; 0 when unknown
  // (e.g. expressions built via exprs:: helpers or PatternBuilder).
  int line() const { return line_; }
  int column() const { return column_; }

  // -- accessors (valid per kind) --------------------------------------
  const Value& literal() const { return literal_; }
  int class_idx() const { return class_idx_; }
  int field_idx() const { return field_idx_; }
  const std::string& class_name() const { return class_name_; }
  const std::string& field_name() const { return field_name_; }
  BinaryOp binary_op() const { return bin_op_; }
  UnaryOp unary_op() const { return un_op_; }
  AggFn agg_fn() const { return agg_fn_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& operand() const { return left_; }

  /// Evaluates against a record view. Unbound slots surface as nulls;
  /// any null input makes comparisons/arithmetic yield null; AND/OR use
  /// three-valued logic. A predicate "passes" iff the result IsTruthy().
  Value Eval(const EvalInput& input) const;

  /// Evaluates and converts to a predicate outcome.
  bool EvalPredicate(const EvalInput& input) const {
    return Eval(input).IsTruthy();
  }

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  int class_idx_ = -1;
  int field_idx_ = -1;
  std::string class_name_;
  std::string field_name_;
  BinaryOp bin_op_ = BinaryOp::kEq;
  UnaryOp un_op_ = UnaryOp::kNot;
  AggFn agg_fn_ = AggFn::kSum;
  ExprPtr left_;
  ExprPtr right_;
  int line_ = 0;
  int column_ = 0;
};

// Terse construction helpers (used heavily by tests and benchmarks).
namespace exprs {

inline ExprPtr Lit(Value v) { return Expr::Literal(std::move(v)); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value(v)); }
inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value(v)); }
inline ExprPtr Lit(int v) { return Expr::Literal(Value(v)); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value(v)); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr a) {
  return Expr::Unary(UnaryOp::kNot, std::move(a));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}

}  // namespace exprs

}  // namespace zstream

#endif  // ZSTREAM_EXPR_EXPR_H_
