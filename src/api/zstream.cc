#include "api/zstream.h"

namespace zstream {

Result<PhysicalPlan> BuildPlan(const PatternPtr& pattern,
                               const CompileOptions& options) {
  switch (options.strategy) {
    case PlanStrategy::kLeftDeep:
      return LeftDeepPlan(*pattern);
    case PlanStrategy::kRightDeep:
      return RightDeepPlan(*pattern);
    case PlanStrategy::kShape:
      return PlanFromShape(*pattern, options.shape);
    case PlanStrategy::kNegationTop:
      return NegationTopPlan(*pattern);
    case PlanStrategy::kOptimal: {
      const StatsCatalog defaults(pattern->num_classes(),
                                  static_cast<double>(pattern->window));
      const StatsCatalog& stats =
          options.stats.has_value() ? *options.stats : defaults;
      Planner planner(pattern, &stats, options.planner);
      return planner.OptimalPlan();
    }
  }
  return Status::Internal("unknown plan strategy");
}

void CompiledQuery::Push(const EventPtr& event) {
  if (partitioned_ != nullptr) {
    partitioned_->Push(event);
  } else {
    engine_->Push(event);
  }
}

void CompiledQuery::Finish() {
  if (partitioned_ != nullptr) {
    partitioned_->Finish();
  } else {
    engine_->Finish();
  }
}

void CompiledQuery::SetMatchCallback(Engine::MatchCallback cb) {
  if (partitioned_ != nullptr) {
    partitioned_->SetMatchCallback(std::move(cb));
  } else {
    engine_->SetMatchCallback(std::move(cb));
  }
}

uint64_t CompiledQuery::num_matches() const {
  return partitioned_ != nullptr ? partitioned_->num_matches()
                                 : engine_->num_matches();
}

std::string CompiledQuery::Explain() const {
  std::string out = plan_.Explain(*pattern_);
  if (partitioned_ != nullptr) {
    out += " [hash-partitioned on " + pattern_->partition->field_name + "]";
  }
  return out;
}

MemoryTracker& CompiledQuery::memory() {
  return partitioned_ != nullptr ? partitioned_->memory()
                                 : engine_->memory();
}

Result<PatternPtr> ZStream::Analyze(const std::string& text,
                                    const AnalyzerOptions& options) const {
  return AnalyzeQuery(text, schema_, options);
}

Result<std::unique_ptr<CompiledQuery>> ZStream::Compile(
    const std::string& text, const CompileOptions& options) const {
  ZS_ASSIGN_OR_RETURN(PatternPtr pattern,
                      AnalyzeQuery(text, schema_, options.analyzer));
  ZS_ASSIGN_OR_RETURN(PhysicalPlan plan, BuildPlan(pattern, options));

  auto query = std::unique_ptr<CompiledQuery>(new CompiledQuery());
  query->pattern_ = pattern;
  query->plan_ = plan;
  if (pattern->partition.has_value()) {
    ZS_ASSIGN_OR_RETURN(
        query->partitioned_,
        PartitionedEngine::Create(pattern, plan, options.engine));
  } else {
    ZS_ASSIGN_OR_RETURN(query->engine_,
                        Engine::Create(pattern, plan, options.engine));
  }
  return query;
}

}  // namespace zstream
