#include "api/zstream.h"

#include <sstream>

#include "obs/trace.h"
#include "opt/cost_model.h"
#include "query/error_codes.h"
#include "query/parser.h"
#include "verify/plan_verifier.h"
#include "verify/typecheck.h"

namespace zstream {

Result<PhysicalPlan> BuildPlan(const PatternPtr& pattern,
                               const CompileOptions& options) {
  // Every compiled query flows through here, so this is where static
  // verification gates the pipeline: expressions first (ZS-T), then the
  // produced plan (ZS-V) — whichever strategy built it.
  ZS_RETURN_IF_ERROR(verify::TypecheckPattern(*pattern));
  const StatsCatalog defaults(pattern->num_classes(),
                              static_cast<double>(pattern->window));
  const StatsCatalog& stats =
      options.stats.has_value() ? *options.stats : defaults;
  PhysicalPlan plan;
  switch (options.strategy) {
    case PlanStrategy::kLeftDeep:
      plan = LeftDeepPlan(*pattern);
      break;
    case PlanStrategy::kRightDeep:
      plan = RightDeepPlan(*pattern);
      break;
    case PlanStrategy::kShape: {
      ZS_ASSIGN_OR_RETURN(plan, PlanFromShape(*pattern, options.shape));
      break;
    }
    case PlanStrategy::kNegationTop:
      plan = NegationTopPlan(*pattern);
      break;
    case PlanStrategy::kOptimal: {
      Planner planner(pattern, &stats, options.planner);
      // The planner verifies its own output; no second pass here.
      return planner.OptimalPlan();
    }
  }
  if (plan.root == nullptr) {
    return Status::Internal("unknown plan strategy");
  }
  ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern, plan));
  // Fixed shapes: cost them under the same statistics the optimizer
  // would use, so Explain() always reports a comparable number.
  const CostModel model(pattern.get(), &stats,
                        options.planner.cost_params);
  plan.estimated_cost = model.PlanCost(plan);
  return plan;
}

// ---------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------

void Query::Push(const EventPtr& event) { core()->Push(event); }

void Query::Finish() { core()->Finish(); }

void Query::SetMatchCallback(MatchCallback cb) {
  core()->SetMatchCallback(std::move(cb));
}

uint64_t Query::num_matches() const {
  return partitioned_ != nullptr ? partitioned_->num_matches()
                                 : engine_->num_matches();
}

std::string Query::Explain() const {
  std::ostringstream os;
  os << "stream=" << stream_ << " plan=" << plan_.Explain(*pattern_)
     << " cost=";
  os.precision(6);
  os << plan_.estimated_cost
     << " stats=" << (stats_provided_ ? "provided" : "uniform-defaults");
  if (partitioned_ != nullptr) {
    os << " [hash-partitioned on " << pattern_->partition->field_name
       << "]";
  }
  return os.str();
}

std::string Query::CurrentPlan() const {
  return partitioned_ != nullptr ? partitioned_->ExplainPlan()
                                 : engine_->ExplainPlan();
}

std::string Query::ExplainAnalyze() const {
  return partitioned_ != nullptr ? partitioned_->ExplainAnalyze()
                                 : engine_->ExplainAnalyze();
}

uint64_t Query::plan_switches() const {
  return partitioned_ != nullptr ? partitioned_->plan_switches()
                                 : engine_->plan_switches();
}

MemoryTracker& Query::memory() {
  return partitioned_ != nullptr ? partitioned_->memory()
                                 : engine_->memory();
}

// ---------------------------------------------------------------------
// ZStream
// ---------------------------------------------------------------------

ZStream::ZStream(SchemaPtr input_schema) {
  // A constructor-supplied schema is trusted the way the old
  // single-schema facade trusted it; Catalog rejects only null/empty.
  const Status st = catalog_.CreateStream("default", std::move(input_schema));
  (void)st;
}

Result<PatternPtr> ZStream::Analyze(const std::string& text,
                                    const AnalyzerOptions& options) const {
  return Analyze("default", text, options);
}

Result<PatternPtr> ZStream::Analyze(const std::string& stream_name,
                                    const std::string& text,
                                    const AnalyzerOptions& options) const {
  ZS_ASSIGN_OR_RETURN(SchemaPtr schema, catalog_.stream(stream_name));
  return AnalyzeQuery(text, schema, options);
}

Result<std::unique_ptr<Query>> ZStream::CompileParsed(
    const std::string& stream_name, const ParsedQuery& parsed,
    const CompileOptions& options) const {
  ZS_ASSIGN_OR_RETURN(SchemaPtr schema, catalog_.stream(stream_name));
  ZS_ASSIGN_OR_RETURN(PatternPtr pattern,
                      zstream::Analyze(parsed, schema, options.analyzer));
  ZS_ASSIGN_OR_RETURN(PhysicalPlan plan, BuildPlan(pattern, options));

  auto query = std::unique_ptr<Query>(new Query());
  query->stream_ = stream_name;
  query->pattern_ = pattern;
  query->plan_ = plan;
  query->stats_provided_ = options.stats.has_value();
  if (pattern->partition.has_value()) {
    ZS_ASSIGN_OR_RETURN(
        query->partitioned_,
        PartitionedEngine::Create(pattern, plan, options.engine));
  } else {
    ZS_ASSIGN_OR_RETURN(query->engine_,
                        Engine::Create(pattern, plan, options.engine));
  }
  return query;
}

Result<std::unique_ptr<Query>> ZStream::Compile(
    const std::string& stream_name, const std::string& text,
    const CompileOptions& options) const {
  ZS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  return CompileParsed(stream_name, parsed, options);
}

Result<std::unique_ptr<Query>> ZStream::Compile(
    const std::string& text, const CompileOptions& options) const {
  return Compile("default", text, options);
}

Result<std::unique_ptr<Query>> ZStream::Compile(
    const PatternBuilder& builder, const CompileOptions& options) const {
  ZS_ASSIGN_OR_RETURN(ParsedQuery parsed, builder.Build());
  return CompileParsed(builder.stream(), parsed, options);
}

Result<Query*> ZStream::query(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + name + "'")
        .WithErrorCode(errc::kCatalogUnknownQuery);
  }
  return it->second.get();
}

Result<DdlResult> ZStream::Execute(const std::string& statement,
                                   const CompileOptions& options) {
  ZS_ASSIGN_OR_RETURN(DdlStatement stmt, ParseDdl(statement));
  DdlResult result;
  result.kind = stmt.kind;
  switch (stmt.kind) {
    case DdlKind::kCreateStream: {
      ZS_RETURN_IF_ERROR(
          catalog_.CreateStream(stmt.name, Schema::Make(stmt.fields)));
      result.name = stmt.name;
      result.message = "stream '" + stmt.name + "' created";
      return result;
    }
    case DdlKind::kCreateQuery:
    case DdlKind::kSelect: {
      std::string name = stmt.name;
      std::string stream = stmt.stream;
      if (stmt.kind == DdlKind::kSelect) {
        stream = "default";
        do {
          name = "q" + std::to_string(next_anon_query_++);
        } while (catalog_.HasQuery(name));
      } else if (catalog_.HasQuery(name)) {
        return Status::InvalidArgument("query '" + name +
                                       "' already exists")
            .WithErrorCode(errc::kCatalogDuplicateQuery);
      }
      ZS_ASSIGN_OR_RETURN(std::unique_ptr<Query> compiled,
                          CompileParsed(stream, *stmt.query, options));
      compiled->name_ = name;
      // Metric labels and slow-event logs identify the query by its
      // catalog name (unless the caller already chose a label).
      if (options.engine.label.empty()) compiled->core()->SetLabel(name);
      ZS_RETURN_IF_ERROR(catalog_.AddQuery(QueryInfo{
          name, stream, stmt.query_text, compiled->pattern_}));
      result.name = name;
      result.query = compiled.get();
      queries_[name] = std::move(compiled);
      result.message = "query '" + name + "' registered on stream '" +
                       stream + "'";
      return result;
    }
    case DdlKind::kDropQuery: {
      ZS_RETURN_IF_ERROR(catalog_.DropQuery(stmt.name));
      queries_.erase(stmt.name);
      result.name = stmt.name;
      result.message = "query '" + stmt.name + "' dropped";
      return result;
    }
    case DdlKind::kDropStream: {
      ZS_RETURN_IF_ERROR(catalog_.DropStream(stmt.name));
      result.name = stmt.name;
      result.message = "stream '" + stmt.name + "' dropped";
      return result;
    }
    case DdlKind::kExplainTrace: {
      auto it = queries_.find(stmt.name);
      if (it == queries_.end()) {
        return Status::NotFound("no query named '" + stmt.name + "'")
            .WithErrorCode(errc::kCatalogUnknownQuery)
            .WithLocation(stmt.name_line, stmt.name_column);
      }
      result.name = stmt.name;
      result.query = it->second.get();
      // Provenance is keyed by the engine label, which defaults to the
      // catalog name (SetLabel above); the tracer is process-global, so
      // this sees served-runtime matches too.
      result.message =
          obs::Tracer::Global().RenderProvenance(stmt.name);
      return result;
    }
    case DdlKind::kShowPlan:
    case DdlKind::kExplainAnalyze: {
      auto it = queries_.find(stmt.name);
      if (it == queries_.end()) {
        return Status::NotFound("no query named '" + stmt.name + "'")
            .WithErrorCode(errc::kCatalogUnknownQuery)
            .WithLocation(stmt.name_line, stmt.name_column);
      }
      result.name = stmt.name;
      result.query = it->second.get();
      result.message = stmt.kind == DdlKind::kExplainAnalyze
                           ? it->second->ExplainAnalyze()
                           : it->second->Explain();
      return result;
    }
    case DdlKind::kShowStreams: {
      result.stream_names = catalog_.StreamNames();
      result.message = catalog_.DescribeStreams();
      return result;
    }
    case DdlKind::kShowQueries: {
      result.rows = catalog_.queries();
      result.message = catalog_.DescribeQueries();
      return result;
    }
  }
  return Status::Internal("unknown DDL statement kind");
}

}  // namespace zstream
