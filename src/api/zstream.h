// Public facade: compile a query string, push events, receive matches.
//
//   zstream::ZStream zs(zstream::StockSchema());
//   auto query = zs.Compile(
//       "PATTERN IBM;Sun;Oracle WHERE IBM.price > Sun.price "
//       "WITHIN 200 RETURN IBM, Sun, Oracle");
//   (*query)->SetMatchCallback([](zstream::Match&& m) { ... });
//   for (const auto& e : events) (*query)->Push(e);
//   (*query)->Finish();
//
// Compile() runs parse -> rewrite -> analyze -> optimize -> instantiate.
// Plans come from the cost-based planner by default; fixed shapes
// (left-deep, right-deep, or an explicit shape string) are available for
// experiments, as are adaptivity and the NFA-free execution engine
// internals via CompiledQuery accessors.
#ifndef ZSTREAM_API_ZSTREAM_H_
#define ZSTREAM_API_ZSTREAM_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "exec/partitioned_engine.h"
#include "opt/planner.h"
#include "query/analyzer.h"

namespace zstream {

namespace runtime {
class StreamRuntime;
struct RuntimeOptions;
}  // namespace runtime

enum class PlanStrategy : char {
  kOptimal,    // cost-based DP (Algorithm 5)
  kLeftDeep,
  kRightDeep,
  kShape,      // explicit shape string, see PlanFromShape()
  kNegationTop,  // negation as a top filter (Section 6.4's Plan 2)
};

struct CompileOptions {
  PlanStrategy strategy = PlanStrategy::kOptimal;
  std::string shape;  // for PlanStrategy::kShape
  EngineOptions engine;
  AnalyzerOptions analyzer;
  /// Statistics for the cost-based planner; when absent, uniform
  /// defaults are used (rate 1, selectivity defaults).
  std::optional<StatsCatalog> stats;
  PlannerOptions planner;
};

/// \brief A compiled, runnable query (partitioned automatically when the
/// analyzer found a full-coverage equality key).
class CompiledQuery {
 public:
  void Push(const EventPtr& event);
  void Finish();
  void SetMatchCallback(Engine::MatchCallback cb);

  uint64_t num_matches() const;
  const Pattern& pattern() const { return *pattern_; }
  const PhysicalPlan& plan() const { return plan_; }
  std::string Explain() const;
  MemoryTracker& memory();
  bool partitioned() const { return partitioned_ != nullptr; }

  /// Single-partition engine (null when partitioned).
  Engine* engine() { return engine_.get(); }
  PartitionedEngine* partitioned_engine() { return partitioned_.get(); }

  /// The uniform shard-facing interface over whichever engine backs this
  /// query (see exec/engine_core.h).
  EngineCore* core() {
    return partitioned_ != nullptr ? static_cast<EngineCore*>(
                                         partitioned_.get())
                                   : engine_.get();
  }

 private:
  friend class ZStream;
  PatternPtr pattern_;
  PhysicalPlan plan_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<PartitionedEngine> partitioned_;
};

/// \brief Entry point bound to one input stream schema.
class ZStream {
 public:
  explicit ZStream(SchemaPtr input_schema)
      : schema_(std::move(input_schema)) {}

  /// Parses, analyzes, plans and instantiates `text`.
  Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& text, const CompileOptions& options = {}) const;

  /// Analyze only (no engine); useful for planning experiments.
  Result<PatternPtr> Analyze(const std::string& text,
                             const AnalyzerOptions& options = {}) const;

  /// Starts a concurrent sharded runtime (src/runtime/) with one input
  /// stream named "default" bound to this ZStream's schema. Register
  /// queries with StreamRuntime::RegisterQuery; implemented in
  /// src/runtime/zstream_facade.cc so the api layer keeps no runtime
  /// dependency. The overload without options uses RuntimeOptions{}.
  Result<std::unique_ptr<runtime::StreamRuntime>> StartRuntime(
      const runtime::RuntimeOptions& options) const;
  Result<std::unique_ptr<runtime::StreamRuntime>> StartRuntime() const;

  const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
};

/// Builds the physical plan for `pattern` under `options` (shared by
/// Compile and by benchmarks that instantiate engines directly).
Result<PhysicalPlan> BuildPlan(const PatternPtr& pattern,
                               const CompileOptions& options);

}  // namespace zstream

#endif  // ZSTREAM_API_ZSTREAM_H_
