// Public facade: a catalog of named streams + named queries, a DDL
// command layer, and opaque Query handles.
//
//   zstream::ZStream zs;
//   zs.Execute("CREATE STREAM stock "
//              "(id INT, name STRING, price DOUBLE, volume INT, ts INT)");
//   auto ddl = zs.Execute(
//       "CREATE QUERY rally ON stock AS "
//       "PATTERN IBM;Sun;Oracle WHERE IBM.price > Sun.price "
//       "WITHIN 200 RETURN IBM, Sun, Oracle");
//   zstream::Query* query = ddl->query;
//   query->SetMatchCallback([](zstream::Match&& m) { ... });
//   for (const auto& e : events) query->Push(e);
//   query->Finish();
//
// Ad-hoc compilation works against any catalog stream, from text or
// from a typed PatternBuilder (api/pattern_builder.h):
//
//   auto q1 = zs.Compile("stock", "PATTERN A;B WITHIN 10");
//   auto q2 = zs.Compile(PatternBuilder(Seq("A", "B")).On("stock")
//                            .Within(10));
//
// Compile() runs parse -> rewrite -> analyze -> optimize -> instantiate.
// Plans come from the cost-based planner by default; fixed shapes
// (left-deep, right-deep, or an explicit shape string) are available for
// experiments via CompileOptions. Query handles are opaque: no raw
// engine pointers (diagnostic internals live behind
// api/internal.h's QueryAccess).
#ifndef ZSTREAM_API_ZSTREAM_H_
#define ZSTREAM_API_ZSTREAM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/catalog.h"
#include "api/pattern_builder.h"
#include "exec/engine.h"
#include "exec/partitioned_engine.h"
#include "opt/planner.h"
#include "query/analyzer.h"
#include "query/ddl.h"
#include "runtime/runtime_options.h"

namespace zstream {

namespace runtime {
class StreamRuntime;
}  // namespace runtime

namespace internal {
struct QueryAccess;
}  // namespace internal

enum class PlanStrategy : char {
  kOptimal,    // cost-based DP (Algorithm 5)
  kLeftDeep,
  kRightDeep,
  kShape,      // explicit shape string, see PlanFromShape()
  kNegationTop,  // negation as a top filter (Section 6.4's Plan 2)
};

struct CompileOptions {
  PlanStrategy strategy = PlanStrategy::kOptimal;
  std::string shape;  // for PlanStrategy::kShape
  EngineOptions engine;
  AnalyzerOptions analyzer;
  /// Statistics for the cost-based planner; when absent, uniform
  /// defaults are used (rate 1, selectivity defaults).
  std::optional<StatsCatalog> stats;
  PlannerOptions planner;
};

/// \brief An opaque, runnable compiled query (partitioned automatically
/// when the analyzer found a full-coverage equality key).
class Query {
 public:
  void Push(const EventPtr& event);
  void Finish();
  void SetMatchCallback(MatchCallback cb);

  uint64_t num_matches() const;
  const Pattern& pattern() const { return *pattern_; }
  const PhysicalPlan& plan() const { return plan_; }
  /// Catalog name ("" for ad-hoc Compile()d queries).
  const std::string& name() const { return name_; }
  /// Name of the stream this query was compiled against.
  const std::string& stream() const { return stream_; }

  /// One line: stream name, plan shape, estimated cost under the
  /// planning statistics, and whether those stats came from
  /// CompileOptions::stats or were uniform defaults, e.g.
  ///   "stream=stock plan=[[A ; B] ; C] cost=42.7 stats=provided"
  std::string Explain() const;

  /// The live plan shape (tracks adaptive plan switches, unlike plan()
  /// which is the compile-time choice) and the number of switches.
  std::string CurrentPlan() const;
  uint64_t plan_switches() const;

  /// The live plan tree annotated with per-node counters and timings
  /// (EXPLAIN ANALYZE; see exec/node_profile.h for the row format).
  std::string ExplainAnalyze() const;

  MemoryTracker& memory();
  bool partitioned() const { return partitioned_ != nullptr; }

 private:
  friend class ZStream;
  friend struct internal::QueryAccess;

  Query() = default;

  /// The uniform shard-facing interface over whichever engine backs
  /// this query (see exec/engine_core.h). Internal: reach it through
  /// internal::QueryAccess.
  EngineCore* core() {
    return partitioned_ != nullptr
               ? static_cast<EngineCore*>(partitioned_.get())
               : engine_.get();
  }

  std::string name_;
  std::string stream_;
  PatternPtr pattern_;
  PhysicalPlan plan_;
  bool stats_provided_ = false;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<PartitionedEngine> partitioned_;
};

/// \brief Outcome of one ZStream::Execute statement.
struct DdlResult {
  DdlKind kind = DdlKind::kSelect;
  /// The stream/query name the statement acted on ("" for SHOW
  /// STREAMS/QUERIES). For kSelect this is the auto-generated query
  /// name.
  std::string name;
  /// kCreateQuery / kSelect / kShowPlan: the registered handle, owned
  /// by the ZStream session (valid until DROP QUERY / session
  /// destruction).
  Query* query = nullptr;
  /// Human-readable summary; SHOW statements put their listing here
  /// (SHOW PLAN: the query's Explain() text).
  std::string message;
  /// kShowQueries: one entry per catalog query.
  std::vector<QueryInfo> rows;
  /// kShowStreams: the catalog's stream names.
  std::vector<std::string> stream_names;
};

/// \brief A session: a catalog of named streams plus the compiled
/// queries registered against them.
class ZStream {
 public:
  /// Empty catalog; populate with Execute("CREATE STREAM ...") or
  /// catalog().CreateStream(...).
  ZStream() = default;

  /// Convenience: a catalog holding one stream named "default" — the
  /// single-schema sessions used throughout the paper reproduction.
  explicit ZStream(SchemaPtr input_schema);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Executes one DDL statement (CREATE STREAM / CREATE QUERY / DROP
  /// QUERY / DROP STREAM / SHOW STREAMS / SHOW QUERIES / SHOW PLAN
  /// <query> / EXPLAIN [ANALYZE | TRACE] <query>). A bare
  /// `PATTERN ...` query text is also accepted: it compiles against
  /// stream "default" and registers under an auto-generated name.
  /// `options` applies to statements that compile a query.
  Result<DdlResult> Execute(const std::string& statement,
                            const CompileOptions& options = {});

  /// Handle of a query registered by CREATE QUERY (owned by this
  /// session).
  Result<Query*> query(const std::string& name);

  /// Parses, analyzes, plans and instantiates `text` against the named
  /// stream's schema.
  Result<std::unique_ptr<Query>> Compile(
      const std::string& stream_name, const std::string& text,
      const CompileOptions& options = {}) const;

  /// Same, against stream "default".
  Result<std::unique_ptr<Query>> Compile(
      const std::string& text, const CompileOptions& options = {}) const;

  /// Compiles a typed PatternBuilder query against its On() stream
  /// (default "default"). Equivalent to compiling
  /// builder.ToQueryString() — same analysis, plan and matches.
  Result<std::unique_ptr<Query>> Compile(
      const PatternBuilder& builder,
      const CompileOptions& options = {}) const;

  /// Analyze only (no engine); useful for planning experiments.
  Result<PatternPtr> Analyze(const std::string& text,
                             const AnalyzerOptions& options = {}) const;
  Result<PatternPtr> Analyze(const std::string& stream_name,
                             const std::string& text,
                             const AnalyzerOptions& options) const;

  /// Starts a concurrent sharded runtime (src/runtime/) with every
  /// catalog stream bound under its catalog name. Register queries with
  /// StreamRuntime::RegisterQuery; implemented in
  /// src/runtime/zstream_facade.cc so the api layer keeps no runtime
  /// link dependency.
  Result<std::unique_ptr<runtime::StreamRuntime>> StartRuntime(
      const runtime::RuntimeOptions& options = {}) const;

  /// Schema of stream "default" (legacy single-stream accessor; null
  /// when the catalog has no such stream).
  SchemaPtr schema() const { return catalog_.stream("default").ValueOr(nullptr); }

 private:
  Result<std::unique_ptr<Query>> CompileParsed(
      const std::string& stream_name, const ParsedQuery& parsed,
      const CompileOptions& options) const;

  Catalog catalog_;
  std::unordered_map<std::string, std::unique_ptr<Query>> queries_;
  int next_anon_query_ = 1;
};

/// Builds the physical plan for `pattern` under `options` (shared by
/// Compile and by benchmarks that instantiate engines directly). Always
/// fills PhysicalPlan::estimated_cost, costing fixed shapes with the
/// same statistics the optimal strategy would use.
Result<PhysicalPlan> BuildPlan(const PatternPtr& pattern,
                               const CompileOptions& options);

}  // namespace zstream

#endif  // ZSTREAM_API_ZSTREAM_H_
