// Internal access to Query's engine objects. The public surface keeps
// Query opaque (no raw Engine*/PartitionedEngine* escapes api/); code
// that legitimately needs the executor — the runtime layer's
// diagnostics, white-box tests, ablation benchmarks — goes through this
// header instead, so every such use is greppable.
#ifndef ZSTREAM_API_INTERNAL_H_
#define ZSTREAM_API_INTERNAL_H_

#include "api/zstream.h"

namespace zstream::internal {

struct QueryAccess {
  /// The uniform shard-facing interface (exec/engine_core.h).
  static EngineCore* Core(Query& query) { return query.core(); }

  /// The single-partition engine (null when the query is partitioned).
  static Engine* SingleEngine(Query& query) { return query.engine_.get(); }

  /// The hash-partitioned engine (null when not partitioned).
  static PartitionedEngine* Partitioned(Query& query) {
    return query.partitioned_.get();
  }
};

}  // namespace zstream::internal

#endif  // ZSTREAM_API_INTERNAL_H_
