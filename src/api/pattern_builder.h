// Typed, fluent construction of pattern queries — the programmatic twin
// of the query language. Everything expressible as a string is
// constructible here, and ToQueryString() round-trips back to parseable
// text:
//
//   using namespace zstream;
//   auto q = PatternBuilder(Seq("T1", "T2", "T3"))
//                .On("stock")
//                .Where(Attr("T1", "name") == Attr("T3", "name"))
//                .Where(Attr("T1", "price") > 1.2 * Attr("T2", "price"))
//                .Within(200)
//                .Return(Ref("T1"))
//                .Return(Sum("T2", "volume"));
//   auto query = zs.Compile(q);           // same engine path as strings
//   std::string text = q.ToQueryString(); // "PATTERN (T1;T2;T3) WHERE ..."
//
// Builders produce the parse-level AST (query/ast.h), so analysis,
// planning and execution are byte-for-byte the code path the parser
// feeds — builder-built and string-compiled queries yield identical
// plans and match sets by construction.
#ifndef ZSTREAM_API_PATTERN_BUILDER_H_
#define ZSTREAM_API_PATTERN_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"

namespace zstream {

// ---------------------------------------------------------------------
// Pattern structure
// ---------------------------------------------------------------------

/// \brief A pattern-structure expression (one ParseNode). Implicitly
/// constructible from a string: "IBM" is the event class aliased IBM.
class PatternExpr {
 public:
  /*implicit*/ PatternExpr(const char* alias)  // NOLINT
      : node_(ParseNode::Class(alias)) {}
  /*implicit*/ PatternExpr(std::string alias)  // NOLINT
      : node_(ParseNode::Class(std::move(alias))) {}
  explicit PatternExpr(ParseNodePtr node) : node_(std::move(node)) {}

  /// Kleene closure markers: A*, A+, A^n.
  PatternExpr Star() const;
  PatternExpr Plus() const;
  PatternExpr Times(int count) const;

  const ParseNodePtr& node() const { return node_; }

 private:
  ParseNodePtr node_;
};

namespace builder_internal {
PatternExpr Nary(ParseOp op, std::vector<PatternExpr> parts);
}

/// SEQ: a ; b ; ...   (temporal order)
template <typename... Rest>
PatternExpr Seq(PatternExpr a, PatternExpr b, Rest... rest) {
  return builder_internal::Nary(ParseOp::kSeq,
                                {std::move(a), std::move(b), rest...});
}

/// DISJ: a | b | ...
template <typename... Rest>
PatternExpr Or(PatternExpr a, PatternExpr b, Rest... rest) {
  return builder_internal::Nary(ParseOp::kDisj,
                                {std::move(a), std::move(b), rest...});
}

/// CONJ: a & b & ...
template <typename... Rest>
PatternExpr And(PatternExpr a, PatternExpr b, Rest... rest) {
  return builder_internal::Nary(ParseOp::kConj,
                                {std::move(a), std::move(b), rest...});
}

/// Negation: !a.
PatternExpr Neg(PatternExpr a);

/// Kleene closure; kStar by default, or kPlus / kCount (with `count`).
PatternExpr Kleene(PatternExpr a, KleeneKind kind = KleeneKind::kStar,
                   int count = 0);

// ---------------------------------------------------------------------
// Predicates / RETURN items
// ---------------------------------------------------------------------

/// \brief A typed WHERE/RETURN expression (one UExpr). Numeric and
/// string literals convert implicitly, so `Attr("A", "price") > 50`
/// and `1.2 * Attr("B", "price")` read naturally.
class ExprBuilder {
 public:
  /*implicit*/ ExprBuilder(int v)  // NOLINT
      : node_(UExpr::Lit(Value(static_cast<int64_t>(v)))) {}
  /*implicit*/ ExprBuilder(int64_t v) : node_(UExpr::Lit(Value(v))) {}  // NOLINT
  /*implicit*/ ExprBuilder(double v) : node_(UExpr::Lit(Value(v))) {}  // NOLINT
  /*implicit*/ ExprBuilder(const char* v)  // NOLINT
      : node_(UExpr::Lit(Value(v))) {}
  /*implicit*/ ExprBuilder(std::string v)  // NOLINT
      : node_(UExpr::Lit(Value(std::move(v)))) {}
  explicit ExprBuilder(UExprPtr node) : node_(std::move(node)) {}

  const UExprPtr& node() const { return node_; }

 private:
  UExprPtr node_;
};

/// Attribute reference: alias.field.
ExprBuilder Attr(std::string alias, std::string field);
/// Bare class reference (RETURN items: all attributes of the class).
ExprBuilder Ref(std::string alias);
/// Explicit literal (usually unnecessary — literals convert implicitly).
ExprBuilder Lit(Value v);

/// Aggregates over the Kleene-closure group.
ExprBuilder Sum(std::string alias, std::string field);
ExprBuilder Avg(std::string alias, std::string field);
ExprBuilder Min(std::string alias, std::string field);
ExprBuilder Max(std::string alias, std::string field);
ExprBuilder Count(std::string alias);

ExprBuilder operator==(ExprBuilder l, ExprBuilder r);
ExprBuilder operator!=(ExprBuilder l, ExprBuilder r);
ExprBuilder operator<(ExprBuilder l, ExprBuilder r);
ExprBuilder operator<=(ExprBuilder l, ExprBuilder r);
ExprBuilder operator>(ExprBuilder l, ExprBuilder r);
ExprBuilder operator>=(ExprBuilder l, ExprBuilder r);
ExprBuilder operator+(ExprBuilder l, ExprBuilder r);
ExprBuilder operator-(ExprBuilder l, ExprBuilder r);
ExprBuilder operator*(ExprBuilder l, ExprBuilder r);
ExprBuilder operator/(ExprBuilder l, ExprBuilder r);
ExprBuilder operator%(ExprBuilder l, ExprBuilder r);
ExprBuilder operator&&(ExprBuilder l, ExprBuilder r);
ExprBuilder operator||(ExprBuilder l, ExprBuilder r);
ExprBuilder operator!(ExprBuilder operand);
ExprBuilder operator-(ExprBuilder operand);

// ---------------------------------------------------------------------
// The query builder
// ---------------------------------------------------------------------

/// \brief Assembles a full query: pattern + WHERE + WITHIN + RETURN,
/// plus the target stream name for catalog-based compilation.
class PatternBuilder {
 public:
  explicit PatternBuilder(PatternExpr pattern);

  /// Target stream in the catalog (default "default").
  PatternBuilder& On(std::string stream_name);
  /// Adds a WHERE conjunct (multiple calls AND together).
  PatternBuilder& Where(ExprBuilder predicate);
  /// The WITHIN window, in internal time units (1 unit == 1 ms).
  PatternBuilder& Within(Duration window);
  /// Adds one RETURN item (multiple calls build the projection list).
  PatternBuilder& Return(ExprBuilder item);

  const std::string& stream() const { return stream_; }

  /// The parse-level query; InvalidArgument until Within() was set.
  Result<ParsedQuery> Build() const;

  /// Canonical, reparseable query text (see query/unparser.cc);
  /// compiling it is equivalent to compiling the builder directly.
  std::string ToQueryString() const;

 private:
  std::string stream_ = "default";
  ParsedQuery query_;
};

}  // namespace zstream

#endif  // ZSTREAM_API_PATTERN_BUILDER_H_
