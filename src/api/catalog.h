// The catalog: named event streams and named queries.
//
// A Catalog is the registry behind the public API's session model
// (ZStream owns one; StreamRuntime binds its input streams from one):
// each *stream* is a (name, schema) pair, each *query* is a named,
// parsed pattern query attached to one stream. The catalog itself is
// metadata only — compiled engines live in the session (ZStream) or the
// runtime, keyed by the same names — so it is cheap to copy and
// inspect.
//
// Populated programmatically (CreateStream/AddQuery) or through the DDL
// layer (`CREATE STREAM ...`, `CREATE QUERY ... ON ... AS ...`,
// executed by ZStream::Execute). Errors carry the stable ZS-Sxxxx codes
// from query/error_codes.h.
#ifndef ZSTREAM_API_CATALOG_H_
#define ZSTREAM_API_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "plan/pattern.h"

namespace zstream {

/// \brief Metadata for one named query in the catalog.
struct QueryInfo {
  std::string name;
  std::string stream;   // owning stream's name
  std::string text;     // query text (PATTERN ... WITHIN ...)
  PatternPtr pattern;   // analyzed form (set when registered compiled)
};

/// \brief Named streams + named queries. Insertion order is preserved
/// (StartRuntime binds streams in catalog order, SHOW lists follow it).
class Catalog {
 public:
  Status CreateStream(const std::string& name, SchemaPtr schema);
  Status DropStream(const std::string& name);
  Result<SchemaPtr> stream(const std::string& name) const;
  bool HasStream(const std::string& name) const;
  std::vector<std::string> StreamNames() const;
  int num_streams() const { return static_cast<int>(streams_.size()); }

  Status AddQuery(QueryInfo info);
  Status DropQuery(const std::string& name);
  Result<QueryInfo> query(const std::string& name) const;
  bool HasQuery(const std::string& name) const;
  const std::vector<QueryInfo>& queries() const { return queries_; }

  /// One line per stream: "stock (sym STRING, price INT, ...)".
  std::string DescribeStreams() const;
  /// One line per query: "q1 ON stock: PATTERN ...".
  std::string DescribeQueries() const;

 private:
  struct StreamEntry {
    std::string name;
    SchemaPtr schema;
  };
  std::vector<StreamEntry> streams_;
  std::vector<QueryInfo> queries_;
};

}  // namespace zstream

#endif  // ZSTREAM_API_CATALOG_H_
