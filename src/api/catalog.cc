#include "api/catalog.h"

#include <sstream>

#include "query/ddl.h"
#include "query/error_codes.h"

namespace zstream {

Status Catalog::CreateStream(const std::string& name, SchemaPtr schema) {
  if (name.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  if (schema == nullptr || schema->num_fields() == 0) {
    return Status::InvalidArgument("stream '" + name +
                                   "' needs a non-empty schema");
  }
  if (HasStream(name)) {
    return Status::InvalidArgument("stream '" + name + "' already exists")
        .WithErrorCode(errc::kCatalogDuplicateStream);
  }
  streams_.push_back(StreamEntry{name, std::move(schema)});
  return Status::OK();
}

Status Catalog::DropStream(const std::string& name) {
  for (const QueryInfo& q : queries_) {
    if (q.stream == name) {
      return Status::FailedPrecondition("stream '" + name +
                                        "' still has query '" + q.name + "'")
          .WithErrorCode(errc::kCatalogStreamInUse);
    }
  }
  for (auto it = streams_.begin(); it != streams_.end(); ++it) {
    if (it->name == name) {
      streams_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no stream named '" + name + "'")
      .WithErrorCode(errc::kCatalogUnknownStream);
}

Result<SchemaPtr> Catalog::stream(const std::string& name) const {
  for (const StreamEntry& e : streams_) {
    if (e.name == name) return e.schema;
  }
  return Status::NotFound("no stream named '" + name + "'")
      .WithErrorCode(errc::kCatalogUnknownStream);
}

bool Catalog::HasStream(const std::string& name) const {
  for (const StreamEntry& e : streams_) {
    if (e.name == name) return true;
  }
  return false;
}

std::vector<std::string> Catalog::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const StreamEntry& e : streams_) names.push_back(e.name);
  return names;
}

Status Catalog::AddQuery(QueryInfo info) {
  if (info.name.empty()) {
    return Status::InvalidArgument("query name must not be empty");
  }
  if (HasQuery(info.name)) {
    return Status::InvalidArgument("query '" + info.name +
                                   "' already exists")
        .WithErrorCode(errc::kCatalogDuplicateQuery);
  }
  if (!HasStream(info.stream)) {
    return Status::NotFound("no stream named '" + info.stream + "'")
        .WithErrorCode(errc::kCatalogUnknownStream);
  }
  queries_.push_back(std::move(info));
  return Status::OK();
}

Status Catalog::DropQuery(const std::string& name) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if (it->name == name) {
      queries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no query named '" + name + "'")
      .WithErrorCode(errc::kCatalogUnknownQuery);
}

Result<QueryInfo> Catalog::query(const std::string& name) const {
  for (const QueryInfo& q : queries_) {
    if (q.name == name) return q;
  }
  return Status::NotFound("no query named '" + name + "'")
      .WithErrorCode(errc::kCatalogUnknownQuery);
}

bool Catalog::HasQuery(const std::string& name) const {
  for (const QueryInfo& q : queries_) {
    if (q.name == name) return true;
  }
  return false;
}

std::string Catalog::DescribeStreams() const {
  std::ostringstream os;
  for (const StreamEntry& e : streams_) {
    os << e.name << " (";
    for (int i = 0; i < e.schema->num_fields(); ++i) {
      if (i > 0) os << ", ";
      const Field& f = e.schema->field(i);
      os << f.name << " " << DdlTypeName(f.type);
    }
    os << ")\n";
  }
  return os.str();
}

std::string Catalog::DescribeQueries() const {
  std::ostringstream os;
  for (const QueryInfo& q : queries_) {
    os << q.name << " ON " << q.stream << ": " << q.text << "\n";
  }
  return os.str();
}

}  // namespace zstream
