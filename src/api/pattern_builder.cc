#include "api/pattern_builder.h"

namespace zstream {

// ---------------------------------------------------------------------
// Pattern structure
// ---------------------------------------------------------------------

PatternExpr PatternExpr::Star() const {
  return PatternExpr(ParseNode::Kleene(node_, KleeneKind::kStar, 0));
}

PatternExpr PatternExpr::Plus() const {
  return PatternExpr(ParseNode::Kleene(node_, KleeneKind::kPlus, 0));
}

PatternExpr PatternExpr::Times(int count) const {
  return PatternExpr(ParseNode::Kleene(node_, KleeneKind::kCount, count));
}

namespace builder_internal {

PatternExpr Nary(ParseOp op, std::vector<PatternExpr> parts) {
  std::vector<ParseNodePtr> kids;
  kids.reserve(parts.size());
  for (PatternExpr& p : parts) kids.push_back(p.node());
  return PatternExpr(ParseNode::Make(op, std::move(kids)));
}

}  // namespace builder_internal

PatternExpr Neg(PatternExpr a) {
  return PatternExpr(ParseNode::Neg(a.node()));
}

PatternExpr Kleene(PatternExpr a, KleeneKind kind, int count) {
  return PatternExpr(ParseNode::Kleene(a.node(), kind, count));
}

// ---------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------

ExprBuilder Attr(std::string alias, std::string field) {
  return ExprBuilder(UExpr::Attr(std::move(alias), std::move(field)));
}

ExprBuilder Ref(std::string alias) {
  return ExprBuilder(UExpr::Attr(std::move(alias), ""));
}

ExprBuilder Lit(Value v) { return ExprBuilder(UExpr::Lit(std::move(v))); }

ExprBuilder Sum(std::string alias, std::string field) {
  return ExprBuilder(UExpr::Agg("sum", std::move(alias), std::move(field)));
}
ExprBuilder Avg(std::string alias, std::string field) {
  return ExprBuilder(UExpr::Agg("avg", std::move(alias), std::move(field)));
}
ExprBuilder Min(std::string alias, std::string field) {
  return ExprBuilder(UExpr::Agg("min", std::move(alias), std::move(field)));
}
ExprBuilder Max(std::string alias, std::string field) {
  return ExprBuilder(UExpr::Agg("max", std::move(alias), std::move(field)));
}
ExprBuilder Count(std::string alias) {
  return ExprBuilder(UExpr::Agg("count", std::move(alias), ""));
}

namespace {
ExprBuilder Bin(BinaryOp op, ExprBuilder l, ExprBuilder r) {
  return ExprBuilder(UExpr::Binary(op, l.node(), r.node()));
}
}  // namespace

ExprBuilder operator==(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprBuilder operator!=(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kNe, std::move(l), std::move(r));
}
ExprBuilder operator<(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kLt, std::move(l), std::move(r));
}
ExprBuilder operator<=(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kLe, std::move(l), std::move(r));
}
ExprBuilder operator>(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kGt, std::move(l), std::move(r));
}
ExprBuilder operator>=(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kGe, std::move(l), std::move(r));
}
ExprBuilder operator+(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kAdd, std::move(l), std::move(r));
}
ExprBuilder operator-(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kSub, std::move(l), std::move(r));
}
ExprBuilder operator*(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kMul, std::move(l), std::move(r));
}
ExprBuilder operator/(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kDiv, std::move(l), std::move(r));
}
ExprBuilder operator%(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kMod, std::move(l), std::move(r));
}
ExprBuilder operator&&(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprBuilder operator||(ExprBuilder l, ExprBuilder r) {
  return Bin(BinaryOp::kOr, std::move(l), std::move(r));
}
ExprBuilder operator!(ExprBuilder operand) {
  return ExprBuilder(UExpr::Unary(UnaryOp::kNot, operand.node()));
}
ExprBuilder operator-(ExprBuilder operand) {
  return ExprBuilder(UExpr::Unary(UnaryOp::kNegate, operand.node()));
}

// ---------------------------------------------------------------------
// PatternBuilder
// ---------------------------------------------------------------------

PatternBuilder::PatternBuilder(PatternExpr pattern) {
  query_.pattern = pattern.node();
}

PatternBuilder& PatternBuilder::On(std::string stream_name) {
  stream_ = std::move(stream_name);
  return *this;
}

PatternBuilder& PatternBuilder::Where(ExprBuilder predicate) {
  query_.where = query_.where == nullptr
                     ? predicate.node()
                     : UExpr::Binary(BinaryOp::kAnd, query_.where,
                                     predicate.node());
  return *this;
}

PatternBuilder& PatternBuilder::Within(Duration window) {
  query_.window = window;
  return *this;
}

PatternBuilder& PatternBuilder::Return(ExprBuilder item) {
  query_.return_items.push_back(item.node());
  return *this;
}

Result<ParsedQuery> PatternBuilder::Build() const {
  if (query_.window <= 0) {
    return Status::InvalidArgument(
        "PatternBuilder needs Within(...) before Build()");
  }
  return query_;
}

std::string PatternBuilder::ToQueryString() const {
  return zstream::ToQueryString(query_);
}

}  // namespace zstream
