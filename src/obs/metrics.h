// Process-wide metrics registry (ROADMAP item 5).
//
// Everything here is built for a hot path that never reads its own
// instruments: writes are single relaxed atomic RMWs (or plain stores),
// there are no locks after registration, and instrument pointers stay
// valid for the registry's lifetime, so call sites hoist the lookup out
// of their loops. Scrapes (Prometheus text or JSON) take the registry
// mutex only to walk the family index; they read the live atomics
// without stopping writers, so a scrape is a consistent-enough snapshot
// rather than a linearizable one — the standard Prometheus contract.
//
// Histograms are log2-bucketed: bucket i counts observations with
// value < 2^(i+1), covering [1, 2^31) in 32 buckets plus a +Inf bucket.
// Quantiles interpolate within the winning bucket, so p99 error is
// bounded by the bucket's width (a factor of 2 worst case) — adequate
// for latency triage, cheap enough for the ingest path.
//
// Building with -DZSTREAM_OBS_STRIPPED removes the per-node engine
// instrumentation hooks (see exec/) for the overhead A/B in
// bench_obs_overhead; the registry itself stays available.
#ifndef ZSTREAM_OBS_METRICS_H_
#define ZSTREAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"

namespace zstream::obs {

/// Monotonic wall clock in nanoseconds — the time base for every
/// duration metric (per-node eval time, detection latency, slow-event
/// thresholds).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Sorted (key, value) pairs identifying one series within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotone counter; Inc is one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the absolute value — for mirroring a monotone counter
  /// maintained elsewhere (shard atomics, connection tallies) into the
  /// registry at scrape time. Callers must preserve monotonicity.
  void Store(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Settable instantaneous value (queue depth, buffer bytes).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Lock-free log2-bucketed histogram.
///
/// Values are dimensionless uint64s; the owning family's `scale` maps
/// them to Prometheus base units at exposition time (e.g. record
/// nanoseconds, scale = 1e-9 to expose seconds).
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;  // plus the implicit +Inf bucket

  void Observe(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Index of the bucket counting `value`: smallest i with
  /// value < 2^(i+1); values >= 2^32 land in the last bucket.
  static int BucketOf(uint64_t value);

  /// Exclusive upper bound of bucket i (2^(i+1)); the last bucket
  /// reports UINT64_MAX and renders as le="+Inf".
  static uint64_t UpperBound(int i);

  /// \brief Point-in-time copy (reads the live atomics, relaxed).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Quantile estimate in raw (unscaled) units, interpolating
    /// linearly within the winning bucket. Returns 0 when empty.
    double Quantile(double q) const;
  };
  Snapshot snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

enum class MetricType : char { kCounter, kGauge, kHistogram };

/// \brief Named, labeled instrument index with dual exposition.
///
/// GetX registers (or finds) the series under (name, labels) and
/// returns a pointer that remains valid until the registry is
/// destroyed; instruments live in deques, so registration never moves
/// them. Re-registering with a different type or help string is an
/// error in spirit; the first registration wins.
class Registry {
 public:
  Registry() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(Registry);

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  /// `scale` converts raw observed values to Prometheus base units at
  /// exposition time (both text and JSON).
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "", double scale = 1.0);

  /// Prometheus text exposition format 0.0.4 (families sorted by name,
  /// series by label string, `# HELP` / `# TYPE` once per family).
  std::string RenderPrometheus() const;

  /// Stable JSON: {"name": {"type": ..., "help": ..., "series": [
  /// {"labels": {...}, "value": N} | {..., "count", "sum", "p50",
  /// "p95", "p99"}]}} with the same deterministic ordering.
  std::string RenderJson() const;

  /// The process-wide registry used by layers with no better home for
  /// their counters (planner, verifier, adaptive controller).
  static Registry& Default();

 private:
  struct Series {
    Labels labels;
    std::string label_key;  // canonical serialized labels (sort key)
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    double scale = 1.0;
    std::map<std::string, Series> series;  // keyed by label_key
  };

  Series* GetSeries(const std::string& name, const Labels& labels,
                    const std::string& help, MetricType type, double scale);

  mutable zs::Mutex mu_;
  std::map<std::string, Family> families_ ZS_GUARDED_BY(mu_);
  // Instrument storage: deques never relocate elements, so pointers
  // handed out under mu_ stay valid without further locking (the
  // instruments themselves are relaxed atomics, deliberately unguarded).
  std::deque<Counter> counters_ ZS_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ ZS_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ ZS_GUARDED_BY(mu_);
};

/// Canonical `{a="b",c="d"}` rendering ("" when empty) used for both
/// sort keys and Prometheus output; values are escaped per exposition
/// rules (backslash, double-quote, newline).
std::string RenderLabels(const Labels& labels);

}  // namespace zstream::obs

#endif  // ZSTREAM_OBS_METRICS_H_
