// Post-mortem flight recorder (ISSUE 9).
//
// The tracer's per-lane rings always hold the most recent window of
// spans (old slots are overwritten). The flight recorder turns that
// window into a durable artifact: a Chrome-trace JSON file written to a
// configured dump directory. Dumps fire three ways:
//
//   - on demand (tests, future admin surface) via Dump();
//   - on slow-event detection via TriggerDump(), rate-limited so a
//     storm of slow events produces one snapshot per interval, wired
//     into the engine's slow_event_ns path (exec/engine.cc);
//   - on fatal signal in zstream_server via InstallSignalHandler().
//     Rendering JSON from a signal handler is not async-signal-safe;
//     this is a deliberate best-effort last gasp on a path that is
//     about to crash anyway — the handler re-raises the default
//     disposition afterwards so the crash still reports normally.
//
// Under ZSTREAM_OBS_STRIPPED the recorder still compiles and dumps
// (the document is just empty of spans), matching the tracer's strip
// contract: hot paths carry no instrumentation, cold tooling survives.
#ifndef ZSTREAM_OBS_FLIGHT_RECORDER_H_
#define ZSTREAM_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "common/sync.h"

namespace zstream::obs {

class FlightRecorder {
 public:
  FlightRecorder() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(FlightRecorder);

  static FlightRecorder& Global();

  /// Arms the recorder: dumps land in `dump_dir` (created if missing),
  /// and TriggerDump() fires at most once per `min_interval_ns`.
  /// An empty dump_dir disarms it.
  void Configure(std::string dump_dir,
                 uint64_t min_interval_ns = 1'000'000'000);

  bool armed() const;

  /// Renders the tracer's current rings to
  /// `<dump_dir>/trace-<reason>-<seq>.json` and returns the path.
  /// Fails when unarmed or the file cannot be written.
  Result<std::string> Dump(const std::string& reason);

  /// Rate-limited fire-and-forget Dump for hot-adjacent callers (the
  /// slow-event path). Cheap when unarmed or inside the rate window:
  /// one relaxed load + compare. `reason` must be a literal-ish token
  /// safe for a filename ([a-z0-9-]).
  void TriggerDump(const char* reason);

  /// Installs SIGSEGV/SIGABRT/SIGBUS handlers that attempt one dump
  /// (reason "signal") and then re-raise with the default disposition.
  /// Call once from zstream_server main after Configure.
  static void InstallSignalHandler();

  /// Completed dumps since Configure (test observability).
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  mutable zs::Mutex mu_;
  std::string dump_dir_ ZS_GUARDED_BY(mu_);
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> min_interval_ns_{1'000'000'000};
  std::atomic<uint64_t> last_dump_ns_{0};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> dumps_{0};
};

}  // namespace zstream::obs

#endif  // ZSTREAM_OBS_FLIGHT_RECORDER_H_
