// Sampled end-to-end event tracing (ISSUE 9).
//
// A trace follows one sampled ingest batch through every layer an event
// crosses: client Ingest -> wire frame -> server decode -> shard MPSC
// queue -> reorder -> per-operator evaluation -> match assembly ->
// fanout -> client delivery, plus control-plane spans for replan
// evaluations and plan switches. The design goals mirror metrics.h:
//
//   - Recording a span is lock-free and allocation-free: one relaxed
//     fetch_add to claim a ring slot plus eight relaxed word stores.
//     Steady-state tracing never allocates on the hot path (the rings
//     are sized once at Configure), so hotpath_lint.py stays green.
//   - Every span lives in a fixed-size per-lane ring buffer. Lane 0 is
//     the control/net lane (client, server accept loop, replanner);
//     lane 1+s belongs to shard worker s. Old spans are overwritten, so
//     the rings always hold the most recent window — that is the flight
//     recorder's data source (see flight_recorder.h).
//   - Readers (GET /trace, EXPLAIN TRACE, flight-recorder dumps) scan
//     the live rings without stopping writers. A slot being overwritten
//     mid-read can yield a torn span; export validates each candidate
//     (kind in range, end >= start, nonzero trace id) and drops the
//     rest. Like a metrics scrape, the result is consistent-enough, not
//     linearizable.
//   - Sampling is a deterministic 1-in-N decision per ingest batch
//     (relaxed counter), so tests can reason about exactly which
//     batches carry a trace. trace id 0 means "not sampled" everywhere.
//
// Propagation uses two thread-locals (current trace id + current lane)
// set by the shard worker around each dispatched event, so the engine
// and NFA interfaces stay untouched. Under -DZSTREAM_OBS_STRIPPED the
// helpers below compile to constant no-ops and every call site folds
// away; the Tracer object itself stays linkable (it just never records)
// so tools and the server build unchanged, mirroring the metrics
// registry's strip contract.
#ifndef ZSTREAM_OBS_TRACE_H_
#define ZSTREAM_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"

namespace zstream::obs {

/// Span taxonomy — one kind per pipeline stage (docs/tracing.md).
/// Values are stable: they appear in dumped Chrome JSON and in the
/// per-kind reconciliation counters tests assert on.
enum class SpanKind : uint8_t {
  kIngest = 0,     // client-side batch assembly + send
  kWireDecode,     // server frame payload decode
  kQueueWait,      // shard MPSC queue residency (enqueue -> dequeue)
  kReorder,        // reorder-buffer residency
  kExec,           // one engine assembly round (whole batch iterator)
  kOperator,       // one physical operator evaluation within a round
  kMatch,          // match emission (root buffer drain)
  kFanout,         // server -> subscriber fanout
  kDeliver,        // client-side match delivery
  kReplan,         // one adaptive replan evaluation
  kPlanSwitch,     // an installed plan change
  kNumKinds,       // sentinel, not a span kind
};

/// Stable lower-case name ("ingest", "wire_decode", ...) used as the
/// Chrome-trace event name prefix and in docs.
const char* SpanKindName(SpanKind kind);

/// \brief One completed span: 64 bytes, trivially copyable.
///
/// `arg` is kind-specific (event id for kMatch, shard for kQueueWait,
/// plan fingerprint for kPlanSwitch, ...); `name` is a NUL-padded label
/// (operator name, query label) small enough to stay inline.
struct Span {
  uint64_t trace_id = 0;  // 0 marks an empty/invalid slot
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg = 0;
  uint32_t lane = 0;
  uint8_t kind = 0;
  char name[27] = {};
};
static_assert(sizeof(Span) == 64, "Span must stay one cache line");

/// \brief Match provenance for one sampled match: which events, which
/// operator path, which plan. Fixed-size so recording never allocates.
struct MatchProvenance {
  static constexpr int kMaxEvents = 8;
  uint64_t trace_id = 0;
  uint64_t plan_fingerprint = 0;
  int64_t match_start_ts = 0;
  int64_t match_end_ts = 0;
  uint32_t num_events = 0;  // total contributors (may exceed kMaxEvents)
  std::array<uint64_t, kMaxEvents> event_ids{};
  std::array<int64_t, kMaxEvents> event_ts{};
  char label[32] = {};    // query label (metrics/spans join key)
  char op_path[96] = {};  // compact operator path, e.g. "SEQ(S>M)>NEG"
};

struct TraceOptions {
  /// 0 = tracing off, 1 = every batch, N = every Nth batch.
  uint32_t sample_every = 0;
  /// Span slots per lane; rounded up to a power of two. 8192 slots =
  /// 512 KiB per lane.
  size_t ring_slots = 8192;
  /// Lane count: 1 control/net lane + one per shard worker.
  uint32_t num_lanes = 9;
};

/// \brief Process-wide span recorder: per-lane lock-free rings, the
/// sampling decision, trace-id allocation, and the provenance ring.
class Tracer {
 public:
  Tracer() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(Tracer);

  /// The process-wide tracer. Like Registry::Default(): one instance,
  /// shared by client and server code linked into the same process.
  static Tracer& Global();

  /// (Re)allocates the rings and arms sampling. Not hot-path safe:
  /// call at startup or between test phases, not while writers record.
  void Configure(const TraceOptions& opts);

  /// Tracing is enabled once Configure() armed a nonzero sample rate.
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Per-ingest-batch sampling decision: returns a fresh trace id for
  /// every sample_every-th call (deterministic), 0 otherwise/when off.
  uint64_t SampleBatch();

  /// Unconditional fresh trace id (control-plane spans: replan, plan
  /// switch, flight-recorder markers). Returns 0 when tracing is off.
  uint64_t NewTraceId();

  /// Records one completed span into `lane`'s ring. Lock-free,
  /// allocation-free; out-of-range lanes clamp to lane 0. `name` may
  /// be nullptr; it is truncated to the inline buffer.
  ZS_HOT void Record(uint32_t lane, SpanKind kind, uint64_t trace_id,
                     uint64_t start_ns, uint64_t end_ns, const char* name,
                     uint64_t arg = 0);

  /// Records provenance for one sampled match (mutex-guarded ring of
  /// kProvenanceSlots entries; cold path — matches are rare and only
  /// sampled ones arrive here).
  void RecordProvenance(const MatchProvenance& p);

  /// Provenance entries for `label` (most recent last); all entries
  /// when `label` is empty.
  std::vector<MatchProvenance> ProvenanceFor(const std::string& label) const;

  /// Human-readable provenance report for EXPLAIN TRACE <query>.
  std::string RenderProvenance(const std::string& label) const;

  /// Total spans recorded for `kind` since Configure/Reset — exact
  /// (incremented with the ring write), unlike the rings themselves
  /// which overwrite. Tests reconcile these against shard/sink totals.
  uint64_t KindCount(SpanKind kind) const {
    return kind_counts_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t spans_recorded() const {
    return spans_recorded_.load(std::memory_order_relaxed);
  }
  /// Ingest batches that passed the sampling decision.
  uint64_t batches_sampled() const {
    return batches_sampled_.load(std::memory_order_relaxed);
  }

  /// All currently-valid spans, oldest-first per lane. Torn or empty
  /// slots are filtered (see file comment).
  std::vector<Span> CollectSpans() const;

  /// chrome://tracing / Perfetto JSON document: one complete ("ph":"X")
  /// event per span with lane rendered as tid, plus thread_name
  /// metadata records naming the lanes. Always a valid JSON object,
  /// even when no spans were recorded.
  std::string RenderChromeJson() const;

  /// Drops all spans, counters, provenance, and the sampling cursor;
  /// keeps the configured rings. Test isolation only.
  void Reset();

  uint32_t num_lanes() const { return num_lanes_; }

 private:
  // Eight atomic words per slot: a Span is memcpy-packed into the words
  // and stored/loaded with relaxed operations, which keeps concurrent
  // overwrite + scan well-defined for TSan (torn reads yield garbage
  // values, never UB) at zero synchronization cost.
  struct alignas(64) SpanSlot {
    std::atomic<uint64_t> w[8];
  };
  struct Lane {
    std::unique_ptr<SpanSlot[]> slots;
    std::atomic<uint64_t> head{0};  // total writes; slot = head & mask
  };

  static constexpr size_t kProvenanceSlots = 256;

  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> batch_counter_{0};
  std::atomic<uint64_t> batches_sampled_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> spans_recorded_{0};
  std::array<std::atomic<uint64_t>, static_cast<size_t>(SpanKind::kNumKinds)>
      kind_counts_{};
  uint64_t epoch_ = 0;  // set once in Global(); makes ids process-unique

  // Ring storage. Written once by Configure before writers start; the
  // pointer array itself is then read-only (the atomics inside do the
  // synchronization), matching the registry's pointer-stability rule.
  std::unique_ptr<Lane[]> lanes_;
  uint32_t num_lanes_ = 0;
  size_t slot_mask_ = 0;

  mutable zs::Mutex prov_mu_;
  std::array<MatchProvenance, kProvenanceSlots> prov_ ZS_GUARDED_BY(prov_mu_);
  size_t prov_head_ ZS_GUARDED_BY(prov_mu_) = 0;

  friend class TracerTestPeer;
};

// ---------------------------------------------------------------------------
// Hot-path helpers + thread-local trace propagation. These are the only
// symbols instrumented code calls directly; under ZSTREAM_OBS_STRIPPED
// they are constant no-ops and the instrumentation folds away.
// ---------------------------------------------------------------------------
#ifndef ZSTREAM_OBS_STRIPPED

namespace trace_internal {
// constinit lets the compiler access the TLS slots directly instead of
// through the thread-wrapper function an extern thread_local otherwise
// requires — GCC resolves the wrapper's weak symbol to null under
// -fsanitize=undefined, turning every access into a null store/load.
extern thread_local constinit uint64_t tls_trace_id;
extern thread_local constinit uint32_t tls_lane;
}  // namespace trace_internal

/// Trace id attached to the work the current thread is executing
/// (0 = untraced). Set by the shard worker around each event dispatch.
inline uint64_t CurrentTraceId() { return trace_internal::tls_trace_id; }
inline void SetCurrentTrace(uint64_t id) {
  trace_internal::tls_trace_id = id;
}
/// Ring lane for spans recorded by the current thread (0 = control).
inline uint32_t CurrentLane() { return trace_internal::tls_lane; }
inline void SetCurrentLane(uint32_t lane) { trace_internal::tls_lane = lane; }

/// Per-batch sampling decision (see Tracer::SampleBatch).
inline uint64_t TraceSampleBatch() { return Tracer::Global().SampleBatch(); }

/// Records a completed span if `trace_id` is nonzero. The untraced
/// fast path is one register test.
ZS_HOT inline void TraceRecord(uint32_t lane, SpanKind kind,
                               uint64_t trace_id, uint64_t start_ns,
                               uint64_t end_ns, const char* name,
                               uint64_t arg = 0) {
  if (trace_id == 0) return;
  Tracer::Global().Record(lane, kind, trace_id, start_ns, end_ns, name, arg);
}

inline bool TraceEnabled() { return Tracer::Global().enabled(); }

#else  // ZSTREAM_OBS_STRIPPED

inline constexpr uint64_t CurrentTraceId() { return 0; }
inline void SetCurrentTrace(uint64_t) {}
inline constexpr uint32_t CurrentLane() { return 0; }
inline void SetCurrentLane(uint32_t) {}
inline uint64_t TraceSampleBatch() { return 0; }
inline void TraceRecord(uint32_t, SpanKind, uint64_t, uint64_t, uint64_t,
                        const char*, uint64_t = 0) {}
inline constexpr bool TraceEnabled() { return false; }

#endif  // ZSTREAM_OBS_STRIPPED

/// FNV-1a 64-bit — the plan fingerprint hash (engine Build hashes the
/// plan's Explain rendering; EXPLAIN TRACE and kPlanSwitch spans carry
/// the result so a match is attributable to the exact plan shape that
/// produced it, even after an adaptive switch).
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}
inline uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

/// Bounded NUL-padded copy into a fixed char buffer (Span::name,
/// MatchProvenance fields). Never allocates.
template <size_t N>
inline void CopyLabel(char (&dst)[N], const char* src) {
  size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < N && src[i] != '\0'; ++i) dst[i] = src[i];
  }
  for (; i < N; ++i) dst[i] = '\0';
}

}  // namespace zstream::obs

#endif  // ZSTREAM_OBS_TRACE_H_
