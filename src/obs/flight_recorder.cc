#include "obs/flight_recorder.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <csignal>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace zstream::obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(std::string dump_dir,
                               uint64_t min_interval_ns) {
  if (!dump_dir.empty()) {
    // Best effort; Dump reports the real error if the directory is
    // still unusable when a snapshot fires.
    ::mkdir(dump_dir.c_str(), 0755);
  }
  zs::MutexLock lock(mu_);
  dump_dir_ = std::move(dump_dir);
  min_interval_ns_.store(min_interval_ns, std::memory_order_relaxed);
  last_dump_ns_.store(0, std::memory_order_relaxed);
  armed_.store(!dump_dir_.empty(), std::memory_order_relaxed);
}

bool FlightRecorder::armed() const {
  return armed_.load(std::memory_order_relaxed);
}

Result<std::string> FlightRecorder::Dump(const std::string& reason) {
  std::string dir;
  {
    zs::MutexLock lock(mu_);
    dir = dump_dir_;
  }
  if (dir.empty()) {
    return Status::FailedPrecondition(
        "flight recorder not armed (no dump directory configured)");
  }
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  char name[96];
  std::snprintf(name, sizeof(name), "trace-%s-%llu.json", reason.c_str(),
                static_cast<unsigned long long>(seq));
  std::string path = dir + "/" + name;
  std::string doc = Tracer::Global().RenderChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("flight recorder cannot write " + path);
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Internal("flight recorder short write to " + path);
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return path;
}

void FlightRecorder::TriggerDump(const char* reason) {
  if (!armed_.load(std::memory_order_relaxed)) return;
  uint64_t now = MonotonicNanos();
  uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
  if (last != 0 &&
      now - last < min_interval_ns_.load(std::memory_order_relaxed)) {
    return;
  }
  // One winner per window; losers skip (another dump is in flight).
  if (!last_dump_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return;
  }
  (void)Dump(reason == nullptr ? "trigger" : reason);
}

namespace {

void FatalSignalHandler(int sig) {
  // Not async-signal-safe by design — see the header. Re-arm the
  // default disposition first so a second fault inside the dump still
  // terminates the process instead of recursing.
  std::signal(sig, SIG_DFL);
  (void)FlightRecorder::Global().Dump("signal");
  std::raise(sig);
}

}  // namespace

void FlightRecorder::InstallSignalHandler() {
  std::signal(SIGSEGV, FatalSignalHandler);
  std::signal(SIGABRT, FatalSignalHandler);
  std::signal(SIGBUS, FatalSignalHandler);
}

}  // namespace zstream::obs
