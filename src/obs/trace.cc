#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace zstream::obs {

namespace {

// Round up to a power of two, minimum 64 slots so the mask math and
// wraparound tests stay meaningful even with tiny test configs.
size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

// JSON string escaping for span names. Names come from fixed inline
// buffers that a torn ring read can fill with arbitrary bytes, so
// anything outside printable ASCII is replaced rather than escaped.
void AppendJsonString(std::string* out, const char* s, size_t max_len) {
  out->push_back('"');
  for (size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
    char c = s[i];
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c >= 0x20 && c < 0x7f) {
      out->push_back(c);
    } else {
      out->push_back('?');
    }
  }
  out->push_back('"');
}

void AppendHex(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  out->append(buf);
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIngest:
      return "ingest";
    case SpanKind::kWireDecode:
      return "wire_decode";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kReorder:
      return "reorder";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kOperator:
      return "operator";
    case SpanKind::kMatch:
      return "match";
    case SpanKind::kFanout:
      return "fanout";
    case SpanKind::kDeliver:
      return "deliver";
    case SpanKind::kReplan:
      return "replan";
    case SpanKind::kPlanSwitch:
      return "plan_switch";
    case SpanKind::kNumKinds:
      break;
  }
  return "unknown";
}

#ifndef ZSTREAM_OBS_STRIPPED
namespace trace_internal {
thread_local constinit uint64_t tls_trace_id = 0;
thread_local constinit uint32_t tls_lane = 0;
}  // namespace trace_internal
#endif

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    // Top bits of the id space come from the clock so ids stay unique
    // across server restarts sharing one dump directory; low 40 bits
    // are the in-process counter.
    t->epoch_ = (MonotonicNanos() & 0x3fffffull) << 40;
    return t;
  }();
  return *tracer;
}

void Tracer::Configure(const TraceOptions& opts) {
  uint32_t lanes = std::max<uint32_t>(1, opts.num_lanes);
  size_t slots = RoundUpPow2(std::max<size_t>(1, opts.ring_slots));
  // Reallocate only when the geometry changes; Configure must happen
  // before writers start (or between test phases), see header.
  if (lanes_ == nullptr || lanes != num_lanes_ || slots != slot_mask_ + 1) {
    auto fresh = std::make_unique<Lane[]>(lanes);
    for (uint32_t l = 0; l < lanes; ++l) {
      fresh[l].slots = std::make_unique<SpanSlot[]>(slots);
      for (size_t i = 0; i < slots; ++i) {
        for (auto& w : fresh[l].slots[i].w) {
          w.store(0, std::memory_order_relaxed);
        }
      }
    }
    lanes_ = std::move(fresh);
    num_lanes_ = lanes;
    slot_mask_ = slots - 1;
  }
  sample_every_.store(opts.sample_every, std::memory_order_relaxed);
}

uint64_t Tracer::SampleBatch() {
  uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return 0;
  uint64_t n = batch_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return 0;
  batches_sampled_.fetch_add(1, std::memory_order_relaxed);
  return epoch_ | next_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NewTraceId() {
  if (!enabled()) return 0;
  return epoch_ | next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(uint32_t lane, SpanKind kind, uint64_t trace_id,
                    uint64_t start_ns, uint64_t end_ns, const char* name,
                    uint64_t arg) {
  if (lanes_ == nullptr || trace_id == 0) return;
  if (lane >= num_lanes_) lane = 0;
  Span s;
  s.trace_id = trace_id;
  s.start_ns = start_ns;
  s.end_ns = end_ns >= start_ns ? end_ns : start_ns;
  s.arg = arg;
  s.lane = lane;
  s.kind = static_cast<uint8_t>(kind);
  CopyLabel(s.name, name);
  uint64_t words[8];
  static_assert(sizeof(words) == sizeof(Span), "Span packs into 8 words");
  std::memcpy(words, &s, sizeof(s));
  Lane& l = lanes_[lane];
  uint64_t idx = l.head.fetch_add(1, std::memory_order_relaxed) & slot_mask_;
  SpanSlot& slot = l.slots[idx];
  for (int i = 0; i < 8; ++i) {
    slot.w[i].store(words[i], std::memory_order_relaxed);
  }
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
  kind_counts_[static_cast<size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

void Tracer::RecordProvenance(const MatchProvenance& p) {
  zs::MutexLock lock(prov_mu_);
  prov_[prov_head_ % kProvenanceSlots] = p;
  ++prov_head_;
}

std::vector<MatchProvenance> Tracer::ProvenanceFor(
    const std::string& label) const {
  std::vector<MatchProvenance> out;
  zs::MutexLock lock(prov_mu_);
  size_t count = std::min(prov_head_, kProvenanceSlots);
  size_t first = prov_head_ - count;
  for (size_t i = first; i < prov_head_; ++i) {
    const MatchProvenance& p = prov_[i % kProvenanceSlots];
    if (p.trace_id == 0) continue;
    if (!label.empty() && label != p.label) continue;
    out.push_back(p);
  }
  return out;
}

std::string Tracer::RenderProvenance(const std::string& label) const {
  std::vector<MatchProvenance> entries = ProvenanceFor(label);
  std::string out;
  if (entries.empty()) {
    out = "no sampled match provenance for ";
    out += label.empty() ? "any query" : ("'" + label + "'");
    out +=
        " (tracing off, sampling missed the matches, or none emitted yet)\n";
    return out;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu sampled match(es)", entries.size());
  out += buf;
  out += label.empty() ? "" : " for '" + label + "'";
  out += ":\n";
  for (const MatchProvenance& p : entries) {
    out += "  match trace=";
    AppendHex(&out, p.trace_id);
    out += " query=";
    out.append(p.label, strnlen(p.label, sizeof(p.label)));
    out += " plan=";
    AppendHex(&out, p.plan_fingerprint);
    std::snprintf(buf, sizeof(buf), " span=[%lld,%lld]",
                  static_cast<long long>(p.match_start_ts),
                  static_cast<long long>(p.match_end_ts));
    out += buf;
    out += "\n    path: ";
    out.append(p.op_path, strnlen(p.op_path, sizeof(p.op_path)));
    std::snprintf(buf, sizeof(buf), "\n    events (%u):", p.num_events);
    out += buf;
    uint32_t shown =
        std::min<uint32_t>(p.num_events, MatchProvenance::kMaxEvents);
    for (uint32_t i = 0; i < shown; ++i) {
      std::snprintf(buf, sizeof(buf), " id=%" PRIu64 "@%lld",
                    p.event_ids[i], static_cast<long long>(p.event_ts[i]));
      out += buf;
    }
    if (p.num_events > shown) out += " ...";
    out += "\n";
  }
  return out;
}

std::vector<Span> Tracer::CollectSpans() const {
  std::vector<Span> out;
  if (lanes_ == nullptr) return out;
  for (uint32_t lane = 0; lane < num_lanes_; ++lane) {
    const Lane& l = lanes_[lane];
    uint64_t head = l.head.load(std::memory_order_relaxed);
    uint64_t count = std::min<uint64_t>(head, slot_mask_ + 1);
    for (uint64_t seq = head - count; seq < head; ++seq) {
      const SpanSlot& slot = l.slots[seq & slot_mask_];
      uint64_t words[8];
      for (int i = 0; i < 8; ++i) {
        words[i] = slot.w[i].load(std::memory_order_relaxed);
      }
      Span s;
      std::memcpy(&s, words, sizeof(s));
      // Validate: a slot being overwritten mid-read can be torn; drop
      // anything that fails the invariants writers always establish.
      if (s.trace_id == 0) continue;
      if (s.kind >= static_cast<uint8_t>(SpanKind::kNumKinds)) continue;
      if (s.end_ns < s.start_ns) continue;
      if (s.lane != lane) continue;
      out.push_back(s);
    }
  }
  return out;
}

std::string Tracer::RenderChromeJson() const {
  std::vector<Span> spans = CollectSpans();
  std::string out;
  out.reserve(256 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[96];
  // Lane-naming metadata so Perfetto shows readable track names.
  for (uint32_t lane = 0; lane < num_lanes_; ++lane) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", lane);
    out += buf;
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (lane == 0) {
      out += "control/net";
    } else {
      std::snprintf(buf, sizeof(buf), "shard %u", lane - 1);
      out += buf;
    }
    out += "\"}}";
  }
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    std::string name = SpanKindName(static_cast<SpanKind>(s.kind));
    if (s.name[0] != '\0') {
      name += ':';
      name.append(s.name, strnlen(s.name, sizeof(s.name)));
    }
    AppendJsonString(&out, name.c_str(), name.size());
    out += ",\"cat\":\"zstream\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", s.lane);
    out += buf;
    // Chrome trace timestamps are microseconds; keep ns precision via
    // the fractional part.
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  s.start_ns / 1000.0, (s.end_ns - s.start_ns) / 1000.0);
    out += buf;
    out += ",\"args\":{\"trace\":\"";
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, s.trace_id);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\",\"arg\":%" PRIu64 "}}", s.arg);
    out += buf;
  }
  out += "]}";
  return out;
}

void Tracer::Reset() {
  if (lanes_ != nullptr) {
    for (uint32_t lane = 0; lane < num_lanes_; ++lane) {
      Lane& l = lanes_[lane];
      l.head.store(0, std::memory_order_relaxed);
      for (size_t i = 0; i <= slot_mask_; ++i) {
        for (auto& w : l.slots[i].w) w.store(0, std::memory_order_relaxed);
      }
    }
  }
  batch_counter_.store(0, std::memory_order_relaxed);
  batches_sampled_.store(0, std::memory_order_relaxed);
  spans_recorded_.store(0, std::memory_order_relaxed);
  for (auto& c : kind_counts_) c.store(0, std::memory_order_relaxed);
  zs::MutexLock lock(prov_mu_);
  prov_head_ = 0;
  for (auto& p : prov_) p = MatchProvenance{};
}

}  // namespace zstream::obs
