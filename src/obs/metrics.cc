#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace zstream::obs {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

int Histogram::BucketOf(uint64_t value) {
  // Bucket i covers [2^i, 2^(i+1)) with bucket 0 absorbing 0 and 1;
  // i.e. the bit width of `value`, clamped. A single bit-scan keeps
  // Observe branch-free apart from the clamp.
  if (value < 2) return 0;
  const int width = 64 - __builtin_clzll(value);  // value >= 2 => >= 2
  return std::min(width - 1, kNumBuckets - 1);
}

uint64_t Histogram::UpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return uint64_t{1} << (i + 1);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  // Count first, buckets after: a concurrent Observe between the two
  // reads can only make bucket totals >= count, never undercount a
  // bucket relative to the reported count.
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    const uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation within [lower, upper).
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
      const double upper =
          i >= kNumBuckets - 1
              ? static_cast<double>(uint64_t{1} << (kNumBuckets - 1)) * 2.0
              : static_cast<double>(UpperBound(i));
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + frac * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(uint64_t{1} << (kNumBuckets - 1)) * 2.0;
}

// ---------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------

namespace {

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

// Doubles in JSON / exposition output: plain fixed or scientific,
// never inf/nan (clamped to 0), trailing-zero trimmed for stability.
std::string RenderDouble(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help,
                                      MetricType type, double scale) {
  const std::string key = RenderLabels(labels);
  zs::MutexLock lock(mu_);
  Family& fam = families_[name];
  auto it = fam.series.find(key);
  if (it == fam.series.end()) {
    if (fam.series.empty()) {
      fam.type = type;
      fam.help = help;
      fam.scale = scale;
    }
    Series s;
    s.labels = labels;
    s.label_key = key;
    switch (fam.type) {
      case MetricType::kCounter:
        counters_.emplace_back();
        s.counter = &counters_.back();
        break;
      case MetricType::kGauge:
        gauges_.emplace_back();
        s.gauge = &gauges_.back();
        break;
      case MetricType::kHistogram:
        histograms_.emplace_back();
        s.histogram = &histograms_.back();
        break;
    }
    it = fam.series.emplace(key, std::move(s)).first;
  }
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return GetSeries(name, labels, help, MetricType::kCounter, 1.0)->counter;
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels,
                          const std::string& help) {
  return GetSeries(name, labels, help, MetricType::kGauge, 1.0)->gauge;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help, double scale) {
  return GetSeries(name, labels, help, MetricType::kHistogram, scale)
      ->histogram;
}

std::string Registry::RenderPrometheus() const {
  zs::MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << fam.help << "\n";
    os << "# TYPE " << name << " ";
    switch (fam.type) {
      case MetricType::kCounter: os << "counter"; break;
      case MetricType::kGauge: os << "gauge"; break;
      case MetricType::kHistogram: os << "histogram"; break;
    }
    os << "\n";
    for (const auto& [key, series] : fam.series) {
      switch (fam.type) {
        case MetricType::kCounter:
          os << name << key << " " << series.counter->value() << "\n";
          break;
        case MetricType::kGauge:
          os << name << key << " " << series.gauge->value() << "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram::Snapshot snap = series.histogram->snapshot();
          // Cumulative le buckets; skip interior buckets that add
          // nothing so idle histograms stay one line per family.
          uint64_t cumulative = 0;
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            const uint64_t n = snap.buckets[static_cast<size_t>(i)];
            if (n == 0 && i < Histogram::kNumBuckets - 1) continue;
            cumulative += n;
            Labels le = series.labels;
            if (i >= Histogram::kNumBuckets - 1) {
              le.emplace_back("le", "+Inf");
            } else {
              le.emplace_back(
                  "le", RenderDouble(static_cast<double>(
                            Histogram::UpperBound(i)) * fam.scale));
            }
            os << name << "_bucket" << RenderLabels(le) << " " << cumulative
               << "\n";
          }
          os << name << "_sum" << key << " "
             << RenderDouble(static_cast<double>(snap.sum) * fam.scale)
             << "\n";
          os << name << "_count" << key << " " << snap.count << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

std::string Registry::RenderJson() const {
  zs::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) os << ",";
    first_fam = false;
    os << "\"" << EscapeJson(name) << "\":{\"type\":\"";
    switch (fam.type) {
      case MetricType::kCounter: os << "counter"; break;
      case MetricType::kGauge: os << "gauge"; break;
      case MetricType::kHistogram: os << "histogram"; break;
    }
    os << "\",\"help\":\"" << EscapeJson(fam.help) << "\",\"series\":[";
    bool first_series = true;
    for (const auto& [key, series] : fam.series) {
      if (!first_series) os << ",";
      first_series = false;
      os << "{\"labels\":{";
      Labels sorted = series.labels;
      std::sort(sorted.begin(), sorted.end());
      bool first_label = true;
      for (const auto& [k, v] : sorted) {
        if (!first_label) os << ",";
        first_label = false;
        os << "\"" << EscapeJson(k) << "\":\"" << EscapeJson(v) << "\"";
      }
      os << "}";
      switch (fam.type) {
        case MetricType::kCounter:
          os << ",\"value\":" << series.counter->value();
          break;
        case MetricType::kGauge:
          os << ",\"value\":" << series.gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram::Snapshot snap = series.histogram->snapshot();
          os << ",\"count\":" << snap.count << ",\"sum\":"
             << RenderDouble(static_cast<double>(snap.sum) * fam.scale)
             << ",\"p50\":" << RenderDouble(snap.Quantile(0.50) * fam.scale)
             << ",\"p95\":" << RenderDouble(snap.Quantile(0.95) * fam.scale)
             << ",\"p99\":" << RenderDouble(snap.Quantile(0.99) * fam.scale);
          break;
        }
      }
      os << "}";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace zstream::obs
