#include "verify/lint.h"

#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "expr/analysis.h"
#include "query/error_codes.h"

namespace zstream::verify {

namespace {

void AddWarning(std::vector<LintWarning>* out, const char* code,
                std::string message, const ExprPtr& at = nullptr) {
  LintWarning w;
  w.code = code;
  w.message = std::move(message);
  if (at != nullptr) {
    w.line = at->line();
    w.column = at->column();
  }
  out->push_back(std::move(w));
}

// Flattens an AND tree into its conjuncts (the linter's unit of
// reasoning: conjuncts of one predicate group all have to hold).
void ConjunctsInto(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kBinary && e->binary_op() == BinaryOp::kAnd) {
    ConjunctsInto(e->left(), out);
    ConjunctsInto(e->right(), out);
    return;
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------
// Constant folding (W0001 false / W0004 true)
// ---------------------------------------------------------------------

enum class Fold { kUnknown, kTrue, kFalse };

Fold FoldComparison(const Expr& e) {
  if (e.kind() == ExprKind::kLiteral && e.literal().is_bool()) {
    return e.literal().bool_value() ? Fold::kTrue : Fold::kFalse;
  }
  if (e.kind() != ExprKind::kBinary) return Fold::kUnknown;
  const ExprPtr& l = e.left();
  const ExprPtr& r = e.right();
  if (l->kind() != ExprKind::kLiteral || r->kind() != ExprKind::kLiteral) {
    return Fold::kUnknown;
  }
  const Value& lv = l->literal();
  const Value& rv = r->literal();
  // Null comparisons are three-valued null: never satisfied, but that
  // is the evaluator's documented behavior, not a foldable constant.
  if (lv.is_null() || rv.is_null()) return Fold::kUnknown;
  int cmp = 0;  // -1 / 0 / +1
  if (lv.is_numeric() && rv.is_numeric()) {
    const double a = lv.AsDouble();
    const double b = rv.AsDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lv.is_string() && rv.is_string()) {
    cmp = lv.string_value().compare(rv.string_value());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else if (lv.is_bool() && rv.is_bool()) {
    cmp = static_cast<int>(lv.bool_value()) - static_cast<int>(rv.bool_value());
  } else {
    return Fold::kUnknown;  // incomparable: the typechecker's problem
  }
  bool result = false;
  switch (e.binary_op()) {
    case BinaryOp::kEq: result = cmp == 0; break;
    case BinaryOp::kNe: result = cmp != 0; break;
    case BinaryOp::kLt: result = cmp < 0; break;
    case BinaryOp::kLe: result = cmp <= 0; break;
    case BinaryOp::kGt: result = cmp > 0; break;
    case BinaryOp::kGe: result = cmp >= 0; break;
    default: return Fold::kUnknown;
  }
  return result ? Fold::kTrue : Fold::kFalse;
}

// ---------------------------------------------------------------------
// Interval reasoning (W0001 across conjuncts)
// ---------------------------------------------------------------------

// The feasible set of one attribute under a group of ANDed range
// conjuncts: a numeric interval plus an optional string equality.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;
  bool has_str_eq = false;
  std::string str_eq;
  bool contradiction = false;
  ExprPtr last;  // most recent conjunct, for the warning's location

  void Tighten(BinaryOp op, const Value& v) {
    if (v.is_string()) {
      if (op != BinaryOp::kEq) return;
      if (has_str_eq && str_eq != v.string_value()) contradiction = true;
      has_str_eq = true;
      str_eq = v.string_value();
      return;
    }
    if (!v.is_numeric()) return;
    const double x = v.AsDouble();
    switch (op) {
      case BinaryOp::kEq:
        TightenLo(x, false);
        TightenHi(x, false);
        break;
      case BinaryOp::kLt: TightenHi(x, true); break;
      case BinaryOp::kLe: TightenHi(x, false); break;
      case BinaryOp::kGt: TightenLo(x, true); break;
      case BinaryOp::kGe: TightenLo(x, false); break;
      default: break;  // kNe prunes a point, never empties an interval
    }
    if (lo > hi || (lo == hi && (lo_open || hi_open))) contradiction = true;
  }

 private:
  void TightenLo(double x, bool open) {
    if (x > lo || (x == lo && open)) {
      lo = x;
      lo_open = open;
    }
  }
  void TightenHi(double x, bool open) {
    if (x < hi || (x == hi && open)) {
      hi = x;
      hi_open = open;
    }
  }
};

// Normalizes `conjunct` to (attr, op, literal) when it is a range
// comparison between one attribute and one constant. Returns false for
// any other shape.
bool AsRangeConjunct(const ExprPtr& conjunct, const Expr** attr,
                     BinaryOp* op, const Value** literal) {
  const Expr& e = *conjunct;
  if (e.kind() != ExprKind::kBinary) return false;
  switch (e.binary_op()) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const ExprPtr& l = e.left();
  const ExprPtr& r = e.right();
  if (l->kind() == ExprKind::kAttrRef && r->kind() == ExprKind::kLiteral) {
    *attr = l.get();
    *op = e.binary_op();
    *literal = &r->literal();
    return true;
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kAttrRef) {
    *attr = r.get();
    *literal = &l->literal();
    switch (e.binary_op()) {  // 5 < x  ==  x > 5
      case BinaryOp::kLt: *op = BinaryOp::kGt; break;
      case BinaryOp::kLe: *op = BinaryOp::kGe; break;
      case BinaryOp::kGt: *op = BinaryOp::kLt; break;
      case BinaryOp::kGe: *op = BinaryOp::kLe; break;
      default: *op = e.binary_op(); break;
    }
    return true;
  }
  return false;
}

// Lints one AND-group: constant conjuncts (W0001/W0004), duplicate
// conjuncts (W0005), and per-attribute interval contradictions
// (W0001). `scope` names the group in messages.
void LintGroup(const std::vector<ExprPtr>& conjuncts,
               const std::string& scope, std::vector<LintWarning>* out) {
  std::set<std::string> seen;
  std::map<std::pair<int, int>, Interval> intervals;
  for (const ExprPtr& c : conjuncts) {
    switch (FoldComparison(*c)) {
      case Fold::kFalse:
        AddWarning(out, errc::kLintUnsatisfiable,
                   scope + ": conjunct " + c->ToString() +
                       " is always false; the query can never match",
                   c);
        continue;
      case Fold::kTrue:
        AddWarning(out, errc::kLintTautology,
                   scope + ": conjunct " + c->ToString() +
                       " is always true and filters nothing",
                   c);
        continue;
      case Fold::kUnknown:
        break;
    }
    if (!seen.insert(c->ToString()).second) {
      AddWarning(out, errc::kLintDuplicateConjunct,
                 scope + ": duplicate conjunct " + c->ToString(), c);
    }
    const Expr* attr = nullptr;
    BinaryOp op = BinaryOp::kEq;
    const Value* literal = nullptr;
    if (AsRangeConjunct(c, &attr, &op, &literal)) {
      Interval& iv =
          intervals[std::make_pair(attr->class_idx(), attr->field_idx())];
      if (iv.contradiction) continue;  // one report per attribute
      iv.Tighten(op, *literal);
      iv.last = c;
      if (iv.contradiction) {
        AddWarning(out, errc::kLintUnsatisfiable,
                   scope + ": constraints on '" + attr->class_name() + "." +
                       attr->field_name() +
                       "' contradict each other; the query can never match",
                   c);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rules over the whole pattern
// ---------------------------------------------------------------------

void LintUnreferencedAliases(const Pattern& p, std::vector<LintWarning>* out) {
  const int n = p.num_classes();
  std::vector<bool> referenced(static_cast<size_t>(n), false);
  for (const ExprPtr& pred : p.multi_predicates) {
    for (int c : ReferencedClasses(pred)) {
      if (c >= 0 && c < n) referenced[static_cast<size_t>(c)] = true;
    }
  }
  for (const ReturnItem& item : p.return_items) {
    if (item.expr == nullptr) {
      if (item.class_idx >= 0 && item.class_idx < n) {
        referenced[static_cast<size_t>(item.class_idx)] = true;
      }
      continue;
    }
    for (int c : ReferencedClasses(item.expr)) {
      if (c >= 0 && c < n) referenced[static_cast<size_t>(c)] = true;
    }
  }
  for (int c = 0; c < n; ++c) {
    const EventClass& ec = p.classes[static_cast<size_t>(c)];
    // Negated classes gate on absence: no predicate and no projection
    // is their normal shape, not a smell.
    if (ec.negated) continue;
    if (ec.leaf_predicates.empty() && !referenced[static_cast<size_t>(c)]) {
      AddWarning(out, errc::kLintUnreferencedAlias,
                 "class '" + ec.alias +
                     "' carries no predicate and is never returned; it only "
                     "gates on an event of its type existing");
    }
  }
}

void LintCartesian(const Pattern& p, std::vector<LintWarning>* out) {
  if (p.partition.has_value()) return;  // partition key correlates everything
  const int n = p.num_classes();
  std::vector<int> positive;
  for (int c = 0; c < n; ++c) {
    const EventClass& ec = p.classes[static_cast<size_t>(c)];
    // Negated classes gate on absence; a Kleene class's group is
    // anchored by its sequence neighbors. Neither multiplies matches by
    // its own rate, so neither needs a correlating predicate.
    if (!ec.negated && !ec.is_kleene()) positive.push_back(c);
  }
  if (positive.size() < 2) return;
  // Union-find over positive classes; every multi-class predicate
  // correlates the classes it touches.
  std::vector<int> parent(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) parent[static_cast<size_t>(c)] = c;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    }
    return x;
  };
  for (const ExprPtr& pred : p.multi_predicates) {
    const std::set<int> refs = ReferencedClasses(pred);
    int first = -1;
    for (int c : refs) {
      if (c < 0 || c >= n) continue;
      if (first < 0) {
        first = c;
      } else {
        parent[static_cast<size_t>(find(c))] = find(first);
      }
    }
  }
  std::set<int> components;
  for (int c : positive) components.insert(find(c));
  if (components.size() > 1) {
    AddWarning(out, errc::kLintCartesian,
               "no predicate correlates the pattern's " +
                   std::to_string(positive.size()) +
                   " positive classes (" + std::to_string(components.size()) +
                   " independent groups); matches grow as the product of "
                   "the class rates within the window");
  }
}

}  // namespace

std::string LintWarning::ToString() const {
  std::string out = code;
  if (line > 0) {
    out += " [" + std::to_string(line) + ":" + std::to_string(column) + "]";
  }
  out += " " + message;
  return out;
}

std::vector<LintWarning> LintPattern(const Pattern& pattern) {
  std::vector<LintWarning> out;
  for (const EventClass& ec : pattern.classes) {
    std::vector<ExprPtr> conjuncts;
    for (const ExprPtr& pred : ec.leaf_predicates) {
      ConjunctsInto(pred, &conjuncts);
    }
    LintGroup(conjuncts, "class '" + ec.alias + "'", &out);
    // Negation branches are ORed against each other, but conjuncts
    // within one branch all have to hold, so each branch is a group.
    for (const NegBranch& branch : ec.neg_branches) {
      std::vector<ExprPtr> branch_conjuncts;
      for (const ExprPtr& pred : branch.predicates) {
        ConjunctsInto(pred, &branch_conjuncts);
      }
      LintGroup(branch_conjuncts, "negation branch '" + branch.alias + "'",
                &out);
    }
  }
  std::vector<ExprPtr> multi;
  for (const ExprPtr& pred : pattern.multi_predicates) {
    ConjunctsInto(pred, &multi);
  }
  LintGroup(multi, "WHERE clause", &out);
  LintUnreferencedAliases(pattern, &out);
  LintCartesian(pattern, &out);
  return out;
}

}  // namespace zstream::verify
