// Static expression typechecker (the ZS-T diagnostic family).
//
// Infers a ValueType for every Expr tree against the schemas bound in a
// Pattern and rejects — before any event flows — the errors that the
// three-valued evaluator would otherwise silently turn into nulls at
// match time: attributes missing from the schema, comparisons across
// incomparable type categories, arithmetic over non-numeric operands,
// and malformed aggregate usage. Errors carry the stable ZS-T**** code
// plus the 1-based line/column threaded through UExpr resolution (0/0
// for programmatically built expressions).
//
// The type system mirrors expr/eval.cc exactly:
//   * kNull is a wildcard: it unifies with every type (the evaluator
//     propagates nulls, so a null operand is never a static error);
//   * int64 and double form one numeric category and coerce freely;
//     int64 op int64 stays int64, any double widens the result;
//   * comparisons require both sides in one category (bool, numeric,
//     string) and produce bool;
//   * AND / OR / NOT require bool operands and produce bool;
//   * sum/avg need a numeric attribute and produce double, count
//     produces int64, min/max produce the attribute's own type.
#ifndef ZSTREAM_VERIFY_TYPECHECK_H_
#define ZSTREAM_VERIFY_TYPECHECK_H_

#include "common/result.h"
#include "common/value.h"
#include "expr/expr.h"
#include "plan/pattern.h"

namespace zstream::verify {

/// Infers the result type of `expr` against `pattern`'s class schemas.
/// Returns kNull for expressions that statically evaluate to null.
Result<ValueType> InferExprType(const ExprPtr& expr, const Pattern& pattern);

/// Typechecks one predicate: it must infer to bool (or null — a
/// statically-null predicate is well-typed, just never satisfied).
Status TypecheckPredicate(const ExprPtr& expr, const Pattern& pattern);

/// Typechecks every expression a pattern carries: per-class leaf
/// predicates, negation-branch predicates, multi-class predicates
/// (all must be boolean) and RETURN projections (any type).
Status TypecheckPattern(const Pattern& pattern);

}  // namespace zstream::verify

#endif  // ZSTREAM_VERIFY_TYPECHECK_H_
