// Query linter (the ZS-W diagnostic family).
//
// Lint findings are warnings, not errors: the query is well-typed and
// executable, but almost certainly not what the author meant. The
// compile path never fails on them — they surface through
// LintPattern() for tools (zstream_lint) and APIs that opt in.
//
//   ZS-W0001  unsatisfiable predicate: constant folding or interval
//             reasoning over one attribute proves a conjunct false, so
//             the query can never match.
//   ZS-W0002  unreferenced alias: a positive class carries no
//             predicate and is never projected; it only gates on
//             existence, which is usually an orphaned pattern slot.
//   ZS-W0003  cartesian pattern: no equality predicate (or partition
//             key) links the pattern's positive classes, so matches
//             grow as the product of the class rates.
//   ZS-W0004  tautological predicate: a conjunct is statically true
//             and filters nothing.
//   ZS-W0005  duplicate conjunct: the same predicate is applied twice.
#ifndef ZSTREAM_VERIFY_LINT_H_
#define ZSTREAM_VERIFY_LINT_H_

#include <string>
#include <vector>

#include "plan/pattern.h"

namespace zstream::verify {

/// One lint finding.
struct LintWarning {
  std::string code;     // stable ZS-W**** code
  std::string message;
  int line = 0;    // 1-based; 0 when the source location is unknown
  int column = 0;

  /// "ZS-W0001 [3:14] message" (location omitted when unknown).
  std::string ToString() const;
};

/// Runs every lint rule over an analyzed pattern. Returns findings in
/// rule order; an empty vector means a clean bill.
std::vector<LintWarning> LintPattern(const Pattern& pattern);

}  // namespace zstream::verify

#endif  // ZSTREAM_VERIFY_LINT_H_
