#include "verify/typecheck.h"

#include <string>

#include "query/error_codes.h"

namespace zstream::verify {

namespace {

// Type categories for comparison compatibility. kNull belongs to every
// category (the evaluator null-propagates instead of erroring).
enum class Category { kNull, kBool, kNumeric, kString };

Category CategoryOf(ValueType t) {
  switch (t) {
    case ValueType::kNull: return Category::kNull;
    case ValueType::kBool: return Category::kBool;
    case ValueType::kInt64:
    case ValueType::kDouble: return Category::kNumeric;
    case ValueType::kString: return Category::kString;
  }
  return Category::kNull;
}

bool Compatible(Category a, Category b) {
  return a == Category::kNull || b == Category::kNull || a == b;
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

Status TypeError(const Expr& e, const char* code, const std::string& msg) {
  return Status::SemanticError(msg)
      .WithErrorCode(code)
      .WithLocation(e.line(), e.column());
}

// Validates the class index and (when `field` >= 0) the field index of
// an attribute-like node, returning the class's schema.
Result<SchemaPtr> CheckClassRef(const Expr& e, const Pattern& p) {
  if (e.class_idx() < 0 || e.class_idx() >= p.num_classes()) {
    return TypeError(e, errc::kTypeBadClassIndex,
                     "expression references class index " +
                         std::to_string(e.class_idx()) + " but pattern has " +
                         std::to_string(p.num_classes()) + " classes");
  }
  return p.classes[static_cast<size_t>(e.class_idx())].schema;
}

Result<ValueType> Infer(const ExprPtr& expr, const Pattern& p) {
  const Expr& e = *expr;
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return e.literal().type();
    case ExprKind::kAttrRef: {
      ZS_ASSIGN_OR_RETURN(SchemaPtr schema, CheckClassRef(e, p));
      if (e.field_idx() < 0 || e.field_idx() >= schema->num_fields()) {
        return TypeError(e, errc::kTypeUnknownAttribute,
                         "attribute '" + e.class_name() + "." +
                             e.field_name() + "' is not in schema " +
                             schema->ToString());
      }
      return schema->field(e.field_idx()).type;
    }
    case ExprKind::kTimeRef:
      ZS_RETURN_IF_ERROR(CheckClassRef(e, p).status());
      return ValueType::kInt64;
    case ExprKind::kIsNull:
      ZS_RETURN_IF_ERROR(CheckClassRef(e, p).status());
      return ValueType::kBool;
    case ExprKind::kUnary: {
      ZS_ASSIGN_OR_RETURN(const ValueType t, Infer(e.operand(), p));
      const Category c = CategoryOf(t);
      if (e.unary_op() == UnaryOp::kNot) {
        if (!Compatible(c, Category::kBool)) {
          return TypeError(e, errc::kTypeNonBoolLogic,
                           std::string("NOT requires a boolean operand, got ") +
                               TypeName(t));
        }
        return ValueType::kBool;
      }
      // kNegate.
      if (!Compatible(c, Category::kNumeric)) {
        return TypeError(e, errc::kTypeNonNumericArith,
                         std::string("unary '-' requires a numeric operand, "
                                     "got ") +
                             TypeName(t));
      }
      return t;
    }
    case ExprKind::kBinary: {
      ZS_ASSIGN_OR_RETURN(const ValueType lt, Infer(e.left(), p));
      ZS_ASSIGN_OR_RETURN(const ValueType rt, Infer(e.right(), p));
      const Category lc = CategoryOf(lt);
      const Category rc = CategoryOf(rt);
      switch (e.binary_op()) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!Compatible(lc, rc)) {
            return TypeError(e, errc::kTypeIncomparable,
                             std::string("cannot compare ") + TypeName(lt) +
                                 " with " + TypeName(rt) + " in " +
                                 e.ToString());
          }
          return ValueType::kBool;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (!Compatible(lc, Category::kBool) ||
              !Compatible(rc, Category::kBool)) {
            return TypeError(
                e, errc::kTypeNonBoolLogic,
                std::string(e.binary_op() == BinaryOp::kAnd ? "AND" : "OR") +
                    " requires boolean operands, got " + TypeName(lt) +
                    " and " + TypeName(rt));
          }
          return ValueType::kBool;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          if (!Compatible(lc, Category::kNumeric) ||
              !Compatible(rc, Category::kNumeric)) {
            return TypeError(e, errc::kTypeNonNumericArith,
                             std::string("arithmetic '") +
                                 BinaryOpName(e.binary_op()) +
                                 "' requires numeric operands, got " +
                                 TypeName(lt) + " and " + TypeName(rt));
          }
          if (lt == ValueType::kNull || rt == ValueType::kNull) {
            return ValueType::kNull;
          }
          // int64 op int64 stays int64; any double widens.
          return (lt == ValueType::kDouble || rt == ValueType::kDouble)
                     ? ValueType::kDouble
                     : ValueType::kInt64;
      }
      return Status::Internal("unreachable binary operator");
    }
    case ExprKind::kAggregate: {
      ZS_ASSIGN_OR_RETURN(SchemaPtr schema, CheckClassRef(e, p));
      const EventClass& ec = p.classes[static_cast<size_t>(e.class_idx())];
      if (!ec.is_kleene()) {
        return TypeError(e, errc::kTypeAggNonKleene,
                         std::string(AggFnName(e.agg_fn())) +
                             "() aggregates over non-Kleene class '" +
                             ec.alias + "'");
      }
      if (e.agg_fn() == AggFn::kCount) {
        return ValueType::kInt64;
      }
      if (e.field_idx() < 0) {
        return TypeError(e, errc::kTypeAggMissingField,
                         std::string(AggFnName(e.agg_fn())) +
                             "() requires an attribute argument");
      }
      if (e.field_idx() >= schema->num_fields()) {
        return TypeError(e, errc::kTypeUnknownAttribute,
                         "attribute '" + e.class_name() + "." +
                             e.field_name() + "' is not in schema " +
                             schema->ToString());
      }
      const ValueType ft = schema->field(e.field_idx()).type;
      if (e.agg_fn() == AggFn::kSum || e.agg_fn() == AggFn::kAvg) {
        if (!Compatible(CategoryOf(ft), Category::kNumeric)) {
          return TypeError(e, errc::kTypeAggNonNumeric,
                           std::string(AggFnName(e.agg_fn())) +
                               "() requires a numeric attribute, got " +
                               TypeName(ft) + " '" + e.field_name() + "'");
        }
        return ValueType::kDouble;
      }
      // min/max keep the attribute's own type.
      return ft;
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace

Result<ValueType> InferExprType(const ExprPtr& expr, const Pattern& pattern) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  return Infer(expr, pattern);
}

Status TypecheckPredicate(const ExprPtr& expr, const Pattern& pattern) {
  ZS_ASSIGN_OR_RETURN(const ValueType t, InferExprType(expr, pattern));
  if (t != ValueType::kBool && t != ValueType::kNull) {
    return Status::SemanticError("predicate must be boolean, got " +
                                 std::string(TypeName(t)) + " in " +
                                 expr->ToString())
        .WithErrorCode(errc::kTypeNonBoolPredicate)
        .WithLocation(expr->line(), expr->column());
  }
  return Status::OK();
}

Status TypecheckPattern(const Pattern& pattern) {
  for (const EventClass& ec : pattern.classes) {
    for (const ExprPtr& pred : ec.leaf_predicates) {
      ZS_RETURN_IF_ERROR(TypecheckPredicate(pred, pattern));
    }
    for (const NegBranch& branch : ec.neg_branches) {
      for (const ExprPtr& pred : branch.predicates) {
        ZS_RETURN_IF_ERROR(TypecheckPredicate(pred, pattern));
      }
    }
  }
  for (const ExprPtr& pred : pattern.multi_predicates) {
    ZS_RETURN_IF_ERROR(TypecheckPredicate(pred, pattern));
  }
  for (const ReturnItem& item : pattern.return_items) {
    if (item.expr == nullptr) continue;  // bare class: plan verifier's job
    ZS_RETURN_IF_ERROR(InferExprType(item.expr, pattern).status());
  }
  return Status::OK();
}

}  // namespace zstream::verify
