#include "verify/plan_verifier.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>

#include "expr/analysis.h"
#include "obs/metrics.h"
#include "query/error_codes.h"

namespace zstream::verify {

namespace {

// ---------------------------------------------------------------------
// Shared pass context
// ---------------------------------------------------------------------

struct Ctx {
  const Pattern& pattern;
  const PhysicalPlan& plan;
  int n = 0;
  // rel[a][b]: PatternOp of the lowest common ancestor of classes a and
  // b in the pattern's structure tree — the relation the plan must
  // realize for that pair (kClass used as "no relation" sentinel).
  std::vector<std::vector<PatternOp>> rel;
  // Classes consumed by a NegFilter wrapper anywhere in the plan. They
  // have no position in the join tree, so adjacency/order checks treat
  // them as transparent.
  std::vector<bool> filter_handled;
};

std::string Alias(const Ctx& ctx, int c) {
  if (c < 0 || c >= ctx.n) return "#" + std::to_string(c);
  return ctx.pattern.classes[static_cast<size_t>(c)].alias;
}

// Covered classes of a subtree with NegFilter targets excluded.
void EffCoverInto(const PhysNode* node, const Ctx& ctx,
                  std::vector<int>* out) {
  if (node == nullptr) return;
  if (node->is_leaf()) {
    if (node->class_idx < 0 || node->class_idx >= ctx.n ||
        !ctx.filter_handled[static_cast<size_t>(node->class_idx)]) {
      out->push_back(node->class_idx);
    }
    return;
  }
  for (const auto& c : node->children) EffCoverInto(c.get(), ctx, out);
}

std::vector<int> EffCover(const PhysNode* node, const Ctx& ctx) {
  std::vector<int> out;
  EffCoverInto(node, ctx, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void Walk(const PhysNode* node,
          const std::function<void(const PhysNode*)>& fn) {
  if (node == nullptr) return;
  fn(node);
  for (const auto& c : node->children) Walk(c.get(), fn);
}

void Add(VerifyReport* report, const char* invariant, const char* code,
         std::string message, bool not_supported = false) {
  report->violations.push_back(
      Violation{invariant, code, std::move(message), not_supported});
}

bool SeqRelated(const Ctx& ctx, int a, int b) {
  return ctx.rel[static_cast<size_t>(a)][static_cast<size_t>(b)] ==
         PatternOp::kSeq;
}

// True when every class strictly between `lo` and `hi` that is
// sequence-related to `anchor` is consumed by a NegFilter (and thus
// legitimately absent from the local join neighborhood).
bool GapIsFilterHandled(const Ctx& ctx, int lo, int hi, int anchor) {
  for (int x = lo + 1; x < hi; ++x) {
    if (!SeqRelated(ctx, x, anchor)) continue;
    if (!ctx.filter_handled[static_cast<size_t>(x)]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Invariant passes
// ---------------------------------------------------------------------

void CheckPlanNonEmpty(const Ctx& ctx, VerifyReport* report) {
  if (ctx.pattern.num_classes() == 0) {
    Add(report, "plan-nonempty", errc::kVerifyEmptyPlan,
        "pattern has no event classes");
  }
  if (ctx.plan.root == nullptr) {
    Add(report, "plan-nonempty", errc::kVerifyEmptyPlan,
        "physical plan has no root");
  }
}

void CheckNodeShape(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    const size_t arity = node->children.size();
    switch (node->op) {
      case PhysOp::kLeaf:
        if (arity != 0) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              "LEAF node has children");
        }
        if (node->class_idx < 0 || node->class_idx >= ctx.n) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              "LEAF class index " + std::to_string(node->class_idx) +
                  " out of range [0, " + std::to_string(ctx.n) + ")");
        }
        break;
      case PhysOp::kSeq:
      case PhysOp::kConj:
      case PhysOp::kDisj:
      case PhysOp::kNSeq:
        if (arity != 2 || node->children[0] == nullptr ||
            node->children[1] == nullptr) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              std::string(PhysOpName(node->op)) +
                  " node must have exactly two operands");
        }
        break;
      case PhysOp::kKSeq:
        if (arity != 3 || node->children[1] == nullptr) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              "KSEQ node must have three operands with a closure middle");
        }
        break;
      case PhysOp::kNegFilter:
        if (arity != 1 || node->children[0] == nullptr) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              "NEG filter must have exactly one input");
        }
        if (node->class_idx < 0 || node->class_idx >= ctx.n) {
          Add(report, "node-shape", errc::kVerifyNodeShape,
              "NEG filter class index " + std::to_string(node->class_idx) +
                  " out of range [0, " + std::to_string(ctx.n) + ")");
        }
        break;
    }
  });
}

void CheckCoverage(const Ctx& ctx, VerifyReport* report) {
  const std::vector<int> covered = ctx.plan.root->CoveredClasses();
  std::vector<int> expected(static_cast<size_t>(ctx.n));
  for (int i = 0; i < ctx.n; ++i) expected[static_cast<size_t>(i)] = i;
  if (covered != expected) {
    std::string got = "{";
    for (size_t i = 0; i < covered.size(); ++i) {
      if (i > 0) got += ", ";
      got += std::to_string(covered[i]);
    }
    got += "}";
    Add(report, "class-coverage", errc::kVerifyCoverage,
        "plan must consume each of the " + std::to_string(ctx.n) +
            " classes exactly once, covers " + got);
  }
}

// The MLIR-style structural check: every pair of classes joined by an
// internal node must be related by the same operator in the pattern's
// structure tree, and temporal joins must respect pattern order. This
// is the invariant PR 5's bug #4 violated (a CONJ/DISJ pattern
// flattened into a SEQ chain imposes an order the pattern doesn't
// have).
void CheckStructure(const Ctx& ctx, VerifyReport* report) {
  const auto pair_op = [&](int a, int b) {
    return ctx.rel[static_cast<size_t>(a)][static_cast<size_t>(b)];
  };
  const auto check_pairs = [&](const PhysNode* node,
                               const std::vector<int>& earlier,
                               const std::vector<int>& later,
                               bool temporal) {
    for (int a : earlier) {
      for (int b : later) {
        const PatternOp want = pair_op(a, b);
        const PatternOp have =
            temporal ? PatternOp::kSeq
                     : (node->op == PhysOp::kConj ? PatternOp::kConj
                                                  : PatternOp::kDisj);
        if (want != have) {
          Add(report, "structure-compat", errc::kVerifyStructure,
              std::string(PhysOpName(node->op)) + " node joins '" +
                  Alias(ctx, a) + "' and '" + Alias(ctx, b) +
                  "' but the pattern relates them differently");
          return;
        }
        if (temporal && a > b) {
          Add(report, "structure-compat", errc::kVerifyStructure,
              std::string(PhysOpName(node->op)) + " node orders '" +
                  Alias(ctx, a) + "' before '" + Alias(ctx, b) +
                  "', violating pattern order");
          return;
        }
      }
    }
  };
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    switch (node->op) {
      case PhysOp::kLeaf:
      case PhysOp::kNegFilter:
        // A NEG filter joins its class with everything below it and
        // imposes no order; nothing structural to check.
        return;
      case PhysOp::kSeq:
      case PhysOp::kNSeq:
        check_pairs(node, EffCover(node->children[0].get(), ctx),
                    EffCover(node->children[1].get(), ctx),
                    /*temporal=*/true);
        return;
      case PhysOp::kConj:
      case PhysOp::kDisj:
        check_pairs(node, EffCover(node->children[0].get(), ctx),
                    EffCover(node->children[1].get(), ctx),
                    /*temporal=*/false);
        return;
      case PhysOp::kKSeq: {
        const std::vector<int> start = EffCover(node->children[0].get(), ctx);
        const std::vector<int> mid = EffCover(node->children[1].get(), ctx);
        const std::vector<int> end = EffCover(node->children[2].get(), ctx);
        check_pairs(node, start, mid, /*temporal=*/true);
        check_pairs(node, mid, end, /*temporal=*/true);
        check_pairs(node, start, end, /*temporal=*/true);
        return;
      }
    }
  });
}

const PhysNode* NSeqNegChild(const PhysNode* node) {
  return node->neg_left ? node->children[0].get() : node->children[1].get();
}
const PhysNode* NSeqOtherChild(const PhysNode* node) {
  return node->neg_left ? node->children[1].get() : node->children[0].get();
}

void CheckNSeqLeaf(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kNSeq) return;
    const PhysNode* neg = NSeqNegChild(node);
    if (!neg->is_leaf() || neg->class_idx < 0 || neg->class_idx >= ctx.n ||
        !ctx.pattern.classes[static_cast<size_t>(neg->class_idx)].negated) {
      Add(report, "nseq-negated-leaf", errc::kVerifyNseqLeaf,
          "NSEQ's negated operand must be a negated-class leaf");
    }
  });
}

// The negated class must sit temporally adjacent to the other operand:
// NSEQ(!B, rest) checks that no B occurs between B's pattern neighbors,
// which is only sound when the plan keeps them adjacent (classes
// consumed by a NEG filter are transparent here).
void CheckNSeqAdjacency(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kNSeq) return;
    const PhysNode* neg = NSeqNegChild(node);
    if (!neg->is_leaf() || neg->class_idx < 0 || neg->class_idx >= ctx.n) {
      return;  // nseq-negated-leaf already reported
    }
    const int nc = neg->class_idx;
    std::vector<int> other;
    for (int x : EffCover(NSeqOtherChild(node), ctx)) {
      if (SeqRelated(ctx, x, nc)) other.push_back(x);
    }
    if (other.empty()) return;
    if (node->neg_left) {
      const int m = other.front();
      if (m < nc || !GapIsFilterHandled(ctx, nc, m, nc)) {
        Add(report, "nseq-adjacency", errc::kVerifyNseqAdjacency,
            "NSEQ negated class '" + Alias(ctx, nc) +
                "' is not adjacent to its right operand");
      }
    } else {
      const int m = other.back();
      if (m > nc || !GapIsFilterHandled(ctx, m, nc, nc)) {
        Add(report, "nseq-adjacency", errc::kVerifyNseqAdjacency,
            "NSEQ negated class '" + Alias(ctx, nc) +
                "' is not adjacent to its left operand");
      }
    }
  });
}

// Mirrors Engine::Build's Section 4.4.2 restriction: a predicate
// referencing the NSEQ's negated class must be attachable at (or
// below) the NSEQ itself; spanning further up would change which event
// negates. Capability limit => NotSupported.
void CheckNSeqPredScope(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kNSeq) return;
    const PhysNode* neg = NSeqNegChild(node);
    if (!neg->is_leaf() || neg->class_idx < 0 || neg->class_idx >= ctx.n) {
      return;
    }
    const int nc = neg->class_idx;
    const std::vector<int> cover = node->CoveredClasses();
    for (const ExprPtr& pred : ctx.pattern.multi_predicates) {
      const std::set<int> refs = ReferencedClasses(pred);
      if (refs.count(nc) == 0) continue;
      const bool inside = std::all_of(refs.begin(), refs.end(), [&](int c) {
        return std::binary_search(cover.begin(), cover.end(), c);
      });
      if (!inside) {
        Add(report, "nseq-pred-scope", errc::kVerifyNseqPredScope,
            "negated class '" + Alias(ctx, nc) +
                "' has predicates spanning classes outside its NSEQ; use a "
                "negation filter on top",
            /*not_supported=*/true);
        return;
      }
    }
  });
}

void CheckKSeqShape(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kKSeq) return;
    const PhysNode* mid = node->children[1].get();
    if (mid == nullptr || !mid->is_leaf() || mid->class_idx < 0 ||
        mid->class_idx >= ctx.n ||
        !ctx.pattern.classes[static_cast<size_t>(mid->class_idx)]
             .is_kleene()) {
      Add(report, "kseq-shape", errc::kVerifyKseqShape,
          "KSEQ's middle operand must be the Kleene-class leaf");
    }
  });
}

// KSEQ assembles the closure group between its start and end operands,
// so the closure class's sequence neighbors must live exactly there:
// a missing or mis-anchored operand silently truncates groups.
void CheckKSeqAdjacency(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kKSeq) return;
    const PhysNode* mid = node->children[1].get();
    if (mid == nullptr || !mid->is_leaf() || mid->class_idx < 0 ||
        mid->class_idx >= ctx.n) {
      return;  // kseq-shape already reported
    }
    const int kc = mid->class_idx;
    const auto seq_neighbors = [&](const PhysNode* child) {
      std::vector<int> out;
      for (int x : EffCover(child, ctx)) {
        if (SeqRelated(ctx, x, kc)) out.push_back(x);
      }
      return out;
    };
    const std::vector<int> start = seq_neighbors(node->children[0].get());
    const std::vector<int> end = seq_neighbors(node->children[2].get());
    if (start.empty()) {
      // No earlier sequence-related class may exist outside the node.
      if (!GapIsFilterHandled(ctx, -1, kc, kc)) {
        Add(report, "kseq-adjacency", errc::kVerifyKseqAdjacency,
            "KSEQ for '" + Alias(ctx, kc) +
                "' lacks a start operand although earlier sequence classes "
                "exist");
      }
    } else if (start.back() > kc ||
               !GapIsFilterHandled(ctx, start.back(), kc, kc)) {
      Add(report, "kseq-adjacency", errc::kVerifyKseqAdjacency,
          "KSEQ start operand for '" + Alias(ctx, kc) +
              "' is not temporally adjacent to the closure class");
    }
    if (end.empty()) {
      if (!GapIsFilterHandled(ctx, kc, ctx.n, kc)) {
        Add(report, "kseq-adjacency", errc::kVerifyKseqAdjacency,
            "KSEQ for '" + Alias(ctx, kc) +
                "' lacks an end operand although later sequence classes "
                "exist");
      }
    } else if (end.front() < kc ||
               !GapIsFilterHandled(ctx, kc, end.front(), kc)) {
      Add(report, "kseq-adjacency", errc::kVerifyKseqAdjacency,
          "KSEQ end operand for '" + Alias(ctx, kc) +
              "' is not temporally adjacent to the closure class");
    }
  });
}

// Mirrors Engine::Build's Algorithm 4 restriction (PR 5's bug #9): a
// non-aggregate predicate on the closure class can only filter closure
// events while the group is assembled, i.e. when all its classes are
// inside the KSEQ. Capability limit => NotSupported.
void CheckKSeqPredScope(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kKSeq) return;
    const PhysNode* mid = node->children[1].get();
    if (mid == nullptr || !mid->is_leaf() || mid->class_idx < 0 ||
        mid->class_idx >= ctx.n) {
      return;
    }
    const int kc = mid->class_idx;
    const std::vector<int> cover = node->CoveredClasses();
    for (const ExprPtr& pred : ctx.pattern.multi_predicates) {
      const std::set<int> refs = ReferencedClasses(pred);
      if (refs.count(kc) == 0 || ContainsAggregate(pred)) continue;
      const bool inside = std::all_of(refs.begin(), refs.end(), [&](int c) {
        return std::binary_search(cover.begin(), cover.end(), c);
      });
      if (!inside) {
        Add(report, "kseq-pred-scope", errc::kVerifyKseqPredScope,
            "closure class '" + Alias(ctx, kc) +
                "' has a non-aggregate predicate spanning classes outside "
                "the KSEQ operands",
            /*not_supported=*/true);
        return;
      }
    }
  });
}

void CheckKleeneLegal(const Ctx& ctx, VerifyReport* report) {
  int kleene_count = 0;
  for (int c = 0; c < ctx.n; ++c) {
    const EventClass& ec = ctx.pattern.classes[static_cast<size_t>(c)];
    if (!ec.is_kleene()) continue;
    ++kleene_count;
    if (ec.kleene == KleeneKind::kCount && ec.kleene_count <= 0) {
      Add(report, "kleene-legal", errc::kVerifyKleeneLegal,
          "Kleene count closure on '" + ec.alias +
              "' must repeat a positive number of times");
    }
  }
  if (kleene_count > 1) {
    Add(report, "kleene-legal", errc::kVerifyKleeneLegal,
        "at most one Kleene class is supported, pattern has " +
            std::to_string(kleene_count));
  }
  // Every Kleene-class leaf must be consumed as a KSEQ middle; a plain
  // join would treat single events as the whole group.
  std::function<void(const PhysNode*, bool)> walk = [&](const PhysNode* node,
                                                        bool as_kseq_mid) {
    if (node == nullptr) return;
    if (node->is_leaf()) {
      if (node->class_idx >= 0 && node->class_idx < ctx.n &&
          ctx.pattern.classes[static_cast<size_t>(node->class_idx)]
              .is_kleene() &&
          !as_kseq_mid) {
        Add(report, "kleene-legal", errc::kVerifyKleeneLegal,
            "Kleene class '" + Alias(ctx, node->class_idx) +
                "' must be consumed as a KSEQ closure operand");
      }
      return;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      walk(node->children[i].get(), node->op == PhysOp::kKSeq && i == 1);
    }
  };
  walk(ctx.plan.root.get(), false);
}

// Push-mask consistency: each negated class is consumed exactly once,
// either fused into an NSEQ or applied as a NEG filter — never joined
// as a plain positive leaf (PR 5's bug #5 family).
void CheckNegationHandled(const Ctx& ctx, VerifyReport* report) {
  std::vector<int> handled(static_cast<size_t>(ctx.n), 0);
  std::function<void(const PhysNode*, bool)> walk = [&](const PhysNode* node,
                                                        bool as_nseq_neg) {
    if (node == nullptr) return;
    if (node->is_leaf()) {
      if (node->class_idx >= 0 && node->class_idx < ctx.n) {
        const EventClass& ec =
            ctx.pattern.classes[static_cast<size_t>(node->class_idx)];
        if (ec.negated && as_nseq_neg) {
          handled[static_cast<size_t>(node->class_idx)] += 1;
        } else if (ec.negated) {
          Add(report, "negation-handled", errc::kVerifyNegationHandled,
              "negated class '" + ec.alias +
                  "' is joined as a plain leaf; it must be an NSEQ operand "
                  "or a NEG filter");
        }
      }
      return;
    }
    if (node->op == PhysOp::kNegFilter) {
      if (node->class_idx >= 0 && node->class_idx < ctx.n) {
        handled[static_cast<size_t>(node->class_idx)] += 1;
      }
      walk(node->children[0].get(), false);
      return;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const bool neg_side =
          node->op == PhysOp::kNSeq &&
          ((node->neg_left && i == 0) || (!node->neg_left && i == 1));
      walk(node->children[i].get(), neg_side);
    }
  };
  walk(ctx.plan.root.get(), false);
  for (int c = 0; c < ctx.n; ++c) {
    if (!ctx.pattern.classes[static_cast<size_t>(c)].negated) continue;
    if (handled[static_cast<size_t>(c)] != 1) {
      Add(report, "negation-handled", errc::kVerifyNegationHandled,
          "negated class '" + Alias(ctx, c) + "' is consumed " +
              std::to_string(handled[static_cast<size_t>(c)]) +
              " times (expected exactly once, as NSEQ operand or NEG "
              "filter)");
    }
  }
}

void CheckNegFilterTarget(const Ctx& ctx, VerifyReport* report) {
  Walk(ctx.plan.root.get(), [&](const PhysNode* node) {
    if (node->op != PhysOp::kNegFilter) return;
    if (node->class_idx < 0 || node->class_idx >= ctx.n ||
        !ctx.pattern.classes[static_cast<size_t>(node->class_idx)].negated) {
      Add(report, "negfilter-target", errc::kVerifyNegFilterTarget,
          "NEG filter must name a negated class, got '" +
              Alias(ctx, node->class_idx) + "'");
    }
  });
}

void CheckWindowPositive(const Ctx& ctx, VerifyReport* report) {
  if (ctx.pattern.window <= 0) {
    Add(report, "within-positive", errc::kVerifyWindowPositive,
        "WITHIN window must be positive, got " +
            std::to_string(ctx.pattern.window));
  }
}

// Partition-key soundness (PR 5's bug #8 family): the installed spec
// must name one attribute present — with one consistent type — in
// every class's schema at the recorded index. The equality-chain
// reasoning itself lives in the analyzer (MaterializeEqualityChains);
// what survives in the Pattern must at least be structurally coherent,
// because the runtime routes events by raw field index.
void CheckPartitionKey(const Ctx& ctx, VerifyReport* report) {
  if (!ctx.pattern.partition.has_value()) return;
  const PartitionSpec& spec = *ctx.pattern.partition;
  if (static_cast<int>(spec.field_indices.size()) != ctx.n) {
    Add(report, "partition-key", errc::kVerifyPartitionKey,
        "partition spec has " + std::to_string(spec.field_indices.size()) +
            " field indices for " + std::to_string(ctx.n) + " classes");
    return;
  }
  ValueType key_type = ValueType::kNull;
  for (int c = 0; c < ctx.n; ++c) {
    const EventClass& ec = ctx.pattern.classes[static_cast<size_t>(c)];
    const int fidx = spec.field_indices[static_cast<size_t>(c)];
    if (ec.schema == nullptr || fidx < 0 || fidx >= ec.schema->num_fields()) {
      Add(report, "partition-key", errc::kVerifyPartitionKey,
          "partition key index " + std::to_string(fidx) +
              " is out of range for class '" + ec.alias + "'");
      return;
    }
    const Field& field = ec.schema->field(fidx);
    if (field.name != spec.field_name) {
      Add(report, "partition-key", errc::kVerifyPartitionKey,
          "partition key for class '" + ec.alias + "' resolves to '" +
              field.name + "', spec names '" + spec.field_name + "'");
      return;
    }
    if (c == 0) {
      key_type = field.type;
    } else if (field.type != key_type) {
      Add(report, "partition-key", errc::kVerifyPartitionKey,
          "partition key '" + spec.field_name +
              "' has inconsistent types across classes");
      return;
    }
  }
}

// Every predicate must reference classes that exist, leaf predicates
// must stay within their own class, and every multi-class predicate
// must be attachable somewhere (root coverage makes that "all refs in
// range" once class-coverage holds).
void CheckPredicateScope(const Ctx& ctx, VerifyReport* report) {
  const auto refs_in_range = [&](const ExprPtr& pred) {
    for (int c : ReferencedClasses(pred)) {
      if (c < 0 || c >= ctx.n) return false;
    }
    return true;
  };
  for (int c = 0; c < ctx.n; ++c) {
    const EventClass& ec = ctx.pattern.classes[static_cast<size_t>(c)];
    for (const ExprPtr& pred : ec.leaf_predicates) {
      const std::set<int> refs = ReferencedClasses(pred);
      const bool own = std::all_of(refs.begin(), refs.end(),
                                   [&](int r) { return r == c; });
      if (!own) {
        Add(report, "predicate-scope", errc::kVerifyPredicateScope,
            "leaf predicate of class '" + ec.alias +
                "' references other classes: " + pred->ToString());
      }
      if (ContainsAggregate(pred)) {
        Add(report, "predicate-scope", errc::kVerifyPredicateScope,
            "leaf predicate of class '" + ec.alias +
                "' contains an aggregate (aggregates evaluate over "
                "assembled groups): " + pred->ToString());
      }
    }
  }
  for (const ExprPtr& pred : ctx.pattern.multi_predicates) {
    if (ReferencedClasses(pred).empty()) {
      Add(report, "predicate-scope", errc::kVerifyPredicateScope,
          "multi-class predicate references no event class: " +
              pred->ToString());
    } else if (!refs_in_range(pred)) {
      Add(report, "predicate-scope", errc::kVerifyPredicateScope,
          "predicate references a class outside the pattern: " +
              pred->ToString());
    }
  }
}

void CheckReturnItems(const Ctx& ctx, VerifyReport* report) {
  for (const ReturnItem& item : ctx.pattern.return_items) {
    if (item.expr != nullptr) continue;  // typechecked separately
    if (item.class_idx < 0 || item.class_idx >= ctx.n) {
      Add(report, "return-items", errc::kVerifyReturnItems,
          "RETURN item '" + item.label + "' references class index " +
              std::to_string(item.class_idx) + " out of range");
      continue;
    }
    if (ctx.pattern.classes[static_cast<size_t>(item.class_idx)].negated) {
      Add(report, "return-items", errc::kVerifyReturnItems,
          "RETURN item '" + item.label +
              "' references a negated class (never bound in a match)");
    }
  }
}

void CheckNegBranches(const Ctx& ctx, VerifyReport* report) {
  for (int c = 0; c < ctx.n; ++c) {
    const EventClass& ec = ctx.pattern.classes[static_cast<size_t>(c)];
    if (ec.neg_branches.empty()) continue;
    if (!ec.negated) {
      Add(report, "neg-branch", errc::kVerifyNegBranch,
          "class '" + ec.alias +
              "' carries negation branches but is not negated");
      continue;
    }
    for (const NegBranch& branch : ec.neg_branches) {
      for (const ExprPtr& pred : branch.predicates) {
        for (int r : ReferencedClasses(pred)) {
          if (r != c) {
            Add(report, "neg-branch", errc::kVerifyNegBranch,
                "branch '" + branch.alias + "' of '" + ec.alias +
                    "' references class '" + Alias(ctx, r) +
                    "' outside the merged negation");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Registry + runner
// ---------------------------------------------------------------------

using PassFn = void (*)(const Ctx&, VerifyReport*);

struct Pass {
  InvariantInfo info;
  PassFn fn;
  bool needs_tree;  // skip when the plan tree is absent or malformed
};

const std::vector<Pass>& Passes() {
  static const std::vector<Pass> passes = {
      {{"plan-nonempty", errc::kVerifyEmptyPlan,
        "pattern has classes and the plan has a root"},
       CheckPlanNonEmpty, false},
      {{"node-shape", errc::kVerifyNodeShape,
        "every node has the arity and operand kinds of its operator"},
       CheckNodeShape, true},
      {{"class-coverage", errc::kVerifyCoverage,
        "the plan consumes every pattern class exactly once"},
       CheckCoverage, true},
      {{"structure-compat", errc::kVerifyStructure,
        "joined class pairs realize the pattern's SEQ/CONJ/DISJ relation "
        "and temporal order"},
       CheckStructure, true},
      {{"nseq-negated-leaf", errc::kVerifyNseqLeaf,
        "NSEQ's negated operand is a negated-class leaf"},
       CheckNSeqLeaf, true},
      {{"nseq-adjacency", errc::kVerifyNseqAdjacency,
        "NSEQ keeps the negated class adjacent to its other operand"},
       CheckNSeqAdjacency, true},
      {{"nseq-pred-scope", errc::kVerifyNseqPredScope,
        "predicates on an NSEQ's negated class stay inside the NSEQ"},
       CheckNSeqPredScope, true},
      {{"kseq-shape", errc::kVerifyKseqShape,
        "KSEQ's middle operand is the Kleene-class leaf"},
       CheckKSeqShape, true},
      {{"kseq-adjacency", errc::kVerifyKseqAdjacency,
        "KSEQ's start/end operands anchor the closure's sequence "
        "neighbors"},
       CheckKSeqAdjacency, true},
      {{"kseq-pred-scope", errc::kVerifyKseqPredScope,
        "non-aggregate closure predicates stay inside the KSEQ"},
       CheckKSeqPredScope, true},
      {{"kleene-legal", errc::kVerifyKleeneLegal,
        "at most one Kleene class, positive counts, consumed as KSEQ "
        "closure"},
       CheckKleeneLegal, true},
      {{"negation-handled", errc::kVerifyNegationHandled,
        "each negated class is consumed exactly once, as NSEQ operand or "
        "NEG filter (push-mask consistency)"},
       CheckNegationHandled, true},
      {{"negfilter-target", errc::kVerifyNegFilterTarget,
        "NEG filters name negated classes"},
       CheckNegFilterTarget, true},
      {{"within-positive", errc::kVerifyWindowPositive,
        "the WITHIN window is positive"},
       CheckWindowPositive, false},
      {{"partition-key", errc::kVerifyPartitionKey,
        "the partition spec names one attribute, present with one type in "
        "every class schema"},
       CheckPartitionKey, false},
      {{"predicate-scope", errc::kVerifyPredicateScope,
        "predicates reference existing classes; leaf predicates stay on "
        "their own class"},
       CheckPredicateScope, false},
      {{"return-items", errc::kVerifyReturnItems,
        "RETURN items reference existing, non-negated classes"},
       CheckReturnItems, false},
      {{"neg-branch", errc::kVerifyNegBranch,
        "negation branches live on negated classes and reference only "
        "their merged class"},
       CheckNegBranches, false},
  };
  return passes;
}

// rel[a][b] as described on Ctx. Children of one structure node relate
// all their cross pairs by that node's operator.
std::vector<std::vector<PatternOp>> BuildRelation(const Pattern& p) {
  const size_t n = static_cast<size_t>(p.num_classes());
  std::vector<std::vector<PatternOp>> rel(
      n, std::vector<PatternOp>(n, PatternOp::kClass));
  std::function<std::vector<int>(const PatternNodePtr&)> walk =
      [&](const PatternNodePtr& node) -> std::vector<int> {
    if (node == nullptr) return {};
    if (node->is_class()) {
      if (node->class_idx < 0 || node->class_idx >= p.num_classes()) {
        return {};
      }
      return {node->class_idx};
    }
    std::vector<std::vector<int>> covers;
    covers.reserve(node->children.size());
    for (const auto& child : node->children) covers.push_back(walk(child));
    std::vector<int> all;
    for (size_t i = 0; i < covers.size(); ++i) {
      for (size_t j = i + 1; j < covers.size(); ++j) {
        for (int a : covers[i]) {
          for (int b : covers[j]) {
            rel[static_cast<size_t>(a)][static_cast<size_t>(b)] = node->op;
            rel[static_cast<size_t>(b)][static_cast<size_t>(a)] = node->op;
          }
        }
      }
      all.insert(all.end(), covers[i].begin(), covers[i].end());
    }
    return all;
  };
  walk(p.root);
  return rel;
}

std::vector<bool> CollectFilterHandled(const Pattern& p,
                                       const PhysNodePtr& root) {
  std::vector<bool> handled(static_cast<size_t>(p.num_classes()), false);
  Walk(root.get(), [&](const PhysNode* node) {
    if (node->op == PhysOp::kNegFilter && node->class_idx >= 0 &&
        node->class_idx < p.num_classes()) {
      handled[static_cast<size_t>(node->class_idx)] = true;
    }
  });
  return handled;
}

}  // namespace

const std::vector<InvariantInfo>& Invariants() {
  static const std::vector<InvariantInfo> infos = [] {
    std::vector<InvariantInfo> out;
    for (const Pass& pass : Passes()) out.push_back(pass.info);
    return out;
  }();
  return infos;
}

Status VerifyReport::ToStatus() const {
  if (violations.empty()) return Status::OK();
  // Prefer reporting corruption over capability limits: NotSupported
  // invites callers to fall back to another shape, which is wrong when
  // the plan is also structurally broken.
  const Violation* first = &violations.front();
  for (const Violation& v : violations) {
    if (!v.not_supported) {
      first = &v;
      break;
    }
  }
  const std::string msg =
      "plan verifier: [" + first->invariant + "] " + first->message;
  Status st = first->not_supported ? Status::NotSupported(msg)
                                   : Status::SemanticError(msg);
  return st.WithErrorCode(first->code);
}

VerifyReport VerifyPlanReport(const Pattern& pattern,
                              const PhysicalPlan& plan) {
  VerifyReport report;
  Ctx ctx{pattern, plan, pattern.num_classes(), BuildRelation(pattern),
          CollectFilterHandled(pattern, plan.root)};
  for (const Pass& pass : Passes()) {
    if (pass.needs_tree) {
      if (plan.root == nullptr) continue;
      // Arity violations make deeper passes unsafe to run.
      if (pass.fn != CheckNodeShape &&
          std::any_of(report.violations.begin(), report.violations.end(),
                      [](const Violation& v) {
                        return v.invariant == "node-shape";
                      })) {
        continue;
      }
    }
    pass.fn(ctx, &report);
  }
  return report;
}

Status VerifyPlan(const Pattern& pattern, const PhysicalPlan& plan) {
  const VerifyReport report = VerifyPlanReport(pattern, plan);
  obs::Registry& reg = obs::Registry::Default();
  reg.GetCounter("zstream_plan_verifications_total", {},
                 "Plans checked by the static plan verifier")
      ->Inc();
  if (!report.violations.empty()) {
    reg.GetCounter("zstream_plan_verifier_rejections_total", {},
                   "Plans the verifier refused (one per plan, however "
                   "many invariants it violated)")
        ->Inc();
    for (const Violation& v : report.violations) {
      reg.GetCounter("zstream_plan_verifier_violations_total",
                     {{"code", v.code}},
                     "Invariant violations found, by ZS-V diagnostic code")
          ->Inc();
    }
  }
  return report.ToStatus();
}

}  // namespace zstream::verify
