// Plan verifier: a pass framework of named invariants over
// (Pattern, PhysicalPlan), in the spirit of an MLIR operation verifier.
//
// Every plan-producing seam — query compile, BuildPlan and the
// fixed-shape strategies, the DP planner, adaptive re-planning and the
// runtime's plan switches — gates its output through VerifyPlan before
// the plan reaches an engine. Each invariant has a stable name and a
// stable ZS-V**** diagnostic code (query/error_codes.h); PR 5's nine
// fuzz bugs are each a violation of one of these invariants, stated
// here statically instead of surfacing as a match-set divergence.
//
// Two invariants (nseq-pred-scope, kseq-pred-scope) describe capability
// limits rather than corruption: the plan shape is coherent but the
// engine cannot attach the pattern's predicates to it. Those surface as
// NotSupported (matching the engine's own behavior so callers that
// fall back to another shape keep working); every other violation is a
// SemanticError.
#ifndef ZSTREAM_VERIFY_PLAN_VERIFIER_H_
#define ZSTREAM_VERIFY_PLAN_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream::verify {

/// One entry of the invariant registry.
struct InvariantInfo {
  const char* name;     // stable, kebab-case, e.g. "class-coverage"
  const char* code;     // stable ZS-V**** diagnostic code
  const char* summary;  // one-line description (docs/diagnostics.md)
};

/// The full registry of named invariants, in check order.
const std::vector<InvariantInfo>& Invariants();

/// One invariant violation found in a plan.
struct Violation {
  std::string invariant;  // registry name
  std::string code;       // ZS-V**** code
  std::string message;
  bool not_supported = false;  // capability limit, not corruption
};

/// Result of running every invariant pass over one plan.
struct VerifyReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// OK, or the first violation as a coded Status (NotSupported for
  /// capability-limit invariants, SemanticError otherwise).
  Status ToStatus() const;
};

/// Runs every invariant pass and returns all violations found.
VerifyReport VerifyPlanReport(const Pattern& pattern,
                              const PhysicalPlan& plan);

/// Convenience gate: OK iff the plan satisfies every invariant.
Status VerifyPlan(const Pattern& pattern, const PhysicalPlan& plan);

}  // namespace zstream::verify

#endif  // ZSTREAM_VERIFY_PLAN_VERIFIER_H_
