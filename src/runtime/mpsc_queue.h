// Bounded multi-producer single-consumer ring queue.
//
// One instance backs each StreamRuntime shard: any number of producer
// threads (event routers, the control plane) push; exactly one shard
// worker pops, in batches, so per-event locking amortizes to one
// lock/unlock per batch on the consumer side. Backpressure is the
// caller's choice per push: Push() blocks while the ring is full,
// TryPush() fails fast (the runtime counts the drop).
//
// A mutex + two condition variables keep this simple and provably
// TSan-clean; the queue is not the bottleneck (engine assembly is), so a
// lock-free ring would buy complexity, not throughput. The lock state is
// verified at compile time by Clang thread-safety analysis (see
// common/sync.h): every mutable field is guarded by mu_.
#ifndef ZSTREAM_RUNTIME_MPSC_QUEUE_H_
#define ZSTREAM_RUNTIME_MPSC_QUEUE_H_

#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"

namespace zstream::runtime {

template <typename T>
class MpscRingQueue {
 public:
  explicit MpscRingQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity), ring_(capacity_) {}
  ZS_DISALLOW_COPY_AND_ASSIGN(MpscRingQueue);

  /// Blocks while full; returns false (dropping `item`) once closed.
  ZS_HOT bool Push(T item) {
    {
      zs::MutexLock lock(mu_);
      while (count_ >= capacity_ && !closed_) not_full_.Wait(mu_);
      if (closed_) return false;
      Place(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking; returns false when full or closed.
  ZS_HOT bool TryPush(T&& item) {
    {
      zs::MutexLock lock(mu_);
      if (closed_ || count_ >= capacity_) return false;
      Place(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocking bulk push (used by IngestBatch): appends items in order,
  /// waiting for space as needed, and returns how many were placed —
  /// fewer than items->size() only when the queue closed mid-batch
  /// (items already placed are still drained by the consumer).
  ZS_HOT size_t PushAll(std::vector<T>* items) {
    size_t placed = 0;
    {
      zs::MutexLock lock(mu_);
      for (T& item : *items) {
        while (count_ >= capacity_ && !closed_) not_full_.Wait(mu_);
        if (closed_) break;
        Place(std::move(item));
        ++placed;
        if (count_ == 1) {
          // First item after empty: wake the consumer while we keep
          // filling; later items ride the same wake-up.
          not_empty_.NotifyOne();
        }
      }
    }
    not_empty_.NotifyOne();
    return placed;
  }

  /// Pops up to `max_items` into `*out` (cleared first), blocking until
  /// at least one item is available or the queue is closed AND drained —
  /// the only case that returns 0.
  ZS_HOT size_t PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    size_t n = 0;
    {
      zs::MutexLock lock(mu_);
      while (count_ == 0 && !closed_) not_empty_.Wait(mu_);
      n = count_ < max_items ? count_ : max_items;
      for (size_t i = 0; i < n; ++i) {
        out->push_back(std::move(ring_[head_]));  // zs-hotpath-allow(consumer-side batch buffer is reused across PopBatch calls; push_back reallocates only until it reaches batch size)
        head_ = (head_ + 1) % capacity_;
      }
      count_ -= n;
    }
    if (n > 0) not_full_.NotifyAll();
    return n;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain what remains.
  void Close() {
    {
      zs::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t size() const {
    zs::MutexLock lock(mu_);
    return count_;
  }
  size_t capacity() const { return capacity_; }

 private:
  ZS_HOT void Place(T&& item) ZS_REQUIRES(mu_) {
    ring_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
  }

  const size_t capacity_;
  mutable zs::Mutex mu_;
  zs::CondVar not_empty_;
  zs::CondVar not_full_;
  std::vector<T> ring_ ZS_GUARDED_BY(mu_);
  size_t head_ ZS_GUARDED_BY(mu_) = 0;
  size_t count_ ZS_GUARDED_BY(mu_) = 0;
  bool closed_ ZS_GUARDED_BY(mu_) = false;
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_MPSC_QUEUE_H_
