// Bounded multi-producer single-consumer ring queue.
//
// One instance backs each StreamRuntime shard: any number of producer
// threads (event routers, the control plane) push; exactly one shard
// worker pops, in batches, so per-event locking amortizes to one
// lock/unlock per batch on the consumer side. Backpressure is the
// caller's choice per push: Push() blocks while the ring is full,
// TryPush() fails fast (the runtime counts the drop).
//
// A mutex + two condition variables keep this simple and provably
// TSan-clean; the queue is not the bottleneck (engine assembly is), so a
// lock-free ring would buy complexity, not throughput.
#ifndef ZSTREAM_RUNTIME_MPSC_QUEUE_H_
#define ZSTREAM_RUNTIME_MPSC_QUEUE_H_

#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace zstream::runtime {

template <typename T>
class MpscRingQueue {
 public:
  explicit MpscRingQueue(size_t capacity)
      : ring_(capacity < 1 ? 1 : capacity) {}
  ZS_DISALLOW_COPY_AND_ASSIGN(MpscRingQueue);

  /// Blocks while full; returns false (dropping `item`) once closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
    if (closed_) return false;
    Place(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking; returns false when full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ >= ring_.size()) return false;
      Place(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking bulk push (used by IngestBatch): appends items in order,
  /// waiting for space as needed, and returns how many were placed —
  /// fewer than items->size() only when the queue closed mid-batch
  /// (items already placed are still drained by the consumer).
  size_t PushAll(std::vector<T>* items) {
    size_t placed = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (T& item : *items) {
      not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
      if (closed_) break;
      Place(std::move(item));
      ++placed;
      if (count_ == 1) {
        // First item after empty: wake the consumer while we keep
        // filling; later items ride the same wake-up.
        not_empty_.notify_one();
      }
    }
    lock.unlock();
    not_empty_.notify_one();
    return placed;
  }

  /// Pops up to `max_items` into `*out` (cleared first), blocking until
  /// at least one item is available or the queue is closed AND drained —
  /// the only case that returns 0.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    const size_t n = count_ < max_items ? count_ : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % ring_.size();
    }
    count_ -= n;
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain what remains.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  size_t capacity() const { return ring_.size(); }

 private:
  void Place(T&& item) {
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_MPSC_QUEUE_H_
