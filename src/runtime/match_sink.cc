#include "runtime/match_sink.h"

#include <algorithm>
#include <sstream>

namespace zstream::runtime {

std::string CanonicalMatchKey(const Match& match) {
  std::ostringstream os;
  os << match.span.start << ":" << match.span.end << "/";
  for (size_t i = 0; i < match.slots.size(); ++i) {
    if (match.slots[i] != nullptr) {
      os << i << "@" << match.slots[i]->timestamp() << "|";
    }
  }
  if (match.group != nullptr) {
    os << "g{";
    for (const EventPtr& e : *match.group) os << e->timestamp() << ",";
    os << "}";
  }
  return os.str();
}

bool RuntimeMatchLess(const RuntimeMatch& a, const std::string& key_a,
                      const RuntimeMatch& b, const std::string& key_b) {
  if (a.query != b.query) return a.query < b.query;
  if (a.match.span.start != b.match.span.start) {
    return a.match.span.start < b.match.span.start;
  }
  if (a.match.span.end != b.match.span.end) {
    return a.match.span.end < b.match.span.end;
  }
  return key_a < key_b;
}

void CollectingMatchSink::Publish(RuntimeMatch&& match) {
  zs::MutexLock lock(mu_);
  matches_.push_back(std::move(match));
}

size_t CollectingMatchSink::size() const {
  zs::MutexLock lock(mu_);
  return matches_.size();
}

std::vector<RuntimeMatch> CollectingMatchSink::Take() {
  std::vector<RuntimeMatch> out;
  {
    zs::MutexLock lock(mu_);
    out.swap(matches_);
  }
  // Decorate-sort-undecorate: build each canonical key once instead of
  // re-stringifying both operands on every comparison.
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    order.emplace_back(CanonicalMatchKey(out[i].match), i);
  }
  std::sort(order.begin(), order.end(),
            [&](const auto& a, const auto& b) {
              return RuntimeMatchLess(out[a.second], a.first,
                                      out[b.second], b.first);
            });
  std::vector<RuntimeMatch> sorted;
  sorted.reserve(out.size());
  for (const auto& [key, idx] : order) {
    sorted.push_back(std::move(out[idx]));
  }
  return sorted;
}

std::vector<std::string> CollectingMatchSink::SortedKeys() const {
  std::vector<std::string> keys;
  {
    zs::MutexLock lock(mu_);
    keys.reserve(matches_.size());
    for (const RuntimeMatch& m : matches_) {
      keys.push_back(CanonicalMatchKey(m.match));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace zstream::runtime
