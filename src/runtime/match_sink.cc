#include "runtime/match_sink.h"

#include <algorithm>
#include <sstream>

namespace zstream::runtime {

std::string CanonicalMatchKey(const Match& match) {
  std::ostringstream os;
  os << match.span.start << ":" << match.span.end << "/";
  for (size_t i = 0; i < match.slots.size(); ++i) {
    if (match.slots[i] != nullptr) {
      os << i << "@" << match.slots[i]->timestamp() << "|";
    }
  }
  if (match.group != nullptr) {
    os << "g{";
    for (const EventPtr& e : *match.group) os << e->timestamp() << ",";
    os << "}";
  }
  return os.str();
}

void CollectingMatchSink::Publish(RuntimeMatch&& match) {
  std::lock_guard<std::mutex> lock(mu_);
  matches_.push_back(std::move(match));
}

size_t CollectingMatchSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return matches_.size();
}

std::vector<RuntimeMatch> CollectingMatchSink::Take() {
  std::vector<RuntimeMatch> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(matches_);
  }
  // Decorate-sort-undecorate: build each canonical key once instead of
  // re-stringifying both operands on every comparison.
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    order.emplace_back(CanonicalMatchKey(out[i].match), i);
  }
  std::sort(order.begin(), order.end(),
            [&](const auto& a, const auto& b) {
              const RuntimeMatch& ma = out[a.second];
              const RuntimeMatch& mb = out[b.second];
              if (ma.query != mb.query) return ma.query < mb.query;
              if (ma.match.span.start != mb.match.span.start) {
                return ma.match.span.start < mb.match.span.start;
              }
              if (ma.match.span.end != mb.match.span.end) {
                return ma.match.span.end < mb.match.span.end;
              }
              return a.first < b.first;
            });
  std::vector<RuntimeMatch> sorted;
  sorted.reserve(out.size());
  for (const auto& [key, idx] : order) {
    sorted.push_back(std::move(out[idx]));
  }
  return sorted;
}

std::vector<std::string> CollectingMatchSink::SortedKeys() const {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(matches_.size());
    for (const RuntimeMatch& m : matches_) {
      keys.push_back(CanonicalMatchKey(m.match));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace zstream::runtime
