#include "runtime/stream_runtime.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/sync.h"
#include "exec/reorder.h"
#include "obs/trace.h"
#include "runtime/mpsc_queue.h"
#include "verify/plan_verifier.h"

namespace zstream::runtime {

// ---------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------

namespace {

/// Count-down barrier between the control plane and shard workers.
struct SyncPoint {
  explicit SyncPoint(int n) : remaining(n) {}

  void Arrive() {
    zs::MutexLock lock(mu);
    if (--remaining <= 0) cv.NotifyAll();
  }
  void Wait() {
    zs::MutexLock lock(mu);
    while (remaining > 0) cv.Wait(mu);
  }

  zs::Mutex mu;
  zs::CondVar cv;
  int remaining ZS_GUARDED_BY(mu);
};

}  // namespace

void Gate::Park() {
  zs::MutexLock lock(mu_);
  parked_ = true;
  cv_.NotifyAll();
  while (!open_) cv_.Wait(mu_);
}

void Gate::WaitParked() {
  zs::MutexLock lock(mu_);
  while (!parked_) cv_.Wait(mu_);
}

void Gate::Open() {
  zs::MutexLock lock(mu_);
  open_ = true;
  cv_.NotifyAll();
}

/// Merged-stats collection rendezvous for ReplanQuery.
struct StreamRuntime::CollectCtx {
  /// Written once by the control plane before the collect message is
  /// published; read-only for workers afterwards, so unguarded.
  StatsCatalog defaults;
  zs::Mutex mu;
  std::vector<StatsCatalog> parts ZS_GUARDED_BY(mu);
  std::vector<double> weights ZS_GUARDED_BY(mu);
};

/// Profile collection rendezvous for ExplainAnalyze: each shard worker
/// merges its engine's node profile at a message boundary.
struct StreamRuntime::ProfileCtx {
  zs::Mutex mu;
  bool has ZS_GUARDED_BY(mu) = false;
  NodeProfile merged ZS_GUARDED_BY(mu);
  uint64_t events_pushed ZS_GUARDED_BY(mu) = 0;
};

/// One registered query. Engines are indexed by shard and driven only by
/// that shard's worker; everything cross-thread is atomic or immutable
/// after registration.
struct StreamRuntime::QueryState {
  QueryId id = 0;
  StreamId stream = -1;
  std::string text;
  PatternPtr pattern;
  RoutePolicy route = RoutePolicy::kPinned;
  int key_field = -1;
  int pinned_shard = 0;
  int num_shards = 1;
  MatchSink* sink = nullptr;
  std::atomic<uint64_t> matches{0};
  /// Metric label / slow-event log name ("q<id>" unless the caller set
  /// EngineOptions::label).
  std::string label;
  /// Ingest-to-emission latency for this query, owned by the runtime's
  /// registry (null only if registration raced Stop()).
  obs::Histogram* latency = nullptr;
  /// The installed plan's estimated cost (refreshed by ReplanQuery) and
  /// the observed operator-pairs total (refreshed at ExplainAnalyze
  /// barriers) — the predicted-vs-observed pair in /metrics.
  std::atomic<double> plan_cost{0.0};
  std::atomic<uint64_t> observed_pairs{0};
  /// Shared by every shard engine (MemoryTracker is thread-safe).
  std::unique_ptr<MemoryTracker> tracker;
  std::vector<std::unique_ptr<EngineCore>> engines;  // [shard] or null
  /// Serializes ReplanQuery's controller + plan updates without holding
  /// the runtime-wide control_mu_ across worker barriers (a worker
  /// blocked on control_mu_ inside a MatchSink callback must never be
  /// one we are waiting on).
  zs::Mutex replan_mu;
  PhysicalPlan plan ZS_GUARDED_BY(replan_mu);  // control-plane plan view
  /// enable_replan only; the pointer itself is set once at registration,
  /// the controller's mutable state is driven only under replan_mu.
  std::unique_ptr<AdaptiveController> controller ZS_PT_GUARDED_BY(replan_mu);

  /// Worker-side re-filter: several queries can route one event to the
  /// same shard, so each engine checks that the event is its own. The
  /// router stamps the key hash it computed into the message
  /// (hint_field/hint_hash), so the common case — every hash query on
  /// the stream keyed on the same field — is an integer compare here
  /// rather than a second Value::Hash.
  bool AcceptsOn(int shard, const EventPtr& event, int hint_field,
                 size_t hint_hash) const {
    switch (route) {
      case RoutePolicy::kHashKey: {
        const size_t hash = hint_field == key_field
                                ? hint_hash
                                : event->value(key_field).Hash();
        return static_cast<int>(hash % static_cast<size_t>(num_shards)) ==
               shard;
      }
      case RoutePolicy::kPinned:
        return shard == pinned_shard;
      case RoutePolicy::kBroadcast:
        return true;
      case RoutePolicy::kAuto:
        break;  // resolved at registration
    }
    return false;
  }
};

struct StreamRuntime::ShardMsg {
  enum class Kind : char {
    kEvent,
    kRegister,
    kUnregister,
    kFinishAll,     // flush barrier: Finish every engine on the shard
    kSwitchPlan,
    kCollectStats,
    kCollectProfile,  // EXPLAIN ANALYZE: merge node profiles at a barrier
    kGate,
  };

  Kind kind = Kind::kEvent;
  StreamId stream = -1;
  EventPtr event;
  /// kEvent: MonotonicNanos at Ingest — the start of the detection
  /// latency measured when this event's processing emits a match.
  uint64_t arrival_ns = 0;
  /// kEvent: trace id of the sampled ingest batch this event belongs
  /// to (obs/trace.h); 0 = untraced. The shard worker sets it as the
  /// thread's current trace around dispatch.
  uint64_t trace_id = 0;
  /// Router-computed key hash for kEvent (see QueryState::AcceptsOn);
  /// field -1 when no hash route was evaluated.
  int key_hint_field = -1;
  size_t key_hint_hash = 0;
  std::shared_ptr<QueryState> query;
  std::shared_ptr<SyncPoint> sync;
  std::shared_ptr<const PhysicalPlan> plan;
  std::shared_ptr<CollectCtx> collect;
  std::shared_ptr<ProfileCtx> profile;
  std::shared_ptr<Gate> gate;
};

struct StreamRuntime::Shard {
  Shard(int idx, size_t capacity) : index(idx), queue(capacity) {}

  int index;
  MpscRingQueue<ShardMsg> queue;
  std::thread thread;

  // Counters read by the control plane while the worker runs.
  std::atomic<uint64_t> events_processed{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> reorder_late{0};
  std::atomic<uint64_t> reorder_pending{0};

  // Worker-thread-local: engines hosted on this shard.
  struct Entry {
    QueryState* query;
    EngineCore* engine;
  };
  std::vector<Entry> entries;

  // Worker-thread-local: arrival stamp of the event currently being
  // dispatched; match callbacks (same thread) read it to compute
  // detection latency. 0 outside event dispatch (Finish-time matches
  // have no single triggering arrival and are not observed).
  uint64_t current_arrival_ns = 0;

  // Worker-thread-local scratch for DispatchRun: the contiguous event
  // span handed to PushBatch, and the per-query filtered subset for
  // hash-routed queries. Reused across runs to stay allocation-free.
  std::vector<EventPtr> span_scratch;
  std::vector<EventPtr> filter_scratch;

  // Worker-thread-local: one Section-4.1 reorder stage per stream,
  // created lazily when RuntimeOptions::reorder_slack > 0. Sits between
  // the shard queue and the engines, so every engine on the shard sees
  // timestamp-ordered input even when producers interleave.
  std::unordered_map<StreamId, std::unique_ptr<ReorderStage>> reorder;

  void PublishReorderCounters() {
    uint64_t late = 0;
    uint64_t pending = 0;
    for (const auto& [stream, stage] : reorder) {
      late += stage->late_dropped();
      pending += stage->pending();
    }
    reorder_late.store(late, std::memory_order_relaxed);
    reorder_pending.store(pending, std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

StreamRuntime::StreamRuntime(const RuntimeOptions& options)
    : options_(options) {
  if (options_.num_shards <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_shards = hw == 0 ? 1 : static_cast<int>(hw);
  }
  options_.num_shards = std::min(options_.num_shards, 64);  // route bitmask
  if (options_.shard_batch_size < 1) options_.shard_batch_size = 1;
  start_time_ = std::chrono::steady_clock::now();
}

Result<std::unique_ptr<StreamRuntime>> StreamRuntime::Create(
    const RuntimeOptions& options) {
  if (options.queue_capacity < 2) {
    return Status::InvalidArgument(
        "queue_capacity must be >= 2 (events + control messages)");
  }
  auto runtime = std::unique_ptr<StreamRuntime>(new StreamRuntime(options));
  for (int s = 0; s < runtime->options_.num_shards; ++s) {
    runtime->shards_.push_back(
        std::make_unique<Shard>(s, runtime->options_.queue_capacity));
  }
  for (auto& shard : runtime->shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([rt = runtime.get(), raw] {
      rt->WorkerLoop(raw);
    });
  }
  return runtime;
}

StreamRuntime::~StreamRuntime() { Stop(); }

void StreamRuntime::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& shard : shards_) shard->queue.Close();
  {
    // A worker parked at a forgotten PauseShard gate would never see
    // the queue close; open every outstanding gate before joining.
    zs::MutexLock lock(gates_mu_);
    for (const std::weak_ptr<Gate>& weak : gates_) {
      if (auto gate = weak.lock()) gate->Open();
    }
    gates_.clear();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

// ---------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------

ZS_HOT void StreamRuntime::DispatchEvent(Shard* shard, StreamId stream,
                                         const EventPtr& event,
                                         int hint_field, size_t hint_hash) {
  for (Shard::Entry& entry : shard->entries) {
    if (entry.query->stream != stream) continue;
    if (!entry.query->AcceptsOn(shard->index, event, hint_field,
                                hint_hash)) {
      continue;
    }
    entry.engine->Push(event);
  }
}

ZS_HOT void StreamRuntime::DispatchRun(Shard* shard, const ShardMsg* msgs,
                                       size_t count) {
  // All messages in a run share arrival_ns (same ingest batch), so the
  // latency stamp is exact for every match the run emits.
  shard->current_arrival_ns = msgs[0].arrival_ns;
  const StreamId stream = msgs[0].stream;
  std::vector<EventPtr>& span = shard->span_scratch;
  span.clear();
  for (size_t i = 0; i < count; ++i) {
    span.push_back(msgs[i].event);  // zs-hotpath-allow(amortized: scratch capacity reused across runs)
  }
  for (Shard::Entry& entry : shard->entries) {
    const QueryState* q = entry.query;
    if (q->stream != stream) continue;
    switch (q->route) {
      case RoutePolicy::kPinned:
        if (shard->index != q->pinned_shard) continue;
        break;
      case RoutePolicy::kBroadcast:
        break;
      case RoutePolicy::kHashKey: {
        // Membership varies per event: filter the run down to this
        // query's keys, reusing the router's hash hints.
        std::vector<EventPtr>& mine = shard->filter_scratch;
        mine.clear();
        for (size_t i = 0; i < count; ++i) {
          if (q->AcceptsOn(shard->index, msgs[i].event,
                           msgs[i].key_hint_field, msgs[i].key_hint_hash)) {
            mine.push_back(msgs[i].event);  // zs-hotpath-allow(amortized: scratch capacity reused across runs)
          }
        }
        if (!mine.empty()) {
          entry.engine->PushBatch(EventBatch{mine.data(), mine.size()});
        }
        continue;
      }
      case RoutePolicy::kAuto:
        continue;  // resolved at registration
    }
    entry.engine->PushBatch(EventBatch{span.data(), span.size()});
  }
  shard->current_arrival_ns = 0;
}

void StreamRuntime::FlushReorder(Shard* shard) {
  for (auto& [stream, stage] : shard->reorder) stage->Flush();
  shard->PublishReorderCounters();
}

ZS_HOT void StreamRuntime::WorkerLoop(Shard* shard) {
  const bool reordering = options_.reorder_slack > 0;
  // Spans recorded from this thread (queue wait, exec, operator, match)
  // land in the shard's own ring lane; lane 0 stays the control lane.
  obs::SetCurrentLane(static_cast<uint32_t>(1 + shard->index));
  std::vector<ShardMsg> batch;
  batch.reserve(static_cast<size_t>(options_.shard_batch_size));
  while (shard->queue.PopBatch(&batch,
                               static_cast<size_t>(
                                   options_.shard_batch_size)) > 0) {
    shard->batches.fetch_add(1, std::memory_order_relaxed);
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      ShardMsg& msg = batch[bi];
      switch (msg.kind) {
        case ShardMsg::Kind::kEvent: {
          // Columnar fast path: hand consecutive untraced events from
          // the same ingest batch to the engines as one span. Traced
          // events keep the per-event path so queue-wait spans and
          // trace ids stay per event; reordering keeps it because the
          // reorder stage is inherently event-at-a-time.
          if (!reordering && msg.trace_id == 0) {
            size_t run_end = bi + 1;
            while (run_end < batch.size() &&
                   batch[run_end].kind == ShardMsg::Kind::kEvent &&
                   batch[run_end].stream == msg.stream &&
                   batch[run_end].trace_id == 0 &&
                   batch[run_end].arrival_ns == msg.arrival_ns) {
              ++run_end;
            }
            if (run_end - bi > 1) {
              DispatchRun(shard, &batch[bi], run_end - bi);
              shard->events_processed.fetch_add(
                  run_end - bi, std::memory_order_relaxed);
              bi = run_end - 1;
              break;
            }
          }
          // Matches emitted while this event is processed (including
          // reorder releases it triggers) measure latency from its
          // arrival — the emission-triggering ingest.
          shard->current_arrival_ns = msg.arrival_ns;
          obs::SetCurrentTrace(msg.trace_id);
          // Queue residency: enqueue stamp to dequeue, on this shard's
          // lane. The dominant latency contributor under load.
          obs::TraceRecord(obs::CurrentLane(), obs::SpanKind::kQueueWait,
                           msg.trace_id, msg.arrival_ns,
                           obs::MonotonicNanos(), nullptr,
                           static_cast<uint64_t>(shard->index));
          if (reordering) {
            auto it = shard->reorder.find(msg.stream);
            if (it == shard->reorder.end()) {
              // Reordered events lose their router key hint: released
              // later, possibly interleaved across hints, they re-hash
              // in AcceptsOn (hint_field -1).
              auto stage = std::make_unique<ReorderStage>(
                  options_.reorder_slack,
                  [this, shard, stream = msg.stream](const EventPtr& e) {
                    DispatchEvent(shard, stream, e, /*hint_field=*/-1,
                                  /*hint_hash=*/0);
                  });
              it = shard->reorder.emplace(msg.stream, std::move(stage))
                       .first;
            }
            it->second->Push(msg.event);
          } else {
            DispatchEvent(shard, msg.stream, msg.event, msg.key_hint_field,
                          msg.key_hint_hash);
          }
          shard->current_arrival_ns = 0;
          obs::SetCurrentTrace(0);
          shard->events_processed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case ShardMsg::Kind::kRegister: {
          EngineCore* engine =
              msg.query->engines[static_cast<size_t>(shard->index)].get();
          shard->entries.push_back(Shard::Entry{msg.query.get(), engine});
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kUnregister: {
          const QueryId id = msg.query->id;
          auto it = std::find_if(
              shard->entries.begin(), shard->entries.end(),
              [id](const Shard::Entry& e) { return e.query->id == id; });
          if (it != shard->entries.end()) {
            // Release the stream's reorder buffer first so the final
            // match count covers everything ingested before the
            // retire. Side effect (as at the kFinishAll barrier):
            // other queries on the stream see those events now, and
            // later arrivals below the flushed frontier count as late.
            if (reordering) {
              auto stage = shard->reorder.find(msg.query->stream);
              if (stage != shard->reorder.end()) {
                stage->second->Flush();
                shard->PublishReorderCounters();
              }
            }
            it->engine->Finish();  // deliver pending matches first
            shard->entries.erase(it);
          }
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kFinishAll: {
          // Release everything still buffered in the reorder stages
          // first, so the barrier's promise ("every event enqueued
          // before this call is processed") covers them. Events
          // arriving after the barrier with timestamps below the flush
          // point count as late.
          if (reordering) FlushReorder(shard);
          for (Shard::Entry& entry : shard->entries) entry.engine->Finish();
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kSwitchPlan: {
          const QueryId id = msg.query->id;
          for (Shard::Entry& entry : shard->entries) {
            if (entry.query->id != id) continue;
            const Status st = entry.engine->SwitchPlan(*msg.plan);
            if (!st.ok()) {
              ZS_LOG(Warn) << "shard " << shard->index
                           << " plan switch failed: " << st.ToString();
            }
          }
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kCollectStats: {
          const QueryId id = msg.query->id;
          for (Shard::Entry& entry : shard->entries) {
            if (entry.query->id != id) continue;
            CollectCtx* ctx = msg.collect.get();
            StatsCatalog part = entry.engine->StatsSnapshot(ctx->defaults);
            const double weight =
                static_cast<double>(entry.engine->events_pushed());
            zs::MutexLock lock(ctx->mu);
            ctx->parts.push_back(std::move(part));
            ctx->weights.push_back(weight);
          }
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kCollectProfile: {
          const QueryId id = msg.query->id;
          for (Shard::Entry& entry : shard->entries) {
            if (entry.query->id != id) continue;
            ProfileCtx* ctx = msg.profile.get();
            NodeProfile part = entry.engine->Profile();
            const uint64_t pushed = entry.engine->events_pushed();
            zs::MutexLock lock(ctx->mu);
            ctx->events_pushed += pushed;
            if (!ctx->has) {
              ctx->merged = std::move(part);
              ctx->has = true;
            } else {
              // Same query, same plan on every shard -> same shape; a
              // failed merge would mean shard engines desynchronized.
              const Status st = MergeNodeProfile(&ctx->merged, part);
              if (!st.ok()) {
                ZS_LOG(Warn) << "shard " << shard->index
                             << " profile merge failed: " << st.ToString();
              }
            }
          }
          msg.sync->Arrive();
          break;
        }
        case ShardMsg::Kind::kGate: {
          msg.gate->Park();
          break;
        }
      }
    }
    if (reordering) shard->PublishReorderCounters();
  }
  // Queue closed and drained: flush so counters and sinks are complete.
  if (reordering) FlushReorder(shard);
  for (Shard::Entry& entry : shard->entries) entry.engine->Finish();
}

// ---------------------------------------------------------------------
// Streams and routing
// ---------------------------------------------------------------------

Result<StreamId> StreamRuntime::AddStream(const std::string& name,
                                          SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("stream schema must not be null");
  }
  zs::WriterMutexLock lock(route_mu_);
  for (const StreamInfo& info : streams_) {
    if (info.name == name) {
      return Status::InvalidArgument("stream '" + name +
                                     "' already exists");
    }
  }
  streams_.push_back(StreamInfo{name, std::move(schema), {}});
  return static_cast<StreamId>(streams_.size() - 1);
}

Result<StreamId> StreamRuntime::stream(const std::string& name) const {
  zs::ReaderMutexLock lock(route_mu_);
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].name == name) return static_cast<StreamId>(i);
  }
  return Status::NotFound("no stream named '" + name + "'");
}

std::vector<std::string> StreamRuntime::StreamNames() const {
  zs::ReaderMutexLock lock(route_mu_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const StreamInfo& info : streams_) names.push_back(info.name);
  return names;
}

ZS_HOT uint64_t StreamRuntime::TargetMask(const RouteEntry& entry,
                                          const EventPtr& event,
                                          int* hint_field,
                                          size_t* hint_hash) const {
  switch (entry.route) {
    case RoutePolicy::kHashKey: {
      const size_t hash = *hint_field == entry.key_field
                              ? *hint_hash
                              : event->value(entry.key_field).Hash();
      *hint_field = entry.key_field;
      *hint_hash = hash;
      return 1ULL << (hash % shards_.size());
    }
    case RoutePolicy::kPinned:
      return 1ULL << entry.pinned_shard;
    case RoutePolicy::kBroadcast:
      return shards_.size() >= 64 ? ~0ULL
                                  : (1ULL << shards_.size()) - 1;
    case RoutePolicy::kAuto:
      break;  // resolved at registration
  }
  return 0;
}

// ---------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------

ZS_HOT bool StreamRuntime::Ingest(StreamId stream, const EventPtr& event) {
  // A single-event ingest is its own sampling batch.
  return Ingest(stream, event, obs::TraceSampleBatch());
}

ZS_HOT bool StreamRuntime::Ingest(StreamId stream, const EventPtr& event,
                                  uint64_t trace_id) {
  if (stopped_.load(std::memory_order_relaxed) || event == nullptr) {
    return false;
  }
  uint64_t mask = 0;
  int hint_field = -1;
  size_t hint_hash = 0;
  {
    zs::ReaderMutexLock lock(route_mu_);
    if (stream < 0 || static_cast<size_t>(stream) >= streams_.size()) {
      return false;
    }
    for (const RouteEntry& entry : streams_[static_cast<size_t>(stream)]
                                       .routes) {
      mask |= TargetMask(entry, event, &hint_field, &hint_hash);
    }
  }
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  if (trace_id != 0) {
    events_traced_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t arrival_ns = obs::MonotonicNanos();
  bool ok = true;
  for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
    if ((mask & 1) == 0) continue;
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kEvent;
    msg.stream = stream;
    msg.event = event;
    msg.arrival_ns = arrival_ns;
    msg.trace_id = trace_id;
    msg.key_hint_field = hint_field;
    msg.key_hint_hash = hint_hash;
    if (options_.backpressure == BackpressurePolicy::kBlock) {
      ok &= shards_[s]->queue.Push(std::move(msg));
    } else if (!shards_[s]->queue.TryPush(std::move(msg))) {
      shards_[s]->dropped.fetch_add(1, std::memory_order_relaxed);
      ok = false;
    }
  }
  return ok;
}

bool StreamRuntime::Ingest(const std::string& stream_name,
                           const EventPtr& event) {
  const Result<StreamId> id = stream(stream_name);
  return id.ok() && Ingest(*id, event);
}

ZS_HOT uint64_t StreamRuntime::IngestBatch(
    StreamId stream, const std::vector<EventPtr>& events) {
  return IngestBatch(stream, events, obs::TraceSampleBatch());
}

ZS_HOT uint64_t StreamRuntime::IngestBatch(
    StreamId stream, const std::vector<EventPtr>& events, uint64_t trace_id) {
  if (stopped_.load(std::memory_order_relaxed)) return events.size();
  // One stamp per batch: latency for a batch's matches is measured from
  // the batch's enqueue, which is what a producer of that batch observes.
  const uint64_t arrival_ns = obs::MonotonicNanos();
  std::vector<std::vector<ShardMsg>> per_shard(shards_.size());
  {
    zs::ReaderMutexLock lock(route_mu_);
    if (stream < 0 || static_cast<size_t>(stream) >= streams_.size()) {
      return events.size();
    }
    const StreamInfo& info = streams_[static_cast<size_t>(stream)];
    for (const EventPtr& event : events) {
      uint64_t mask = 0;
      int hint_field = -1;
      size_t hint_hash = 0;
      for (const RouteEntry& entry : info.routes) {
        mask |= TargetMask(entry, event, &hint_field, &hint_hash);
      }
      for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
        if ((mask & 1) == 0) continue;
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kEvent;
        msg.stream = stream;
        msg.event = event;
        msg.arrival_ns = arrival_ns;
        msg.trace_id = trace_id;
        msg.key_hint_field = hint_field;
        msg.key_hint_hash = hint_hash;
        per_shard[s].push_back(std::move(msg));
      }
    }
  }
  events_ingested_.fetch_add(events.size(), std::memory_order_relaxed);
  if (trace_id != 0) {
    events_traced_.fetch_add(events.size(), std::memory_order_relaxed);
  }
  uint64_t drops = 0;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    if (options_.backpressure == BackpressurePolicy::kBlock) {
      // PushAll falls short only when the runtime stopped mid-batch.
      drops += per_shard[s].size() - shards_[s]->queue.PushAll(&per_shard[s]);
    } else {
      for (ShardMsg& msg : per_shard[s]) {
        if (!shards_[s]->queue.TryPush(std::move(msg))) {
          shards_[s]->dropped.fetch_add(1, std::memory_order_relaxed);
          ++drops;
        }
      }
    }
  }
  return drops;
}

// ---------------------------------------------------------------------
// Query registration
// ---------------------------------------------------------------------

std::vector<int> StreamRuntime::TargetShards(const QueryState& qs) const {
  std::vector<int> out;
  if (qs.route == RoutePolicy::kPinned) {
    out.push_back(qs.pinned_shard);
  } else {
    for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
      out.push_back(s);
    }
  }
  return out;
}

bool StreamRuntime::SyncShards(const std::vector<int>& shard_indices,
                               ShardMsg&& proto) {
  auto sync = std::make_shared<SyncPoint>(
      static_cast<int>(shard_indices.size()));
  proto.sync = sync;
  bool all_delivered = true;
  for (int s : shard_indices) {
    ShardMsg msg = proto;  // shared_ptr copies
    if (!shards_[static_cast<size_t>(s)]->queue.Push(std::move(msg))) {
      sync->Arrive();  // queue closed: account for the missing worker ack
      all_delivered = false;
    }
  }
  sync->Wait();
  return all_delivered;
}

Result<QueryId> StreamRuntime::RegisterQuery(StreamId stream,
                                             const std::string& text,
                                             const CompileOptions& compile,
                                             const QueryOptions& options) {
  SchemaPtr schema;
  {
    zs::ReaderMutexLock lock(route_mu_);
    if (stream < 0 || static_cast<size_t>(stream) >= streams_.size()) {
      return Status::InvalidArgument("unknown stream id");
    }
    schema = streams_[static_cast<size_t>(stream)].schema;
  }
  ZS_ASSIGN_OR_RETURN(PatternPtr pattern,
                      AnalyzeQuery(text, schema, compile.analyzer));
  ZS_ASSIGN_OR_RETURN(PhysicalPlan plan, BuildPlan(pattern, compile));
  return RegisterCompiled(stream, std::move(pattern), plan, compile.engine,
                          options, text);
}

Result<QueryId> StreamRuntime::RegisterQuery(const std::string& stream_name,
                                             const std::string& text,
                                             const CompileOptions& compile,
                                             const QueryOptions& options) {
  ZS_ASSIGN_OR_RETURN(StreamId id, stream(stream_name));
  return RegisterQuery(id, text, compile, options);
}

Result<QueryId> StreamRuntime::RegisterQuery(StreamId stream,
                                             PatternPtr pattern,
                                             const PhysicalPlan& plan,
                                             const EngineOptions& engine,
                                             const QueryOptions& options) {
  {
    zs::ReaderMutexLock lock(route_mu_);
    if (stream < 0 || static_cast<size_t>(stream) >= streams_.size()) {
      return Status::InvalidArgument("unknown stream id");
    }
  }
  return RegisterCompiled(stream, std::move(pattern), plan, engine, options,
                          "");
}

Result<QueryId> StreamRuntime::RegisterCompiled(
    StreamId stream, PatternPtr pattern, const PhysicalPlan& plan,
    const EngineOptions& engine_options, const QueryOptions& options,
    std::string text) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("runtime is stopped");
  }
  RoutePolicy route = options.route;
  if (route == RoutePolicy::kAuto) {
    route = pattern->partition.has_value() ? RoutePolicy::kHashKey
                                           : RoutePolicy::kPinned;
  }
  if (route == RoutePolicy::kHashKey && !pattern->partition.has_value()) {
    return Status::InvalidArgument(
        "RoutePolicy::kHashKey requires a pattern with a partition key "
        "(the analyzer found none)");
  }

  // NOTE: control_mu_ is only held for id reservation and the final map
  // insert — never across SyncShards. A worker can block on control_mu_
  // through a MatchSink callback (sink -> query_matches), so waiting on
  // workers while holding it would deadlock.
  auto qs = std::make_shared<QueryState>();
  QueryState* q = qs.get();
  {
    zs::MutexLock control(control_mu_);
    q->id = next_query_id_++;
    if (route == RoutePolicy::kPinned) {
      q->pinned_shard = next_pin_++ % static_cast<int>(shards_.size());
    }
  }
  qs->stream = stream;
  qs->text = std::move(text);
  qs->pattern = pattern;
  {
    // No concurrent access yet (qs is unpublished); the lock satisfies
    // the plan field's replan_mu guard.
    zs::MutexLock replan(q->replan_mu);
    q->plan = plan;
  }
  qs->route = route;
  qs->num_shards = static_cast<int>(shards_.size());
  qs->sink = options.sink;
  qs->tracker = std::make_unique<MemoryTracker>();
  qs->engines.resize(shards_.size());
  if (pattern->partition.has_value()) {
    qs->key_field = pattern->partition->field_indices.front();
  }

  EngineOptions eopts = engine_options;
  if (eopts.slow_event_ns == 0) eopts.slow_event_ns = options_.slow_event_ns;
  qs->label = eopts.label.empty() ? "q" + std::to_string(qs->id)
                                  : eopts.label;
  eopts.label = qs->label;
  qs->plan_cost.store(plan.estimated_cost, std::memory_order_relaxed);
  qs->latency = registry_.GetHistogram(
      "zstream_detection_latency_seconds", {{"query", qs->label}},
      "Ingest-to-emission latency of each match", 1e-9);
  if (options.enable_replan) {
    eopts.collect_stats = true;
    const StatsCatalog defaults(pattern->num_classes(),
                                static_cast<double>(pattern->window));
    zs::MutexLock replan(q->replan_mu);
    q->controller =
        std::make_unique<AdaptiveController>(pattern, options.replan);
    q->controller->OnPlanInstalled(plan, defaults);
  }

  const std::vector<int> targets = TargetShards(*qs);
  for (int s : targets) {
    std::unique_ptr<EngineCore> engine;
    if (pattern->partition.has_value()) {
      ZS_ASSIGN_OR_RETURN(auto pe, PartitionedEngine::Create(
                                       pattern, plan, eopts,
                                       qs->tracker.get()));
      engine = std::move(pe);
    } else {
      ZS_ASSIGN_OR_RETURN(auto se, Engine::Create(pattern, plan, eopts,
                                                  qs->tracker.get()));
      engine = std::move(se);
    }
    engine->SetMatchCallback(
        [raw = qs.get(), s, sink = options.sink,
         shard = shards_[static_cast<size_t>(s)].get()](Match&& m) {
          raw->matches.fetch_add(1, std::memory_order_relaxed);
          // Same thread as the worker that set the stamp; 0 outside
          // event dispatch (e.g. Finish-time matches).
          if (shard->current_arrival_ns != 0) {
            raw->latency->Observe(obs::MonotonicNanos() -
                                  shard->current_arrival_ns);
          }
          if (sink != nullptr) {
            // Published on the worker thread, so the thread-local trace
            // id still names the sampled ingest that emitted this match;
            // fanout/delivery spans downstream join the same trace.
            sink->Publish(
                RuntimeMatch{raw->id, s, obs::CurrentTraceId(),
                             std::move(m)});
          }
        });
    qs->engines[static_cast<size_t>(s)] = std::move(engine);
  }

  // Install on every target shard; barrier so events ingested after we
  // return are guaranteed to be evaluated.
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kRegister;
  msg.query = qs;
  if (!SyncShards(targets, std::move(msg))) {
    // Stop() raced with us: some worker never installed the engine, so
    // the registration guarantee cannot hold. Nothing was published;
    // qs (and its engines, which no worker ever saw) die here.
    return Status::FailedPrecondition("runtime stopped during register");
  }

  // Only now publish the route: nothing can reach a shard that has not
  // installed the engine yet.
  {
    zs::WriterMutexLock lock(route_mu_);
    streams_[static_cast<size_t>(stream)].routes.push_back(RouteEntry{
        qs->id, qs->route, qs->key_field, qs->pinned_shard});
  }
  const QueryId id = qs->id;
  {
    zs::MutexLock control(control_mu_);
    queries_.emplace(id, std::move(qs));
  }
  return id;
}

Result<uint64_t> StreamRuntime::UnregisterQuery(QueryId id) {
  std::shared_ptr<QueryState> qs;
  {
    zs::MutexLock control(control_mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("no query with that id");
    }
    qs = it->second;
  }
  {
    zs::WriterMutexLock lock(route_mu_);
    auto& routes = streams_[static_cast<size_t>(qs->stream)].routes;
    routes.erase(std::remove_if(routes.begin(), routes.end(),
                                [id](const RouteEntry& e) {
                                  return e.query == id;
                                }),
                 routes.end());
  }
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kUnregister;
  msg.query = qs;
  if (!SyncShards(TargetShards(*qs), std::move(msg))) {
    // Runtime is stopping: some worker never processed the retire
    // message and may still touch the engines while draining. Leave the
    // QueryState registered so the engines outlive the workers (they
    // are destroyed with the runtime, after Stop() joins).
    return Status::FailedPrecondition(
        "runtime stopped while unregistering; query retired with it");
  }
  const uint64_t final_matches = qs->matches.load(std::memory_order_relaxed);
  {
    zs::MutexLock control(control_mu_);
    queries_.erase(id);
  }
  return final_matches;
}

// ---------------------------------------------------------------------
// Barriers, stats, re-planning
// ---------------------------------------------------------------------

Status StreamRuntime::Flush() {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("runtime is stopped");
  }
  // No control_mu_ here: shards_ is immutable after Create, and a
  // worker's Finish -> MatchSink callback may itself take control_mu_
  // via an accessor (query_matches, Stats).
  std::vector<int> all;
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    all.push_back(s);
  }
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kFinishAll;
  SyncShards(all, std::move(msg));
  return Status::OK();
}

Result<uint64_t> StreamRuntime::query_matches(QueryId id) const {
  zs::MutexLock control(control_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::NotFound("no query with that id");
  return it->second->matches.load(std::memory_order_relaxed);
}

Result<int64_t> StreamRuntime::query_peak_bytes(QueryId id) const {
  zs::MutexLock control(control_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::NotFound("no query with that id");
  return it->second->tracker->peak_bytes();
}

Result<int> StreamRuntime::query_shard_count(QueryId id) const {
  zs::MutexLock control(control_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::NotFound("no query with that id");
  return static_cast<int>(TargetShards(*it->second).size());
}

Result<bool> StreamRuntime::ReplanQuery(QueryId id) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("runtime is stopped");
  }
  std::shared_ptr<QueryState> qs;
  {
    zs::MutexLock control(control_mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("no query with that id");
    }
    qs = it->second;
  }
  QueryState* q = qs.get();
  if (q->controller == nullptr) {
    return Status::FailedPrecondition(
        "query was not registered with QueryOptions::enable_replan");
  }
  // Controller/plan updates serialize on the query's own mutex;
  // control_mu_ must not be held across the worker barriers below.
  zs::MutexLock replan(q->replan_mu);

  // Adaptive decisions are control-plane work: give each evaluation its
  // own trace (lane 0) so plan churn is auditable next to event spans.
  const uint64_t replan_trace = obs::Tracer::Global().NewTraceId();
  const uint64_t replan_t0 = obs::MonotonicNanos();
  auto end_replan = [&](bool switched) {
    obs::TraceRecord(0, obs::SpanKind::kReplan, replan_trace, replan_t0,
                     obs::MonotonicNanos(), q->label.c_str(),
                     switched ? 1 : 0);
  };

  auto collect = std::make_shared<CollectCtx>();
  CollectCtx* cctx = collect.get();
  cctx->defaults = StatsCatalog(q->pattern->num_classes(),
                                static_cast<double>(q->pattern->window));
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kCollectStats;
  msg.query = qs;
  msg.collect = collect;
  SyncShards(TargetShards(*qs), std::move(msg));

  // The barrier above ordered every worker's writes before this point;
  // the (now uncontended) lock makes that visible to the analysis.
  size_t num_parts = 0;
  std::optional<StatsCatalog> merged_opt;
  {
    zs::MutexLock lock(cctx->mu);
    if (cctx->parts.empty()) {
      end_replan(false);
      return false;
    }
    num_parts = cctx->parts.size();
    merged_opt = MergeStatsCatalogs(cctx->parts, cctx->weights);
  }
  StatsCatalog merged = std::move(*merged_opt);
  if (q->route == RoutePolicy::kBroadcast && num_parts > 1) {
    // MergeStatsCatalogs sums rates assuming disjoint stream slices;
    // broadcast shards each saw the FULL stream, so undo the N-fold
    // inflation (selectivity averages remain correct either way).
    for (int c = 0; c < merged.num_classes(); ++c) {
      merged.set_rate(c,
                      merged.rate(c) / static_cast<double>(num_parts));
    }
  }
  std::optional<PhysicalPlan> next = q->controller->MaybeReplan(merged);
  if (!next.has_value()) {
    end_replan(false);
    return false;
  }
  // The controller already verified the candidate, but a plan is about
  // to be broadcast to every shard — re-check at the last seam so a
  // future controller bug cannot desynchronize shard engines.
  ZS_RETURN_IF_ERROR(verify::VerifyPlan(*q->pattern, *next));

  ShardMsg switch_msg;
  switch_msg.kind = ShardMsg::Kind::kSwitchPlan;
  switch_msg.query = qs;
  switch_msg.plan = std::make_shared<const PhysicalPlan>(*next);
  const uint64_t switch_t0 = obs::MonotonicNanos();
  SyncShards(TargetShards(*qs), std::move(switch_msg));
  obs::TraceRecord(0, obs::SpanKind::kPlanSwitch, replan_trace, switch_t0,
                   obs::MonotonicNanos(), q->label.c_str(),
                   obs::Fnv1a64(next->Explain(*q->pattern)));
  q->plan = *next;
  q->plan_cost.store(next->estimated_cost, std::memory_order_relaxed);
  end_replan(true);
  return true;
}

Result<std::string> StreamRuntime::ExplainAnalyze(QueryId id) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("runtime is stopped");
  }
  std::shared_ptr<QueryState> qs;
  {
    zs::MutexLock control(control_mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("no query with that id");
    }
    qs = it->second;
  }
  QueryState* q = qs.get();
  auto profile = std::make_shared<ProfileCtx>();
  ProfileCtx* pctx = profile.get();
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kCollectProfile;
  msg.query = qs;
  msg.profile = profile;
  if (!SyncShards(TargetShards(*qs), std::move(msg))) {
    return Status::FailedPrecondition("runtime stopped during profile");
  }

  std::ostringstream os;
  os << "query=" << q->label;
  {
    // q->plan is only mutated under replan_mu (ReplanQuery).
    zs::MutexLock replan(q->replan_mu);
    os << " plan=" << q->plan.Explain(*q->pattern);
    os.precision(6);
    os << " cost_est=" << q->plan.estimated_cost;
  }
  // The SyncShards barrier ordered the workers' profile writes before
  // this point; the uncontended lock makes that visible to the analysis.
  uint64_t pairs = 0;
  uint64_t events_pushed = 0;
  bool has_profile = false;
  std::string rendered;
  {
    zs::MutexLock lock(pctx->mu);
    has_profile = pctx->has;
    events_pushed = pctx->events_pushed;
    if (pctx->has) {
      // The observed analogue of the cost estimate: total operator input
      // combinations tried, summed over the merged tree.
      std::function<void(const NodeProfile&)> sum =
          [&](const NodeProfile& n) {
            pairs += n.pairs_tried;
            for (const NodeProfile& c : n.children) sum(c);
          };
      sum(pctx->merged);
      rendered = RenderNodeProfile(pctx->merged);
    }
  }
  q->observed_pairs.store(pairs, std::memory_order_relaxed);
  os << " observed_pairs=" << pairs << " shards="
     << TargetShards(*qs).size() << "\n";
  os << "events_pushed=" << events_pushed << " matches="
     << q->matches.load(std::memory_order_relaxed) << "\n";
  if (has_profile) {
    os << rendered;
  } else {
    os << "(no engine profile collected)\n";
  }
  return os.str();
}

void StreamRuntime::UpdateMetrics() {
  const RuntimeStats stats = Stats();
  obs::Registry& reg = registry_;
  reg.GetGauge("zstream_uptime_seconds", {},
               "Seconds since the runtime was created")
      ->Set(static_cast<int64_t>(stats.elapsed_s));
  reg.GetCounter("zstream_events_ingested_total", {},
                 "Events accepted by Ingest/IngestBatch")
      ->Store(stats.events_ingested);
  reg.GetCounter("zstream_matches_total", {},
                 "Matches emitted across all registered queries")
      ->Store(stats.matches);
  reg.GetCounter("zstream_events_traced_total", {},
                 "Events ingested carrying a sampled trace id")
      ->Store(stats.events_traced);
  reg.GetGauge("zstream_queries", {}, "Currently registered queries")
      ->Set(static_cast<int64_t>(stats.num_queries));
  for (const ShardStats& s : stats.shards) {
    const obs::Labels labels = {{"shard", std::to_string(s.shard)}};
    reg.GetCounter("zstream_shard_events_processed_total", labels,
                   "Events dispatched to engines, per shard")
        ->Store(s.events_processed);
    reg.GetCounter("zstream_shard_batches_total", labels,
                   "Queue batches popped, per shard")
        ->Store(s.batches);
    reg.GetCounter("zstream_shard_events_dropped_total", labels,
                   "Events dropped on a full queue (kDropNewest)")
        ->Store(s.events_dropped);
    reg.GetCounter("zstream_shard_reorder_late_total", labels,
                   "Events dropped for arriving beyond the reorder slack")
        ->Store(s.late_dropped);
    reg.GetGauge("zstream_shard_queue_depth", labels,
                 "Messages waiting in the shard's ring queue")
        ->Set(static_cast<int64_t>(s.queue_depth));
    reg.GetGauge("zstream_shard_reorder_pending", labels,
                 "Events buffered in the shard's reorder stages")
        ->Set(static_cast<int64_t>(s.pending));
  }
  std::vector<std::shared_ptr<QueryState>> queries;
  {
    zs::MutexLock control(control_mu_);
    queries.reserve(queries_.size());
    for (const auto& [qid, qstate] : queries_) queries.push_back(qstate);
  }
  for (const auto& qs : queries) {
    const obs::Labels labels = {{"query", qs->label}};
    reg.GetCounter("zstream_query_matches_total", labels,
                   "Matches emitted by the query")
        ->Store(qs->matches.load(std::memory_order_relaxed));
    reg.GetGauge("zstream_query_plan_cost_estimate", labels,
                 "Estimated cost of the installed plan (rounded; "
                 "refreshed on adaptive switches)")
        ->Set(static_cast<int64_t>(
            qs->plan_cost.load(std::memory_order_relaxed)));
    reg.GetCounter("zstream_query_pairs_observed_total", labels,
                   "Operator input combinations tried (refreshed at "
                   "ExplainAnalyze barriers)")
        ->Store(qs->observed_pairs.load(std::memory_order_relaxed));
    reg.GetGauge("zstream_query_peak_bytes", labels,
                 "Peak tracked engine memory across the query's shards")
        ->Set(qs->tracker->peak_bytes());
  }
}

std::string StreamRuntime::MetricsPrometheus() {
  UpdateMetrics();
  return registry_.RenderPrometheus();
}

std::string StreamRuntime::MetricsJson() {
  UpdateMetrics();
  return registry_.RenderJson();
}

RuntimeStats StreamRuntime::Stats() const {
  RuntimeStats out;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  out.elapsed_s = elapsed;
  out.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  out.events_traced = events_traced_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    ShardStats s;
    s.shard = shard->index;
    s.events_processed =
        shard->events_processed.load(std::memory_order_relaxed);
    s.batches = shard->batches.load(std::memory_order_relaxed);
    s.events_dropped = shard->dropped.load(std::memory_order_relaxed);
    s.queue_depth = shard->queue.size();
    s.throughput_eps =
        elapsed > 0.0 ? static_cast<double>(s.events_processed) / elapsed
                      : 0.0;
    s.late_dropped = shard->reorder_late.load(std::memory_order_relaxed);
    s.pending = static_cast<size_t>(
        shard->reorder_pending.load(std::memory_order_relaxed));
    out.events_processed += s.events_processed;
    out.events_dropped += s.events_dropped;
    out.late_dropped += s.late_dropped;
    out.pending += s.pending;
    out.shards.push_back(s);
  }
  {
    zs::MutexLock control(control_mu_);
    out.num_queries = queries_.size();
    for (const auto& [id, qs] : queries_) {
      out.matches += qs->matches.load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::shared_ptr<Gate> StreamRuntime::PauseShard(int shard) {
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size() ||
      stopped_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  auto gate = std::make_shared<Gate>();
  {
    zs::MutexLock lock(gates_mu_);
    gates_.push_back(gate);
  }
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kGate;
  msg.gate = gate;
  if (!shards_[static_cast<size_t>(shard)]->queue.Push(std::move(msg))) {
    return nullptr;
  }
  return gate;
}

}  // namespace zstream::runtime
