// Concurrent streaming runtime: a sharded, multi-query server layer on
// top of the single-threaded ZStream engines.
//
//   producers --> Ingest() --router--> shard queues --> shard workers
//                                                          |  per-shard
//                                                          |  engines
//                                                          v
//                                          MatchSink (thread-safe, ordered)
//
// Each of N shards owns one worker thread, one bounded MPSC ring queue
// and one engine instance per registered query that routes there. Events
// are routed by partition-key hash (the analyzer's Section 5.2.2 key),
// so every key's events land on exactly one shard and the sharded match
// set equals the single-threaded one exactly. Keyless queries are pinned
// to a single shard (assigned round-robin across queries, so many
// queries still spread over all cores) or broadcast to every shard on
// request. Backpressure on full queues is configurable: block the
// producer, or drop-newest with per-shard drop counters.
//
// Queries register and unregister at runtime; both are barriers (they
// return once every shard has installed/retired its engine), so events
// ingested after RegisterQuery() returns are guaranteed to be seen.
// Per-shard windowed statistics can be merged into one StatsCatalog and
// fed to a query-level AdaptiveController (ReplanQuery), broadcasting a
// Section-5.3 state-preserving plan switch to every shard.
#ifndef ZSTREAM_RUNTIME_STREAM_RUNTIME_H_
#define ZSTREAM_RUNTIME_STREAM_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/zstream.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "opt/adaptive.h"
#include "runtime/match_sink.h"
#include "runtime/runtime_options.h"
#include "runtime/runtime_stats.h"

namespace zstream::runtime {

using StreamId = int;

struct QueryOptions {
  RoutePolicy route = RoutePolicy::kAuto;
  /// Thread-safe match consumer (not owned; may be null: count only).
  MatchSink* sink = nullptr;
  /// Enables merged-stats re-planning via ReplanQuery (forces
  /// collect_stats on the per-shard engines).
  bool enable_replan = false;
  AdaptiveOptions replan;
};

/// \brief Test/diagnostic hook: parks a shard worker until opened, so a
/// test can deterministically fill a queue (see PauseShard).
class Gate {
 public:
  /// Worker side: signal parked, then block until Open().
  void Park();
  /// Blocks until the worker has parked.
  void WaitParked();
  /// Releases the worker.
  void Open();

 private:
  zs::Mutex mu_;
  zs::CondVar cv_;
  bool parked_ ZS_GUARDED_BY(mu_) = false;
  bool open_ ZS_GUARDED_BY(mu_) = false;
};

/// \brief The sharded multi-query runtime.
class StreamRuntime {
 public:
  static Result<std::unique_ptr<StreamRuntime>> Create(
      const RuntimeOptions& options = {});

  ~StreamRuntime();
  ZS_DISALLOW_COPY_AND_ASSIGN(StreamRuntime);

  /// Declares a named input stream carrying events of `schema`.
  Result<StreamId> AddStream(const std::string& name, SchemaPtr schema);

  /// Looks up a stream by name.
  Result<StreamId> stream(const std::string& name) const;

  /// Names of the bound streams, in StreamId order.
  std::vector<std::string> StreamNames() const;

  /// Compiles `text` against the stream's schema (parse -> rewrite ->
  /// analyze -> plan) and instantiates it on its target shards. Returns
  /// once every shard has the engine installed: events ingested after
  /// this returns are guaranteed to be evaluated.
  Result<QueryId> RegisterQuery(StreamId stream, const std::string& text,
                                const CompileOptions& compile = {},
                                const QueryOptions& options = {});

  /// Same, addressing the stream by its catalog name.
  Result<QueryId> RegisterQuery(const std::string& stream_name,
                                const std::string& text,
                                const CompileOptions& compile = {},
                                const QueryOptions& options = {});

  /// Same, for a pre-analyzed pattern + plan (benchmark path).
  Result<QueryId> RegisterQuery(StreamId stream, PatternPtr pattern,
                                const PhysicalPlan& plan,
                                const EngineOptions& engine = {},
                                const QueryOptions& options = {});

  /// Flushes and retires the query on every shard; returns its final
  /// match count.
  Result<uint64_t> UnregisterQuery(QueryId id);

  /// Routes one event to the shards that need it. Thread-safe (any
  /// number of producers). Returns false when the runtime is stopped or
  /// any target shard dropped the event under kDropNewest.
  bool Ingest(StreamId stream, const EventPtr& event);

  /// Routes by stream name (one registry lookup per call — resolve the
  /// StreamId once via stream() on hot paths).
  bool Ingest(const std::string& stream_name, const EventPtr& event);

  /// Bulk ingest: routes and enqueues with one queue lock per target
  /// shard. Returns the number of (event, shard) deliveries dropped.
  uint64_t IngestBatch(StreamId stream, const std::vector<EventPtr>& events);

  /// Ingest with an externally-minted trace id (obs/trace.h) — the
  /// server passes the id decoded from the wire so client and server
  /// spans share one trace; 0 means untraced. The two-argument
  /// overloads sample locally via the global tracer.
  bool Ingest(StreamId stream, const EventPtr& event, uint64_t trace_id);
  uint64_t IngestBatch(StreamId stream, const std::vector<EventPtr>& events,
                       uint64_t trace_id);

  /// Barrier: every event enqueued before this call is processed and
  /// every engine has flushed (Engine::Finish), so match counters and
  /// sinks are complete for everything ingested so far.
  Status Flush();

  /// Closes the queues, drains them, and joins the workers. Idempotent;
  /// also called by the destructor. Ingest fails afterwards.
  void Stop();

  /// Matches delivered so far (complete after Flush).
  Result<uint64_t> query_matches(QueryId id) const;

  /// Peak tracked bytes across the query's shard engines (the shared
  /// thread-safe MemoryTracker).
  Result<int64_t> query_peak_bytes(QueryId id) const;

  /// Number of shards actually hosting an engine for the query.
  Result<int> query_shard_count(QueryId id) const;

  /// Merges per-shard windowed stats and asks the query's
  /// AdaptiveController for a better plan; on success broadcasts the
  /// plan switch to every shard. Returns true when a switch happened.
  /// Requires QueryOptions::enable_replan at registration.
  Result<bool> ReplanQuery(QueryId id);

  /// Snapshot of the runtime counters (see runtime_stats.h).
  RuntimeStats Stats() const;

  /// The query's merged plan tree annotated with live per-node counters
  /// (EXPLAIN ANALYZE). A barrier: every shard worker snapshots its
  /// engine's profile at a message boundary, so counters are consistent
  /// with everything processed so far. Also refreshes the query's
  /// observed-pairs metric.
  Result<std::string> ExplainAnalyze(QueryId id);

  /// This runtime's metrics registry (shard/queue/query series, see
  /// docs/observability.md). Instrument pointers stay valid for the
  /// runtime's lifetime.
  obs::Registry& metrics_registry() { return registry_; }

  /// Mirrors the live shard and query counters into the registry (the
  /// registry otherwise only sees latency observations, which are
  /// written in-line). Called by the renderers below; cheap, lock-light.
  void UpdateMetrics();

  /// UpdateMetrics + render: Prometheus text exposition / stable JSON.
  std::string MetricsPrometheus();
  std::string MetricsJson();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Test/diagnostic hook: enqueues a gate on `shard`'s queue and
  /// returns it; the worker parks at the gate until Open().
  std::shared_ptr<Gate> PauseShard(int shard);

 private:
  struct Shard;        // defined in stream_runtime.cc
  struct QueryState;   // defined in stream_runtime.cc
  struct ShardMsg;     // defined in stream_runtime.cc
  struct CollectCtx;   // defined in stream_runtime.cc
  struct ProfileCtx;   // defined in stream_runtime.cc

  /// Routing entry snapshot used by Ingest without touching QueryState.
  struct RouteEntry {
    QueryId query = 0;
    RoutePolicy route = RoutePolicy::kPinned;
    int key_field = -1;
    int pinned_shard = 0;
  };
  struct StreamInfo {
    std::string name;
    SchemaPtr schema;
    std::vector<RouteEntry> routes;
  };

  explicit StreamRuntime(const RuntimeOptions& options);

  void WorkerLoop(Shard* shard);
  /// Offers `event` to every engine on `shard` whose query routes it
  /// there (the step downstream of the optional per-shard reorder
  /// stage).
  void DispatchEvent(Shard* shard, StreamId stream, const EventPtr& event,
                     int hint_field, size_t hint_hash);
  /// Offers a run of consecutive untraced events (same stream, same
  /// ingest batch) to every engine on `shard` as one columnar span
  /// (EngineCore::PushBatch). Hash-routed queries filter the run per
  /// event first; pinned/broadcast queries take the span whole.
  void DispatchRun(Shard* shard, const ShardMsg* msgs, size_t count);
  /// Drains the shard's reorder stages (stream end / flush barrier) and
  /// refreshes the shard's published reorder counters.
  void FlushReorder(Shard* shard);
  /// Shard bitmask for `entry`; for hash routes also records the key
  /// hash it computed into *hint_field/*hint_hash so the shard worker
  /// can reuse it instead of re-hashing.
  uint64_t TargetMask(const RouteEntry& entry, const EventPtr& event,
                      int* hint_field, size_t* hint_hash) const;
  /// Sends `msg` to the given shards plus a sync barrier and waits.
  /// Returns false when any queue was already closed (runtime stopping),
  /// i.e. some worker never saw the message. Callers must NOT hold
  /// control_mu_: a worker can block on control_mu_ inside a MatchSink
  /// callback, and waiting on it here would deadlock.
  bool SyncShards(const std::vector<int>& shard_indices, ShardMsg&& proto);
  std::vector<int> TargetShards(const QueryState& qs) const;
  Result<QueryId> RegisterCompiled(StreamId stream, PatternPtr pattern,
                                   const PhysicalPlan& plan,
                                   const EngineOptions& engine,
                                   const QueryOptions& options,
                                   std::string text);

  RuntimeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable zs::SharedMutex route_mu_;
  std::vector<StreamInfo> streams_ ZS_GUARDED_BY(route_mu_);

  mutable zs::Mutex control_mu_;  // queries_, registration round-robin
  std::unordered_map<QueryId, std::shared_ptr<QueryState>> queries_
      ZS_GUARDED_BY(control_mu_);
  QueryId next_query_id_ ZS_GUARDED_BY(control_mu_) = 1;
  int next_pin_ ZS_GUARDED_BY(control_mu_) = 0;

  std::atomic<uint64_t> events_ingested_{0};
  /// Events ingested carrying a nonzero trace id (sampled locally or
  /// propagated from the wire).
  std::atomic<uint64_t> events_traced_{0};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point start_time_;

  /// Per-runtime (not process-global) so concurrent runtimes — and
  /// tests — never see each other's series. Owns the per-query
  /// detection-latency histograms, written by shard workers in-line.
  obs::Registry registry_;

  /// Gates handed out by PauseShard; Stop() opens any still closed so a
  /// forgotten gate can never deadlock worker join.
  zs::Mutex gates_mu_;
  std::vector<std::weak_ptr<Gate>> gates_ ZS_GUARDED_BY(gates_mu_);
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_STREAM_RUNTIME_H_
