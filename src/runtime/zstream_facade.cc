// Implements ZStream::StartRuntime here (the runtime layer) so that the
// api layer's own translation units never include runtime headers; the
// facade is declared in api/zstream.h with forward declarations only.
#include "api/zstream.h"
#include "runtime/stream_runtime.h"

namespace zstream {

Result<std::unique_ptr<runtime::StreamRuntime>> ZStream::StartRuntime(
    const runtime::RuntimeOptions& options) const {
  ZS_ASSIGN_OR_RETURN(std::unique_ptr<runtime::StreamRuntime> rt,
                      runtime::StreamRuntime::Create(options));
  ZS_RETURN_IF_ERROR(rt->AddStream("default", schema_).status());
  return rt;
}

Result<std::unique_ptr<runtime::StreamRuntime>> ZStream::StartRuntime()
    const {
  return StartRuntime(runtime::RuntimeOptions{});
}

}  // namespace zstream
