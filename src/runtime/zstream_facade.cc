// Implements ZStream::StartRuntime here (the runtime layer) so that the
// api layer's own translation units never link runtime code; the facade
// is declared in api/zstream.h with a forward declaration and the
// header-only runtime/runtime_options.h.
#include "api/zstream.h"
#include "runtime/stream_runtime.h"

namespace zstream {

Result<std::unique_ptr<runtime::StreamRuntime>> ZStream::StartRuntime(
    const runtime::RuntimeOptions& options) const {
  if (catalog_.num_streams() == 0) {
    return Status::FailedPrecondition(
        "catalog has no streams (CREATE STREAM first)");
  }
  ZS_ASSIGN_OR_RETURN(std::unique_ptr<runtime::StreamRuntime> rt,
                      runtime::StreamRuntime::Create(options));
  for (const std::string& name : catalog_.StreamNames()) {
    ZS_RETURN_IF_ERROR(rt->AddStream(name, *catalog_.stream(name)).status());
  }
  return rt;
}

}  // namespace zstream
