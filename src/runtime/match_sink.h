// Thread-safe match delivery for the concurrent runtime.
//
// Shard workers publish matches as they drain engine roots; a MatchSink
// is the runtime's only cross-thread output channel, so implementations
// must be safe under concurrent Publish. CollectingMatchSink additionally
// re-establishes a deterministic order: Take() sorts by
// (query, canonical match key), which is independent of shard count and
// thread interleaving — the property the determinism tests assert.
#ifndef ZSTREAM_RUNTIME_MATCH_SINK_H_
#define ZSTREAM_RUNTIME_MATCH_SINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "exec/engine.h"

namespace zstream::runtime {

/// Runtime-wide query handle (assigned by StreamRuntime::RegisterQuery).
using QueryId = int64_t;

/// \brief One match, tagged with its source query and shard.
struct RuntimeMatch {
  QueryId query = 0;
  int shard = 0;
  /// Trace id of the sampled ingest whose processing emitted this
  /// match (obs/trace.h); 0 when untraced or emitted at a Finish
  /// barrier. Carried through fanout so server and client spans join.
  uint64_t trace_id = 0;
  Match match;
};

/// Canonical, interleaving-independent key for a match: the span plus
/// every bound slot's (class, timestamp) and the Kleene group timestamps.
std::string CanonicalMatchKey(const Match& match);

/// The deterministic delivery order — (query, span, canonical key) —
/// shared by CollectingMatchSink::Take and the network server's match
/// fanout, so "ordered" means the same thing in-process and over the
/// wire. Canonical keys are precomputed by the caller (they are
/// expensive to build per comparison).
bool RuntimeMatchLess(const RuntimeMatch& a, const std::string& key_a,
                      const RuntimeMatch& b, const std::string& key_b);

/// \brief Consumer interface; Publish is called from shard workers.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void Publish(RuntimeMatch&& match) = 0;
};

/// \brief Accumulates matches; Take() hands them out in canonical order.
class CollectingMatchSink : public MatchSink {
 public:
  void Publish(RuntimeMatch&& match) override;

  size_t size() const;

  /// Removes and returns everything published so far, sorted by
  /// (query, span, CanonicalMatchKey) — chronological within a query,
  /// and identical across runs with different shard interleavings.
  std::vector<RuntimeMatch> Take();

  /// Sorted canonical keys of everything published so far (kept), for
  /// direct comparison against a single-threaded run.
  std::vector<std::string> SortedKeys() const;

 private:
  mutable zs::Mutex mu_;
  std::vector<RuntimeMatch> matches_ ZS_GUARDED_BY(mu_);
};

/// \brief Serializes an arbitrary callback behind a mutex (for sinks
/// that forward to non-thread-safe consumers).
class CallbackMatchSink : public MatchSink {
 public:
  explicit CallbackMatchSink(std::function<void(RuntimeMatch&&)> fn)
      : fn_(std::move(fn)) {}

  void Publish(RuntimeMatch&& match) override {
    zs::MutexLock lock(mu_);
    fn_(std::move(match));
  }

 private:
  zs::Mutex mu_;
  std::function<void(RuntimeMatch&&)> fn_ ZS_GUARDED_BY(mu_);
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_MATCH_SINK_H_
