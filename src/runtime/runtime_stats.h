// Runtime observability: per-shard throughput, queue depth and drop
// counters, snapshotted by StreamRuntime::Stats() and exported as JSON
// for dashboards / the scaling benchmark.
#ifndef ZSTREAM_RUNTIME_RUNTIME_STATS_H_
#define ZSTREAM_RUNTIME_RUNTIME_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zstream::runtime {

/// \brief One shard's counters at snapshot time.
struct ShardStats {
  int shard = 0;
  uint64_t events_processed = 0;
  uint64_t batches = 0;
  /// Events rejected by BackpressurePolicy::kDropNewest on a full queue.
  uint64_t events_dropped = 0;
  size_t queue_depth = 0;
  /// events_processed / seconds since the runtime started.
  double throughput_eps = 0.0;
  /// Reorder stage (RuntimeOptions::reorder_slack > 0): events dropped
  /// for arriving later than the slack allows, and events currently
  /// buffered awaiting their release timestamp.
  uint64_t late_dropped = 0;
  size_t pending = 0;
};

/// \brief Snapshot of the whole runtime. (The per-engine windowed
/// estimator that used to share this name is now
/// zstream::WindowedClassStats in opt/stats.h; this class aggregates
/// shard-level serving counters and is unrelated to cost estimation.)
class RuntimeStats {
 public:
  std::vector<ShardStats> shards;
  double elapsed_s = 0.0;
  uint64_t events_ingested = 0;
  /// Events ingested carrying a sampled trace id (obs/trace.h); drives
  /// the CLI stats watcher's traced/s column.
  uint64_t events_traced = 0;
  uint64_t events_processed = 0;
  uint64_t events_dropped = 0;
  uint64_t matches = 0;
  size_t num_queries = 0;
  /// Totals of the per-shard reorder-stage counters (0 when
  /// RuntimeOptions::reorder_slack is 0).
  uint64_t late_dropped = 0;
  size_t pending = 0;

  /// Compact JSON object (stable field order, no external deps).
  std::string ToJson() const;
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_RUNTIME_STATS_H_
