#include "runtime/runtime_stats.h"

#include <cstdio>

namespace zstream::runtime {

namespace {

// Append-based building (no fixed-size line buffers), so arbitrarily
// large counters can never truncate the document into invalid JSON.
void AppendField(std::string* out, const char* name, uint64_t value,
                 bool first = false) {
  if (!first) *out += ", ";
  *out += '"';
  *out += name;
  *out += "\": ";
  *out += std::to_string(value);
}

void AppendDouble(std::string* out, const char* name, double value,
                  bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  if (!first) *out += ", ";
  *out += '"';
  *out += name;
  *out += "\": ";
  *out += buf;
}

}  // namespace

std::string RuntimeStats::ToJson() const {
  std::string out = "{";
  AppendDouble(&out, "elapsed_s", elapsed_s, /*first=*/true);
  AppendField(&out, "events_ingested", events_ingested);
  AppendField(&out, "events_traced", events_traced);
  AppendField(&out, "events_processed", events_processed);
  AppendField(&out, "events_dropped", events_dropped);
  AppendField(&out, "matches", matches);
  AppendField(&out, "num_queries", num_queries);
  AppendField(&out, "late_dropped", late_dropped);
  AppendField(&out, "pending", pending);
  out += ", \"shards\": [";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    if (i > 0) out += ", ";
    out += '{';
    AppendField(&out, "shard", static_cast<uint64_t>(s.shard),
                /*first=*/true);
    AppendField(&out, "events", s.events_processed);
    AppendField(&out, "batches", s.batches);
    AppendField(&out, "drops", s.events_dropped);
    AppendField(&out, "queue_depth", s.queue_depth);
    AppendDouble(&out, "throughput_eps", s.throughput_eps);
    AppendField(&out, "late_dropped", s.late_dropped);
    AppendField(&out, "pending", s.pending);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace zstream::runtime
