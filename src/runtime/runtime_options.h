// Construction-time options for runtime::StreamRuntime, split from
// stream_runtime.h so the api layer can expose a defaulted
// `ZStream::StartRuntime(const RuntimeOptions& = {})` without pulling
// the runtime implementation headers into the public facade. This
// header is self-contained on purpose; keep it free of runtime
// internals.
#ifndef ZSTREAM_RUNTIME_RUNTIME_OPTIONS_H_
#define ZSTREAM_RUNTIME_RUNTIME_OPTIONS_H_

#include <cstddef>

#include "common/timestamp.h"

namespace zstream::runtime {

enum class BackpressurePolicy : char {
  kBlock,       // Ingest blocks while a target shard's queue is full
  kDropNewest,  // Ingest drops the event for that shard and counts it
};

enum class RoutePolicy : char {
  kAuto,       // kHashKey when the pattern has a partition key, else kPinned
  kHashKey,    // hash(partition key) % num_shards (requires a key)
  kPinned,     // whole query on one shard, assigned round-robin
  kBroadcast,  // every shard runs the full query over every event
};

struct RuntimeOptions {
  /// Worker shards; <= 0 means std::thread::hardware_concurrency().
  int num_shards = 4;
  /// Per-shard ring capacity (events + control messages).
  size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Max events a worker pops (and processes) per queue lock.
  int shard_batch_size = 256;
  /// Bounded out-of-orderness absorbed at the shard ingest path
  /// (Section 4.1's reordering operator, placed between the shard queue
  /// and the engines): each shard buffers up to `reorder_slack` time
  /// units per stream and releases events in timestamp order. Events
  /// arriving later than the slack allows are dropped and counted
  /// (RuntimeStats::late_dropped; still-buffered events show up as
  /// RuntimeStats::pending). 0 disables the stage: events reach the
  /// engines in queue order.
  Duration reorder_slack = 0;
  /// Default slow-event log threshold (wall nanoseconds) applied to
  /// every engine registered without its own EngineOptions::slow_event_ns.
  /// An event whose processing exceeds it emits one rate-limited
  /// ZS_LOG(Warn) naming the query and its hottest plan node. 0 disables.
  int64_t slow_event_ns = 0;
};

}  // namespace zstream::runtime

#endif  // ZSTREAM_RUNTIME_RUNTIME_OPTIONS_H_
