#include "plan/pattern.h"

#include <sstream>

namespace zstream {

PatternNodePtr PatternNode::Class(int idx) {
  auto n = std::make_shared<PatternNode>();
  n->op = PatternOp::kClass;
  n->class_idx = idx;
  return n;
}

PatternNodePtr PatternNode::Make(PatternOp op,
                                 std::vector<PatternNodePtr> kids) {
  auto n = std::make_shared<PatternNode>();
  n->op = op;
  n->children = std::move(kids);
  return n;
}

bool Pattern::IsSequence() const {
  if (root == nullptr) return false;
  if (root->is_class()) return true;
  if (root->op != PatternOp::kSeq) return false;
  for (const auto& c : root->children) {
    if (!c->is_class()) return false;
  }
  return true;
}

int Pattern::KleeneClass() const {
  for (int i = 0; i < num_classes(); ++i) {
    if (classes[static_cast<size_t>(i)].is_kleene()) return i;
  }
  return -1;
}

std::vector<int> Pattern::NegatedClasses() const {
  std::vector<int> out;
  for (int i = 0; i < num_classes(); ++i) {
    if (classes[static_cast<size_t>(i)].negated) out.push_back(i);
  }
  return out;
}

namespace {
void MarkDisjunctionClasses(const PatternNodePtr& node, bool under,
                            std::vector<bool>* optional) {
  if (node == nullptr) return;
  if (node->is_class()) {
    if (under) (*optional)[static_cast<size_t>(node->class_idx)] = true;
    return;
  }
  const bool next = under || node->op == PatternOp::kDisj;
  for (const PatternNodePtr& child : node->children) {
    MarkDisjunctionClasses(child, next, optional);
  }
}
}  // namespace

std::vector<bool> Pattern::OptionalClasses() const {
  std::vector<bool> optional(static_cast<size_t>(num_classes()), false);
  for (int i = 0; i < num_classes(); ++i) {
    const EventClass& ec = classes[static_cast<size_t>(i)];
    if (ec.negated || ec.is_kleene()) optional[static_cast<size_t>(i)] = true;
  }
  MarkDisjunctionClasses(root, false, &optional);
  return optional;
}

namespace {
void CollectTriggers(const Pattern& p, const PatternNodePtr& node,
                     std::vector<int>* out) {
  switch (node->op) {
    case PatternOp::kClass:
      if (!p.classes[static_cast<size_t>(node->class_idx)].negated) {
        out->push_back(node->class_idx);
      }
      break;
    case PatternOp::kSeq: {
      // The last positive child completes the sequence.
      for (auto it = node->children.rbegin(); it != node->children.rend();
           ++it) {
        const size_t before = out->size();
        CollectTriggers(p, *it, out);
        if (out->size() > before) return;
      }
      break;
    }
    case PatternOp::kConj:
    case PatternOp::kDisj:
      for (const auto& c : node->children) CollectTriggers(p, c, out);
      break;
  }
}
}  // namespace

std::vector<int> Pattern::TriggerClasses() const {
  std::vector<int> out;
  if (root != nullptr) CollectTriggers(*this, root, &out);
  return out;
}

std::vector<ExprPtr> Pattern::PredicatesFor(
    const std::vector<bool>& covered,
    const std::vector<std::vector<bool>>& child_covers) const {
  std::vector<ExprPtr> out;
  for (const ExprPtr& pred : multi_predicates) {
    const std::set<int> classes_used = ReferencedClasses(pred);
    bool in_cover = true;
    for (int c : classes_used) {
      if (c < 0 || c >= static_cast<int>(covered.size()) ||
          !covered[static_cast<size_t>(c)]) {
        in_cover = false;
        break;
      }
    }
    if (!in_cover) continue;
    // Skip predicates fully contained in one child: they attach deeper.
    bool in_child = false;
    for (const auto& child : child_covers) {
      bool all = true;
      for (int c : classes_used) {
        if (!child[static_cast<size_t>(c)]) {
          all = false;
          break;
        }
      }
      if (all) {
        in_child = true;
        break;
      }
    }
    if (!in_child) out.push_back(pred);
  }
  return out;
}

namespace {
Status ValidateNode(const Pattern& p, const PatternNodePtr& node) {
  switch (node->op) {
    case PatternOp::kClass: {
      const EventClass& ec = p.classes[static_cast<size_t>(node->class_idx)];
      if (ec.negated && ec.is_kleene()) {
        return Status::SemanticError(
            "negation cannot combine with Kleene closure (!A*)");
      }
      if (ec.kleene == KleeneKind::kCount && ec.kleene_count <= 0) {
        return Status::SemanticError("Kleene closure count must be positive");
      }
      return Status::OK();
    }
    case PatternOp::kSeq: {
      if (node->children.size() < 2) {
        return Status::Internal("sequence node must have >= 2 children");
      }
      for (const auto& c : node->children) {
        ZS_RETURN_IF_ERROR(ValidateNode(p, c));
      }
      // Negation cannot begin or end a sequence: there would be no
      // enclosing events to bound the non-occurrence.
      const auto neg_at = [&](const PatternNodePtr& n) {
        return n->is_class() &&
               p.classes[static_cast<size_t>(n->class_idx)].negated;
      };
      if (neg_at(node->children.front()) || neg_at(node->children.back())) {
        return Status::SemanticError(
            "negation must be enclosed by non-negated classes in a "
            "sequence (e.g. A;!B;C)");
      }
      for (size_t i = 0; i + 1 < node->children.size(); ++i) {
        if (neg_at(node->children[i]) && neg_at(node->children[i + 1])) {
          return Status::NotSupported(
              "adjacent negated classes are not supported");
        }
      }
      return Status::OK();
    }
    case PatternOp::kConj:
    case PatternOp::kDisj: {
      if (node->children.size() < 2) {
        return Status::Internal("conj/disj node must have >= 2 children");
      }
      for (const auto& c : node->children) {
        if (c->is_class()) {
          const EventClass& ec = p.classes[static_cast<size_t>(c->class_idx)];
          if (ec.negated && node->op == PatternOp::kDisj) {
            return Status::SemanticError(
                "negation cannot combine with disjunction (A|!B)");
          }
          if (ec.negated && node->op == PatternOp::kConj) {
            return Status::NotSupported(
                "negation directly under conjunction is not supported; "
                "rewrite with De Morgan (!B & !C -> !(B|C))");
          }
        }
        ZS_RETURN_IF_ERROR(ValidateNode(p, c));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}
}  // namespace

Status Pattern::Validate() const {
  if (root == nullptr) return Status::SemanticError("empty pattern");
  if (num_classes() == 0) return Status::SemanticError("no event classes");
  if (window <= 0) {
    return Status::SemanticError("WITHIN window must be positive");
  }
  if (root->is_class()) {
    const EventClass& ec = classes[static_cast<size_t>(root->class_idx)];
    if (ec.negated) {
      return Status::SemanticError(
          "negation cannot appear by itself (Section 4.4.2)");
    }
  }
  ZS_RETURN_IF_ERROR(ValidateNode(*this, root));
  // At most one Kleene class (the paper's KSEQ is trinary around one
  // closure buffer).
  int kleene_seen = 0;
  for (const EventClass& ec : classes) {
    if (ec.is_kleene()) ++kleene_seen;
  }
  if (kleene_seen > 1) {
    return Status::NotSupported("at most one Kleene closure per pattern");
  }
  for (const ReturnItem& item : return_items) {
    if (item.expr == nullptr) {
      const EventClass& ec = classes[static_cast<size_t>(item.class_idx)];
      if (ec.negated) {
        return Status::SemanticError("RETURN cannot reference negated class '" +
                                     ec.alias + "'");
      }
    }
  }
  return Status::OK();
}

namespace {
void PrintNode(const Pattern& p, const PatternNodePtr& node,
               std::ostringstream* os) {
  switch (node->op) {
    case PatternOp::kClass: {
      const EventClass& ec = p.classes[static_cast<size_t>(node->class_idx)];
      if (ec.negated) *os << "!";
      *os << ec.alias;
      switch (ec.kleene) {
        case KleeneKind::kNone:
          break;
        case KleeneKind::kStar:
          *os << "*";
          break;
        case KleeneKind::kPlus:
          *os << "+";
          break;
        case KleeneKind::kCount:
          *os << "^" << ec.kleene_count;
          break;
      }
      break;
    }
    case PatternOp::kSeq:
    case PatternOp::kConj:
    case PatternOp::kDisj: {
      const char* sep = node->op == PatternOp::kSeq
                            ? " ; "
                            : (node->op == PatternOp::kConj ? " & " : " | ");
      *os << "(";
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) *os << sep;
        PrintNode(p, node->children[i], os);
      }
      *os << ")";
      break;
    }
  }
}
}  // namespace

std::string Pattern::ToString() const {
  std::ostringstream os;
  os << "PATTERN ";
  if (root != nullptr) PrintNode(*this, root, &os);
  os << " WITHIN " << window;
  if (!multi_predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < multi_predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << multi_predicates[i]->ToString();
    }
  }
  if (partition.has_value()) {
    os << " [partitioned on " << partition->field_name << "]";
  }
  return os.str();
}

}  // namespace zstream
