#include "plan/physical_plan.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace zstream {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kLeaf: return "LEAF";
    case PhysOp::kSeq: return "SEQ";
    case PhysOp::kNSeq: return "NSEQ";
    case PhysOp::kConj: return "CONJ";
    case PhysOp::kDisj: return "DISJ";
    case PhysOp::kKSeq: return "KSEQ";
    case PhysOp::kNegFilter: return "NEG";
  }
  return "?";
}

PhysNodePtr PhysNode::Leaf(int class_idx) {
  auto n = std::make_shared<PhysNode>();
  n->op = PhysOp::kLeaf;
  n->class_idx = class_idx;
  return n;
}

namespace {
PhysNodePtr MakeBinary(PhysOp op, PhysNodePtr l, PhysNodePtr r) {
  auto n = std::make_shared<PhysNode>();
  n->op = op;
  n->children = {std::move(l), std::move(r)};
  return n;
}
}  // namespace

PhysNodePtr PhysNode::Seq(PhysNodePtr l, PhysNodePtr r) {
  return MakeBinary(PhysOp::kSeq, std::move(l), std::move(r));
}
PhysNodePtr PhysNode::Conj(PhysNodePtr l, PhysNodePtr r) {
  return MakeBinary(PhysOp::kConj, std::move(l), std::move(r));
}
PhysNodePtr PhysNode::Disj(PhysNodePtr l, PhysNodePtr r) {
  return MakeBinary(PhysOp::kDisj, std::move(l), std::move(r));
}

PhysNodePtr PhysNode::NSeq(PhysNodePtr neg, PhysNodePtr other, bool neg_left) {
  auto n = std::make_shared<PhysNode>();
  n->op = PhysOp::kNSeq;
  n->neg_left = neg_left;
  if (neg_left) {
    n->children = {std::move(neg), std::move(other)};
  } else {
    n->children = {std::move(other), std::move(neg)};
  }
  return n;
}

PhysNodePtr PhysNode::KSeq(PhysNodePtr start, PhysNodePtr closure,
                           PhysNodePtr end) {
  auto n = std::make_shared<PhysNode>();
  n->op = PhysOp::kKSeq;
  n->children = {std::move(start), std::move(closure), std::move(end)};
  return n;
}

PhysNodePtr PhysNode::NegFilter(PhysNodePtr input, int neg_class) {
  auto n = std::make_shared<PhysNode>();
  n->op = PhysOp::kNegFilter;
  n->class_idx = neg_class;
  n->children = {std::move(input)};
  return n;
}

namespace {
void Collect(const PhysNode* node, std::vector<int>* out) {
  if (node == nullptr) return;
  if (node->is_leaf()) {
    out->push_back(node->class_idx);
    return;
  }
  if (node->op == PhysOp::kNegFilter) out->push_back(node->class_idx);
  for (const auto& c : node->children) Collect(c.get(), out);
}
}  // namespace

std::vector<int> PhysNode::CoveredClasses() const {
  std::vector<int> out;
  Collect(this, &out);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

namespace {

PhysNodePtr BuildNode(const Pattern& p, const PatternNodePtr& node,
                      bool left_deep, const std::vector<bool>& push_neg);

// Combines the children of a sequence node into a tree, fusing negated
// classes with their right neighbor (NSEQ) and Kleene classes into a
// trinary KSEQ with their immediate neighbors. A negated class with
// push_neg[class]==false is omitted instead: the structure over the
// remaining classes is preserved and a NEG filter stacks on top
// (StructuralPlan / NegationTopPlan).
PhysNodePtr BuildSeqChain(const Pattern& p,
                          const std::vector<PatternNodePtr>& all_kids,
                          bool left_deep,
                          const std::vector<bool>& push_neg) {
  std::vector<PatternNodePtr> kids;
  for (const PatternNodePtr& kid : all_kids) {
    if (kid->is_class() &&
        p.classes[static_cast<size_t>(kid->class_idx)].negated &&
        !push_neg[static_cast<size_t>(kid->class_idx)]) {
      continue;
    }
    kids.push_back(kid);
  }
  const auto is_neg = [&](size_t i) {
    return kids[i]->is_class() &&
           p.classes[static_cast<size_t>(kids[i]->class_idx)].negated;
  };
  const auto is_kleene = [&](size_t i) {
    return kids[i]->is_class() &&
           p.classes[static_cast<size_t>(kids[i]->class_idx)].is_kleene();
  };

  std::vector<PhysNodePtr> plans(kids.size());
  for (size_t i = 0; i < kids.size(); ++i) {
    plans[i] = BuildNode(p, kids[i], left_deep, push_neg);
  }

  if (left_deep) {
    PhysNodePtr acc;
    size_t i = 0;
    while (i < kids.size()) {
      if (is_kleene(i)) {
        PhysNodePtr end =
            (i + 1 < kids.size()) ? plans[i + 1] : nullptr;
        acc = PhysNode::KSeq(acc, plans[i], end);
        i += 2;
      } else if (is_neg(i)) {
        // Validated: a negated class has a right neighbor.
        PhysNodePtr nseq =
            PhysNode::NSeq(plans[i], plans[i + 1], /*neg_left=*/true);
        acc = acc ? PhysNode::Seq(acc, nseq) : nseq;
        i += 2;
      } else {
        acc = acc ? PhysNode::Seq(acc, plans[i]) : plans[i];
        i += 1;
      }
    }
    return acc;
  }

  // Right-deep: fold from the back.
  PhysNodePtr acc;
  int i = static_cast<int>(kids.size()) - 1;
  while (i >= 0) {
    const size_t ui = static_cast<size_t>(i);
    if (is_kleene(ui)) {
      PhysNodePtr start = (i > 0) ? plans[ui - 1] : nullptr;
      acc = PhysNode::KSeq(start, plans[ui], acc);
      i -= 2;
    } else if (is_neg(ui)) {
      acc = PhysNode::NSeq(plans[ui], acc, /*neg_left=*/true);
      i -= 1;
    } else {
      acc = acc ? PhysNode::Seq(plans[ui], acc) : plans[ui];
      i -= 1;
    }
  }
  return acc;
}

PhysNodePtr BuildNode(const Pattern& p, const PatternNodePtr& node,
                      bool left_deep, const std::vector<bool>& push_neg) {
  switch (node->op) {
    case PatternOp::kClass:
      return PhysNode::Leaf(node->class_idx);
    case PatternOp::kSeq:
      return BuildSeqChain(p, node->children, left_deep, push_neg);
    case PatternOp::kConj:
    case PatternOp::kDisj: {
      PhysNodePtr acc;
      for (const auto& c : node->children) {
        PhysNodePtr child = BuildNode(p, c, left_deep, push_neg);
        if (acc == nullptr) {
          acc = child;
        } else {
          acc = node->op == PatternOp::kConj ? PhysNode::Conj(acc, child)
                                             : PhysNode::Disj(acc, child);
        }
      }
      return acc;
    }
  }
  return nullptr;
}

}  // namespace

PhysicalPlan LeftDeepPlan(const Pattern& pattern) {
  const std::vector<bool> push_all(
      static_cast<size_t>(pattern.num_classes()), true);
  return PhysicalPlan{
      BuildNode(pattern, pattern.root, /*left_deep=*/true, push_all), 0.0};
}

PhysicalPlan RightDeepPlan(const Pattern& pattern) {
  const std::vector<bool> push_all(
      static_cast<size_t>(pattern.num_classes()), true);
  return PhysicalPlan{
      BuildNode(pattern, pattern.root, /*left_deep=*/false, push_all), 0.0};
}

PhysicalPlan StructuralPlan(const Pattern& pattern,
                            const std::vector<bool>& push_neg,
                            bool left_deep) {
  // The plan keeps the pattern's CONJ/DISJ/KSEQ structure — a negated
  // class that cannot (or should not) fuse into an NSEQ is omitted from
  // the tree and applied as a NEG filter on top (a flat SEQ chain here
  // would impose a temporal order a conjunction does not have).
  PhysNodePtr root = BuildNode(pattern, pattern.root, left_deep, push_neg);
  for (int neg : pattern.NegatedClasses()) {
    if (!push_neg[static_cast<size_t>(neg)]) {
      root = PhysNode::NegFilter(root, neg);
    }
  }
  return PhysicalPlan{root, 0.0};
}

PhysicalPlan NegationTopPlan(const Pattern& pattern, bool left_deep) {
  const std::vector<bool> push_none(
      static_cast<size_t>(pattern.num_classes()), false);
  return StructuralPlan(pattern, push_none, left_deep);
}

// ---------------------------------------------------------------------
// Shape parsing
// ---------------------------------------------------------------------

namespace {

struct ShapeParser {
  const std::string& s;
  size_t pos = 0;
  const std::vector<int>& positive;  // ordinal -> class index

  void SkipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  Result<PhysNodePtr> Parse() {
    SkipWs();
    if (pos >= s.size()) {
      return Status::ParseError("unexpected end of shape string");
    }
    if (s[pos] == '(') {
      ++pos;
      ZS_ASSIGN_OR_RETURN(PhysNodePtr left, Parse());
      ZS_ASSIGN_OR_RETURN(PhysNodePtr right, Parse());
      SkipWs();
      if (pos >= s.size() || s[pos] != ')') {
        return Status::ParseError("expected ')' in shape string");
      }
      ++pos;
      return PhysNode::Seq(std::move(left), std::move(right));
    }
    if (std::isdigit(static_cast<unsigned char>(s[pos]))) {
      size_t end = pos;
      while (end < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[end]))) {
        ++end;
      }
      const int ordinal = std::stoi(s.substr(pos, end - pos));
      pos = end;
      if (ordinal < 0 || ordinal >= static_cast<int>(positive.size())) {
        return Status::InvalidArgument("shape ordinal out of range: " +
                                       std::to_string(ordinal));
      }
      return PhysNode::Leaf(positive[static_cast<size_t>(ordinal)]);
    }
    return Status::ParseError(std::string("unexpected character '") +
                              s[pos] + "' in shape string");
  }
};

// Replaces Leaf(target) with `replacement` (used to fuse NSEQ back into a
// forced shape).
PhysNodePtr ReplaceLeaf(const PhysNodePtr& node, int target,
                        const PhysNodePtr& replacement) {
  if (node == nullptr) return nullptr;
  if (node->is_leaf()) {
    return node->class_idx == target ? replacement : node;
  }
  auto n = std::make_shared<PhysNode>(*node);
  for (auto& c : n->children) {
    c = ReplaceLeaf(c, target, replacement);
  }
  return n;
}

}  // namespace

Result<PhysicalPlan> PlanFromShape(const Pattern& pattern,
                                   const std::string& shape) {
  if (pattern.KleeneClass() >= 0) {
    return Status::NotSupported(
        "PlanFromShape does not support Kleene patterns");
  }
  std::vector<int> positive;
  for (int i = 0; i < pattern.num_classes(); ++i) {
    if (!pattern.classes[static_cast<size_t>(i)].negated) positive.push_back(i);
  }
  ShapeParser parser{shape, 0, positive};
  ZS_ASSIGN_OR_RETURN(PhysNodePtr root, parser.Parse());
  parser.SkipWs();
  if (parser.pos != shape.size()) {
    return Status::ParseError("trailing characters in shape string");
  }
  // Fuse negated classes next to their right neighbor.
  for (int neg : pattern.NegatedClasses()) {
    const int neighbor = neg + 1;
    PhysNodePtr nseq = PhysNode::NSeq(PhysNode::Leaf(neg),
                                      PhysNode::Leaf(neighbor),
                                      /*neg_left=*/true);
    root = ReplaceLeaf(root, neighbor, nseq);
  }
  PhysicalPlan plan{std::move(root), 0.0};
  ZS_RETURN_IF_ERROR(ValidatePlan(pattern, plan));
  return plan;
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

namespace {
Status ValidateNode(const Pattern& p, const PhysNode* node) {
  if (node == nullptr) return Status::OK();
  switch (node->op) {
    case PhysOp::kLeaf:
      return Status::OK();
    case PhysOp::kSeq: {
      const auto l = node->children[0]->CoveredClasses();
      const auto r = node->children[1]->CoveredClasses();
      if (p.IsSequence() && (l.empty() || r.empty() || l.back() >= r.front())) {
        return Status::SemanticError(
            "SEQ operands must be temporally ordered and disjoint");
      }
      ZS_RETURN_IF_ERROR(ValidateNode(p, node->children[0].get()));
      return ValidateNode(p, node->children[1].get());
    }
    case PhysOp::kNSeq: {
      const PhysNode* neg_child =
          node->neg_left ? node->children[0].get() : node->children[1].get();
      if (!neg_child->is_leaf() ||
          !p.classes[static_cast<size_t>(neg_child->class_idx)].negated) {
        return Status::SemanticError(
            "NSEQ's negated operand must be a negated class leaf");
      }
      ZS_RETURN_IF_ERROR(ValidateNode(p, node->children[0].get()));
      return ValidateNode(p, node->children[1].get());
    }
    case PhysOp::kConj:
    case PhysOp::kDisj:
      ZS_RETURN_IF_ERROR(ValidateNode(p, node->children[0].get()));
      return ValidateNode(p, node->children[1].get());
    case PhysOp::kKSeq: {
      const PhysNode* mid = node->children[1].get();
      if (mid == nullptr || !mid->is_leaf() ||
          !p.classes[static_cast<size_t>(mid->class_idx)].is_kleene()) {
        return Status::SemanticError(
            "KSEQ's middle operand must be the Kleene class leaf");
      }
      ZS_RETURN_IF_ERROR(ValidateNode(p, node->children[0].get()));
      return ValidateNode(p, node->children[2].get());
    }
    case PhysOp::kNegFilter: {
      if (!p.classes[static_cast<size_t>(node->class_idx)].negated) {
        return Status::SemanticError("NEG filter must name a negated class");
      }
      return ValidateNode(p, node->children[0].get());
    }
  }
  return Status::OK();
}
}  // namespace

Status ValidatePlan(const Pattern& pattern, const PhysicalPlan& plan) {
  if (plan.root == nullptr) return Status::SemanticError("empty plan");
  const std::vector<int> covered = plan.root->CoveredClasses();
  if (static_cast<int>(covered.size()) != pattern.num_classes()) {
    return Status::SemanticError("plan does not cover every class exactly once");
  }
  for (int i = 0; i < pattern.num_classes(); ++i) {
    if (covered[static_cast<size_t>(i)] != i) {
      return Status::SemanticError(
          "plan does not cover every class exactly once");
    }
  }
  return ValidateNode(pattern, plan.root.get());
}

// ---------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------

namespace {
void ExplainNode(const Pattern& p, const PhysNode* node,
                 std::ostringstream* os) {
  if (node == nullptr) {
    *os << "_";
    return;
  }
  switch (node->op) {
    case PhysOp::kLeaf:
      *os << p.classes[static_cast<size_t>(node->class_idx)].alias;
      break;
    case PhysOp::kSeq:
    case PhysOp::kConj:
    case PhysOp::kDisj: {
      const char* sep = node->op == PhysOp::kSeq
                            ? " ; "
                            : (node->op == PhysOp::kConj ? " & " : " | ");
      *os << "[";
      ExplainNode(p, node->children[0].get(), os);
      *os << sep;
      ExplainNode(p, node->children[1].get(), os);
      *os << "]";
      break;
    }
    case PhysOp::kNSeq: {
      *os << "NSEQ(";
      const PhysNode* neg =
          node->neg_left ? node->children[0].get() : node->children[1].get();
      const PhysNode* other =
          node->neg_left ? node->children[1].get() : node->children[0].get();
      if (node->neg_left) {
        *os << "!";
        ExplainNode(p, neg, os);
        *os << ", ";
        ExplainNode(p, other, os);
      } else {
        ExplainNode(p, other, os);
        *os << ", !";
        ExplainNode(p, neg, os);
      }
      *os << ")";
      break;
    }
    case PhysOp::kKSeq: {
      *os << "KSEQ(";
      ExplainNode(p, node->children[0].get(), os);
      *os << ", ";
      ExplainNode(p, node->children[1].get(), os);
      const EventClass& k =
          p.classes[static_cast<size_t>(node->children[1]->class_idx)];
      if (k.kleene == KleeneKind::kStar) *os << "*";
      if (k.kleene == KleeneKind::kPlus) *os << "+";
      if (k.kleene == KleeneKind::kCount) *os << "^" << k.kleene_count;
      *os << ", ";
      ExplainNode(p, node->children[2].get(), os);
      *os << ")";
      break;
    }
    case PhysOp::kNegFilter:
      *os << "NEG(";
      ExplainNode(p, node->children[0].get(), os);
      *os << ", !" << p.classes[static_cast<size_t>(node->class_idx)].alias
          << ")";
      break;
  }
}
}  // namespace

std::string PhysicalPlan::Explain(const Pattern& pattern) const {
  std::ostringstream os;
  ExplainNode(pattern, root.get(), &os);
  return os.str();
}

}  // namespace zstream
