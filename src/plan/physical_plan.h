// Physical tree plans.
//
// A physical plan fixes the *shape* of the operator tree: which classes
// (or sub-plans) each join-like operator combines, and how negation is
// evaluated (pushed-down NSEQ vs a NEG filter on top, Section 4.4.2).
// Predicate attachment, hash-index selection and buffer wiring happen
// when the engine instantiates the plan.
#ifndef ZSTREAM_PLAN_PHYSICAL_PLAN_H_
#define ZSTREAM_PLAN_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/pattern.h"

namespace zstream {

enum class PhysOp : char {
  kLeaf,       // reads one event class's buffer
  kSeq,        // Algorithm 1
  kNSeq,       // Algorithm 2 (negation pushed down)
  kConj,       // Algorithm 3
  kDisj,       // Section 4.4.4
  kKSeq,       // Algorithm 4 (trinary)
  kNegFilter,  // negation as a final filtration step
};

const char* PhysOpName(PhysOp op);

struct PhysNode;
using PhysNodePtr = std::shared_ptr<const PhysNode>;

/// \brief Immutable physical-plan node (shapes are shared freely by the
/// planner during enumeration).
struct PhysNode {
  PhysOp op = PhysOp::kLeaf;
  int class_idx = -1;  // kLeaf: class read. kNegFilter: negated class.
  /// kSeq/kConj/kDisj: {left, right}.
  /// kNSeq: {negated leaf, other side} when neg_left, else mirrored.
  /// kKSeq: {start (nullable), closure leaf, end (nullable)}.
  /// kNegFilter: {input}.
  std::vector<PhysNodePtr> children;
  bool neg_left = true;  // kNSeq: which child is the negated class

  static PhysNodePtr Leaf(int class_idx);
  static PhysNodePtr Seq(PhysNodePtr left, PhysNodePtr right);
  static PhysNodePtr Conj(PhysNodePtr left, PhysNodePtr right);
  static PhysNodePtr Disj(PhysNodePtr left, PhysNodePtr right);
  static PhysNodePtr NSeq(PhysNodePtr neg, PhysNodePtr other, bool neg_left);
  static PhysNodePtr KSeq(PhysNodePtr start, PhysNodePtr closure,
                          PhysNodePtr end);
  static PhysNodePtr NegFilter(PhysNodePtr input, int neg_class);

  bool is_leaf() const { return op == PhysOp::kLeaf; }

  /// Class indices covered by this subtree (sorted).
  std::vector<int> CoveredClasses() const;
};

/// \brief A physical plan plus its cost estimate (filled by opt/).
struct PhysicalPlan {
  PhysNodePtr root;
  double estimated_cost = 0.0;

  /// Renders the shape with the pattern's aliases,
  /// e.g. "[[IBM ; Sun] ; Oracle]".
  std::string Explain(const Pattern& pattern) const;
};

// ---------------------------------------------------------------------
// Shape builders. All of them handle negation (pushed down by default)
// and one Kleene class; CONJ/DISJ sub-structures are built structurally.
// ---------------------------------------------------------------------

/// Left-deep plan: [[[c0 ; c1] ; c2] ; c3] (Figure 3).
PhysicalPlan LeftDeepPlan(const Pattern& pattern);

/// Right-deep plan: [c0 ; [c1 ; [c2 ; c3]]].
PhysicalPlan RightDeepPlan(const Pattern& pattern);

/// Structural plan preserving the pattern's CONJ/DISJ/KSEQ shape, with
/// a per-class negation choice: push_neg[c] fuses negated class c into
/// an NSEQ next to its right neighbor, otherwise c is applied as a NEG
/// filter on top (required when c's predicates span classes an NSEQ
/// would not cover).
PhysicalPlan StructuralPlan(const Pattern& pattern,
                            const std::vector<bool>& push_neg,
                            bool left_deep = true);

/// Negation handled by a NEG filter on top of the positive-class plan
/// (the "last-filter-step solution" the paper compares against).
PhysicalPlan NegationTopPlan(const Pattern& pattern, bool left_deep = false);

/// Builds a plan from an s-expression over positive-class ordinals, e.g.
/// "((0 1) (2 3))" for the bushy plan and "(0 ((1 2) 3))" for the inner
/// plan of Query 6. Ordinals refer to the pattern's positive classes in
/// order; negated classes are fused back in via NSEQ next to their right
/// neighbor.
Result<PhysicalPlan> PlanFromShape(const Pattern& pattern,
                                   const std::string& shape);

/// Checks that `plan` is a valid evaluation order for `pattern`:
/// every class exactly once, sequence operands temporally contiguous and
/// ordered, NSEQ adjacency, KSEQ arity.
Status ValidatePlan(const Pattern& pattern, const PhysicalPlan& plan);

}  // namespace zstream

#endif  // ZSTREAM_PLAN_PHYSICAL_PLAN_H_
