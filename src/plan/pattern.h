// Logical representation of a compiled pattern query.
//
// A Pattern is the analyzer's output and the shared input of the cost
// model, the planner, the tree-plan engine and the NFA baseline:
//
//   * an ordered list of event classes (pattern positions), each with its
//     alias, schema, negation / Kleene markers and pushed-down
//     single-class predicates (Section 4.1);
//   * a structure tree relating the classes with SEQ / CONJ / DISJ;
//   * the multi-class predicates that could not be pushed down;
//   * the WITHIN window and the RETURN projection;
//   * an optional partition key when equality predicates over one
//     attribute connect every class (Figure 4's "hash partition on name").
#ifndef ZSTREAM_PLAN_PATTERN_H_
#define ZSTREAM_PLAN_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/timestamp.h"
#include "expr/analysis.h"
#include "expr/expr.h"

namespace zstream {

/// Kleene-closure marker on a class (Section 3.1).
enum class KleeneKind : char { kNone, kStar, kPlus, kCount };

/// One alternative of a negated disjunction class (`!(B|C)` merges B and
/// C into a single negation class whose admission test is the OR of the
/// branch predicate groups).
struct NegBranch {
  std::string alias;
  std::vector<ExprPtr> predicates;
};

/// \brief One event class (pattern position).
struct EventClass {
  std::string alias;
  SchemaPtr schema;
  bool negated = false;
  KleeneKind kleene = KleeneKind::kNone;
  int kleene_count = 0;  // valid when kleene == kCount
  /// Single-class predicates evaluated before the event enters its leaf
  /// buffer ("pushed down to the leaf buffers", Section 4.1).
  std::vector<ExprPtr> leaf_predicates;
  /// Non-empty only for a class produced by merging a negated
  /// disjunction (Section 5.2.1's `A;!(B|C);D`).
  std::vector<NegBranch> neg_branches;

  bool is_kleene() const { return kleene != KleeneKind::kNone; }
};

/// Structure-tree operators. Negation and Kleene closure are class
/// markers, not structure nodes: they modify one position of a sequence.
enum class PatternOp : char { kClass, kSeq, kConj, kDisj };

struct PatternNode;
using PatternNodePtr = std::shared_ptr<const PatternNode>;

struct PatternNode {
  PatternOp op = PatternOp::kClass;
  int class_idx = -1;                      // kClass only
  std::vector<PatternNodePtr> children;    // kSeq / kConj / kDisj (n-ary)

  static PatternNodePtr Class(int idx);
  static PatternNodePtr Make(PatternOp op, std::vector<PatternNodePtr> kids);

  bool is_class() const { return op == PatternOp::kClass; }
};

/// \brief RETURN-clause item: a bare class (all attributes), an
/// expression over class attributes, or an aggregate over a Kleene group.
struct ReturnItem {
  ExprPtr expr;        // nullptr for a bare class reference
  int class_idx = -1;  // valid when expr == nullptr
  std::string label;
};

/// Hash-partitioning key covering every class (Section 5.2.2, Figure 4).
struct PartitionSpec {
  std::string field_name;
  /// Per-class index of the key attribute in that class's schema.
  std::vector<int> field_indices;
};

/// \brief A fully analyzed pattern query.
class Pattern {
 public:
  Pattern() = default;

  std::vector<EventClass> classes;
  PatternNodePtr root;
  Duration window = 0;
  /// Multi-class predicate conjuncts (evaluated at internal nodes).
  std::vector<ExprPtr> multi_predicates;
  std::vector<ReturnItem> return_items;
  std::optional<PartitionSpec> partition;

  int num_classes() const { return static_cast<int>(classes.size()); }

  /// True when the top-level structure is one sequence of plain classes
  /// (negation/Kleene markers allowed) — the shape the DP planner
  /// (Algorithm 5) reorders.
  bool IsSequence() const;

  /// Index of the Kleene class, or -1.
  int KleeneClass() const;

  /// Indices of negated classes.
  std::vector<int> NegatedClasses() const;

  /// Per-class flag: true when the class may be UNBOUND in a match —
  /// negated, Kleene-closure (bound through the group), or inside a
  /// disjunction branch. Shared by hash-equality routing (exec/),
  /// equality-chain materialization and partition detection (query/):
  /// all three must agree on which classes are always bound.
  std::vector<bool> OptionalClasses() const;

  /// The classes whose arrival can complete a match (the "final event
  /// class" of Section 4.3). For a sequence this is the last positive
  /// class; CONJ/DISJ make every component's final classes triggers.
  std::vector<int> TriggerClasses() const;

  /// Multi-class conjuncts whose referenced classes are all in `covered`
  /// but not all in any of the child cover sets — i.e. predicates that
  /// attach to the node joining those children.
  std::vector<ExprPtr> PredicatesFor(const std::vector<bool>& covered,
                                     const std::vector<std::vector<bool>>&
                                         child_covers) const;

  /// Structural validation (negation placement rules of Section 4.4.2,
  /// Kleene arity, return-clause sanity).
  Status Validate() const;

  std::string ToString() const;
};

using PatternPtr = std::shared_ptr<const Pattern>;

}  // namespace zstream

#endif  // ZSTREAM_PLAN_PATTERN_H_
