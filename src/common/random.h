// Fast deterministic RNG for workload generation and property tests.
#ifndef ZSTREAM_COMMON_RANDOM_H_
#define ZSTREAM_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace zstream {

/// \brief xorshift128+ generator: fast, seedable, reproducible across
/// platforms (unlike std::default_random_engine distributions).
class Random {
 public:
  explicit Random(uint64_t seed = 0x5deece66dULL) {
    // SplitMix64 seeding to avoid weak states.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 2; ++i) {
      z ^= z >> 30;
      z *= 0xbf58476d1ce4e5b9ULL;
      z ^= z >> 27;
      z *= 0x94d049bb133111ebULL;
      z ^= z >> 31;
      state_[i] = z | 1;
      z += 0x9e3779b97f4a7c15ULL;
    }
  }

  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state_[1] + s0;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    ZS_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    ZS_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_[2];
};

}  // namespace zstream

#endif  // ZSTREAM_COMMON_RANDOM_H_
