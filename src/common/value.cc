#include "common/value.h"

#include <cmath>
#include <sstream>

namespace zstream {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::InvalidArgument("cannot compare null values");
  }
  if (is_numeric() && other.is_numeric()) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    const int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
  }
  return Status::InvalidArgument(
      std::string("cannot compare ") + ValueTypeName(type()) + " with " +
      ValueTypeName(other.type()));
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (is_string() && other.is_string()) {
    return string_value() == other.string_value();
  }
  if (is_bool() && other.is_bool()) return bool_value() == other.bool_value();
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return bool_value() ? 0x2545f4914f6cdd1dULL : 0x853c49e6748fea9bULL;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash through double so 3 and 3.0 collide (they compare equal).
      const double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      // Normalize -0.0 to 0.0.
      if (d == 0.0) bits = 0;
      bits ^= bits >> 33;
      bits *= 0xff51afd7ed558ccdULL;
      bits ^= bits >> 33;
      return static_cast<size_t>(bits);
    }
    case ValueType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(int64_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
  }
  return "?";
}

namespace {
template <typename IntOp, typename DoubleOp>
Value NumericBinary(const Value& a, const Value& b, IntOp iop, DoubleOp dop) {
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.is_int64() && b.is_int64()) {
    return iop(a.int64_value(), b.int64_value());
  }
  return dop(a.AsDouble(), b.AsDouble());
}
}  // namespace

Value Add(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return Value(x + y); },
      [](double x, double y) { return Value(x + y); });
}

Value Subtract(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return Value(x - y); },
      [](double x, double y) { return Value(x - y); });
}

Value Multiply(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return Value(x * y); },
      [](double x, double y) { return Value(x * y); });
}

Value Divide(const Value& a, const Value& b) {
  return NumericBinary(
      a, b,
      [](int64_t x, int64_t y) { return y == 0 ? Value::Null() : Value(x / y); },
      [](double x, double y) { return y == 0.0 ? Value::Null() : Value(x / y); });
}

Value Modulo(const Value& a, const Value& b) {
  return NumericBinary(
      a, b,
      [](int64_t x, int64_t y) { return y == 0 ? Value::Null() : Value(x % y); },
      [](double x, double y) {
        return y == 0.0 ? Value::Null() : Value(std::fmod(x, y));
      });
}

}  // namespace zstream
