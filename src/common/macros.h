// Common macros used across ZStream.
#ifndef ZSTREAM_COMMON_MACROS_H_
#define ZSTREAM_COMMON_MACROS_H_

#include <cassert>

#define ZS_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete

// Propagates a non-OK Status out of the enclosing function.
#define ZS_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::zstream::Status _zs_status = (expr);       \
    if (!_zs_status.ok()) return _zs_status;     \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status.
#define ZS_ASSIGN_OR_RETURN(lhs, rexpr)              \
  ZS_ASSIGN_OR_RETURN_IMPL(                          \
      ZS_CONCAT_NAME(_zs_result, __COUNTER__), lhs, rexpr)

#define ZS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define ZS_CONCAT_NAME(x, y) ZS_CONCAT_NAME_IMPL(x, y)
#define ZS_CONCAT_NAME_IMPL(x, y) x##y

#define ZS_DCHECK(cond) assert(cond)

#if defined(__GNUC__)
#define ZS_LIKELY(x) __builtin_expect(!!(x), 1)
#define ZS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ZS_LIKELY(x) (x)
#define ZS_UNLIKELY(x) (x)
#endif

// Marks a function as per-event hot-path code. Besides the optimizer
// hint, scripts/hotpath_lint.py treats every ZS_HOT function body as an
// allocation-budget scope: heap allocations inside one are counted
// against the committed BENCH_hotpath_allocs.json baseline, and new ones
// fail the lint. Place it on the definition, before the return type.
#if defined(__GNUC__) || defined(__clang__)
#define ZS_HOT __attribute__((hot))
#else
#define ZS_HOT
#endif

#endif  // ZSTREAM_COMMON_MACROS_H_
