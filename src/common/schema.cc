#include "common/schema.h"

#include <sstream>

namespace zstream {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::RequireField(const std::string& name) const {
  const int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::SemanticError("unknown attribute '" + name +
                                 "' (schema: " + ToString() + ")");
  }
  return idx;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << ValueTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace zstream
