// Typed runtime values for event attributes and expression evaluation.
#ifndef ZSTREAM_COMMON_VALUE_H_
#define ZSTREAM_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace zstream {

enum class ValueType : char { kNull = 0, kBool, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed scalar: null, bool, int64, double or string.
///
/// Numeric comparisons and arithmetic coerce int64 and double to double.
/// Any operation touching a null yields null (three-valued logic at the
/// predicate level: null never satisfies a predicate).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool v) : rep_(v) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index() == 0 ? 0 : rep_.index());
  }
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric view: int64 and double both read as double.
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : double_value();
  }

  /// True when the value is usable as a predicate outcome and is true.
  /// Nulls and non-bool values are not truthy. get_if (not
  /// holds_alternative + get) so GCC 12 at -O2 with sanitizers can see
  /// there is no exception path (-Wmaybe-uninitialized, PR80635 family).
  bool IsTruthy() const {
    const bool* b = std::get_if<bool>(&rep_);
    return b != nullptr && *b;
  }

  /// Three-way comparison for ordering; values must be comparable
  /// (both numeric, or both strings, or both bools). Nulls and mixed
  /// categories return an error.
  Result<int> Compare(const Value& other) const;

  /// Strict equality used by hash indexes (type category + content).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash consistent with operator== (numeric 3 == numeric 3.0).
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// Arithmetic. Numeric-only; int64 op int64 stays int64 (division by zero
// and modulo follow SQL-ish semantics and return null).
Value Add(const Value& a, const Value& b);
Value Subtract(const Value& a, const Value& b);
Value Multiply(const Value& a, const Value& b);
Value Divide(const Value& a, const Value& b);
Value Modulo(const Value& a, const Value& b);

}  // namespace zstream

#endif  // ZSTREAM_COMMON_VALUE_H_
