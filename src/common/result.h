// Result<T>: a Status or a value, in the style of arrow::Result.
#ifndef ZSTREAM_COMMON_RESULT_H_
#define ZSTREAM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace zstream {

/// \brief Holds either a value of type T or an error Status.
///
/// [[nodiscard]] for the same reason as Status: an ignored Result drops
/// both the value and the error that explains its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions intended: functions can `return value;` or
  // `return Status::...;`.
  Result(T value) : value_(std::move(value)) {}       // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    ZS_DCHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ZS_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    ZS_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    ZS_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace zstream

#endif  // ZSTREAM_COMMON_RESULT_H_
