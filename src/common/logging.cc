#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace zstream {

namespace {
// Atomic: SetLogLevel races with concurrent LogMessage construction on
// shard workers / the poll thread (a plain global here was a genuine
// data race, surfaced by the PR 8 concurrency audit).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace zstream
