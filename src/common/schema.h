// Event schemas: named, typed attribute lists shared by all events of a
// stream (e.g. the paper's stock schema (id, name, price, volume, ts)).
#ifndef ZSTREAM_COMMON_SCHEMA_H_
#define ZSTREAM_COMMON_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace zstream {

struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// \brief Immutable attribute layout for a stream of primitive events.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the attribute `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Like FieldIndex but errors with the schema's field list on miss.
  Result<int> RequireField(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace zstream

#endif  // ZSTREAM_COMMON_SCHEMA_H_
