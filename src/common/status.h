// Status: lightweight error propagation, in the style of Arrow / RocksDB.
//
// ZStream does not use exceptions on any query-processing path; fallible
// operations return Status (or Result<T>, see result.h).
#ifndef ZSTREAM_COMMON_STATUS_H_
#define ZSTREAM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace zstream {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kSemanticError,
  kNotSupported,
  kInternal,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
};

/// \brief Result status of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// human-readable message.
///
/// [[nodiscard]]: silently dropping a Status loses the only record that
/// an operation failed. Call sites that genuinely fire-and-forget must
/// say so with a `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  /// Structured diagnostics (errors only). `error_code` is a stable,
  /// machine-readable identifier like "ZS-P0003" (see
  /// query/error_codes.h); line/column are 1-based source coordinates
  /// into the query/DDL text, 0 when unknown.
  const std::string& error_code() const;
  int line() const { return ok() ? 0 : state_->line; }
  int column() const { return ok() ? 0 : state_->column; }
  bool has_location() const { return !ok() && state_->line > 0; }

  /// Returns a copy of this status carrying `code`; no-op on OK.
  Status WithErrorCode(std::string code) const;
  /// Returns a copy of this status carrying a source location; no-op on
  /// OK. `line`/`column` are 1-based.
  Status WithLocation(int line, int column) const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsSemanticError() const { return code() == StatusCode::kSemanticError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// Human-readable rendering, e.g. "ParseError: unexpected token ';'".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
    std::string error_code;  // "" = none
    int line = 0;            // 1-based; 0 = unknown
    int column = 0;
  };
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr means OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace zstream

#endif  // ZSTREAM_COMMON_STATUS_H_
