// Small string helpers shared by the parser and plan printers.
#ifndef ZSTREAM_COMMON_STRING_UTIL_H_
#define ZSTREAM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace zstream {

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);
std::string_view Trim(std::string_view s);
std::vector<std::string> Split(std::string_view s, char sep);
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Thread-safe strerror: strerror_r into a local buffer (std::strerror
/// shares one static buffer across threads, which races when shard
/// workers and the poll loop report errors concurrently).
std::string ErrnoToString(int errnum);

}  // namespace zstream

#endif  // ZSTREAM_COMMON_STRING_UTIL_H_
