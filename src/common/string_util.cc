#include "common/string_util.h"

#include <string.h>

#include <algorithm>
#include <cctype>

namespace zstream {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

// strerror_r has two incompatible signatures; overloads on the return
// type of the one the libc actually provided pick the right unpacking.
// GNU: returns char* (possibly a static string, buf maybe unused).
[[maybe_unused]] const char* StrerrorResult(char* ret, const char*) {
  return ret;
}
// XSI/POSIX: returns int (0 on success), message always written to buf.
[[maybe_unused]] const char* StrerrorResult(int ret, const char* buf) {
  return ret == 0 ? buf : "Unknown error";
}

}  // namespace

std::string ErrnoToString(int errnum) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(errnum, buf, sizeof(buf)), buf);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace zstream
