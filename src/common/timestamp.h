// Logical time in ZStream.
//
// Following the paper, every primitive event carries one timestamp; every
// composite event carries a [start, end] timestamp pair and must satisfy
// end - start <= time window (Section 3).
#ifndef ZSTREAM_COMMON_TIMESTAMP_H_
#define ZSTREAM_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <limits>

namespace zstream {

/// Logical timestamp. ZStream is unit-agnostic; the query language maps
/// `secs`/`mins`/`hours` onto milliseconds and bare numbers onto raw units.
using Timestamp = int64_t;

/// Duration between two timestamps (same unit as Timestamp).
using Duration = int64_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// A half-open interval of occurrence for a (composite) event.
struct TimeSpan {
  Timestamp start = 0;
  Timestamp end = 0;

  Duration duration() const { return end - start; }
  bool operator==(const TimeSpan&) const = default;
};

}  // namespace zstream

#endif  // ZSTREAM_COMMON_TIMESTAMP_H_
