// Minimal leveled logger (stderr). Quiet by default so benchmarks measure
// query processing, not I/O.
#ifndef ZSTREAM_COMMON_LOGGING_H_
#define ZSTREAM_COMMON_LOGGING_H_

#include <sstream>

namespace zstream {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace zstream

#define ZS_LOG(level)                                            \
  ::zstream::internal::LogMessage(::zstream::LogLevel::k##level, \
                                  __FILE__, __LINE__)

#endif  // ZSTREAM_COMMON_LOGGING_H_
