// Byte accounting for buffers and resident events.
//
// The paper reports peak memory usage for different physical plans
// (Tables 3 and 5). We reproduce that with deterministic byte accounting:
// every buffer reports record/event bytes to a MemoryTracker, whose peak
// is read out after a run.
//
// Counters are relaxed atomics so one tracker can aggregate across the
// shard threads of runtime::StreamRuntime (each engine is still
// single-threaded; only the *aggregation* is concurrent). The peak is
// maintained with a CAS max-loop, so it is an upper bound that every
// thread agrees on once the writers quiesce.
#ifndef ZSTREAM_COMMON_MEMORY_TRACKER_H_
#define ZSTREAM_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace zstream {

/// \brief Tracks current and peak tracked bytes (thread-safe).
class MemoryTracker {
 public:
  MemoryTracker() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(MemoryTracker);

  void Allocate(size_t bytes) {
    const int64_t now =
        current_.fetch_add(static_cast<int64_t>(bytes),
                           std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  void Release(size_t bytes) {
    const int64_t before = current_.fetch_sub(static_cast<int64_t>(bytes),
                                              std::memory_order_relaxed);
    ZS_DCHECK(before >= static_cast<int64_t>(bytes));
    (void)before;
  }

  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  double peak_mb() const {
    return static_cast<double>(peak_bytes()) / (1024.0 * 1024.0);
  }

  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace zstream

#endif  // ZSTREAM_COMMON_MEMORY_TRACKER_H_
