// Byte accounting for buffers and resident events.
//
// The paper reports peak memory usage for different physical plans
// (Tables 3 and 5). We reproduce that with deterministic byte accounting:
// every buffer reports record/event bytes to a MemoryTracker, whose peak
// is read out after a run.
#ifndef ZSTREAM_COMMON_MEMORY_TRACKER_H_
#define ZSTREAM_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace zstream {

/// \brief Tracks current and peak tracked bytes. Not thread-safe; ZStream
/// engines are single-threaded like the paper's prototype.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(MemoryTracker);

  void Allocate(size_t bytes) {
    current_ += static_cast<int64_t>(bytes);
    if (current_ > peak_) peak_ = current_;
  }

  void Release(size_t bytes) {
    current_ -= static_cast<int64_t>(bytes);
    ZS_DCHECK(current_ >= 0);
  }

  int64_t current_bytes() const { return current_; }
  int64_t peak_bytes() const { return peak_; }

  double peak_mb() const {
    return static_cast<double>(peak_) / (1024.0 * 1024.0);
  }

  void ResetPeak() { peak_ = current_; }
  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_COMMON_MEMORY_TRACKER_H_
