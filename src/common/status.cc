#include "common/status.h"

namespace zstream {

namespace {
const std::string kEmpty;

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

const std::string& Status::message() const {
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace zstream
