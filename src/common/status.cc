#include "common/status.h"

namespace zstream {

namespace {
const std::string kEmpty;

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

const std::string& Status::message() const {
  return ok() ? kEmpty : state_->msg;
}

const std::string& Status::error_code() const {
  return ok() ? kEmpty : state_->error_code;
}

Status Status::WithErrorCode(std::string code) const {
  if (ok()) return *this;
  Status out(state_->code, state_->msg);
  out.state_->error_code = std::move(code);
  out.state_->line = state_->line;
  out.state_->column = state_->column;
  return out;
}

Status Status::WithLocation(int line, int column) const {
  if (ok()) return *this;
  Status out(state_->code, state_->msg);
  out.state_->error_code = state_->error_code;
  out.state_->line = line;
  out.state_->column = column;
  return out;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(state_->code);
  if (!state_->error_code.empty()) {
    out += "[" + state_->error_code + "]";
  }
  out += ": ";
  out += state_->msg;
  if (state_->line > 0) {
    out += " at " + std::to_string(state_->line) + ":" +
           std::to_string(state_->column);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace zstream
