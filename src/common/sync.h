// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// Thin wrappers over the standard library types, carrying the Clang
// `-Wthread-safety` capability attributes so lock discipline is checked
// at compile time: every field declares which mutex guards it
// (ZS_GUARDED_BY), every method that expects a lock held declares it
// (ZS_REQUIRES), and the analysis rejects any path that reads a guarded
// field or calls a requiring method without the capability. On GCC (and
// any compiler without the attributes) everything compiles away to the
// plain std types — zero overhead, zero behavior change.
//
// Rules of use (see docs/static_analysis.md for the full catalog):
//   - Prefer the scoped guards (MutexLock, ReaderMutexLock); the analysis
//     tracks their acquire/release automatically.
//   - CondVar::Wait(mu) ZS_REQUIRES(mu): call it inside a MutexLock scope
//     from an explicit `while (!predicate)` loop. Predicate *lambdas* do
//     not inherit the caller's capabilities under the analysis, so the
//     wait-with-predicate overload is deliberately not provided.
//   - Constructors/destructors are not analyzed; initializing guarded
//     fields in a member-init list is fine.
#ifndef ZSTREAM_COMMON_SYNC_H_
#define ZSTREAM_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/macros.h"

// ---------------------------------------------------------------------------
// Attribute macros. Clang's names (capability, guarded_by, ...) per
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html; empty elsewhere.
// ---------------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define ZS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ZS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// On a class: instances are lockable capabilities ("mutex" names the kind).
#define ZS_CAPABILITY(x) ZS_THREAD_ANNOTATION(capability(x))
// On a class: RAII guard that holds a capability for its lifetime.
#define ZS_SCOPED_CAPABILITY ZS_THREAD_ANNOTATION(scoped_lockable)
// On a field: reads/writes require the named mutex held.
#define ZS_GUARDED_BY(x) ZS_THREAD_ANNOTATION(guarded_by(x))
// On a pointer field: the *pointee* is guarded by the named mutex.
#define ZS_PT_GUARDED_BY(x) ZS_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: caller must hold the mutex(es) exclusively / shared.
#define ZS_REQUIRES(...) \
  ZS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ZS_REQUIRES_SHARED(...) \
  ZS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// On a function: acquires / releases the mutex(es).
#define ZS_ACQUIRE(...) ZS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ZS_ACQUIRE_SHARED(...) \
  ZS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ZS_RELEASE(...) ZS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ZS_RELEASE_SHARED(...) \
  ZS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Releases a capability held either exclusively or shared (scoped-guard
// destructors, which must match both acquisition modes).
#define ZS_RELEASE_GENERIC(...) \
  ZS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
// On a function: caller must NOT hold the mutex(es) (deadlock guard for
// functions that acquire them internally).
#define ZS_EXCLUDES(...) ZS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: try-lock returning `ret` on success.
#define ZS_TRY_ACQUIRE(ret, ...) \
  ZS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
// On a function: returns a reference to the named mutex (lets accessors
// expose the guard so callers can lock it).
#define ZS_RETURN_CAPABILITY(x) ZS_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must
// carry a comment saying why the discipline holds anyway.
#define ZS_NO_THREAD_SAFETY_ANALYSIS \
  ZS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace zs {

/// Annotated std::mutex. Use MutexLock to hold it; Lock/Unlock are for
/// the rare site that needs manual control (and CondVar internals).
class ZS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() ZS_ACQUIRE() { mu_.lock(); }
  void Unlock() ZS_RELEASE() { mu_.unlock(); }
  bool TryLock() ZS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for CondVar and std interop only.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex: exclusive writers, shared readers.
class ZS_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(SharedMutex);

  void Lock() ZS_ACQUIRE() { mu_.lock(); }
  void Unlock() ZS_RELEASE() { mu_.unlock(); }
  void LockShared() ZS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ZS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock (std::lock_guard equivalent) over Mutex.
class ZS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ZS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ZS_RELEASE_GENERIC() { mu_.Unlock(); }
  ZS_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex (writer side).
class ZS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ZS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() ZS_RELEASE_GENERIC() { mu_.Unlock(); }
  ZS_DISALLOW_COPY_AND_ASSIGN(WriterMutexLock);

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class ZS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ZS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() ZS_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ZS_DISALLOW_COPY_AND_ASSIGN(ReaderMutexLock);

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with zs::Mutex. Wait() requires the mutex
/// held (enforced by the analysis) and re-holds it on return, so callers
/// keep their MutexLock scope and loop on the predicate explicitly:
///
///   MutexLock lock(mu_);
///   while (count_ == 0 && !closed_) not_empty_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. The analysis sees the capability as continuously held,
  /// which is exactly the guarantee the caller's critical section needs.
  void Wait(Mutex& mu) ZS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the enclosing MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace zs

#endif  // ZSTREAM_COMMON_SYNC_H_
