#include "common/memory_tracker.h"

// MemoryTracker is header-only today; this translation unit anchors the
// library target and leaves room for future instrumentation hooks.
namespace zstream {}  // namespace zstream
