#include "workload/net_replay.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/sync.h"
#include "net/client.h"

namespace zstream {

namespace {

/// First-error rendezvous for the sender threads (locals cannot carry
/// ZS_GUARDED_BY, so the pair lives in a small annotated struct).
struct ErrorCollector {
  zs::Mutex mu;
  Status first ZS_GUARDED_BY(mu);

  void Record(const Status& status) {
    zs::MutexLock lock(mu);
    if (first.ok()) first = status;
  }
  Status Take() {
    zs::MutexLock lock(mu);
    return first;
  }
};

}  // namespace

Result<NetReplayResult> ReplayOverWire(const std::string& host,
                                       uint16_t port,
                                       const std::string& stream,
                                       const std::vector<EventPtr>& events,
                                       const NetReplayOptions& options) {
  const int n = options.num_connections < 1 ? 1 : options.num_connections;
  if (options.partition_field >= 0 && !events.empty() &&
      options.partition_field >= events.front()->schema()->num_fields()) {
    return Status::InvalidArgument(
        "partition_field " + std::to_string(options.partition_field) +
        " is out of range for the event schema (" +
        std::to_string(events.front()->schema()->num_fields()) +
        " fields)");
  }

  // Connect everything up front so a refused connection fails fast
  // instead of surfacing as a half-replayed trace.
  std::vector<std::unique_ptr<net::Client>> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    ZS_ASSIGN_OR_RETURN(auto client, net::Client::Connect(host, port));
    clients.push_back(std::move(client));
  }

  NetReplayResult result;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> throttled{false};
  ErrorCollector errors;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  senders.reserve(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    senders.emplace_back([&, c] {
      // Build this connection's slice (same split rules as
      // DriveConcurrently), then stream it in batched frames.
      std::vector<EventPtr> slice;
      if (options.partition_field >= 0) {
        for (const EventPtr& e : events) {
          const size_t h = e->value(options.partition_field).Hash();
          if (static_cast<int>(h % static_cast<size_t>(n)) != c) continue;
          slice.push_back(e);
        }
      } else {
        const size_t total = events.size();
        const size_t begin =
            total * static_cast<size_t>(c) / static_cast<size_t>(n);
        const size_t end =
            total * (static_cast<size_t>(c) + 1) / static_cast<size_t>(n);
        slice.assign(events.begin() + static_cast<ptrdiff_t>(begin),
                     events.begin() + static_cast<ptrdiff_t>(end));
      }
      auto ack = clients[static_cast<size_t>(c)]->Ingest(
          stream, slice, options.batch_size);
      if (!ack.ok()) {
        errors.Record(ack.status());
        return;
      }
      accepted.fetch_add(ack->accepted, std::memory_order_relaxed);
      dropped.fetch_add(ack->dropped, std::memory_order_relaxed);
      if (ack->throttled) throttled.store(true, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : senders) t.join();
  ZS_RETURN_IF_ERROR(errors.Take());

  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.accepted = accepted.load(std::memory_order_relaxed);
  result.dropped = dropped.load(std::memory_order_relaxed);
  result.throttled = throttled.load(std::memory_order_relaxed);
  result.events_per_sec =
      result.elapsed_s > 0.0
          ? static_cast<double>(events.size()) / result.elapsed_s
          : 0.0;
  return result;
}

}  // namespace zstream
