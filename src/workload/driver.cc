#include "workload/driver.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace zstream {

ConcurrentDriveResult DriveConcurrently(
    const std::vector<EventPtr>& events,
    const ConcurrentDriveOptions& options,
    const std::function<bool(const EventPtr&)>& push) {
  const int n = options.num_producers < 1 ? 1 : options.num_producers;
  ConcurrentDriveResult result;

  const auto start = std::chrono::steady_clock::now();
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    producers.emplace_back([&, p] {
      uint64_t my_rejected = 0;
      const size_t total = events.size();
      if (options.partition_field >= 0) {
        // Key-partitioned: producer p pushes exactly the events whose
        // key hashes to p, in original (timestamp) order.
        for (const EventPtr& e : events) {
          const size_t h = e->value(options.partition_field).Hash();
          if (static_cast<int>(h % static_cast<size_t>(n)) != p) continue;
          if (!push(e)) ++my_rejected;
        }
      } else {
        const size_t begin = total * static_cast<size_t>(p) /
                             static_cast<size_t>(n);
        const size_t end = total * (static_cast<size_t>(p) + 1) /
                           static_cast<size_t>(n);
        for (size_t i = begin; i < end; ++i) {
          if (!push(events[i])) ++my_rejected;
        }
      }
      rejected.fetch_add(my_rejected, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : producers) t.join();
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.rejected = rejected.load(std::memory_order_relaxed);
  return result;
}

}  // namespace zstream
