#include "workload/weblog_gen.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace zstream {

namespace {
struct RawRecord {
  Timestamp ts;
  int ip;
  uint8_t category;  // 0 other, 1 publication, 2 project, 3 course
};
}  // namespace

std::vector<EventPtr> GenerateWebLog(const WebLogGenOptions& options,
                                     WebLogStats* stats_out) {
  Random rng(options.seed);
  const SchemaPtr schema = WebLogSchema();
  const int64_t n = options.total_records;
  ZS_DCHECK(options.publication_accesses + options.project_accesses +
                options.course_accesses <=
            n);

  // Zipf CDF over regular (non-burst) IP ranks; uniform when zipf == 0.
  const int regular_ips = std::max(1, options.num_ips - options.num_burst_ips);
  std::vector<double> ip_cdf(static_cast<size_t>(regular_ips));
  {
    double acc = 0.0;
    for (int r = 0; r < regular_ips; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), options.ip_zipf);
      ip_cdf[static_cast<size_t>(r)] = acc;
    }
    for (double& v : ip_cdf) v /= acc;
  }
  const auto draw_regular_ip = [&]() {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(ip_cdf.begin(), ip_cdf.end(), u);
    return options.num_burst_ips + static_cast<int>(it - ip_cdf.begin());
  };

  // Each burst IP crawls during one contiguous period of the month.
  const Duration burst_len = static_cast<Duration>(
      options.burst_days * 24.0 * 3600.0 * 1000.0);
  std::vector<Timestamp> burst_start(
      static_cast<size_t>(std::max(options.num_burst_ips, 0)));
  for (auto& s : burst_start) {
    const Duration latest = std::max<Duration>(options.span - burst_len, 1);
    s = static_cast<Timestamp>(rng.Uniform(static_cast<uint64_t>(latest)));
  }

  std::vector<RawRecord> records;
  records.reserve(static_cast<size_t>(n));

  const auto emit_specials = [&](int64_t count, double burst_fraction,
                                 uint8_t tag) {
    for (int64_t i = 0; i < count; ++i) {
      RawRecord r;
      r.category = tag;
      if (options.num_burst_ips > 0 && rng.Bernoulli(burst_fraction)) {
        r.ip = static_cast<int>(rng.Uniform(
            static_cast<uint64_t>(options.num_burst_ips)));
        r.ts = burst_start[static_cast<size_t>(r.ip)] +
               static_cast<Timestamp>(
                   rng.Uniform(static_cast<uint64_t>(burst_len)));
      } else {
        r.ip = draw_regular_ip();
        r.ts = static_cast<Timestamp>(
            rng.Uniform(static_cast<uint64_t>(options.span)));
      }
      records.push_back(r);
    }
  };
  emit_specials(options.publication_accesses, options.burst_pub_fraction, 1);
  emit_specials(options.project_accesses, options.burst_proj_fraction, 2);
  emit_specials(options.course_accesses, options.burst_course_fraction, 3);

  // Background traffic on a uniform grid.
  const int64_t background = n - static_cast<int64_t>(records.size());
  const double step =
      static_cast<double>(options.span) / std::max<int64_t>(background, 1);
  for (int64_t i = 0; i < background; ++i) {
    RawRecord r;
    r.category = 0;
    r.ip = draw_regular_ip();
    r.ts = static_cast<Timestamp>(step * static_cast<double>(i));
    records.push_back(r);
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const RawRecord& a, const RawRecord& b) {
                     return a.ts < b.ts;
                   });

  const char* kCategoryName[] = {"other", "publication", "project", "course"};
  const char* kUrlPrefix[] = {"/misc/", "/pubs/", "/projects/", "/courses/"};
  WebLogStats stats;
  std::vector<EventPtr> out;
  out.reserve(records.size());
  int64_t url_salt = 0;
  for (const RawRecord& r : records) {
    switch (r.category) {
      case 1: ++stats.publications; break;
      case 2: ++stats.projects; break;
      case 3: ++stats.courses; break;
      default: ++stats.other; break;
    }
    const std::string ip = "10." + std::to_string(r.ip / 65536 % 256) + "." +
                           std::to_string(r.ip / 256 % 256) + "." +
                           std::to_string(r.ip % 256);
    out.push_back(EventBuilder(schema)
                      .Set("ip", Value(ip))
                      .Set("url", Value(std::string(kUrlPrefix[r.category]) +
                                        std::to_string(url_salt++ % 997)))
                      .Set("category",
                           Value(std::string(kCategoryName[r.category])))
                      .At(r.ts)
                      .Build());
  }
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

}  // namespace zstream
