// Synthetic web-access-log workload (Section 6.5).
//
// Substitutes the paper's private MIT DB-group web log with a generator
// matching its published statistics: ~1.5 million records over one
// month with 6775 publication, 11610 project and 16083 course accesses
// (Table 4), keyed by client IP. A configurable fraction of "researcher"
// IPs produce publication->project->course sessions inside the 10-hour
// window so Query 8 has genuine matches.
#ifndef ZSTREAM_WORKLOAD_WEBLOG_GEN_H_
#define ZSTREAM_WORKLOAD_WEBLOG_GEN_H_

#include <string>
#include <vector>

#include "event/event.h"

namespace zstream {

struct WebLogGenOptions {
  int64_t total_records = 1500000;
  int64_t publication_accesses = 6775;  // Table 4
  int64_t project_accesses = 11610;
  int64_t course_accesses = 16083;
  int num_ips = 1000;
  /// Zipf exponent for the IP popularity distribution (0 = uniform).
  /// Real web logs are heavily skewed (crawlers, NAT gateways); the
  /// skew is what makes Query 8's join order matter.
  double ip_zipf = 1.0;
  /// Burst clients (course/project-heavy crawl sessions): a few IPs
  /// that browse many project and course pages — but few publications —
  /// inside a contiguous crawl period. This reproduces the property the
  /// paper's experiment hinges on: right-deep plans drown in
  /// project-course intermediates while publications stay rare.
  int num_burst_ips = 5;
  double burst_days = 3.0;
  double burst_pub_fraction = 0.02;     // of all publication accesses
  double burst_proj_fraction = 0.40;    // of all project accesses
  double burst_course_fraction = 0.40;  // of all course accesses
  uint64_t seed = 7;
  /// Total span of the log (one month, in ms).
  Duration span = 30LL * 24 * 3600 * 1000;
};

struct WebLogStats {
  int64_t publications = 0;
  int64_t projects = 0;
  int64_t courses = 0;
  int64_t other = 0;
};

/// Generates the log in timestamp order; `stats_out` (optional) receives
/// the realized per-category counts (Table 4's numbers).
std::vector<EventPtr> GenerateWebLog(const WebLogGenOptions& options,
                                     WebLogStats* stats_out = nullptr);

}  // namespace zstream

#endif  // ZSTREAM_WORKLOAD_WEBLOG_GEN_H_
