// Synthetic stock-trade workload (Section 6).
//
// The paper generates stock events "so that event rates and the
// selectivity of multi-class predicates could be controlled". We control
//
//   * relative event rates via per-name weights (e.g. IBM:Sun:Oracle =
//     1:100:100 draws names with those weights), and
//   * predicate selectivities exactly: for `X.price > Y.price` with
//     target selectivity s, Y's price is pinned to the (1-s) quantile of
//     X's uniform price distribution.
#ifndef ZSTREAM_WORKLOAD_STOCK_GEN_H_
#define ZSTREAM_WORKLOAD_STOCK_GEN_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "event/event.h"

namespace zstream {

struct StockGenOptions {
  /// Event-class names, in weight order.
  std::vector<std::string> names = {"IBM", "Sun", "Oracle"};
  /// Relative rates (same length as names). {1, 100, 100} means one IBM
  /// tick per ~100 Sun and ~100 Oracle ticks.
  std::vector<double> weights = {1.0, 1.0, 1.0};
  int64_t num_events = 100000;
  uint64_t seed = 42;
  Timestamp start_ts = 0;
  Duration ts_step = 1;  // timestamp gap between consecutive events
  double price_min = 0.0;
  double price_max = 100.0;
  /// Pin a name's price to a constant (selectivity control); absent
  /// names draw uniformly from [price_min, price_max).
  std::map<std::string, double> fixed_price;
};

/// Price constant q with P(Uniform[lo,hi) > q) == sel.
double FixedPriceForSelectivity(double sel, double lo, double hi);

/// Generates `num_events` stock events with non-decreasing timestamps.
std::vector<EventPtr> GenerateStockTrades(const StockGenOptions& options);

/// Convenience: the weights vector for a rate string like "1:100:100".
std::vector<double> ParseRateRatio(const std::string& ratio);

}  // namespace zstream

#endif  // ZSTREAM_WORKLOAD_STOCK_GEN_H_
