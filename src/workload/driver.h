// Multi-threaded driver for the pre-recorded workloads.
//
// The stock/weblog generators produce one timestamp-ordered event
// vector; this driver replays it from N producer threads into any push
// function (typically runtime::StreamRuntime::Ingest). Two split modes:
//
//   * key-partitioned (partition_field >= 0): each producer owns the
//     keys hashing to it and pushes them in original order, so every
//     partition key still observes an ordered stream — the property the
//     engines need for exact match sets under concurrency;
//   * contiguous chunks (partition_field < 0): maximum-rate replay where
//     cross-chunk ordering is NOT preserved (use engines with reorder
//     slack, or a single producer, when exactness matters).
//
// The driver is deliberately independent of the runtime: it only needs
// a bool(const EventPtr&) push target, so tests can also aim it at a
// mutex-wrapped Engine or a counter.
#ifndef ZSTREAM_WORKLOAD_DRIVER_H_
#define ZSTREAM_WORKLOAD_DRIVER_H_

#include <functional>
#include <vector>

#include "event/event.h"

namespace zstream {

struct ConcurrentDriveOptions {
  int num_producers = 1;
  /// Schema field index whose value hash assigns events to producers;
  /// < 0 splits into contiguous chunks instead.
  int partition_field = -1;
};

struct ConcurrentDriveResult {
  double elapsed_s = 0.0;
  /// Events for which `push` returned false (runtime stopped / dropped).
  uint64_t rejected = 0;
};

/// Replays `events` through `push` from the configured producer threads;
/// `push` must be thread-safe. Blocks until every producer finishes.
ConcurrentDriveResult DriveConcurrently(
    const std::vector<EventPtr>& events,
    const ConcurrentDriveOptions& options,
    const std::function<bool(const EventPtr&)>& push);

}  // namespace zstream

#endif  // ZSTREAM_WORKLOAD_DRIVER_H_
