#include "workload/stock_gen.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace zstream {

double FixedPriceForSelectivity(double sel, double lo, double hi) {
  ZS_DCHECK(sel >= 0.0 && sel <= 1.0);
  return hi - sel * (hi - lo);
}

std::vector<EventPtr> GenerateStockTrades(const StockGenOptions& options) {
  ZS_DCHECK(options.names.size() == options.weights.size());
  Random rng(options.seed);
  const SchemaPtr schema = StockSchema();

  double total_weight = 0.0;
  for (double w : options.weights) total_weight += w;

  std::vector<EventPtr> out;
  out.reserve(static_cast<size_t>(options.num_events));
  Timestamp ts = options.start_ts;
  for (int64_t i = 0; i < options.num_events; ++i, ts += options.ts_step) {
    // Weighted name draw.
    double pick = rng.NextDouble() * total_weight;
    size_t name_idx = 0;
    for (; name_idx + 1 < options.weights.size(); ++name_idx) {
      if (pick < options.weights[name_idx]) break;
      pick -= options.weights[name_idx];
    }
    const std::string& name = options.names[name_idx];

    double price;
    auto fixed = options.fixed_price.find(name);
    if (fixed != options.fixed_price.end()) {
      price = fixed->second;
    } else {
      price = options.price_min +
              rng.NextDouble() * (options.price_max - options.price_min);
    }

    out.push_back(EventBuilder(schema)
                      .Set("id", static_cast<int64_t>(i))
                      .Set("name", Value(name))
                      .Set("price", price)
                      .Set("volume", rng.UniformRange(1, 1000))
                      .Set("ts", static_cast<int64_t>(ts))
                      .At(ts)
                      .Build());
  }
  return out;
}

std::vector<double> ParseRateRatio(const std::string& ratio) {
  std::vector<double> out;
  for (const std::string& part : Split(ratio, ':')) {
    out.push_back(std::stod(std::string(Trim(part))));
  }
  return out;
}

}  // namespace zstream
