// Client-mode workload replay: drives a pre-recorded event vector (the
// stock/weblog generators) over the wire into a running zstream_server,
// mirroring workload/driver.h's in-process DriveConcurrently.
//
// Each connection is one net::Client on its own thread (clients are not
// thread-safe), pushing its share of the trace in batched kEventBatch
// frames. The same two split modes as the in-process driver apply:
//
//   * key-partitioned (partition_field >= 0): connection c owns the
//     keys hashing to it and sends them in original order — per-key
//     order is preserved, so hash-partitioned queries see exact match
//     sets;
//   * contiguous chunks (partition_field < 0): maximum-rate replay;
//     cross-chunk order is NOT preserved (run the server with
//     --reorder-slack, or use a single connection, when exactness
//     matters).
#ifndef ZSTREAM_WORKLOAD_NET_REPLAY_H_
#define ZSTREAM_WORKLOAD_NET_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace zstream {

struct NetReplayOptions {
  int num_connections = 1;
  /// Schema field index whose value hash assigns events to connections;
  /// < 0 splits into contiguous chunks instead.
  int partition_field = -1;
  /// Events per kEventBatch frame (one ack round-trip per batch).
  size_t batch_size = 1024;
};

struct NetReplayResult {
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  /// True when any ack carried the server's throttle flag.
  bool throttled = false;
  double elapsed_s = 0.0;
  double events_per_sec = 0.0;
};

/// Replays `events` into stream `stream` on the server at host:port.
/// Blocks until every connection finished; fails if any connection
/// could not be established or any batch was rejected with an error.
Result<NetReplayResult> ReplayOverWire(const std::string& host,
                                       uint16_t port,
                                       const std::string& stream,
                                       const std::vector<EventPtr>& events,
                                       const NetReplayOptions& options = {});

}  // namespace zstream

#endif  // ZSTREAM_WORKLOAD_NET_REPLAY_H_
