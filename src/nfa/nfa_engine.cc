#include "nfa/nfa_engine.h"

#include <algorithm>

#include "expr/analysis.h"

namespace zstream {

NfaEngine::NfaEngine(PatternPtr pattern, MemoryTracker* tracker)
    : pattern_(std::move(pattern)), tracker_(tracker) {
  if (tracker_ == nullptr) {
    owned_tracker_ = std::make_unique<MemoryTracker>();
    tracker_ = owned_tracker_.get();
  }
}

Result<std::unique_ptr<NfaEngine>> NfaEngine::Create(PatternPtr pattern,
                                                     MemoryTracker* tracker) {
  ZS_RETURN_IF_ERROR(pattern->Validate());
  if (!pattern->IsSequence()) {
    return Status::NotSupported(
        "the NFA baseline supports sequential patterns only");
  }
  if (pattern->KleeneClass() >= 0) {
    return Status::NotSupported(
        "the NFA baseline does not support Kleene closure");
  }
  auto engine = std::unique_ptr<NfaEngine>(
      new NfaEngine(std::move(pattern), tracker));
  const Pattern& p = *engine->pattern_;

  for (int c = 0; c < p.num_classes(); ++c) {
    if (p.classes[static_cast<size_t>(c)].negated) {
      engine->negated_.push_back(c);
      engine->neg_stacks_.emplace_back();
    } else {
      engine->positive_.push_back(c);
    }
  }
  engine->stacks_.resize(engine->positive_.size());
  engine->preds_by_level_.resize(engine->positive_.size());

  // Group predicates by the search level where they become evaluable.
  for (const ExprPtr& pred : p.multi_predicates) {
    const std::set<int> classes = ReferencedClasses(pred);
    bool touches_neg = false;
    for (int nc : engine->negated_) {
      if (classes.count(nc) > 0) touches_neg = true;
    }
    if (touches_neg) {
      engine->neg_preds_.push_back(pred);
      continue;
    }
    // Lowest positive position among referenced classes.
    int level = static_cast<int>(engine->positive_.size()) - 1;
    for (size_t pos = 0; pos < engine->positive_.size(); ++pos) {
      if (classes.count(engine->positive_[pos]) > 0) {
        level = static_cast<int>(pos);
        break;
      }
    }
    engine->preds_by_level_[static_cast<size_t>(level)].push_back(pred);
  }

  // A detected hash-partition key is an equality join the analyzer
  // stripped from multi_predicates (Section 5.2.2); the backward search
  // must enforce it, or combinations would cross partitions.
  if (p.partition.has_value()) {
    engine->key_fields_ = p.partition->field_indices;
  }

  engine->candidate_.slots.assign(static_cast<size_t>(p.num_classes()),
                                  nullptr);
  return engine;
}

bool NfaEngine::Admit(int class_idx, const EventPtr& event) const {
  const EventClass& ec = pattern_->classes[static_cast<size_t>(class_idx)];
  Record probe =
      Record::FromEvent(class_idx, pattern_->num_classes(), event);
  const EvalInput in = probe.ToEvalInput();
  for (const ExprPtr& pred : ec.leaf_predicates) {
    if (!pred->EvalPredicate(in)) return false;
  }
  if (!ec.neg_branches.empty()) {
    for (const NegBranch& branch : ec.neg_branches) {
      bool all = true;
      for (const ExprPtr& pred : branch.predicates) {
        if (!pred->EvalPredicate(in)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }
  return true;
}

void NfaEngine::PurgeBefore(Timestamp eat) {
  for (Stack& st : stacks_) {
    while (!st.entries.empty() &&
           st.entries.front().event->timestamp() < eat) {
      tracker_->Release(st.entries.front().event->ByteSize() +
                        sizeof(Entry));
      st.entries.pop_front();
      ++st.base_id;
    }
  }
  for (auto& ns : neg_stacks_) {
    while (!ns.empty() && ns.front()->timestamp() < eat) {
      tracker_->Release(ns.front()->ByteSize() + sizeof(EventPtr));
      ns.pop_front();
    }
  }
}

void NfaEngine::Push(const EventPtr& event) {
  ++events_pushed_;
  for (size_t i = 0; i < negated_.size(); ++i) {
    if (Admit(negated_[i], event)) {
      neg_stacks_[i].push_back(event);
      tracker_->Allocate(event->ByteSize() + sizeof(EventPtr));
    }
  }
  bool is_final = false;
  for (size_t pos = 0; pos < positive_.size(); ++pos) {
    if (!Admit(positive_[pos], event)) continue;
    Stack& st = stacks_[pos];
    uint64_t rip = 0;
    if (pos > 0) {
      const Stack& prev = stacks_[pos - 1];
      rip = prev.end_id();
      while (rip > prev.base_id &&
             prev.Get(rip - 1).event->timestamp() >= event->timestamp()) {
        --rip;
      }
    }
    st.entries.push_back(Entry{event, rip});
    tracker_->Allocate(event->ByteSize() + sizeof(Entry));
    if (pos + 1 == positive_.size()) is_final = true;
  }
  if (is_final) Search(event);
}

void NfaEngine::Search(const EventPtr& final_event) {
  const Timestamp eat = final_event->timestamp() - pattern_->window;
  PurgeBefore(eat);
  const int n = static_cast<int>(positive_.size());
  const int final_class = positive_[static_cast<size_t>(n - 1)];
  if (!key_fields_.empty()) {
    search_key_ = final_event->value(
        key_fields_[static_cast<size_t>(final_class)]);
  }
  candidate_.slots[static_cast<size_t>(final_class)] = final_event;

  if (n == 1) {
    ++num_matches_;
  } else {
    SearchLevel(n - 2, eat);
  }
  candidate_.slots[static_cast<size_t>(final_class)] = nullptr;
}

void NfaEngine::SearchLevel(int level, Timestamp eat) {
  const size_t pos = static_cast<size_t>(level);
  const int cls = positive_[pos];
  const int next_cls = positive_[pos + 1];
  const EventPtr& next_event = candidate_.slots[static_cast<size_t>(next_cls)];
  Stack& st = stacks_[pos];

  // The RIP of the chosen successor bounds the backward scan.
  uint64_t hi = st.end_id();
  {
    // Find the successor's entry bound: recompute from its timestamp
    // (entries are timestamp-ordered, so this is the same bound the RIP
    // recorded at insert time, clamped by purging).
    while (hi > st.base_id &&
           st.Get(hi - 1).event->timestamp() >= next_event->timestamp()) {
      --hi;
    }
  }

  for (uint64_t id = hi; id-- > st.base_id;) {
    const Entry& entry = st.Get(id);
    if (entry.event->timestamp() < eat) break;  // sorted: all older below
    if (!key_fields_.empty() &&
        !(entry.event->value(key_fields_[static_cast<size_t>(cls)]) ==
          search_key_)) {
      continue;  // partition-key equality (stripped from the predicates)
    }
    candidate_.slots[static_cast<size_t>(cls)] = entry.event;
    bool ok = true;
    const EvalInput in = candidate_.ToEvalInput();
    for (const ExprPtr& pred : preds_by_level_[pos]) {
      if (!pred->EvalPredicate(in)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (level == 0) {
        if (!IsNegated(candidate_, 0)) {
          ++num_matches_;
          // Construct the composite event, as SASE's backward search
          // does — the tree engine materializes its outputs, so the
          // baseline must pay the same per-match output cost.
          Record out = candidate_;
          out.start_ts = entry.event->timestamp();
          out.end_ts = out.start_ts;
          for (const EventPtr& s : out.slots) {
            if (s != nullptr) {
              out.end_ts = std::max(out.end_ts, s->timestamp());
            }
          }
          output_checksum_ += static_cast<uint64_t>(out.end_ts);
        }
      } else {
        SearchLevel(level - 1, eat);
      }
    }
  }
  candidate_.slots[static_cast<size_t>(cls)] = nullptr;
}

bool NfaEngine::IsNegated(const Record& candidate, int) const {
  for (size_t i = 0; i < negated_.size(); ++i) {
    const int nc = negated_[i];
    const EventPtr& a = candidate.slots[static_cast<size_t>(nc - 1)];
    const EventPtr& c = candidate.slots[static_cast<size_t>(nc + 1)];
    if (a == nullptr || c == nullptr) continue;
    const Timestamp lo = a->timestamp();
    const Timestamp hi = c->timestamp();
    const auto& ns = neg_stacks_[i];
    // Backward scan (negators are timestamp-ordered).
    for (auto it = ns.rbegin(); it != ns.rend(); ++it) {
      const Timestamp ts = (*it)->timestamp();
      if (ts >= hi) continue;
      if (ts <= lo) break;
      if (!key_fields_.empty() &&
          !((*it)->value(key_fields_[static_cast<size_t>(nc)]) ==
            search_key_)) {
        continue;  // negators outside the partition cannot negate
      }
      if (neg_preds_.empty()) return true;
      Record probe = candidate;
      probe.slots[static_cast<size_t>(nc)] = *it;
      const EvalInput in = probe.ToEvalInput();
      bool all = true;
      for (const ExprPtr& pred : neg_preds_) {
        if (!pred->EvalPredicate(in)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
  }
  return false;
}

}  // namespace zstream
