// NFA-based baseline in the style of SASE (Wu, Diao, Rizvi, SIGMOD'06),
// reimplemented from the description in the ZStream paper's Sections 1
// and 6:
//
//   * one stack (deque) per positive event class, in pattern order;
//   * each stack entry carries a RIP (recent-indexed-pointer): the id
//     bound into the previous class's stack below which predecessors
//     must lie;
//   * when a final-class event arrives, composite events are constructed
//     by a backward search over this DAG, evaluating multi-class
//     predicates as classes bind;
//   * negation is applied as a post-filtering step on completed
//     combinations (the paper's Figure 2 discussion);
//   * no materialization: partial combinations are re-enumerated per
//     final event, matching the paper's NFA implementation note.
//
// The evaluation order this induces mirrors a right-deep tree plan,
// which is exactly the behaviour Figure 8/10 report for the NFA.
#ifndef ZSTREAM_NFA_NFA_ENGINE_H_
#define ZSTREAM_NFA_NFA_ENGINE_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/record.h"
#include "plan/pattern.h"

namespace zstream {

/// \brief SASE-style NFA evaluator for sequential patterns (with
/// optional negated classes handled as post-filters).
class NfaEngine {
 public:
  /// Supports sequence-shaped patterns; conjunction, disjunction and
  /// Kleene closure return NotSupported (the paper's NFA lacked them
  /// too — see Section 6.5's note on Query 8).
  static Result<std::unique_ptr<NfaEngine>> Create(
      PatternPtr pattern, MemoryTracker* tracker = nullptr);

  ZS_DISALLOW_COPY_AND_ASSIGN(NfaEngine);

  void Push(const EventPtr& event);
  void Finish() {}  // the NFA evaluates per event; nothing is pending

  uint64_t num_matches() const { return num_matches_; }
  uint64_t events_pushed() const { return events_pushed_; }
  MemoryTracker& memory() { return *tracker_; }

 private:
  NfaEngine(PatternPtr pattern, MemoryTracker* tracker);

  struct Entry {
    EventPtr event;
    uint64_t rip;  // id bound into the previous positive class's stack
  };
  struct Stack {
    std::deque<Entry> entries;
    uint64_t base_id = 0;
    uint64_t end_id() const { return base_id + entries.size(); }
    const Entry& Get(uint64_t id) const {
      return entries[static_cast<size_t>(id - base_id)];
    }
  };

  bool Admit(int class_idx, const EventPtr& event) const;
  void Search(const EventPtr& final_event);
  void SearchLevel(int level, Timestamp eat);
  bool IsNegated(const Record& candidate, int pos_idx_before) const;
  void PurgeBefore(Timestamp eat);

  PatternPtr pattern_;
  MemoryTracker* tracker_;
  std::unique_ptr<MemoryTracker> owned_tracker_;

  std::vector<int> positive_;            // class indices, pattern order
  std::vector<Stack> stacks_;            // one per positive class
  std::vector<std::deque<EventPtr>> neg_stacks_;  // one per negated class
  std::vector<int> negated_;             // class indices of negations
  /// Multi-class predicates grouped by the search level (lowest
  /// positive position) at which they become evaluable.
  std::vector<std::vector<ExprPtr>> preds_by_level_;
  std::vector<ExprPtr> neg_preds_;  // predicates touching negated classes

  /// Per-class partition-key field indices when the pattern is
  /// hash-partitioned (the analyzer strips the equality predicates, so
  /// the search enforces key equality itself); empty otherwise.
  std::vector<int> key_fields_;

  // Scratch state for the backward search.
  Record candidate_;
  Value search_key_;  // final event's partition key, valid per Search
  uint64_t num_matches_ = 0;
  uint64_t events_pushed_ = 0;
  uint64_t output_checksum_ = 0;  // keeps output construction observable
};

}  // namespace zstream

#endif  // ZSTREAM_NFA_NFA_ENGINE_H_
