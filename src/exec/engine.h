// The ZStream execution engine (Section 4).
//
// An Engine instantiates one physical tree plan over one pattern and
// drives the batch-iterator model:
//
//   1. Idle rounds: incoming primitive events are offered to every leaf
//      buffer whose pushed-down predicates admit them.
//   2. Once a batch has accumulated and the final (trigger) event class
//      has an unconsumed instance, an assembly round runs: the EAT is
//      computed from the earliest pending trigger event, leaf buffers
//      are purged, and operators assemble bottom-up; completed matches
//      drain from the root.
//
// Plan switching (Section 5.3) preserves leaf buffers, discards internal
// state, and rewinds non-trigger watermarks for one rebuild round, so a
// switch loses no matches and duplicates none.
#ifndef ZSTREAM_EXEC_ENGINE_H_
#define ZSTREAM_EXEC_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/engine_core.h"
#include "exec/operators.h"
#include "exec/reorder.h"
#include "opt/adaptive.h"
#include "opt/stats.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream {

/// \brief One completed pattern match.
struct Match {
  TimeSpan span;
  /// Component events slotted by pattern class (negated classes null).
  std::vector<EventPtr> slots;
  EventGroupPtr group;  // Kleene-closure events, when present

  std::string ToString() const;
};

/// Evaluates the pattern's RETURN clause against a match.
std::vector<Value> ProjectMatch(const Pattern& pattern, const Match& match);

struct EngineOptions {
  /// Primitive events per batch before an assembly round is attempted.
  int batch_size = 64;
  /// Use hash indexes for equality predicates (Section 5.2.2).
  bool use_hash_indexes = true;
  /// Enable runtime statistics + cost-based plan adaptation (Section 5.3).
  bool adaptive = false;
  AdaptiveOptions adaptive_options;
  /// Collect runtime statistics even when not adapting.
  bool collect_stats = false;
  /// Bounded out-of-orderness tolerated on Push (Section 4.1's
  /// reordering operator); 0 means input must arrive in order, and
  /// out-of-order events are dropped and counted.
  Duration reorder_slack = 0;
  /// Per-node assembly timing (EXPLAIN ANALYZE `time=` column): two
  /// clock reads per operator per assembly round. Off by default; the
  /// per-node counters are always on (and near-free, see
  /// bench_obs_overhead).
  bool profile = false;
  /// Slow-event log threshold in wall nanoseconds: a Push whose
  /// processing (including any assembly round it triggers) exceeds this
  /// emits one rate-limited ZS_LOG(Warn) naming the query and its
  /// hottest plan node. 0 disables; > 0 implies per-node timing.
  int64_t slow_event_ns = 0;
  /// Query name used in slow-event logs and metric labels.
  std::string label;
};

/// \brief Single-partition query engine.
///
/// The engine is its own MatchSink: the plan root streams completed
/// matches straight into OnMatch (count / trace / callback) instead of
/// materializing them into a root buffer that DrainRoot would discard.
class Engine : public EngineCore, private MatchSink {
 public:
  using MatchCallback = zstream::MatchCallback;

  /// Instantiates `plan` (validated against `pattern`). `tracker` may be
  /// null, in which case the engine owns a private tracker.
  static Result<std::unique_ptr<Engine>> Create(
      PatternPtr pattern, const PhysicalPlan& plan,
      const EngineOptions& options = {}, MemoryTracker* tracker = nullptr);

  /// Like Create, but for a pattern + plan pair the caller has already
  /// validated/verified (PartitionedEngine proves them once, then
  /// instantiates per partition without paying verification again).
  static Result<std::unique_ptr<Engine>> CreateTrusted(
      PatternPtr pattern, const PhysicalPlan& plan,
      const EngineOptions& options = {}, MemoryTracker* tracker = nullptr);

  ~Engine() override;
  ZS_DISALLOW_COPY_AND_ASSIGN(Engine);

  /// Streams one event in; may trigger an assembly round.
  void Push(const EventPtr& event) override;

  /// Columnar ingest: offers in-order runs of the span to every leaf as
  /// a batch (term-major predicate admission), triggering assembly
  /// rounds at batch boundaries exactly as repeated Push would.
  void PushBatch(const EventBatch& batch) override;

  /// Offers an event without round-triggering (PartitionedEngine drives
  /// rounds itself).
  void Offer(const EventPtr& event);

  /// Forces an assembly round (used at batch boundaries / stream end).
  void AssemblyRound();

  /// Flushes the reorder stage (if any) and any pending partial batch.
  void Finish() override;

  /// Installs a match consumer; without one, matches are only counted.
  void SetMatchCallback(MatchCallback cb) override {
    callback_ = std::move(cb);
  }

  /// Replaces the physical plan between assembly rounds (Section 5.3).
  Status SwitchPlan(const PhysicalPlan& plan) override;

  /// Windowed stats as a catalog; `defaults` when not collecting stats.
  StatsCatalog StatsSnapshot(const StatsCatalog& defaults) const override;

  const Pattern& pattern() const override { return *pattern_; }
  const PhysicalPlan& current_plan() const { return plan_; }
  std::string ExplainPlan() const { return plan_.Explain(*pattern_); }

  /// Live per-node counter tree (see node_profile.h).
  NodeProfile Profile() const override;
  /// Renders the plan tree annotated with live counters/timings, plus
  /// engine totals and predicted-vs-observed cost.
  std::string ExplainAnalyze() const;

  void SetLabel(const std::string& label) override {
    options_.label = label;
  }
  const std::string& label() const { return options_.label; }

  /// FNV-1a 64 of the installed plan's Explain rendering (refreshed on
  /// every Build/SwitchPlan); see EngineCore::plan_fingerprint.
  uint64_t plan_fingerprint() const override { return plan_fingerprint_; }

  uint64_t num_matches() const override { return num_matches_; }
  uint64_t events_pushed() const override { return events_pushed_; }
  uint64_t assembly_rounds() const { return assembly_rounds_; }
  uint64_t plan_switches() const { return plan_switches_; }
  /// Events dropped for arriving out of order beyond the slack.
  uint64_t late_events() const { return late_events_; }
  /// Events whose processing exceeded EngineOptions::slow_event_ns.
  uint64_t slow_events() const { return slow_events_; }
  MemoryTracker& memory() override { return *tracker_; }
  WindowedClassStats* windowed_stats() { return windowed_stats_.get(); }

  /// Total operator input combinations tried in the current plan
  /// (the empirical analogue of the cost model's Ci terms).
  uint64_t pairs_tried() const;

 private:
  Engine(PatternPtr pattern, const EngineOptions& options,
         MemoryTracker* tracker);

  Status Build(const PhysicalPlan& plan, bool initial,
               bool pre_verified = false);
  void PushOrdered(const EventPtr& event);
  /// Offers an ordered span to every leaf (batch admission); late
  /// events inside the span are dropped and counted like Offer does.
  void OfferSpan(const EventPtr* events, size_t n);
  Result<OperatorNode*> BuildNode(const PhysNodePtr& node,
                                  std::vector<ExprPtr>* unattached);
  void AttachPredicates(OperatorNode* op, std::vector<ExprPtr>* unattached);
  void DrainRoot(Timestamp eat);
  void MaybeAdapt();
  void LogSlowEvent(uint64_t elapsed_ns);

  // MatchSink: the plan root calls straight into the engine.
  bool NeedsPayload() const override;
  void OnMatch(Timestamp start_ts, Timestamp end_ts, const EventPtr* slots,
               int num_slots, const EventGroupPtr* group) override;

  /// Cold path for sampled matches: records the kMatch span and the
  /// match's provenance (contributing event ids, operator path, plan
  /// fingerprint) into the global tracer.
  void RecordMatchTrace(uint64_t trace_id, Timestamp start_ts,
                        Timestamp end_ts, const EventPtr* slots,
                        int num_slots, const EventGroup* group);

  PatternPtr pattern_;
  EngineOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<MemoryTracker> owned_tracker_;

  PhysicalPlan plan_;
  std::vector<std::unique_ptr<LeafNode>> leaves_;  // one per class, persistent
  std::vector<std::unique_ptr<OperatorNode>> internal_nodes_;
  OperatorNode* root_ = nullptr;
  std::vector<OperatorNode*> assembly_order_;  // post-order, internal only
  std::vector<int> trigger_classes_;
  /// Pattern-level index of each multi-predicate (for stats attribution).
  std::vector<int> pred_index_of_;
  /// Classes that can be unbound in a record (negated / Kleene / inside
  /// a disjunction branch); such classes are excluded from hash routing.
  std::vector<bool> optional_class_;

  std::unique_ptr<WindowedClassStats> windowed_stats_;
  std::unique_ptr<AdaptiveController> adaptive_;
  std::unique_ptr<ReorderStage> reorder_;

  MatchCallback callback_;
  int pending_in_batch_ = 0;
  Timestamp max_ts_seen_ = kMinTimestamp;
  /// EAT of the assembly round in flight: OnMatch drops matches that
  /// start before it (mirrors DrainRoot's filter for buffered roots).
  Timestamp round_eat_ = kMinTimestamp;
  /// Trace id sampled at round start; nonzero makes sinks assemble
  /// payloads so provenance can be recorded.
  uint64_t cur_trace_ = 0;
  uint64_t late_events_ = 0;
  uint64_t events_pushed_ = 0;
  uint64_t num_matches_ = 0;
  uint64_t assembly_rounds_ = 0;
  uint64_t plan_switches_ = 0;
  bool rebuild_round_pending_ = false;
  /// Per-node timing active (options_.profile or a slow-event
  /// threshold); resolved once at construction.
  bool profiling_ = false;
  uint64_t slow_events_ = 0;
  uint64_t slow_suppressed_ = 0;
  uint64_t last_slow_log_ns_ = 0;
  uint64_t plan_fingerprint_ = 0;
  /// Cached Explain rendering of the installed plan (refreshed with
  /// plan_fingerprint_), so per-match provenance recording copies a
  /// fixed buffer instead of re-rendering the plan.
  char op_path_[96] = {};
  /// Provenance throttle: at most kProvenancePerTrace full provenance
  /// records per traced batch (kMatch spans stay per match).
  static constexpr uint32_t kProvenancePerTrace = 16;
  uint64_t prov_trace_ = 0;
  uint32_t prov_in_trace_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_ENGINE_H_
