// The shard-facing engine interface.
//
// runtime::StreamRuntime hosts many queries, each instantiated once per
// shard; a shard worker drives its engines through this interface without
// caring whether a query runs as a single-partition Engine or a
// hash-partitioned PartitionedEngine. Implementations are single-threaded
// (one shard worker owns each instance); cross-thread aggregation happens
// above, via atomic match counters, the thread-safe MemoryTracker and the
// merged StatsCatalog snapshots.
#ifndef ZSTREAM_EXEC_ENGINE_CORE_H_
#define ZSTREAM_EXEC_ENGINE_CORE_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "event/event.h"
#include "exec/node_profile.h"

namespace zstream {

struct Match;
class MemoryTracker;
class Pattern;
struct PhysicalPlan;
class StatsCatalog;

/// Consumes one completed match (moved in).
using MatchCallback = std::function<void(Match&&)>;

/// \brief A borrowed span of events for columnar ingest. The pointers
/// stay owned by the producer; the span must outlive the PushBatch call.
struct EventBatch {
  const EventPtr* data = nullptr;
  size_t count = 0;
};

/// \brief Uniform driving interface over Engine / PartitionedEngine.
class EngineCore {
 public:
  virtual ~EngineCore() = default;

  /// Streams one event in; may trigger assembly rounds.
  virtual void Push(const EventPtr& event) = 0;

  /// Streams a span of events in; may trigger assembly rounds. The
  /// default forwards event-at-a-time; engines with a columnar ingest
  /// path override this to amortize per-event dispatch.
  virtual void PushBatch(const EventBatch& batch) {
    for (size_t i = 0; i < batch.count; ++i) Push(batch.data[i]);
  }

  /// Flushes pending state (reorder stages, partial batches). The engine
  /// remains usable afterwards; Finish is a barrier, not a shutdown.
  virtual void Finish() = 0;

  /// Installs a match consumer; without one, matches are only counted.
  virtual void SetMatchCallback(MatchCallback cb) = 0;

  /// Replaces the physical plan between assembly rounds (Section 5.3).
  virtual Status SwitchPlan(const PhysicalPlan& plan) = 0;

  /// Windowed runtime statistics as a planner catalog; components with
  /// too few observations (or engines not collecting stats) fall back to
  /// `defaults`. Used by the runtime's merged re-planning.
  virtual StatsCatalog StatsSnapshot(const StatsCatalog& defaults) const = 0;

  virtual uint64_t num_matches() const = 0;
  virtual uint64_t events_pushed() const = 0;
  virtual const Pattern& pattern() const = 0;
  virtual MemoryTracker& memory() = 0;

  /// Live per-plan-node counters for EXPLAIN ANALYZE (see
  /// node_profile.h). Partitioned/sharded engines merge their parts.
  virtual NodeProfile Profile() const = 0;

  /// Human-readable query name for slow-event logs and metric labels.
  virtual void SetLabel(const std::string& label) = 0;

  /// FNV-1a 64 hash of the installed plan's Explain rendering. Spans
  /// and match provenance (obs/trace.h) carry this so a match stays
  /// attributable to the exact plan shape that produced it even after
  /// an adaptive switch. 0 when no plan is installed yet.
  virtual uint64_t plan_fingerprint() const { return 0; }
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_ENGINE_CORE_H_
