// End-timestamp-ordered record buffers (Section 4.2).
//
// Records are addressed by a monotonically increasing *sequence id* so
// that hash-index entries and consumption watermarks survive front
// purges. Purging removes expired records from the front; records that
// expire mid-buffer are skipped by the operators' EAT checks and
// reclaimed once they reach the front (the retained tail is still
// bounded by one time window, matching the paper's memory behaviour).
#ifndef ZSTREAM_EXEC_BUFFER_H_
#define ZSTREAM_EXEC_BUFFER_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/memory_tracker.h"
#include "exec/hash_index.h"
#include "exec/record.h"

namespace zstream {

/// Sequence id of a record within a buffer (monotone, never reused).
using RecordId = uint64_t;

/// \brief Ordered record store with watermark-based consumption, EAT
/// purging and an optional equality hash index.
class Buffer {
 public:
  /// `count_event_bytes` is set for leaf buffers, which account the
  /// resident primitive events' bytes in addition to record overhead.
  explicit Buffer(MemoryTracker* tracker, bool count_event_bytes = false)
      : tracker_(tracker), count_event_bytes_(count_event_bytes) {}

  ZS_DISALLOW_COPY_AND_ASSIGN(Buffer);
  ~Buffer() { Clear(); }

  /// Appends a record; end timestamps must be non-decreasing.
  RecordId Append(Record record);

  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }
  RecordId base_id() const { return base_id_; }
  RecordId end_id() const { return base_id_ + records_.size(); }

  const Record& Get(RecordId id) const {
    ZS_DCHECK(id >= base_id_ && id < end_id());
    return records_[static_cast<size_t>(id - base_id_)];
  }

  /// Consumption watermark: first id not yet consumed by this buffer's
  /// reader (the parent operator's outer loop).
  RecordId watermark() const { return watermark_ < base_id_ ? base_id_ : watermark_; }
  void SetWatermark(RecordId id) { watermark_ = id; }
  /// Resets consumption so the next round re-reads everything still
  /// buffered (used by the plan-switch rebuild round, Section 5.3).
  void RewindWatermark() { watermark_ = base_id_; }
  bool HasUnconsumed() const { return watermark() < end_id(); }

  /// Earliest end timestamp among unconsumed records (EAT input).
  std::optional<Timestamp> FirstUnconsumedEndTs() const {
    return HasUnconsumed() ? std::optional<Timestamp>(Get(watermark()).end_ts)
                           : std::nullopt;
  }

  /// Removes expired records (start_ts < eat) from the front.
  void PurgeBefore(Timestamp eat);

  /// Removes every record ("Clear RBuf", Algorithm 1 step 7 — applied to
  /// internal right-child buffers after their round is consumed).
  void Clear();

  /// Enables an equality hash index keyed on slot `class_idx`'s
  /// attribute `field_idx`; indexes existing and future records.
  void EnableHashIndex(int class_idx, int field_idx);
  void DisableHashIndex();
  bool has_hash_index() const { return index_.has_value(); }
  const HashIndex* hash_index() const {
    return index_.has_value() ? &*index_ : nullptr;
  }

  /// Total bytes currently accounted by this buffer.
  size_t tracked_bytes() const { return tracked_bytes_; }

 private:
  void Account(const Record& r);
  void Unaccount(const Record& r);

  MemoryTracker* tracker_;
  bool count_event_bytes_;
  std::deque<Record> records_;
  RecordId base_id_ = 0;
  RecordId watermark_ = 0;
  std::optional<HashIndex> index_;
  size_t tracked_bytes_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_BUFFER_H_
