// End-timestamp-ordered record buffers (Section 4.2), columnar layout.
//
// Storage is chunked and column-oriented: records live in fixed-capacity
// chunks holding one column per record field (start timestamps, end
// timestamps, the event-slot matrix, and a lazily-allocated Kleene-group
// column). Operators address records by a monotonically increasing
// *sequence id* — hash-index entries and consumption watermarks survive
// front purges — and read them through RecordRef views that point
// straight into chunk columns, so scanning a buffer touches no
// per-record heap objects and copies no shared_ptrs.
//
// Purging removes expired records from the front; records that expire
// mid-buffer are skipped by the operators' EAT checks and reclaimed once
// they reach the front (the retained tail is still bounded by one time
// window, matching the paper's memory behaviour). Fully-purged chunks
// are recycled through a small per-buffer pool, so steady-state
// append/purge cycles allocate nothing.
#ifndef ZSTREAM_EXEC_BUFFER_H_
#define ZSTREAM_EXEC_BUFFER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/memory_tracker.h"
#include "exec/hash_index.h"
#include "exec/record.h"

namespace zstream {

/// Sequence id of a record within a buffer (monotone, never reused).
using RecordId = uint64_t;

/// \brief Zero-copy view of one buffered record.
///
/// `slots` points into the owning chunk's slot column (arity entries,
/// null where a class is unbound) and stays valid until the record is
/// purged or the buffer cleared. `group_sp` is null when the record
/// carries no Kleene group.
struct RecordRef {
  Timestamp start_ts = 0;
  Timestamp end_ts = 0;
  const EventPtr* slots = nullptr;
  int num_slots = 0;
  const EventGroupPtr* group_sp = nullptr;

  const EventGroup* group() const {
    return group_sp != nullptr ? group_sp->get() : nullptr;
  }
  bool has_group() const { return group() != nullptr; }

  EvalInput ToEvalInput(int group_class) const {
    EvalInput in;
    in.slots = slots;
    in.num_slots = num_slots;
    in.group = group();
    in.group_class = group_class;
    return in;
  }
};

/// \brief Ordered columnar record store with watermark-based consumption,
/// EAT purging and an optional equality hash index.
class Buffer {
 public:
  /// Records per chunk. Chosen to keep one chunk's slot matrix within a
  /// few cache pages at typical pattern arities (3-6 classes).
  static constexpr size_t kChunkCap = 64;

  /// `count_event_bytes` is set for leaf buffers, which account the
  /// resident primitive events' bytes in addition to record overhead.
  /// `arity` fixes the slot-column width; 0 defers it to the first
  /// append (convenient for tests feeding whole Records).
  explicit Buffer(MemoryTracker* tracker, bool count_event_bytes = false,
                  int arity = 0)
      : tracker_(tracker),
        count_event_bytes_(count_event_bytes),
        arity_(arity) {}

  ZS_DISALLOW_COPY_AND_ASSIGN(Buffer);
  ~Buffer();

  int arity() const { return arity_; }

  /// Appends a copy of a value-type record (compat path: NFA helpers and
  /// tests); end timestamps must be non-decreasing.
  RecordId Append(const Record& record);

  /// Leaf fast path: appends a single-event record bound to `class_idx`
  /// with span [ts, ts]. Requires a construction-time arity.
  RecordId AppendEvent(int class_idx, const EventPtr& event);

  /// Appends the slot-wise union of two records (disjoint class sets,
  /// `a` wins ties) with an explicit result span. The union is copied
  /// straight from the source chunks; no intermediate record exists.
  RecordId AppendMerged(const RecordRef& a, const RecordRef& b,
                        Timestamp start_ts, Timestamp end_ts);

  /// Appends a copy of an existing record view (possibly from another
  /// buffer).
  RecordId AppendRef(const RecordRef& r);

  /// Appends from an owning slot array (Kleene assembly scratch).
  RecordId AppendSlots(Timestamp start_ts, Timestamp end_ts,
                       const EventPtr* slots, int num_slots,
                       const EventGroupPtr& group);

  bool empty() const { return base_id_ == next_id_; }
  size_t size() const { return static_cast<size_t>(next_id_ - base_id_); }
  RecordId base_id() const { return base_id_; }
  RecordId end_id() const { return next_id_; }

  RecordRef Get(RecordId id) const;

  /// Consumption watermark: first id not yet consumed by this buffer's
  /// reader (the parent operator's outer loop).
  RecordId watermark() const {
    return watermark_ < base_id_ ? base_id_ : watermark_;
  }
  void SetWatermark(RecordId id) { watermark_ = id; }
  /// Resets consumption so the next round re-reads everything still
  /// buffered (used by the plan-switch rebuild round, Section 5.3).
  void RewindWatermark() { watermark_ = base_id_; }
  bool HasUnconsumed() const { return watermark() < end_id(); }

  /// Earliest end timestamp among unconsumed records (EAT input).
  std::optional<Timestamp> FirstUnconsumedEndTs() const {
    return HasUnconsumed() ? std::optional<Timestamp>(Get(watermark()).end_ts)
                           : std::nullopt;
  }

  /// Removes expired records (start_ts < eat) from the front.
  void PurgeBefore(Timestamp eat);

  /// Removes every record ("Clear RBuf", Algorithm 1 step 7 — applied to
  /// internal right-child buffers after their round is consumed).
  void Clear();

  /// Enables an equality hash index keyed on slot `class_idx`'s
  /// attribute `field_idx`; indexes existing and future records.
  void EnableHashIndex(int class_idx, int field_idx);
  void DisableHashIndex();
  bool has_hash_index() const { return index_.has_value(); }
  const HashIndex* hash_index() const {
    return index_.has_value() ? &*index_ : nullptr;
  }

  /// Total bytes currently accounted by this buffer.
  size_t tracked_bytes() const { return tracked_bytes_; }

 private:
  /// One fixed-capacity columnar chunk. All chunks but the last are
  /// full, so id -> (chunk, row) is pure arithmetic off the front
  /// chunk's first id.
  struct Chunk {
    RecordId first_id = 0;
    uint32_t count = 0;
    std::vector<Timestamp> start;        // kChunkCap entries
    std::vector<Timestamp> end;          // kChunkCap entries
    std::vector<EventPtr> slots;         // kChunkCap * arity, owning
    std::vector<EventGroupPtr> groups;   // lazily kChunkCap, else empty
  };

  Chunk* AppendRow(Timestamp start_ts, Timestamp end_ts, uint32_t* row_out);
  void FinishAppend(Chunk& c, uint32_t row, RecordId id);
  Chunk& AcquireChunk();
  void RetireFrontChunk();
  void ReleaseRow(Chunk& c, uint32_t row);
  size_t ChunkOverheadBytes(const Chunk& c) const;
  void EnsureGroupColumn(Chunk& c);
  void ChargeGroup(const EventGroupPtr& g);
  void ReleaseGroup(const EventGroupPtr& g);
  void Account(size_t bytes);
  void Unaccount(size_t bytes);

  MemoryTracker* tracker_;
  bool count_event_bytes_;
  int arity_;
  std::deque<std::unique_ptr<Chunk>> chunks_;
  /// Recycled chunks (columns allocated, rows cleared): steady-state
  /// append/purge cycles reuse these instead of allocating.
  std::vector<std::unique_ptr<Chunk>> free_chunks_;
  RecordId base_id_ = 0;
  RecordId next_id_ = 0;
  RecordId watermark_ = 0;
  Timestamp last_end_ts_ = kMinTimestamp;
  std::optional<HashIndex> index_;
  size_t tracked_bytes_ = 0;
  /// Kleene groups resident in this buffer, by payload identity: a group
  /// shared by many records (one closure feeding many pairs) is charged
  /// once, not per holder (Tables 3/5 accounting).
  std::unordered_map<const EventGroup*, uint32_t> group_refs_;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_BUFFER_H_
