// Composite-event records (Section 4.2).
//
// A record is one (partial) match: a vector of pointers to the component
// primitive events plus a start and end timestamp. We slot the pointers
// by pattern-class index so one expression evaluator serves every
// operator; a Kleene group rides along as a shared vector.
#ifndef ZSTREAM_EXEC_RECORD_H_
#define ZSTREAM_EXEC_RECORD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/timestamp.h"
#include "event/event.h"
#include "expr/expr.h"

namespace zstream {

using EventGroup = std::vector<EventPtr>;
using EventGroupPtr = std::shared_ptr<const EventGroup>;

/// \brief A buffer entry: either a primitive event (leaf buffers) or an
/// assembled intermediate/composite result (internal buffers).
struct Record {
  Timestamp start_ts = 0;
  Timestamp end_ts = 0;
  /// One entry per pattern class; nullptr when unbound. Negated-class
  /// slots hold the *negating* event (never part of the output span).
  std::vector<EventPtr> slots;
  EventGroupPtr group;  // Kleene-closure events, when the pattern has one

  /// Leaf record wrapping a primitive event bound to `class_idx`.
  static Record FromEvent(int class_idx, int num_classes,
                          const EventPtr& event);

  /// Slot-wise union of two records spanning disjoint class sets, with an
  /// explicit result span (NSEQ excludes the negated side from the span).
  static Record Merge(const Record& a, const Record& b, Timestamp start,
                      Timestamp end);

  /// Union with the natural span [min(starts), max(ends)].
  static Record MergeSpanning(const Record& a, const Record& b) {
    return Merge(a, b, std::min(a.start_ts, b.start_ts),
                 std::max(a.end_ts, b.end_ts));
  }

  EvalInput ToEvalInput(int group_class = -1) const {
    EvalInput in;
    in.slots = slots.data();
    in.num_slots = static_cast<int>(slots.size());
    in.group = group == nullptr ? nullptr : group.get();
    in.group_class = group_class;
    return in;
  }

  /// Approximate resident bytes (used for the Tables 3/5 peak-memory
  /// accounting). `count_events` adds the pointed-to events' bytes and is
  /// set for leaf buffers, which "own" event residency.
  ///
  /// Excludes the Kleene group's payload: one EventGroup is shared by
  /// every record derived from the same closure, so charging it per
  /// holder would inflate peak_mb by the fan-out factor. Containers
  /// charge GroupByteSize once per distinct resident group instead
  /// (see Buffer's group accounting).
  size_t ByteSize(bool count_events = false) const;

  /// Resident bytes of a group payload, charged once per distinct group.
  static size_t GroupByteSize(const EventGroup& g) {
    return sizeof(EventGroup) + g.capacity() * sizeof(EventPtr);
  }

  std::string ToString() const;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_RECORD_H_
