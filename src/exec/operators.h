// Operator nodes of a tree plan (Section 4.4).
//
// Every internal node owns an output buffer and implements one assembly
// round over its children's buffers. Consumption rules follow the paper:
//
//   * SEQ  (Alg 1): outer loop = new right records; right internal
//     buffers are cleared after the round; left buffers persist
//     (materialization) and are EAT-purged.
//   * NSEQ (Alg 2): pairs each new non-negated record with the latest
//     (resp. first) negating event; emits (b, c) or (NULL, c).
//   * CONJ (Alg 3): sort-merge on end timestamps with persistent cursors
//     on both inputs.
//   * DISJ: order-preserving merge of both inputs.
//   * KSEQ (Alg 4): trinary closure assembly; see kleene.cc.
//   * NEG filter: drops composites with an interleaving negator (the
//     "last-filter-step" strategy the paper compares against).
//
// All nodes are owned by the Engine. Leaf nodes survive plan switches;
// internal nodes are rebuilt (Section 5.3).
#ifndef ZSTREAM_EXEC_OPERATORS_H_
#define ZSTREAM_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/buffer.h"
#include "opt/stats.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream {

/// \brief Base class for all plan-tree nodes.
class OperatorNode {
 public:
  OperatorNode(const Pattern* pattern, PhysOp op, MemoryTracker* tracker,
               bool leaf_buffer = false);
  virtual ~OperatorNode() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(OperatorNode);

  PhysOp op() const { return op_; }
  bool is_leaf() const { return op_ == PhysOp::kLeaf; }
  Buffer* output() { return &output_; }
  const Buffer* output() const { return &output_; }

  /// Runs one assembly round with the given earliest allowed timestamp.
  virtual void Assemble(Timestamp eat) = 0;

  /// Stream horizon: every event with timestamp < horizon has arrived.
  /// Set by the engine before each assembly round; right-side negation
  /// uses it to avoid finalizing pairings a future negator could change.
  void set_horizon(Timestamp h) { horizon_ = h; }

  /// Attaches a multi-class predicate (with its pattern-level index for
  /// runtime selectivity tracking; -1 when untracked).
  void AttachPredicate(ExprPtr pred, int pred_idx);

  /// Classes covered by this subtree (set at build time by the Engine).
  const std::vector<int>& covered() const { return covered_; }
  void set_covered(std::vector<int> c) { covered_ = std::move(c); }

  void set_runtime_stats(WindowedClassStats* stats) { stats_ = stats; }

  uint64_t pairs_tried() const { return pairs_tried_; }
  uint64_t records_emitted() const { return records_emitted_; }

  /// Child operators in plan order (leaves included); set at
  /// construction, used only for profile-tree traversal.
  const std::vector<OperatorNode*>& children() const { return children_; }

  /// Cumulative wall time spent in Assemble. Charged by the engine's
  /// assembly loop when profiling is on; stays 0 otherwise.
  uint64_t eval_ns() const { return eval_ns_; }
  void add_eval_ns(uint64_t ns) { eval_ns_ += ns; }

 protected:
  struct AttachedPred {
    ExprPtr expr;
    std::vector<int> classes;  // referenced classes
    bool has_aggregate = false;
    int pred_idx = -1;
  };

  /// True when all attached predicates pass on `rec`. A predicate whose
  /// referenced slots are not all bound (disjunction branches) passes
  /// vacuously; aggregate predicates check group presence instead of the
  /// Kleene class's slot.
  bool EvalPreds(const Record& rec);
  bool EvalOnePred(const AttachedPred& p, const Record& rec);

  const Pattern* pattern_;
  PhysOp op_;
  Buffer output_;
  std::vector<AttachedPred> preds_;
  std::vector<int> covered_;
  int group_class_;  // pattern's Kleene class (or -1)
  Duration window_;
  Timestamp horizon_ = kMaxTimestamp;
  WindowedClassStats* stats_ = nullptr;
  uint64_t pairs_tried_ = 0;
  uint64_t records_emitted_ = 0;
  uint64_t eval_ns_ = 0;
  std::vector<OperatorNode*> children_;
};

/// \brief Leaf buffer for one event class, with pushed-down single-class
/// predicates (and negated-disjunction admission branches).
class LeafNode : public OperatorNode {
 public:
  LeafNode(const Pattern* pattern, int class_idx, MemoryTracker* tracker);

  int class_idx() const { return class_idx_; }

  /// Offers an incoming primitive event; returns true when admitted.
  bool Offer(const EventPtr& event);

  /// Primitive events offered (before predicate admission); admitted
  /// events are records_emitted().
  uint64_t offered() const { return offered_; }

  void Assemble(Timestamp) override {}

 private:
  int class_idx_;
  uint64_t offered_ = 0;
  const EventClass* event_class_;
  /// Scratch slot vector for the admission probe: sized once, holding a
  /// non-owning alias of the offered event while predicates run, so a
  /// rejected event costs no allocation and no shared_ptr refcounting.
  std::vector<EventPtr> probe_slots_;
};

/// \brief Sequence (Algorithm 1), with optional hash-probe inner path
/// and negation time-guards (the "extra time constraints" of Figure 4).
class SeqNode : public OperatorNode {
 public:
  SeqNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
          MemoryTracker* tracker);

  /// Uses a hash index on the left buffer keyed by (left_class,
  /// left_field); the probe key comes from the right record's
  /// (right_class, right_field).
  void SetHashEquality(const EqualityJoin& eq);

  /// Adds the survival guard for negated class `nc`:
  /// bound-on-right: slots[nc-1].ts >= slots[nc].ts;
  /// bound-on-left:  slots[nc].ts  >= slots[nc+1].ts.
  void AddNegGuard(int neg_class, bool neg_bound_on_right);

  void Assemble(Timestamp eat) override;

 private:
  bool PassesGuards(const Record& l, const Record& r) const;
  void TryCombine(const Record& l, const Record& r);

  OperatorNode* left_;
  OperatorNode* right_;
  std::optional<EqualityJoin> hash_eq_;
  struct NegGuard {
    int neg_class;
    bool neg_bound_on_right;
  };
  std::vector<NegGuard> guards_;
};

/// \brief Negation pushed down (Algorithm 2). `neg` must be the negated
/// class's leaf. When `neg_left`, pairs each new record of `other` with
/// the *latest* earlier negator; otherwise with the *first* later one.
class NSeqNode : public OperatorNode {
 public:
  NSeqNode(const Pattern* pattern, LeafNode* neg, OperatorNode* other,
           bool neg_left, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  LeafNode* neg_;
  OperatorNode* other_;
  bool neg_left_;
};

/// \brief Conjunction (Algorithm 3): order-free sort-merge join.
class ConjNode : public OperatorNode {
 public:
  ConjNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
           MemoryTracker* tracker);

  /// Enables hash probing for an equality predicate; indexes are built
  /// on both inputs since either side can pivot.
  void SetHashEquality(const EqualityJoin& eq);

  void Assemble(Timestamp eat) override;

 private:
  void CombineWithEarlier(const Record& pivot, Buffer& partner,
                          RecordId limit, bool pivot_is_left, Timestamp eat);

  OperatorNode* left_;
  OperatorNode* right_;
  std::optional<EqualityJoin> hash_eq_;
};

/// \brief Disjunction: end-timestamp-ordered union of both inputs.
class DisjNode : public OperatorNode {
 public:
  DisjNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
           MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  OperatorNode* left_;
  OperatorNode* right_;
};

/// \brief Negation as a final filtration step. Scans the negated class's
/// leaf buffer for an interleaving negator between the classes adjacent
/// to the negation position.
class NegFilterNode : public OperatorNode {
 public:
  NegFilterNode(const Pattern* pattern, OperatorNode* input,
                LeafNode* neg_leaf, int neg_class, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  OperatorNode* input_;
  LeafNode* neg_leaf_;
  int neg_class_;
};

/// \brief Kleene closure (Algorithm 4); defined in kleene.cc.
class KSeqNode : public OperatorNode {
 public:
  /// `start` and `end` may be null when the closure begins/ends the
  /// pattern; `closure` is the Kleene class's leaf.
  KSeqNode(const Pattern* pattern, OperatorNode* start, LeafNode* closure,
           OperatorNode* end, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  void AssembleWithEnd(Timestamp eat);
  void AssembleAtPatternEnd(Timestamp eat);
  void EmitGroups(const Record* sr, const Record& er, Timestamp lo,
                  Timestamp hi, Timestamp eat);
  bool MidQualifies(const EventPtr& m, const Record& base);
  void EmitOne(const Record* sr, const Record& er, EventGroup group);

  OperatorNode* start_;  // nullable
  LeafNode* closure_;
  OperatorNode* end_;  // nullable
  KleeneKind kind_;
  int count_;
  // Predicate split: per-closure-event filters vs group-level
  // (aggregate) predicates vs base (start/end only) predicates.
  bool preds_split_ = false;
  std::vector<AttachedPred> per_mid_preds_;
  std::vector<AttachedPred> group_preds_;
  std::vector<AttachedPred> base_preds_;
  void SplitPreds();
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_OPERATORS_H_
