// Operator nodes of a tree plan (Section 4.4), batch-oriented edition.
//
// Every internal node owns a columnar output buffer and implements one
// assembly round over its children's buffers. Candidate combinations
// are evaluated *before* materialization: the slot-wise union of a pair
// is assembled as a scratch view of non-owning aliases, predicates run
// against that view, and only surviving results are copied into the
// output chunk (or streamed to the engine's MatchSink when this node is
// the plan root — completed matches never materialize at all).
// Consumption rules follow the paper:
//
//   * SEQ  (Alg 1): outer loop = new right records; right internal
//     buffers are cleared after the round; left buffers persist
//     (materialization) and are EAT-purged.
//   * NSEQ (Alg 2): pairs each new non-negated record with the latest
//     (resp. first) negating event; emits (b, c) or (NULL, c).
//   * CONJ (Alg 3): sort-merge on end timestamps with persistent cursors
//     on both inputs.
//   * DISJ: order-preserving merge of both inputs.
//   * KSEQ (Alg 4): trinary closure assembly; see kleene.cc.
//   * NEG filter: drops composites with an interleaving negator (the
//     "last-filter-step" strategy the paper compares against).
//
// All nodes are owned by the Engine. Leaf nodes survive plan switches;
// internal nodes are rebuilt (Section 5.3).
#ifndef ZSTREAM_EXEC_OPERATORS_H_
#define ZSTREAM_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/buffer.h"
#include "expr/compiled.h"
#include "opt/stats.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream {

/// \brief Streaming consumer of completed matches (installed on the plan
/// root by the Engine). `slots` point at owning storage that remains
/// valid for the duration of the call; `group` is null when the match
/// carries no Kleene group.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  /// When false the sink only counts: emitters may pass null slots and
  /// group and skip assembling the payload entirely (the count-only
  /// benchmark path pays zero refcount traffic per match).
  virtual bool NeedsPayload() const { return true; }
  virtual void OnMatch(Timestamp start_ts, Timestamp end_ts,
                       const EventPtr* slots, int num_slots,
                       const EventGroupPtr* group) = 0;
};

/// \brief Base class for all plan-tree nodes.
class OperatorNode {
 public:
  OperatorNode(const Pattern* pattern, PhysOp op, MemoryTracker* tracker,
               bool leaf_buffer = false);
  virtual ~OperatorNode() = default;
  ZS_DISALLOW_COPY_AND_ASSIGN(OperatorNode);

  PhysOp op() const { return op_; }
  bool is_leaf() const { return op_ == PhysOp::kLeaf; }
  Buffer* output() { return &output_; }
  const Buffer* output() const { return &output_; }

  /// Runs one assembly round with the given earliest allowed timestamp.
  virtual void Assemble(Timestamp eat) = 0;

  /// Stream horizon: every event with timestamp < horizon has arrived.
  /// Set by the engine before each assembly round; right-side negation
  /// uses it to avoid finalizing pairings a future negator could change.
  void set_horizon(Timestamp h) { horizon_ = h; }

  /// Installs a streaming sink: results bypass the output buffer and go
  /// straight to the consumer (set on the plan root only).
  void SetSink(MatchSink* sink) { sink_ = sink; }

  /// Attaches a multi-class predicate (with its pattern-level index for
  /// runtime selectivity tracking; -1 when untracked).
  void AttachPredicate(ExprPtr pred, int pred_idx);

  /// Classes covered by this subtree (set at build time by the Engine).
  const std::vector<int>& covered() const { return covered_; }
  void set_covered(std::vector<int> c) { covered_ = std::move(c); }

  void set_runtime_stats(WindowedClassStats* stats) { stats_ = stats; }

  uint64_t pairs_tried() const { return pairs_tried_; }
  uint64_t records_emitted() const { return records_emitted_; }

  /// Child operators in plan order (leaves included); set at
  /// construction, used only for profile-tree traversal.
  const std::vector<OperatorNode*>& children() const { return children_; }

  /// Cumulative wall time spent in Assemble. Charged by the engine's
  /// assembly loop when profiling is on; stays 0 otherwise.
  uint64_t eval_ns() const { return eval_ns_; }
  void add_eval_ns(uint64_t ns) { eval_ns_ += ns; }

 protected:
  struct AttachedPred {
    ExprPtr expr;
    /// Fast path for AND-of-comparison shapes; nullopt falls back to the
    /// tree-walking interpreter.
    std::optional<CompiledPredicate> compiled;
    std::vector<int> classes;  // referenced classes
    bool has_aggregate = false;
    int pred_idx = -1;
  };

  /// True when all attached predicates pass on the record view. A
  /// predicate whose referenced slots are not all bound (disjunction
  /// branches) passes vacuously; aggregate predicates check group
  /// presence instead of the Kleene class's slot.
  bool EvalPreds(const EvalInput& in);
  bool EvalOnePred(const AttachedPred& p, const EvalInput& in);

  /// Scratch slot-union view of two records (disjoint class sets, `a`
  /// wins ties), built from non-owning aliases: evaluating a candidate
  /// pair costs no allocation and no refcount traffic. The view is valid
  /// until the next MergedView call on this node.
  EvalInput MergedView(const RecordRef& a, const RecordRef& b);

  /// Emits the union of `a` and `b` with an explicit span: streams to
  /// the sink when installed, otherwise materializes into output().
  void EmitMerged(const RecordRef& a, const RecordRef& b, Timestamp start_ts,
                  Timestamp end_ts);
  /// Emits a copy of an existing record (pass-through operators).
  void EmitRef(const RecordRef& r);

  const Pattern* pattern_;
  PhysOp op_;
  Buffer output_;
  MatchSink* sink_ = nullptr;
  std::vector<AttachedPred> preds_;
  std::vector<int> covered_;
  int group_class_;  // pattern's Kleene class (or -1)
  Duration window_;
  Timestamp horizon_ = kMaxTimestamp;
  WindowedClassStats* stats_ = nullptr;
  uint64_t pairs_tried_ = 0;
  uint64_t records_emitted_ = 0;
  uint64_t eval_ns_ = 0;
  std::vector<OperatorNode*> children_;
  /// Non-owning alias slots backing MergedView.
  std::vector<EventPtr> scratch_;
  /// Owning slots staged for sink emission of merged results.
  std::vector<EventPtr> emit_slots_;
};

/// \brief Leaf buffer for one event class, with pushed-down single-class
/// predicates (and negated-disjunction admission branches).
class LeafNode : public OperatorNode {
 public:
  LeafNode(const Pattern* pattern, int class_idx, MemoryTracker* tracker);

  int class_idx() const { return class_idx_; }

  /// Offers an incoming primitive event; returns true when admitted.
  bool Offer(const EventPtr& event);

  /// Columnar admission: evaluates the pushed-down predicates term-major
  /// over the whole batch (compiled single-class shapes narrow a
  /// selection mask), then appends survivors. Falls back to per-event
  /// admission when a predicate did not compile.
  void OfferBatch(const EventPtr* events, int n);

  /// Primitive events offered (before predicate admission); admitted
  /// events are records_emitted().
  uint64_t offered() const { return offered_; }

  void Assemble(Timestamp) override {}

 private:
  struct LeafPred {
    const Expr* expr;
    std::optional<CompiledPredicate> compiled;
  };

  bool Admit(const EventPtr& event);
  void Accept(const EventPtr& event);

  int class_idx_;
  uint64_t offered_ = 0;
  const EventClass* event_class_;
  std::vector<LeafPred> leaf_preds_;
  bool batchable_ = false;  // every pred compiled, no neg branches
  std::vector<uint8_t> mask_;
  /// Scratch slot vector for the admission probe: sized once, holding a
  /// non-owning alias of the offered event while predicates run, so a
  /// rejected event costs no allocation and no shared_ptr refcounting.
  std::vector<EventPtr> probe_slots_;
};

/// \brief Sequence (Algorithm 1), with optional hash-probe inner path
/// and negation time-guards (the "extra time constraints" of Figure 4).
class SeqNode : public OperatorNode {
 public:
  SeqNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
          MemoryTracker* tracker);

  /// Uses a hash index on the left buffer keyed by (left_class,
  /// left_field); the probe key comes from the right record's
  /// (right_class, right_field).
  void SetHashEquality(const EqualityJoin& eq);

  /// Adds the survival guard for negated class `nc`:
  /// bound-on-right: slots[nc-1].ts >= slots[nc].ts;
  /// bound-on-left:  slots[nc].ts  >= slots[nc+1].ts.
  void AddNegGuard(int neg_class, bool neg_bound_on_right);

  void Assemble(Timestamp eat) override;

 private:
  bool PassesGuards(const RecordRef& l, const RecordRef& r) const;
  void TryCombine(const RecordRef& l, const RecordRef& r);

  OperatorNode* left_;
  OperatorNode* right_;
  std::optional<EqualityJoin> hash_eq_;
  struct NegGuard {
    int neg_class;
    bool neg_bound_on_right;
  };
  std::vector<NegGuard> guards_;
};

/// \brief Negation pushed down (Algorithm 2). `neg` must be the negated
/// class's leaf. When `neg_left`, pairs each new record of `other` with
/// the *latest* earlier negator; otherwise with the *first* later one.
class NSeqNode : public OperatorNode {
 public:
  NSeqNode(const Pattern* pattern, LeafNode* neg, OperatorNode* other,
           bool neg_left, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  LeafNode* neg_;
  OperatorNode* other_;
  bool neg_left_;
};

/// \brief Conjunction (Algorithm 3): order-free sort-merge join.
class ConjNode : public OperatorNode {
 public:
  ConjNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
           MemoryTracker* tracker);

  /// Enables hash probing for an equality predicate; indexes are built
  /// on both inputs since either side can pivot.
  void SetHashEquality(const EqualityJoin& eq);

  void Assemble(Timestamp eat) override;

 private:
  void CombineWithEarlier(const RecordRef& pivot, Buffer& partner,
                          RecordId limit, bool pivot_is_left, Timestamp eat);

  OperatorNode* left_;
  OperatorNode* right_;
  std::optional<EqualityJoin> hash_eq_;
};

/// \brief Disjunction: end-timestamp-ordered union of both inputs.
class DisjNode : public OperatorNode {
 public:
  DisjNode(const Pattern* pattern, OperatorNode* left, OperatorNode* right,
           MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  OperatorNode* left_;
  OperatorNode* right_;
};

/// \brief Negation as a final filtration step. Scans the negated class's
/// leaf buffer for an interleaving negator between the classes adjacent
/// to the negation position.
class NegFilterNode : public OperatorNode {
 public:
  NegFilterNode(const Pattern* pattern, OperatorNode* input,
                LeafNode* neg_leaf, int neg_class, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  OperatorNode* input_;
  LeafNode* neg_leaf_;
  int neg_class_;
};

/// \brief Kleene closure (Algorithm 4); defined in kleene.cc.
class KSeqNode : public OperatorNode {
 public:
  /// `start` and `end` may be null when the closure begins/ends the
  /// pattern; `closure` is the Kleene class's leaf.
  KSeqNode(const Pattern* pattern, OperatorNode* start, LeafNode* closure,
           OperatorNode* end, MemoryTracker* tracker);

  void Assemble(Timestamp eat) override;

 private:
  void AssembleWithEnd(Timestamp eat);
  void AssembleAtPatternEnd(Timestamp eat);
  void EmitGroups(const RecordRef* sr, const RecordRef& er, Timestamp lo,
                  Timestamp hi, Timestamp eat);
  /// Builds the base view (er slots, filled from sr) into base_slots_.
  EvalInput BaseView(const RecordRef* sr, const RecordRef& er);
  bool MidQualifies(const EventPtr& m, const EvalInput& base);
  void EmitOne(const RecordRef* sr, const RecordRef& er, EventGroup group);

  OperatorNode* start_;  // nullable
  LeafNode* closure_;
  OperatorNode* end_;  // nullable
  KleeneKind kind_;
  int count_;
  // Predicate split: per-closure-event filters vs group-level
  // (aggregate) predicates vs base (start/end only) predicates.
  bool preds_split_ = false;
  std::vector<AttachedPred> per_mid_preds_;
  std::vector<AttachedPred> group_preds_;
  std::vector<AttachedPred> base_preds_;
  void SplitPreds();
  /// Scratch for the (start, end) base view during group assembly; kept
  /// separate from scratch_ so MidQualifies can probe while the base is
  /// live.
  std::vector<EventPtr> base_slots_;
  EventGroup qualifying_;  // reused across EmitGroups calls
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_OPERATORS_H_
