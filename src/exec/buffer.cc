#include "exec/buffer.h"

#include <algorithm>

#include "common/macros.h"

namespace zstream {

namespace {
/// Cached recycled chunks per buffer; enough to absorb the clear/refill
/// cycle of internal right-side buffers without unbounded hoarding.
constexpr size_t kMaxFreeChunks = 8;
}  // namespace

Buffer::~Buffer() { Clear(); }

size_t Buffer::ChunkOverheadBytes(const Chunk& c) const {
  size_t bytes = sizeof(Chunk);
  bytes += c.start.capacity() * sizeof(Timestamp);
  bytes += c.end.capacity() * sizeof(Timestamp);
  bytes += c.slots.capacity() * sizeof(EventPtr);
  bytes += c.groups.capacity() * sizeof(EventGroupPtr);
  return bytes;
}

void Buffer::Account(size_t bytes) {
  tracked_bytes_ += bytes;
  if (tracker_ != nullptr) tracker_->Allocate(bytes);
}

void Buffer::Unaccount(size_t bytes) {
  ZS_DCHECK(tracked_bytes_ >= bytes);
  tracked_bytes_ -= bytes;
  if (tracker_ != nullptr) tracker_->Release(bytes);
}

Buffer::Chunk& Buffer::AcquireChunk() {
  std::unique_ptr<Chunk> c;
  if (!free_chunks_.empty()) {
    c = std::move(free_chunks_.back());
    free_chunks_.pop_back();
  } else {
    // zs-hotpath-allow(pooled: reached only when the per-buffer chunk
    // pool is empty — steady state recycles retired chunks instead)
    c = std::make_unique<Chunk>();
    c->start.resize(kChunkCap);
    c->end.resize(kChunkCap);
    c->slots.resize(kChunkCap * static_cast<size_t>(arity_));
  }
  c->first_id = next_id_;
  c->count = 0;
  Account(ChunkOverheadBytes(*c));
  chunks_.push_back(std::move(c));
  return *chunks_.back();
}

void Buffer::EnsureGroupColumn(Chunk& c) {
  if (!c.groups.empty()) return;
  c.groups.resize(kChunkCap);
  Account(c.groups.capacity() * sizeof(EventGroupPtr));
}

void Buffer::ChargeGroup(const EventGroupPtr& g) {
  uint32_t& refs = group_refs_[g.get()];
  if (++refs == 1) {
    Account(sizeof(EventGroup) + g->capacity() * sizeof(EventPtr));
  }
}

void Buffer::ReleaseGroup(const EventGroupPtr& g) {
  auto it = group_refs_.find(g.get());
  ZS_DCHECK(it != group_refs_.end());
  if (--it->second == 0) {
    Unaccount(sizeof(EventGroup) + g->capacity() * sizeof(EventPtr));
    group_refs_.erase(it);
  }
}

ZS_HOT Buffer::Chunk* Buffer::AppendRow(Timestamp start_ts, Timestamp end_ts,
                                        uint32_t* row_out) {
  ZS_DCHECK(arity_ > 0);
  ZS_DCHECK(end_ts >= last_end_ts_ || empty());
  Chunk* c = chunks_.empty() ? nullptr : chunks_.back().get();
  if (c == nullptr || c->count == kChunkCap) {
    c = &AcquireChunk();
  }
  const uint32_t row = c->count;
  c->start[row] = start_ts;
  c->end[row] = end_ts;
  last_end_ts_ = end_ts;
  *row_out = row;
  return c;
}

ZS_HOT void Buffer::FinishAppend(Chunk& c, uint32_t row, RecordId id) {
  ++c.count;
  ++next_id_;
  if (count_event_bytes_) {
    size_t bytes = 0;
    const EventPtr* s = &c.slots[row * static_cast<size_t>(arity_)];
    for (int i = 0; i < arity_; ++i) {
      if (s[i] != nullptr) bytes += s[i]->ByteSize();
    }
    Account(bytes);
  }
  if (index_.has_value()) {
    const EventPtr& key_event =
        c.slots[row * static_cast<size_t>(arity_) +
                static_cast<size_t>(index_->class_idx())];
    if (key_event != nullptr) {
      index_->Insert(key_event->value(index_->field_idx()), id);
    }
  }
}

ZS_HOT RecordId Buffer::Append(const Record& record) {
  if (arity_ == 0) arity_ = static_cast<int>(record.slots.size());
  ZS_DCHECK(static_cast<int>(record.slots.size()) == arity_);
  uint32_t row = 0;
  Chunk* c = AppendRow(record.start_ts, record.end_ts, &row);
  EventPtr* dst = &c->slots[row * static_cast<size_t>(arity_)];
  for (int i = 0; i < arity_; ++i) dst[i] = record.slots[static_cast<size_t>(i)];
  if (record.group != nullptr) {
    EnsureGroupColumn(*c);
    c->groups[row] = record.group;
    ChargeGroup(record.group);
  }
  const RecordId id = next_id_;
  FinishAppend(*c, row, id);
  return id;
}

ZS_HOT RecordId Buffer::AppendEvent(int class_idx, const EventPtr& event) {
  const Timestamp ts = event->timestamp();
  uint32_t row = 0;
  Chunk* c = AppendRow(ts, ts, &row);
  c->slots[row * static_cast<size_t>(arity_) + static_cast<size_t>(class_idx)] =
      event;
  const RecordId id = next_id_;
  FinishAppend(*c, row, id);
  return id;
}

ZS_HOT RecordId Buffer::AppendMerged(const RecordRef& a, const RecordRef& b,
                                     Timestamp start_ts, Timestamp end_ts) {
  uint32_t row = 0;
  Chunk* c = AppendRow(start_ts, end_ts, &row);
  EventPtr* dst = &c->slots[row * static_cast<size_t>(arity_)];
  for (int i = 0; i < arity_; ++i) {
    dst[i] = a.slots[i] != nullptr ? a.slots[i] : b.slots[i];
  }
  const EventGroupPtr* g =
      a.has_group() ? a.group_sp : (b.has_group() ? b.group_sp : nullptr);
  if (g != nullptr) {
    EnsureGroupColumn(*c);
    c->groups[row] = *g;
    ChargeGroup(*g);
  }
  const RecordId id = next_id_;
  FinishAppend(*c, row, id);
  return id;
}

ZS_HOT RecordId Buffer::AppendRef(const RecordRef& r) {
  uint32_t row = 0;
  Chunk* c = AppendRow(r.start_ts, r.end_ts, &row);
  EventPtr* dst = &c->slots[row * static_cast<size_t>(arity_)];
  for (int i = 0; i < arity_; ++i) dst[i] = r.slots[i];
  if (r.has_group()) {
    EnsureGroupColumn(*c);
    c->groups[row] = *r.group_sp;
    ChargeGroup(*r.group_sp);
  }
  const RecordId id = next_id_;
  FinishAppend(*c, row, id);
  return id;
}

RecordId Buffer::AppendSlots(Timestamp start_ts, Timestamp end_ts,
                             const EventPtr* slots, int num_slots,
                             const EventGroupPtr& group) {
  ZS_DCHECK(num_slots == arity_);
  uint32_t row = 0;
  Chunk* c = AppendRow(start_ts, end_ts, &row);
  EventPtr* dst = &c->slots[row * static_cast<size_t>(arity_)];
  for (int i = 0; i < num_slots; ++i) dst[i] = slots[i];
  if (group != nullptr) {
    EnsureGroupColumn(*c);
    c->groups[row] = group;
    ChargeGroup(group);
  }
  const RecordId id = next_id_;
  FinishAppend(*c, row, id);
  return id;
}

ZS_HOT RecordRef Buffer::Get(RecordId id) const {
  ZS_DCHECK(id >= base_id_ && id < next_id_);
  const size_t off = static_cast<size_t>(id - chunks_.front()->first_id);
  const Chunk& c = *chunks_[off / kChunkCap];
  const size_t row = off % kChunkCap;
  RecordRef ref;
  ref.start_ts = c.start[row];
  ref.end_ts = c.end[row];
  ref.slots = &c.slots[row * static_cast<size_t>(arity_)];
  ref.num_slots = arity_;
  ref.group_sp = c.groups.empty() ? nullptr : &c.groups[row];
  return ref;
}

void Buffer::ReleaseRow(Chunk& c, uint32_t row) {
  EventPtr* s = &c.slots[row * static_cast<size_t>(arity_)];
  if (count_event_bytes_) {
    size_t bytes = 0;
    for (int i = 0; i < arity_; ++i) {
      if (s[i] != nullptr) bytes += s[i]->ByteSize();
    }
    Unaccount(bytes);
  }
  for (int i = 0; i < arity_; ++i) s[i] = nullptr;
  if (!c.groups.empty() && c.groups[row] != nullptr) {
    ReleaseGroup(c.groups[row]);
    c.groups[row] = nullptr;
  }
}

void Buffer::RetireFrontChunk() {
  std::unique_ptr<Chunk> c = std::move(chunks_.front());
  chunks_.pop_front();
  Unaccount(ChunkOverheadBytes(*c));
  if (free_chunks_.size() < kMaxFreeChunks) {
    free_chunks_.push_back(std::move(c));
  }
}

void Buffer::PurgeBefore(Timestamp eat) {
  size_t removed = 0;
  while (base_id_ < next_id_) {
    Chunk& front = *chunks_.front();
    const size_t row = static_cast<size_t>(base_id_ - front.first_id);
    if (front.start[row] >= eat) break;
    ReleaseRow(front, static_cast<uint32_t>(row));
    ++base_id_;
    ++removed;
    if (base_id_ - front.first_id == kChunkCap) RetireFrontChunk();
  }
  // Amortize index cleanup: compact when a meaningful chunk was purged.
  if (index_.has_value() && removed > 64) {
    index_->Compact(base_id_);
  }
}

void Buffer::Clear() {
  while (base_id_ < next_id_) {
    Chunk& front = *chunks_.front();
    const size_t row = static_cast<size_t>(base_id_ - front.first_id);
    ReleaseRow(front, static_cast<uint32_t>(row));
    ++base_id_;
    if (base_id_ - front.first_id == kChunkCap) RetireFrontChunk();
  }
  // A trailing partially-filled chunk survives the loop above.
  while (!chunks_.empty()) RetireFrontChunk();
  ZS_DCHECK(group_refs_.empty());
  if (index_.has_value()) index_->Compact(base_id_);
}

void Buffer::EnableHashIndex(int class_idx, int field_idx) {
  if (index_.has_value() && index_->class_idx() == class_idx &&
      index_->field_idx() == field_idx) {
    return;
  }
  index_.emplace(class_idx, field_idx);
  for (RecordId id = base_id_; id < next_id_; ++id) {
    const RecordRef r = Get(id);
    const EventPtr& key_event = r.slots[class_idx];
    if (key_event != nullptr) {
      index_->Insert(key_event->value(field_idx), id);
    }
  }
}

void Buffer::DisableHashIndex() { index_.reset(); }

}  // namespace zstream
