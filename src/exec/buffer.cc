#include "exec/buffer.h"

#include "common/macros.h"

namespace zstream {

ZS_HOT RecordId Buffer::Append(Record record) {
  ZS_DCHECK(records_.empty() || record.end_ts >= records_.back().end_ts);
  const RecordId id = end_id();
  Account(record);
  if (index_.has_value()) index_->Insert(record, id);
  records_.push_back(std::move(record));
  return id;
}

void Buffer::PurgeBefore(Timestamp eat) {
  size_t removed = 0;
  while (!records_.empty() && records_.front().start_ts < eat) {
    Unaccount(records_.front());
    records_.pop_front();
    ++base_id_;
    ++removed;
  }
  // Amortize index cleanup: compact when a meaningful chunk was purged.
  if (index_.has_value() && removed > 64) {
    index_->Compact(base_id_);
  }
}

void Buffer::Clear() {
  for (const Record& r : records_) Unaccount(r);
  base_id_ = end_id();
  records_.clear();
  if (index_.has_value()) index_->Compact(base_id_);
}

void Buffer::EnableHashIndex(int class_idx, int field_idx) {
  if (index_.has_value() && index_->class_idx() == class_idx &&
      index_->field_idx() == field_idx) {
    return;
  }
  index_.emplace(class_idx, field_idx);
  for (RecordId id = base_id_; id < end_id(); ++id) {
    index_->Insert(Get(id), id);
  }
}

void Buffer::DisableHashIndex() { index_.reset(); }

void Buffer::Account(const Record& r) {
  const size_t b = r.ByteSize(count_event_bytes_);
  tracked_bytes_ += b;
  if (tracker_ != nullptr) tracker_->Allocate(b);
}

void Buffer::Unaccount(const Record& r) {
  const size_t b = r.ByteSize(count_event_bytes_);
  ZS_DCHECK(tracked_bytes_ >= b);
  tracked_bytes_ -= b;
  if (tracker_ != nullptr) tracker_->Release(b);
}

}  // namespace zstream
