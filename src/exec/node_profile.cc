#include "exec/node_profile.h"

#include <iomanip>
#include <sstream>

namespace zstream {

bool NodeProfile::SameShape(const NodeProfile& other) const {
  if (label != other.label || children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i].SameShape(other.children[i])) return false;
  }
  return true;
}

Status MergeNodeProfile(NodeProfile* into, const NodeProfile& from) {
  if (!into->SameShape(from)) {
    return Status::Internal("cannot merge node profiles: plan shapes "
                            "differ ('" + into->label + "' vs '" +
                            from.label + "')");
  }
  into->events_in += from.events_in;
  into->records_out += from.records_out;
  into->pairs_tried += from.pairs_tried;
  into->buffer_records += from.buffer_records;
  into->eval_ns += from.eval_ns;
  for (size_t i = 0; i < into->children.size(); ++i) {
    // Shape already verified for the whole tree; recursion cannot fail.
    (void)MergeNodeProfile(&into->children[i], from.children[i]);
  }
  return Status::OK();
}

namespace {

void RenderTime(std::ostringstream& os, uint64_t ns) {
  os << " time=";
  os << std::fixed << std::setprecision(3);
  if (ns >= 1000000000ULL) {
    os << static_cast<double>(ns) / 1e9 << "s";
  } else if (ns >= 1000000ULL) {
    os << static_cast<double>(ns) / 1e6 << "ms";
  } else {
    os << static_cast<double>(ns) / 1e3 << "us";
  }
  os.unsetf(std::ios::fixed);
}

void RenderNode(std::ostringstream& os, const NodeProfile& node,
                int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << node.label << " in=" << node.events_in << " out="
     << node.records_out;
  if (node.pairs_tried > 0) os << " pairs=" << node.pairs_tried;
  os << " buf=" << node.buffer_records;
  if (node.eval_ns > 0) RenderTime(os, node.eval_ns);
  os << "\n";
  for (const NodeProfile& child : node.children) {
    RenderNode(os, child, depth + 1);
  }
}

}  // namespace

std::string RenderNodeProfile(const NodeProfile& root) {
  std::ostringstream os;
  RenderNode(os, root, 0);
  return os.str();
}

}  // namespace zstream
